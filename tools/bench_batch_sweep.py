#!/usr/bin/env python3
"""Pinned batch-sweep benchmark: lockstep batching vs the per-point pool.

Runs one fixed 8-point sweep (compress on ``big.2.16`` with REC/RS/RU,
an ``active_list_size`` × ``confidence_threshold`` grid) twice through
the same executor pool, in the same process, back to back:

* **baseline** — ``batch_size=1``: the classic pool, one worker process
  per point attempt;
* **batched** — ``batch_size=8``: the whole compatible slice runs
  lockstep in one worker process (:mod:`repro.sim.batch`).

Both sides pin ``mp_context="spawn"`` so the per-attempt process cost —
the thing batching amortises — is the portable one (spawn is the only
start method on Windows and the default on macOS; fork-specific
copy-on-write savings would make the baseline unrealistically cheap and
platform-dependent).

The run also *verifies* the batching contract before recording anything:
every point's stats payload must be bit-identical between the two modes
(modulo the decoded-uop-cache counters, whose attribution legitimately
shifts when siblings share a warm store).  A parity violation exits 2
and records nothing.

With ``--bench-json`` the result merges into the benchmark payload as

* ``sweep_points_per_second`` — the batched headline throughput, and
* ``batch_sweep`` — the full detail block (both throughputs, speedup,
  and the pinned spec), compared warn-only by ``tools/bench_compare.py``.

Usage::

    PYTHONPATH=src python tools/bench_batch_sweep.py
    PYTHONPATH=src python tools/bench_batch_sweep.py --bench-json BENCH_core.json

Exit codes: 0 ok, 2 parity violation between batched and baseline runs.
"""

from __future__ import annotations

import argparse
import json
import time

#: SimStats fields allowed to differ between serial and batched runs —
#: see tests/test_batch_lockstep.py for the parity contract.
UOP_CACHE_FIELDS = frozenset(
    {
        "uop_cache_hits",
        "uop_cache_misses",
        "uop_cache_evictions",
        "decode_counts",
        "uop_cache_hits_by_class",
    }
)

PINNED = dict(
    workload="compress",
    machine="big.2.16",
    features="REC/RS/RU",
    commit_target=1500,
    grid={"active_list_size": [32, 64, 128, 256],
          "confidence_threshold": [4, 12]},
)


def pinned_jobs():
    from repro.sim.sweep import Sweep

    sweep = Sweep(
        workloads=[(PINNED["workload"],)],
        grid=PINNED["grid"],
        machine=PINNED["machine"],
        features=PINNED["features"],
        commit_target=PINNED["commit_target"],
    )
    return sweep.jobs()


def comparable(outcome) -> dict:
    from repro.exec.jobs import stats_to_payload

    return {
        name: value
        for name, value in stats_to_payload(outcome.result.stats).items()
        if name not in UOP_CACHE_FIELDS
    }


def run_mode(jobs, suite, pool_jobs: int, batch_size: int, rounds: int):
    """Best-of-N throughput for one executor configuration."""
    from repro.exec.pool import Executor

    best = float("inf")
    outcomes = None
    for _ in range(rounds):
        executor = Executor(jobs=pool_jobs, mp_context="spawn",
                            batch_size=batch_size)
        started = time.perf_counter()
        outcomes = executor.run(jobs, suite=suite)
        best = min(best, time.perf_counter() - started)
    return len(jobs) / best, best, outcomes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pool-jobs", type=int, default=2,
                        help="worker processes in the pool (both modes)")
    parser.add_argument("--batch-size", type=int, default=8,
                        help="lockstep slice size for the batched mode")
    parser.add_argument("--rounds", type=int, default=2,
                        help="samples per mode (best-of is recorded)")
    parser.add_argument("--bench-json", default=None, metavar="PATH",
                        help="merge sweep_points_per_second and the "
                             "batch_sweep block into this payload")
    args = parser.parse_args(argv)

    from repro.workloads.suite import WorkloadSuite

    jobs = pinned_jobs()
    suite = WorkloadSuite()

    baseline_pps, baseline_s, baseline = run_mode(
        jobs, suite, args.pool_jobs, 1, args.rounds)
    print(f"baseline  pool(jobs={args.pool_jobs}, batch_size=1):  "
          f"{baseline_s:6.2f}s  {baseline_pps:6.2f} points/s")

    batched_pps, batched_s, batched = run_mode(
        jobs, suite, args.pool_jobs, args.batch_size, args.rounds)
    print(f"batched   pool(jobs={args.pool_jobs}, batch_size={args.batch_size}):  "
          f"{batched_s:6.2f}s  {batched_pps:6.2f} points/s")

    speedup = batched_pps / baseline_pps
    print(f"speedup: {speedup:.2f}x")

    # Bit-identity gate: a throughput number for a wrong answer is noise.
    for index, (a, b) in enumerate(zip(baseline, batched)):
        if not (a.ok and b.ok):
            print(f"FAIL point {index}: baseline ok={a.ok} batched ok={b.ok}")
            return 2
        if comparable(a) != comparable(b):
            print(f"FAIL point {index}: batched stats diverge from baseline")
            return 2
    print(f"parity: all {len(jobs)} points bit-identical "
          f"(modulo decoded-uop-cache counters)")

    if args.bench_json:
        try:
            with open(args.bench_json) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            payload = {}
        payload["sweep_points_per_second"] = round(batched_pps, 2)
        payload["batch_sweep"] = {
            "spec": PINNED,
            "points": len(jobs),
            "pool_jobs": args.pool_jobs,
            "batch_size": args.batch_size,
            "mp_context": "spawn",
            "serial_pool_points_per_second": round(baseline_pps, 2),
            "batched_points_per_second": round(batched_pps, 2),
            "speedup": round(speedup, 2),
        }
        with open(args.bench_json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"recorded sweep_points_per_second in {args.bench_json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
