#!/usr/bin/env python3
"""Compare a fresh ``BENCH_core.json`` against a committed baseline.

The profile payload (see ``repro.sim.profiler.profile_spec``) records
headline simulator throughput (``cycles_per_second``) for one pinned
spec.  This tool diffs a freshly measured payload against the baseline
checked into the repository and fails when throughput regressed by more
than ``--threshold`` (default 15%) — enough slack for CI-runner noise,
tight enough to catch a real hot-loop regression.

Usage::

    PYTHONPATH=src python -m repro.cli profile --workload compress \
        --output BENCH_fresh.json
    python tools/bench_compare.py --baseline BENCH_core.json \
        --fresh BENCH_fresh.json

``--ratchet`` turns the gate into a one-way ratchet: the threshold
tightens to 5% by default, and whenever the fresh measurement *beats*
the committed baseline, the baseline file is rewritten with the fresh
payload so the floor only ever moves up.  CI commits the bumped file,
which means a hot-loop optimisation permanently raises the bar and a
later regression is judged against the best throughput ever recorded,
not against a stale low-water mark.

Exit codes: 0 ok, 1 regression beyond threshold, 2 unusable inputs
(missing file / spec mismatch — comparing different workloads or
machines would be meaningless).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict

#: Payload fields that must agree for a comparison to mean anything.
SPEC_FIELDS = ("kernel", "machine", "features", "commit_target")


def load_payload(path: str) -> Dict:
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"bench_compare: cannot read {path}: {exc}")


def ratchet_baseline(baseline_path: str, fresh: Dict) -> None:
    """Rewrite the baseline file with the fresh payload (fresh won)."""
    with open(baseline_path, "w") as handle:
        json.dump(fresh, handle, indent=2, sort_keys=True)
        handle.write("\n")


def compare(
    baseline: Dict,
    fresh: Dict,
    threshold: float,
    baseline_path: str = "",
    ratchet: bool = False,
) -> int:
    """Return the exit code; prints a human-readable verdict."""
    mismatched = [
        f"{field}: baseline={baseline.get(field)!r} fresh={fresh.get(field)!r}"
        for field in SPEC_FIELDS
        if baseline.get(field) != fresh.get(field)
    ]
    if mismatched:
        print("bench_compare: payloads measure different specs; refusing to compare")
        for line in mismatched:
            print(f"  {line}")
        return 2
    base_cps = baseline.get("cycles_per_second")
    fresh_cps = fresh.get("cycles_per_second")
    if not base_cps or not fresh_cps:
        print("bench_compare: missing or zero cycles_per_second")
        return 2
    change = (fresh_cps - base_cps) / base_cps
    verdict = "improved" if change >= 0 else "regressed"
    print(
        f"{baseline['kernel']} [{baseline['features']}] on {baseline['machine']}: "
        f"baseline {base_cps:,.0f} cycles/s, fresh {fresh_cps:,.0f} cycles/s "
        f"({change:+.1%}, {verdict})"
    )
    compare_service_latency(baseline, fresh, threshold)
    compare_sweep_throughput(baseline, fresh, threshold)
    if change < -threshold:
        print(
            f"bench_compare: FAIL — regression {-change:.1%} exceeds "
            f"the {threshold:.0%} threshold"
        )
        return 1
    if ratchet and change > 0 and baseline_path:
        ratchet_baseline(baseline_path, fresh)
        print(
            f"bench_compare: ratcheted {baseline_path} up to "
            f"{fresh_cps:,.0f} cycles/s"
        )
    print("bench_compare: OK")
    return 0


def compare_service_latency(baseline: Dict, fresh: Dict, threshold: float) -> None:
    """Warn-only check of ``service_warm_submit_seconds`` (campaign-server
    submit→result latency for an all-cached single-job campaign, recorded
    by ``tools/service_smoke.py``).  Latency on shared CI runners is far
    noisier than simulator throughput, so a regression here prints a
    warning and never changes the exit code."""
    base = baseline.get("service_warm_submit_seconds")
    new = fresh.get("service_warm_submit_seconds")
    if not base or not new:
        print("bench_compare: service latency not tracked in both payloads; skipping")
        return
    change = (new - base) / base  # positive = slower
    print(
        f"service warm submit->result: baseline {base * 1000:.1f} ms, "
        f"fresh {new * 1000:.1f} ms ({change:+.1%})"
    )
    if change > threshold:
        print(
            f"bench_compare: WARN — service latency up {change:.1%} "
            f"(warn-only, does not fail the gate)"
        )


def compare_sweep_throughput(baseline: Dict, fresh: Dict, threshold: float) -> None:
    """Warn-only check of ``sweep_points_per_second`` (batched-pool
    throughput of the pinned 8-point sweep, recorded by
    ``tools/bench_batch_sweep.py``).  The metric folds in process-spawn
    cost, which varies wildly across CI runners, so this PR it warns
    only; the ratchet comes once nightly numbers show a stable floor."""
    base = baseline.get("sweep_points_per_second")
    new = fresh.get("sweep_points_per_second")
    if not base or not new:
        print("bench_compare: sweep throughput not tracked in both payloads; skipping")
        return
    change = (new - base) / base  # positive = faster
    print(
        f"batched sweep throughput: baseline {base:.2f} points/s, "
        f"fresh {new:.2f} points/s ({change:+.1%})"
    )
    if change < -threshold:
        print(
            f"bench_compare: WARN — sweep throughput down {-change:.1%} "
            f"(warn-only, does not fail the gate)"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default="BENCH_core.json",
        help="committed baseline payload (default: BENCH_core.json)",
    )
    parser.add_argument(
        "--fresh", required=True, help="freshly measured payload to check"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="maximum tolerated cycles/sec regression as a fraction "
        "(default 0.15, or 0.05 with --ratchet)",
    )
    parser.add_argument(
        "--ratchet",
        action="store_true",
        help="tighten the threshold to 5%% and rewrite the baseline file "
        "with the fresh payload whenever throughput improved (the gate "
        "only ever moves up)",
    )
    args = parser.parse_args(argv)
    if args.threshold is None:
        args.threshold = 0.05 if args.ratchet else 0.15
    try:
        baseline = load_payload(args.baseline)
        fresh = load_payload(args.fresh)
    except FileNotFoundError as exc:
        # Exit 3 = "nothing to compare" — distinct from a regression (1)
        # and a spec mismatch (2) so CI can treat it as skip-or-seed.
        print(
            f"bench_compare: no such payload {exc.filename}; "
            f"generate it with 'repro-sim profile'",
            file=sys.stderr,
        )
        return 3
    return compare(
        baseline,
        fresh,
        args.threshold,
        baseline_path=args.baseline,
        ratchet=args.ratchet,
    )


if __name__ == "__main__":
    sys.exit(main())
