#!/usr/bin/env python3
"""Regenerate the golden stats snapshot fixture.

``tests/golden/core_stats_seed.json`` pins the headline per-kernel
numbers (IPC, recycle/reuse/respawn rates, fetch utilization) that the
stage-decomposition refactor must preserve bit-for-bit.  Regenerating
it is an *intentional* act — only do so when a change is supposed to
shift simulation results, and say so in the commit message.

Usage::

    PYTHONPATH=src python tools/gen_golden_stats.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.pipeline.core import Core  # noqa: E402
from repro.sim.runner import RunSpec  # noqa: E402
from repro.workloads.suite import WorkloadSuite  # noqa: E402

#: The matrix the snapshot covers: the recycle feature family the paper
#: ablates, on two kernels with very different branch behaviour.
KERNELS = ("compress", "li")
FEATURES = ("TME", "REC", "REC/RS", "REC/RS/RU")
COMMIT_TARGET = 800

FIXTURE = Path(__file__).resolve().parent.parent / "tests" / "golden" / "core_stats_seed.json"


def snapshot_one(suite: WorkloadSuite, kernel: str, features: str) -> dict:
    spec = RunSpec(workload=(kernel,), features=features, commit_target=COMMIT_TARGET)
    core = Core(spec.build_config())
    core.load(suite.mix(spec.workload), commit_target=spec.commit_target)
    stats = core.run(max_cycles=spec.max_cycles)
    return {
        "cycles": stats.cycles,
        "committed": stats.committed,
        "fetched": stats.fetched,
        "renamed": stats.renamed,
        "renamed_recycled": stats.renamed_recycled,
        "renamed_reused": stats.renamed_reused,
        "renamed_reused_loads": stats.renamed_reused_loads,
        "squashed": stats.squashed,
        "ipc": stats.ipc,
        "pct_recycled": stats.pct_recycled,
        "pct_reused": stats.pct_reused,
        "forks": stats.forks,
        "forks_used_tme": stats.forks_used_tme,
        "respawns": stats.respawns,
        "respawn_streams": stats.respawn_streams,
        "merges": stats.merges,
        "back_merges": stats.back_merges,
        "cond_branches_resolved": stats.cond_branches_resolved,
        "mispredicts": stats.mispredicts,
        "mispredicts_covered": stats.mispredicts_covered,
        "streams_ended_exhausted": stats.streams_ended_exhausted,
        "streams_ended_squashed": stats.streams_ended_squashed,
        "streams_ended_branch_mismatch": stats.streams_ended_branch_mismatch,
        "fetch_util_average": core.util.fetch.average,
        "fetch_util_utilization": core.util.fetch.utilization,
        "rename_fill_from_recycling": core.util.rename_fill_from_recycling,
    }


def main() -> int:
    suite = WorkloadSuite()
    payload = {
        "commit_target": COMMIT_TARGET,
        "runs": {
            f"{kernel}|{features}": snapshot_one(suite, kernel, features)
            for kernel in KERNELS
            for features in FEATURES
        },
    }
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE} ({len(payload['runs'])} runs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
