#!/usr/bin/env python3
"""AST-based determinism lint for the simulator's hot core.

Simulation results must be bit-identical across runs, Python versions
and processes — the result cache, the resume journal and every
regression test depend on it.  This lint statically bans the three
classic ways nondeterminism sneaks in:

``DET001`` wall-clock reads
    ``time.time`` / ``time.time_ns`` / ``time.perf_counter`` /
    ``time.monotonic`` / ``datetime.now`` / ``datetime.utcnow``.

``DET002`` unseeded randomness
    any call through the module-global ``random.*`` API, and
    ``random.Random()`` without an explicit seed argument.

``DET003`` order-dependent iteration
    ``for`` loops and comprehensions iterating directly over a set
    literal/constructor/comprehension or over ``.keys()`` /
    ``.values()`` / ``.items()`` — including through a ``list()`` /
    ``tuple()`` wrapper — unless wrapped in ``sorted()``.  Dict
    iteration order is insertion order, which is deterministic *per
    process* but fragile under refactoring; the core must not depend
    on it.

``DET004`` monkey-patching the core
    ``setattr(core, ...)`` / ``setattr(self.core, ...)`` and direct
    assignments to private attributes of a core or stage object
    (``core._execute = f``, ``self.core.rename._x = f``).  Observers
    must subscribe to the typed event bus
    (``repro.pipeline.events.EventBus``) instead of wrapping methods —
    method-wrapping breaks silently on rename and made instrumentation
    part of the simulated semantics.  Checked across ``src/repro``
    (tests may still patch delegators for fault injection).

A line may be exempted with an inline justification comment::

    stale = [k for k, v in table.items() if ...]  # det-ok: order-independent

Every suppression must carry a reason after ``det-ok:``.

Usage::

    python tools/lint_determinism.py            # lint the default targets
    python tools/lint_determinism.py PATH...    # lint specific files/dirs

Exit status is 1 if any violation is found, 0 otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, List, NamedTuple

#: Directories/files whose determinism the simulator's results rest on.
DEFAULT_TARGETS = (
    "src/repro/pipeline",
    "src/repro/recycle",
    "src/repro/exec/cache.py",
)

#: DET004 sweeps the whole package: observers anywhere in src/ must go
#: through the event bus, not just code in the hot-core directories.
DET004_TARGETS = ("src/repro",)

ALL_RULES = frozenset({"DET001", "DET002", "DET003", "DET004"})

_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
}

_DICT_VIEWS = {"keys", "values", "items"}


class Violation(NamedTuple):
    path: Path
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _suppressed_lines(source: str) -> set:
    """Line numbers carrying a ``# det-ok: <reason>`` justification."""
    out = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "det-ok:" in text and text.split("det-ok:", 1)[1].strip():
            out.add(lineno)
    return out


def _dotted_call(node: ast.AST) -> tuple:
    """``(base, attr)`` for a ``base.attr(...)`` call, else ``(None, None)``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
    ):
        return node.func.value.id, node.func.attr
    return None, None


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_dict_view(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _DICT_VIEWS
        and not node.args
        and not node.keywords
    )


def _unwrap_sequencing(node: ast.AST) -> ast.AST:
    """Strip ``list(...)``/``tuple(...)``/``reversed(...)`` wrappers —
    they preserve the underlying order, so the hazard remains."""
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "tuple", "reversed")
        and len(node.args) == 1
    ):
        node = node.args[0]
    return node


def _is_core_ref(node: ast.AST) -> bool:
    """True for expressions that reach a Core/stage object: a name
    ``core``, an attribute ``<x>.core`` at any depth, or any attribute
    chain hanging off one (``core.rename``, ``self.core.resolve``)."""
    if isinstance(node, ast.Name):
        return node.id == "core"
    if isinstance(node, ast.Attribute):
        return node.attr == "core" or _is_core_ref(node.value)
    return False


def _expr_text(node: ast.AST) -> str:
    try:
        return ast.unparse(node)  # py>=3.9
    except Exception:  # pragma: no cover - unparse failure
        return "<expr>"


class _Checker(ast.NodeVisitor):
    def __init__(self, path: Path, suppressed: set, rules: frozenset = ALL_RULES):
        self.path = path
        self.suppressed = suppressed
        self.rules = rules
        self.violations: List[Violation] = []

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        if code not in self.rules:
            return
        lineno = getattr(node, "lineno", 0)
        if lineno in self.suppressed:
            return
        self.violations.append(Violation(self.path, lineno, code, message))

    # -- DET001 / DET002 / DET004: calls -------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "setattr"
            and node.args
            and _is_core_ref(node.args[0])
        ):
            self._flag(
                node, "DET004",
                f"setattr({_expr_text(node.args[0])}, ...) monkey-patches "
                f"the core; subscribe to the event bus instead",
            )
        base, attr = _dotted_call(node)
        if (base, attr) in _WALL_CLOCK:
            self._flag(node, "DET001", f"wall-clock read {base}.{attr}()")
        elif base == "random":
            if attr == "Random":
                if not node.args and not node.keywords:
                    self._flag(
                        node, "DET002",
                        "random.Random() without an explicit seed",
                    )
            else:
                self._flag(
                    node, "DET002",
                    f"module-global random.{attr}() (use a seeded "
                    f"random.Random instance)",
                )
        self.generic_visit(node)

    # -- DET003: iteration order ---------------------------------------
    def _check_iter(self, node: ast.AST, context: str) -> None:
        inner = _unwrap_sequencing(node)
        if _is_set_expr(inner):
            self._flag(
                node, "DET003",
                f"{context} iterates over a set (order is salted per "
                f"process); sort or use an ordered container",
            )
        elif _is_dict_view(inner):
            attr = inner.func.attr  # type: ignore
            self._flag(
                node, "DET003",
                f"{context} iterates over .{attr}() directly; wrap in "
                f"sorted(...) or justify with '# det-ok: <reason>'",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, "for loop")
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter, "async for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- DET004: private-attribute writes on the core ------------------
    def _check_core_write(self, target: ast.AST) -> None:
        if (
            isinstance(target, ast.Attribute)
            and target.attr.startswith("_")
            and _is_core_ref(target.value)
        ):
            self._flag(
                target, "DET004",
                f"assignment to {_expr_text(target)} replaces a private "
                f"core/stage member; subscribe to the event bus instead",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_core_write(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_core_write(node.target)
        self.generic_visit(node)


def lint_file(path: Path, rules: frozenset = ALL_RULES) -> List[Violation]:
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, "DET000", f"syntax error: {exc.msg}")]
    checker = _Checker(path, _suppressed_lines(source), rules)
    checker.visit(tree)
    return checker.violations


def lint_paths(paths: Iterable[str], rules: frozenset = ALL_RULES) -> List[Violation]:
    violations: List[Violation] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            files = [path]
        else:
            continue
        for file in files:
            violations.extend(lint_file(file, rules))
    return sorted(violations, key=lambda v: (str(v.path), v.line))


def main(argv: List[str]) -> int:
    targets = argv or list(DEFAULT_TARGETS) + [
        t for t in DET004_TARGETS if Path(t).exists()
    ]
    missing = [t for t in targets if not Path(t).exists()]
    if missing:
        print(f"lint_determinism: no such path(s): {missing}", file=sys.stderr)
        return 2
    if argv:
        violations = lint_paths(argv)
    else:
        # The hot-core targets get the full rule set; the wider package
        # sweep applies only the monkey-patching ban (observers outside
        # the core may legitimately read the wall clock, etc.).
        violations = lint_paths(DEFAULT_TARGETS, ALL_RULES - {"DET004"})
        violations += lint_paths(DET004_TARGETS, frozenset({"DET004"}))
        violations = sorted(violations, key=lambda v: (str(v.path), v.line))
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"{len(violations)} determinism violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
