#!/usr/bin/env python3
"""Determinism lint — thin shim over ``repro.analysis.lint``.

The actual rules (DET001–DET005) and engine live in
``src/repro/analysis/lint``; this entry point preserves the historical
CLI contract that CI and the test-suite pin:

* ``python tools/lint_determinism.py`` lints the default determinism
  profile (hot-core targets with the full rule set minus DET004, plus a
  whole-package DET004 sweep), triaged against the committed baseline
  in ``tools/lint_baseline.json``;
* ``python tools/lint_determinism.py PATH...`` lints specific
  files/dirs with every rule;
* output is one ``path:line: CODE message`` line per violation;
* exit status 1 on violations, 2 on missing paths, 0 otherwise.

``repro-sim lint`` is the full front end (rule selection, JSON/SARIF
output, parallel analysis, baseline updates).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.analysis.lint import (  # noqa: E402
    DEFAULT_BASELINE_PATH,
    DETERMINISM_PROFILE,
    Baseline,
    LintTarget,
    render_text,
    run_lint,
)


def main(argv: List[str]) -> int:
    if argv:
        targets = [LintTarget(paths=tuple(argv))]
    else:
        targets = list(DETERMINISM_PROFILE)
    baseline = Baseline.load(REPO / DEFAULT_BASELINE_PATH)
    try:
        result = run_lint(targets, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"lint_determinism: {exc}", file=sys.stderr)
        return 2
    for line in render_text(result):
        print(line)
    if not result.ok:
        print(f"{len(result.blocking)} determinism violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
