#!/usr/bin/env python3
"""CI smoke test for the campaign service (``repro-sim serve``).

Boots a real server (loopback HTTP, temp artifact store), then drives
the full client path and asserts the service's core guarantees:

1. submit a tiny sweep campaign → it runs to ``done``;
2. fetch every result document;
3. resubmit the identical spec → every job resolves from the store
   (``resolution == "store"``) and **zero** additional simulations run;
4. measure warm submit→result latency for a single-job campaign and,
   with ``--bench-json``, record it as the ``service_warm_submit_seconds``
   field of the benchmark payload (a warn-only metric for
   ``tools/bench_compare.py``).

Usage::

    PYTHONPATH=src python tools/service_smoke.py --commit-target 400
    PYTHONPATH=src python tools/service_smoke.py --bench-json BENCH_core.json

Exit codes: 0 ok, 1 any guarantee violated.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"service_smoke: FAIL — {message}")


def warm_latency(client, spec: dict, rounds: int) -> float:
    """Best-of-N submit→result wall time for an all-cached campaign."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        submitted = client.submit(spec)
        for job in submitted["jobs"]:
            client.result(job["id"])
        best = min(best, time.perf_counter() - started)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--commit-target", type=int, default=400,
                        help="instructions per job (small = fast CI)")
    parser.add_argument("--local-workers", type=int, default=2)
    parser.add_argument("--latency-rounds", type=int, default=5,
                        help="warm-latency samples (best-of is recorded)")
    parser.add_argument("--bench-json", default=None, metavar="PATH",
                        help="merge service_warm_submit_seconds into this "
                             "benchmark payload")
    parser.add_argument("--sanitize", action="store_true",
                        help="run with the TSan-lite concurrency sanitizer "
                             "(lock-order + guarded-by checks) and fail on "
                             "any violation")
    args = parser.parse_args(argv)

    if args.sanitize:
        import os
        os.environ["REPRO_CONC_SANITIZE"] = "1"

    from repro.service import CampaignServer, ServiceClient, sweep_spec

    spec = sweep_spec(
        ["compress", "go"],
        grid={"active_list_size": [32, 64]},
        commit_target=args.commit_target,
        label="smoke",
    )

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as root:
        server = CampaignServer(
            root, port=0, local_workers=args.local_workers
        ).start()
        try:
            client = ServiceClient(server.url, timeout=60.0)
            health = client.healthz()
            check(health.get("ok") is True, f"healthz said {health}")

            cold = client.submit(spec)
            print(f"submitted {cold['id']}: {len(cold['jobs'])} job(s)")
            status = client.wait(cold["id"], timeout=300.0)
            check(status["state"] == "done",
                  f"campaign finished {status['state']!r}")
            documents = client.fetch_results(cold["id"])
            check(len(documents) == len(cold["jobs"]),
                  f"fetched {len(documents)}/{len(cold['jobs'])} results")
            check(all(doc["ipc"] > 0 for doc in documents),
                  "a result document has no IPC")
            executed = client.metrics()["jobs"]["tasks_executed"]
            print(f"cold campaign done: {executed} simulation(s) executed")

            warm = client.submit(spec)
            status = client.wait(warm["id"], timeout=60.0)
            check(status["state"] == "done",
                  f"warm campaign finished {status['state']!r}")
            resolutions = [job["resolution"] for job in status["jobs"]]
            check(all(r == "store" for r in resolutions),
                  f"warm resubmit was not pure cache hits: {resolutions}")
            still_executed = client.metrics()["jobs"]["tasks_executed"]
            check(still_executed == executed,
                  f"warm resubmit re-ran {still_executed - executed} task(s)")
            print("warm resubmit: all store hits, zero re-runs")

            single = sweep_spec(
                ["compress"],
                grid={"active_list_size": [32]},
                commit_target=args.commit_target,
                label="latency-probe",
            )
            client.submit(single)  # ensure the key is cached
            latency = warm_latency(client, single, args.latency_rounds)
            print(f"warm submit->result latency: {latency * 1000:.1f} ms "
                  f"(best of {args.latency_rounds})")

            if server.sanitizer is not None:
                counts = client.metrics().get("conc_sanitizer", {})
                print(f"sanitizer: {counts}")
                check(counts.get("acquires", 0) > 0,
                      "sanitizer active but observed no lock traffic")
                server.sanitizer.assert_quiet()
                print("sanitizer: no violations")
        finally:
            server.stop()

    if args.bench_json:
        try:
            with open(args.bench_json) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            payload = {}
        payload["service_warm_submit_seconds"] = latency
        with open(args.bench_json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"recorded service_warm_submit_seconds in {args.bench_json}")

    print("service_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
