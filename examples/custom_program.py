#!/usr/bin/env python
"""Bring your own assembly: write, emulate, then simulate a program.

Shows the full user workflow on a hand-written RRISC kernel with a
reuse-friendly "diamond" (each branch arm defines its own registers
from the zero register, so the other arm's results stay valid and the
recycled instructions can skip execution entirely).

Run:  python examples/custom_program.py
"""

from repro import Core, Emulator, Features, MachineConfig, assemble

SOURCE = """
# A branchy kernel whose diamond arms are register-disjoint.
        .data
seed:   .word 424242
        .text
main:   movi r1, seed
        ld   r3, 0(r1)      # PRNG state
        movi r2, 4000       # iterations
loop:   slli r4, r3, 13     # xorshift
        xor  r3, r3, r4
        srli r4, r3, 7
        xor  r3, r3, r4
        andi r5, r3, 3      # data-dependent, hard-to-predict
        beq  r5, left
right:  addi r6, r31, 3     # this arm only writes r6/r8
        addi r8, r31, 11
        br   join
left:   addi r7, r31, 7     # this arm only writes r7/r9
        addi r9, r31, 13
join:   add  r10, r10, r6
        add  r10, r10, r7
        subi r2, r2, 1
        bgt  r2, loop
        halt
"""


def main() -> None:
    program = assemble(SOURCE, name="diamond")
    print("=== listing (head) ===")
    print("\n".join(program.listing().splitlines()[:12]))

    # 1. Architectural run on the golden emulator.
    emulator = Emulator(program)
    executed = emulator.run_to_halt()
    print(f"\nemulator: {executed} instructions, r10 = {emulator.state.regs[10]}")

    # 2. Cycle-level simulation with and without recycling+reuse.
    for label, features in [
        ("TME", Features.tme_only()),
        ("REC/RU", Features.rec_ru()),
        ("REC/RS/RU", Features.rec_rs_ru()),
    ]:
        core = Core(MachineConfig(features=features))
        core.load([assemble(SOURCE, name="diamond")], commit_target=4000)
        stats = core.run()
        print(
            f"{label:<10s} IPC={stats.ipc:.3f}  "
            f"recycled={stats.pct_recycled:.1f}%  reused={stats.pct_reused:.2f}%  "
            f"merges={stats.merges} respawns={stats.respawns}"
        )

    print(
        "\nBecause the arms are register-disjoint, recycled instructions"
        "\nfrom the stored alternate paths pass the written-bit test and"
        "\nare reused — they bypass the issue queues and execution entirely."
    )


if __name__ == "__main__":
    main()
