#!/usr/bin/env python
"""Alternate-path fetch-limit policies (the paper's Figure 5 question).

Once a forked branch resolves correctly, its alternate path is known to
be wrong — but with recycling those instructions may still be useful
later.  How long should the machine keep fetching/executing them?

  stop-N    stop immediately at resolution (and cap paths at N)
  fetch-N   keep fetching up to N instructions, execute nothing new
  nostop-N  keep fetching and executing up to N instructions

Run:  python examples/fetch_policies.py [kernel] [commit_target]
"""

import sys

from repro import RunSpec, run_spec
from repro.sim import POLICIES
from repro.workloads import WorkloadSuite


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "go"
    commit_target = int(sys.argv[2]) if len(sys.argv) > 2 else 2500
    suite = WorkloadSuite()

    print(f"kernel={kernel}, REC/RS/RU, window={commit_target}\n")
    print(f"{'policy':<11s} {'IPC':>7s} {'recycled':>9s} {'merges':>7s} {'respawns':>9s}")
    results = {}
    for policy in POLICIES:
        spec = RunSpec(
            (kernel,), features="REC/RS/RU", policy=policy, commit_target=commit_target
        )
        result = run_spec(spec, suite)
        results[policy] = result
        print(
            f"{policy:<11s} {result.ipc:7.3f} {result.stats.pct_recycled:8.1f}% "
            f"{result.stats.merges:7d} {result.stats.respawns:9d}"
        )

    best = max(results, key=lambda p: results[p].ipc)
    worst = min(results, key=lambda p: results[p].ipc)
    spread = 100 * (results[best].ipc / results[worst].ipc - 1)
    print(f"\nbest={best}, worst={worst}, spread={spread:.1f}%")
    print(
        "The paper found this is not a major performance factor — all"
        "\npolicies land in a band, and conservative stop-8 performs well."
    )


if __name__ == "__main__":
    main()
