#!/usr/bin/env python
"""Characterise the workload suite the way the paper characterises SPEC95.

Profiles every kernel's branch behaviour offline (no pipeline): gshare
accuracy, taken rate, branch density, how often the confidence
estimator would fork, and the resulting upper bound on TME's
branch-miss coverage.  This is the evidence that the synthetic kernels
inhabit the same behavioural niches as their SPEC95 namesakes
(tomcatv/vortex predictable, go/compress hard, etc.).

Run:  python examples/workload_characterization.py
"""

from repro.branch import profile_suite
from repro.workloads import WorkloadSuite


def main() -> None:
    suite = WorkloadSuite(iters=5000)
    profiles = profile_suite(suite, max_instructions=25_000)

    print(
        f"{'kernel':<10s} {'sites':>6s} {'density':>8s} {'accuracy':>9s} "
        f"{'taken':>7s} {'lowconf':>8s} {'cov bound':>10s}"
    )
    for name, p in profiles.items():
        print(
            f"{name:<10s} {len(p.static_sites):>6d} "
            f"{100 * p.branch_density:7.1f}% {100 * p.accuracy:8.1f}% "
            f"{100 * p.taken_rate:6.1f}% {100 * p.low_confidence_rate:7.1f}% "
            f"{100 * p.fork_coverage_bound:9.1f}%"
        )

    ranked = sorted(profiles.values(), key=lambda p: p.accuracy)
    print(
        f"\nhardest branches: {ranked[0].program} "
        f"({100 * ranked[0].accuracy:.1f}%), "
        f"easiest: {ranked[-1].program} ({100 * ranked[-1].accuracy:.1f}%)"
    )
    print(
        "TME forks where the confidence estimator fires; recycling then"
        "\nfeeds on the traces those forks leave behind."
    )


if __name__ == "__main__":
    main()
