#!/usr/bin/env python
"""Custom design-space exploration with the Sweep utility.

Crosses the trace-store size (active list) with the confidence
threshold on two contrasting kernels and prints a small design-space
map plus the CSV you would feed into further analysis.  Demonstrates
how to ask questions the paper didn't.

Run:  python examples/design_space_sweep.py
"""

from repro.sim.sweep import Sweep
from repro.workloads import WorkloadSuite


def main() -> None:
    sweep = Sweep(
        workloads=[("compress",), ("perl",)],
        grid={
            "active_list_size": [32, 64, 128],
            "confidence_threshold": [4, 12],
        },
        features="REC/RS/RU",
        commit_target=1200,
    )
    suite = WorkloadSuite()
    rows = sweep.run(suite)

    print("average IPC per design point (over compress, perl):")
    print(f"{'active_list':>12s} {'conf_thr':>9s} {'avg IPC':>9s}")
    for key, ipc in sorted(sweep.summarize(rows).items()):
        params = dict(key)
        print(
            f"{params['active_list_size']:>12d} "
            f"{params['confidence_threshold']:>9d} {ipc:>9.3f}"
        )

    print("\nlong-form CSV (head):")
    print("\n".join(sweep.to_csv(rows).splitlines()[:5]))
    print(
        "\nBigger active lists store longer traces (more merges); the"
        "\nconfidence threshold trades fork selectivity against coverage."
    )


if __name__ == "__main__":
    main()
