#!/usr/bin/env python
"""Quickstart: simulate one benchmark across the paper's six variants.

Runs the `compress` kernel (the paper's best recycling/reuse citizen)
on the baseline 16-wide, 8-context machine under SMT, TME, and the four
recycling configurations of Figures 3-4, and prints an IPC comparison
plus the recycling statistics of the best variant.

Run:  python examples/quickstart.py [kernel] [commit_target]
"""

import sys
import time

from repro import Core, Features, MachineConfig, WorkloadSuite


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "compress"
    commit_target = int(sys.argv[2]) if len(sys.argv) > 2 else 3000

    suite = WorkloadSuite()
    print(f"kernel={kernel}, window={commit_target} committed instructions\n")
    print(f"{'variant':<11s} {'IPC':>7s} {'vs SMT':>8s} {'recycled':>9s} {'reused':>8s}")

    baseline_ipc = None
    best = None
    for label, features in Features.all_variants().items():
        core = Core(MachineConfig(features=features))
        core.load(suite.single(kernel), commit_target=commit_target)
        started = time.time()
        stats = core.run()
        if baseline_ipc is None:
            baseline_ipc = stats.ipc
        speedup = 100 * (stats.ipc / baseline_ipc - 1)
        print(
            f"{label:<11s} {stats.ipc:7.3f} {speedup:+7.1f}% "
            f"{stats.pct_recycled:8.1f}% {stats.pct_reused:7.2f}%"
        )
        if best is None or stats.ipc > best[1].ipc:
            best = (label, stats)
        del started

    label, stats = best
    print(f"\nbest variant: {label}")
    print(stats.summary())


if __name__ == "__main__":
    main()
