#!/usr/bin/env python
"""Where does multipath + recycling win?  A branch-entropy sweep.

Uses the parametric workload generator to scan programs from perfectly
loop-structured branches (entropy 0) to coin-flip data-dependent
branches (entropy 1), and shows the SMT → TME → REC/RS/RU progression
at each point.  TME and recycling pay off exactly where prediction
fails — the paper's motivating observation.

Run:  python examples/branch_entropy_sweep.py [iterations]
"""

import sys

from repro import Core, Features, MachineConfig
from repro.workloads import GeneratorConfig, generate_program

VARIANTS = [
    ("SMT", Features.smt()),
    ("TME", Features.tme_only()),
    ("REC/RS/RU", Features.rec_rs_ru()),
]


def run(entropy: float, features, iterations: int) -> float:
    config = GeneratorConfig(
        seed=7,
        iterations=iterations,
        body_size=20,
        branch_entropy=entropy,
        ilp=4,
        mem_fraction=0.15,
    )
    core = Core(MachineConfig(features=features))
    core.load([generate_program(config)])
    stats = core.run(max_cycles=2_000_000)
    return stats.ipc


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    print(f"{'entropy':<9s}" + "".join(f"{label:>12s}" for label, _ in VARIANTS)
          + f"{'multipath gain':>16s}")
    for entropy in (0.0, 0.25, 0.5, 0.75, 1.0):
        ipcs = [run(entropy, features, iterations) for _, features in VARIANTS]
        gain = 100 * (ipcs[2] / ipcs[0] - 1)
        print(f"{entropy:<9.2f}" + "".join(f"{ipc:12.3f}" for ipc in ipcs)
              + f"{gain:+15.1f}%")
    print(
        "\nAt low entropy the predictor already wins and multipath is"
        "\nmoot; as entropy rises, forking + recycling recover the lost"
        "\nmisprediction cycles."
    )


if __name__ == "__main__":
    main()
