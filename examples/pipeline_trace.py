#!/usr/bin/env python
"""Watch recycling happen: trace events and a pipeline diagram.

Attaches a :class:`repro.debug.CoreTracer` to a REC/RS/RU run, prints
the fork/swap/stream event log around the action, and renders a
pipeview window where recycled (and reused) instructions are visibly
entering the pipe at rename with no fetch stage at all.

Run:  python examples/pipeline_trace.py [kernel]
"""

import sys

from repro import Core, Features, MachineConfig, WorkloadSuite
from repro.debug import CoreTracer, pipeview


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "compress"
    suite = WorkloadSuite()

    core = Core(MachineConfig(features=Features.rec_rs_ru()))
    core.load(suite.single(kernel), commit_target=600)
    tracer = CoreTracer(
        core, kinds={"fork", "swap", "respawn", "stream_open", "stream_end"}
    )
    core.run()

    print(f"=== {kernel}: multipath/recycling event log (first 25) ===")
    print(tracer.format(limit=25))

    counts = tracer.counts()
    print("\nevent totals:", ", ".join(f"{k}={v}" for k, v in sorted(counts.items())))

    recycled = [u for u in tracer.committed_uops if u.recycled]
    print(f"\n=== pipeline view around recycled instructions "
          f"({len(recycled)} recycled commits captured) ===")
    if recycled:
        first = tracer.committed_uops.index(recycled[0])
        window = tracer.committed_uops[max(0, first - 4) : first + 16]
        print(pipeview(window, max_rows=20))
    print(
        "\nRows marked [rec] entered at rename (R) straight from a stored"
        "\nactive list — no fetch, no decode.  Rows marked U were *reused*:"
        "\nthe old result was still valid, so they never issued at all."
    )


if __name__ == "__main__":
    main()
