#!/usr/bin/env python
"""The paper's headline story: recycling rescues TME under multiprogramming.

TME speculatively executes both sides of hard branches — great when the
machine is underutilised (one program), but with several programs the
fetch unit is already saturated and alternate paths starve.  Recycling
re-injects stored traces at the rename stage without consuming fetch
slots, which is why its advantage *grows* with program count (Figure 4).

This example measures SMT, TME and REC/RS/RU on 1, 2 and 4 program
mixes and prints the relative gains.

Run:  python examples/multiprogram_throughput.py [num_mixes] [commit_target]
"""

import sys

from repro import RunSpec, run_spec
from repro.workloads import WorkloadSuite


def average_over_mixes(suite, width, features, num_mixes, commit_target):
    if width == 1:
        mixes = [[name] for name in suite.names[:num_mixes]]
    else:
        mixes = suite.mixes(width, num_mixes)
    total = 0.0
    for mix in mixes:
        spec = RunSpec(tuple(mix), features=features, commit_target=commit_target)
        total += run_spec(spec, suite).ipc
    return total / len(mixes)


def main() -> None:
    num_mixes = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    commit_target = int(sys.argv[2]) if len(sys.argv) > 2 else 1500
    suite = WorkloadSuite()

    variants = ["SMT", "TME", "REC/RS/RU"]
    print(f"averaging over {num_mixes} mixes, {commit_target} commits/program\n")
    print(f"{'programs':<9s}" + "".join(f"{v:>12s}" for v in variants)
          + f"{'TME gain':>10s}{'REC gain':>10s}")

    for width in (1, 2, 4):
        ipcs = {
            v: average_over_mixes(suite, width, v, num_mixes, commit_target)
            for v in variants
        }
        tme_gain = 100 * (ipcs["TME"] / ipcs["SMT"] - 1)
        rec_gain = 100 * (ipcs["REC/RS/RU"] / ipcs["TME"] - 1)
        print(
            f"{width:<9d}"
            + "".join(f"{ipcs[v]:12.3f}" for v in variants)
            + f"{tme_gain:+9.1f}%{rec_gain:+9.1f}%"
        )

    print(
        "\nExpected shape (paper, Section 5.1): the TME gain shrinks as"
        "\nprograms are added while the recycling gain holds or grows —"
        "\nfetch-bandwidth conservation matters most when fetch is contended."
    )


if __name__ == "__main__":
    main()
