"""CLI tests (argument parsing and end-to-end subcommands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses_multi_workload(self):
        args = build_parser().parse_args(
            ["run", "--workload", "gcc", "go", "--features", "SMT"]
        )
        assert args.workload == ["gcc", "go"]
        assert args.features == "SMT"

    def test_run_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "gcc", "--machine", "mega"])

    def test_experiment_parses(self):
        args = build_parser().parse_args(["experiment", "fig3", "--commit-target", "100"])
        assert args.name == "fig3" and args.commit_target == 100

    def test_run_parses_cycle_and_confidence_flags(self):
        args = build_parser().parse_args(
            ["run", "--workload", "gcc", "--max-cycles", "5000",
             "--confidence-threshold", "4"]
        )
        assert args.max_cycles == 5000 and args.confidence_threshold == 4

    def test_run_parses_exec_flags(self):
        args = build_parser().parse_args(
            ["run", "--workload", "gcc", "--jobs", "4",
             "--cache-dir", "/tmp/c", "--no-cache"]
        )
        assert args.jobs == 4 and args.cache_dir == "/tmp/c" and args.no_cache

    def test_campaign_parses(self):
        args = build_parser().parse_args(
            ["campaign", "paper", "--jobs", "2", "--num-mixes", "1"]
        )
        assert args.command == "campaign"
        assert args.names == ["paper"] and args.jobs == 2

    def test_analyze_parses(self):
        args = build_parser().parse_args(
            ["analyze", "--workload", "compress", "--window", "8",
             "--check", "--features", "REC/RS", "--detail"]
        )
        assert args.command == "analyze"
        assert args.workload == ["compress"] and args.window == 8
        assert args.check and args.features == "REC/RS" and args.detail

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestEndToEnd:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out and "REC/RS/RU" in out

    def test_run_command(self, capsys):
        rc = main(["run", "--workload", "vortex", "--commit-target", "300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IPC=" in out and "vortex" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_asm_command(self, tmp_path, capsys):
        path = tmp_path / "prog.s"
        path.write_text("main: movi r1, 5\naddi r1, r1, 2\nhalt\n")
        assert main(["asm", str(path), "--run"]) == 0
        out = capsys.readouterr().out
        assert "movi" in out
        assert "r1 = 7" in out


class TestTraceAndProfile:
    def test_trace_command(self, capsys):
        rc = main([
            "trace", "--workload", "compress", "--commit-target", "250",
            "--events", "5", "--pipeview", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "event totals:" in out
        assert "cycles" in out  # pipeview header

    def test_profile_branches_command(self, capsys):
        rc = main(["profile-branches", "--workload", "vortex", "--iters", "300"])
        assert rc == 0
        assert "accuracy" in capsys.readouterr().out

    def test_profile_command_writes_bench_json(self, tmp_path, capsys):
        import json
        out_path = tmp_path / "BENCH_core.json"
        rc = main([
            "profile", "--workload", "compress", "--commit-target", "400",
            "--output", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-stage wall time:" in out
        payload = json.loads(out_path.read_text())
        assert payload["committed"] >= 400
        assert payload["cycles_per_second"] > 0
        assert set(payload["stages"]) == {
            "commit", "complete", "issue", "rename", "fetch"
        }

    def test_profile_command_can_skip_output(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main([
            "profile", "--workload", "compress", "--commit-target", "300",
            "--output", "",
        ])
        assert rc == 0
        assert not (tmp_path / "BENCH_core.json").exists()

    def test_run_json(self, capsys):
        import json
        rc = main(["run", "--workload", "vortex", "--commit-target", "250", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["committed"] >= 250
        assert payload["cached"] is False


class TestAnalyzeCli:
    def test_analyze_text(self, capsys):
        assert main(["analyze", "--workload", "compress"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out and "merge-cov=" in out

    def test_analyze_all_kernels_with_detail(self, capsys):
        assert main(["analyze", "--detail"]) == 0
        out = capsys.readouterr().out
        # detail view includes the per-site branch table
        assert "reconv=" in out and "li" in out and "tomcatv" in out

    def test_analyze_json(self, capsys):
        import json
        rc = main(["analyze", "--workload", "vortex", "--window", "8", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        static = payload["vortex"]["static"]
        assert static["cond_sites"] > 0
        assert static["reuse_window"] == 8
        assert 0.0 <= static["merge_coverage_pct"] <= 100.0
        assert "check" not in payload["vortex"]

    def test_analyze_check_clean(self, capsys):
        rc = main([
            "analyze", "--workload", "compress", "--check",
            "--commit-target", "400",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "check: merges=" in out
        assert "cross-check: 0 violation(s)" in out

    def test_analyze_check_json(self, capsys):
        import json
        rc = main([
            "analyze", "--workload", "vortex", "--check",
            "--commit-target", "400", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        check = payload["vortex"]["check"]
        assert check["ok"] is True and check["violations"] == []
        assert check["merges_checked"] > 0

    def test_analyze_unknown_workload(self, capsys):
        assert main(["analyze", "--workload", "nope"]) == 2


class TestOrchestrationCli:
    def test_run_cache_warm_second_invocation(self, tmp_path, capsys):
        argv = ["run", "--workload", "vortex", "--commit-target", "250",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert "[cached]" not in capsys.readouterr().out
        assert main(argv) == 0
        assert "[cached]" in capsys.readouterr().out

    def test_run_no_cache_overrides_cache_dir(self, tmp_path, capsys):
        argv = ["run", "--workload", "vortex", "--commit-target", "250",
                "--cache-dir", str(tmp_path), "--no-cache"]
        assert main(argv) == 0
        assert not any(tmp_path.iterdir())

    def test_campaign_end_to_end(self, tmp_path, capsys):
        argv = [
            "campaign", "fig3", "--jobs", "2", "--commit-target", "200",
            "--cache-dir", str(tmp_path / "cache"),
            "--journal", str(tmp_path / "journal.jsonl"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "=== fig3 ===" in out and "[campaign:" in out
        # Warm re-run: every job must be a cache hit (zero simulations).
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "48 cached" in out  # 8 kernels x 6 variants

    def test_campaign_unknown_name(self, capsys):
        assert main(["campaign", "fig99"]) == 2


class TestServiceCli:
    def test_serve_parses(self):
        args = build_parser().parse_args(
            ["serve", "--store", "/tmp/s", "--port", "9000",
             "--local-workers", "0", "--no-resume"]
        )
        assert args.command == "serve"
        assert args.store == "/tmp/s" and args.port == 9000
        assert args.local_workers == 0 and args.no_resume

    def test_serve_worker_mode_parses(self):
        args = build_parser().parse_args(
            ["serve", "--worker", "http://head:8752", "--lease-size", "2",
             "--max-idle", "30"]
        )
        assert args.worker == "http://head:8752"
        assert args.lease_size == 2 and args.max_idle == 30.0

    def test_submit_parses_grid_flags(self):
        args = build_parser().parse_args(
            ["submit", "--workload", "compress", "go",
             "--grid", "active_list_size=32,64", "--follow"]
        )
        assert args.spec is None
        assert args.workload == ["compress", "go"]
        assert args.grid == ["active_list_size=32,64"] and args.follow

    def test_submit_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["submit", "--workload", "go", "--machine", "mega"]
            )

    def test_status_and_fetch_parse(self):
        status_args = build_parser().parse_args(["status", "c000001", "--json"])
        assert status_args.campaign == "c000001" and status_args.json
        assert build_parser().parse_args(["status"]).campaign is None
        fetch_args = build_parser().parse_args(
            ["fetch", "c000001.0003", "-o", "out.json"]
        )
        assert fetch_args.id == "c000001.0003" and fetch_args.output == "out.json"

    def test_grid_value_coercion(self):
        from repro.cli import _grid_from_args

        grid = _grid_from_args(
            ["active_list_size=32,64", "x=1.5", "y=true,false", "z=name"]
        )
        assert grid == {"active_list_size": [32, 64], "x": [1.5],
                        "y": [True, False], "z": ["name"]}
        with pytest.raises(SystemExit):
            _grid_from_args(["justafield"])

    def test_submit_without_spec_or_workload(self, capsys):
        assert main(["submit", "--server", "http://127.0.0.1:1"]) == 2

    def test_submit_status_fetch_against_live_server(self, tmp_path, capsys):
        import json

        from repro.service import CampaignServer

        server = CampaignServer(tmp_path / "store", port=0, local_workers=2).start()
        try:
            rc = main([
                "submit", "--server", server.url,
                "--workload", "compress", "go",
                "--grid", "active_list_size=32",
                "--commit-target", "150", "--follow",
            ])
            assert rc == 0
            out = capsys.readouterr().out
            assert "campaign c000001: 2 job(s)" in out
            assert "campaign c000001: done" in out

            assert main(["status", "c000001", "--server", server.url]) == 0
            out = capsys.readouterr().out
            assert "[done] 2/2 jobs" in out

            # Bare `status` dumps server metrics.
            assert main(["status", "--server", server.url]) == 0
            metrics = json.loads(capsys.readouterr().out)
            assert metrics["jobs"]["jobs_done"] == 2

            out_path = tmp_path / "results.json"
            rc = main(["fetch", "c000001", "--server", server.url,
                       "-o", str(out_path)])
            assert rc == 0
            assert "wrote" in capsys.readouterr().out
            documents = json.loads(out_path.read_text())
            assert len(documents) == 2
            assert {d["job_id"] for d in documents} == {
                "c000001.0000", "c000001.0001"
            }

            rc = main(["fetch", "c000001.0001", "--server", server.url])
            assert rc == 0
            (document,) = json.loads(capsys.readouterr().out)
            assert document["spec"]["workload"] == ["go"]
        finally:
            server.stop()

    def test_submit_connection_refused_fails_cleanly(self, capsys):
        rc = main(["submit", "--server", "http://127.0.0.1:1",
                   "--workload", "compress"])
        assert rc == 1


class TestEffectsCli:
    """The SHR front end: ``lint --effects``, ``lint --explain`` and
    ``analyze --ownership``."""

    def test_lint_effects_clean_on_committed_tree(self, monkeypatch, capsys):
        import pathlib

        monkeypatch.chdir(pathlib.Path(__file__).resolve().parent.parent)
        assert main(["lint", "--effects", "--fail-stale"]) == 0, (
            capsys.readouterr().err
        )

    def test_explain_single_rule(self, capsys):
        assert main(["lint", "--explain", "SHR002"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("SHR002:")
        assert "scope:       program" in out
        assert "severity:    blocking" in out
        assert "suppression: # shr-ok: <reason>" in out

    def test_explain_family_prefix(self, capsys):
        assert main(["lint", "--explain", "SHR"]) == 0
        out = capsys.readouterr().out
        for code in ("SHR001", "SHR002", "SHR003", "SHR004", "SHR005"):
            assert f"{code}:" in out
        assert "warn-first (baseline ratchet)" in out

    def test_explain_all(self, capsys):
        assert main(["lint", "--explain", "all"]) == 0
        out = capsys.readouterr().out
        assert "DET001:" in out and "CONC001:" in out and "SHR001:" in out

    def test_explain_unknown_rule_exits_2(self, capsys):
        assert main(["lint", "--explain", "NOPE999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_analyze_ownership_text(self, capsys):
        assert main(["analyze", "--ownership"]) == 0
        out = capsys.readouterr().out
        assert "DecodeStore._programs" in out
        assert "shared-mutable-guarded  [shr-ok]" in out
        assert "WorkloadSuite._cache" in out
        assert "batch-shared-immutable" in out

    def test_analyze_ownership_json(self, capsys):
        import json

        assert main(["analyze", "--ownership", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        store = payload["classes"]["DecodeStore"]
        assert store["_programs"]["classification"] == "shared-mutable-guarded"
        assert store["_programs"]["blessing"] == "shr-ok"
        assert payload["violations"] == []
