"""CLI tests (argument parsing and end-to-end subcommands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses_multi_workload(self):
        args = build_parser().parse_args(
            ["run", "--workload", "gcc", "go", "--features", "SMT"]
        )
        assert args.workload == ["gcc", "go"]
        assert args.features == "SMT"

    def test_run_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "gcc", "--machine", "mega"])

    def test_experiment_parses(self):
        args = build_parser().parse_args(["experiment", "fig3", "--commit-target", "100"])
        assert args.name == "fig3" and args.commit_target == 100

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestEndToEnd:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out and "REC/RS/RU" in out

    def test_run_command(self, capsys):
        rc = main(["run", "--workload", "vortex", "--commit-target", "300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IPC=" in out and "vortex" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_asm_command(self, tmp_path, capsys):
        path = tmp_path / "prog.s"
        path.write_text("main: movi r1, 5\naddi r1, r1, 2\nhalt\n")
        assert main(["asm", str(path), "--run"]) == 0
        out = capsys.readouterr().out
        assert "movi" in out
        assert "r1 = 7" in out


class TestTraceAndProfile:
    def test_trace_command(self, capsys):
        rc = main([
            "trace", "--workload", "compress", "--commit-target", "250",
            "--events", "5", "--pipeview", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "event totals:" in out
        assert "cycles" in out  # pipeview header

    def test_profile_command(self, capsys):
        rc = main(["profile", "--workload", "vortex", "--iters", "300"])
        assert rc == 0
        assert "accuracy" in capsys.readouterr().out

    def test_run_json(self, capsys):
        import json
        rc = main(["run", "--workload", "vortex", "--commit-target", "250", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["committed"] >= 250
