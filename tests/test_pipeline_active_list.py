"""Tests for the ring-buffer active list (trace retention semantics)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.pipeline.active_list import ActiveList
from repro.pipeline.uop import Uop


def mk_uop(pc=0x1000):
    return Uop(Instruction(Op.NOP), pc, ctx=0, instance=None)


class TestBasics:
    def test_append_returns_positions(self):
        al = ActiveList(4)
        assert al.append(mk_uop()) == 0
        assert al.append(mk_uop()) == 1
        assert al.uncommitted == 2

    def test_entry_lookup(self):
        al = ActiveList(4)
        u = mk_uop(0x2000)
        pos = al.append(u)
        assert al.entry(pos) is u

    def test_stale_position_raises(self):
        al = ActiveList(4)
        with pytest.raises(AssertionError):
            al.entry(0)

    def test_commit_advances(self):
        al = ActiveList(4)
        u = mk_uop()
        al.append(u)
        assert al.oldest_uncommitted() is u
        assert al.advance_commit() is u
        assert al.oldest_uncommitted() is None
        assert al.retained == 1  # still retained for recycling


class TestCapacity:
    def test_full_uncommitted_blocks(self):
        al = ActiveList(2)
        al.append(mk_uop())
        al.append(mk_uop())
        assert not al.has_room()

    def test_committed_entries_get_overwritten(self):
        al = ActiveList(2)
        first = al.append(mk_uop(0x1000))
        al.advance_commit()
        al.append(mk_uop(0x1004))
        al.append(mk_uop(0x1008))  # overwrites the committed first entry
        assert al.try_entry(first) is None
        assert al.start_pos == 1

    def test_retained_bounded_by_capacity(self):
        al = ActiveList(4)
        for i in range(10):
            al.append(mk_uop(0x1000 + 4 * i))
            al.advance_commit()
        assert al.retained == 4


class TestTruncate:
    def test_truncate_returns_youngest_first(self):
        al = ActiveList(8)
        uops = [mk_uop(0x1000 + 4 * i) for i in range(4)]
        for u in uops:
            al.append(u)
        dropped = al.truncate(2)
        assert dropped == [uops[3], uops[2]]
        assert al.tail_pos == 2

    def test_truncate_below_commit_asserts(self):
        al = ActiveList(4)
        al.append(mk_uop())
        al.advance_commit()
        with pytest.raises(AssertionError):
            al.truncate(0)

    def test_append_after_truncate(self):
        al = ActiveList(4)
        for i in range(3):
            al.append(mk_uop(0x1000 + 4 * i))
        al.truncate(1)
        pos = al.append(mk_uop(0x2000))
        assert pos == 1
        assert al.entry(pos).pc == 0x2000


class TestSearch:
    def test_find_pc(self):
        al = ActiveList(8)
        for i in range(4):
            al.append(mk_uop(0x1000 + 4 * i))
        assert al.find_pc(0x1008) == 2
        assert al.find_pc(0x9999) is None

    def test_find_pc_oldest_match(self):
        al = ActiveList(8)
        al.append(mk_uop(0x1000))
        al.append(mk_uop(0x1004))
        al.append(mk_uop(0x1000))  # loop iteration
        assert al.find_pc(0x1000) == 0


class TestProperties:
    @given(
        ops=st.lists(
            st.sampled_from(["append", "commit", "truncate"]), min_size=1, max_size=120
        )
    )
    @settings(max_examples=40)
    def test_invariants_hold(self, ops):
        al = ActiveList(8)
        for op in ops:
            if op == "append" and al.has_room():
                al.append(mk_uop())
            elif op == "commit" and al.oldest_uncommitted() is not None:
                al.advance_commit()
            elif op == "truncate" and al.tail_pos > al.commit_pos:
                al.truncate(al.commit_pos + (al.tail_pos - al.commit_pos) // 2)
            assert al.start_pos <= al.commit_pos <= al.tail_pos
            assert al.retained <= al.capacity
            assert al.uncommitted <= al.capacity
