"""Executor and service-worker integration of lockstep batching.

The orchestration contract: ``batch_size`` changes *how* attempts are
scheduled (one process per compatible slice instead of one per job),
never *what* comes out — outcomes are per job, bit-identical to the
unbatched engine modulo decoded-uop-cache counters, with cache and
journal artifacts still written one per point so dedup and resume are
unchanged.
"""

import os

import pytest

from repro.exec.jobs import (
    Chaos,
    Job,
    execute_payload_batch,
    job_to_payload,
    stats_to_payload,
)
from repro.exec.pool import Executor
from repro.service.worker import execute_task_batch
from repro.sim.runner import RunSpec
from repro.workloads.suite import WorkloadSuite

UOP_CACHE_FIELDS = frozenset(
    {
        "uop_cache_hits",
        "uop_cache_misses",
        "uop_cache_evictions",
        "decode_counts",
        "uop_cache_hits_by_class",
    }
)

SPECS = [
    RunSpec(workload=(kernel,), features=features, commit_target=400)
    for kernel in ("compress", "li")
    for features in ("TME", "REC/RS/RU")
]


def comparable(outcome) -> dict:
    return {
        name: value
        for name, value in stats_to_payload(outcome.result.stats).items()
        if name not in UOP_CACHE_FIELDS
    }


@pytest.fixture(scope="module")
def suite():
    return WorkloadSuite()


@pytest.fixture(scope="module")
def jobs():
    return [Job(spec=spec) for spec in SPECS]


@pytest.fixture(scope="module")
def reference(jobs, suite):
    outcomes = Executor(jobs=1).run(jobs, suite=suite)
    return [comparable(outcome) for outcome in outcomes]


class TestSerialBatched:
    @pytest.mark.parametrize("batch_size", [2, 4])
    def test_outcomes_identical_to_unbatched(self, jobs, suite, reference, batch_size):
        outcomes = Executor(jobs=1, batch_size=batch_size).run(jobs, suite=suite)
        assert all(outcome.ok for outcome in outcomes)
        assert [comparable(o) for o in outcomes] == reference

    def test_chaos_singleton_retries(self, jobs, suite):
        chaotic = [Job(spec=SPECS[0], chaos=Chaos(fail_first_attempts=1))] + jobs[:2]
        outcomes = Executor(jobs=1, batch_size=4, retries=2).run(chaotic, suite=suite)
        assert all(outcome.ok for outcome in outcomes)
        assert outcomes[0].attempts == 2  # failed once, then succeeded solo


class TestParallelBatched:
    def test_outcomes_identical_to_unbatched(self, jobs, suite, reference):
        outcomes = Executor(jobs=2, batch_size=2).run(jobs, suite=suite)
        assert all(outcome.ok for outcome in outcomes)
        assert [comparable(o) for o in outcomes] == reference

    def test_per_point_cache_and_journal_artifacts(self, jobs, suite, reference, tmp_path):
        cache_dir = os.fspath(tmp_path / "cache")
        journal = os.fspath(tmp_path / "journal.jsonl")
        first = Executor(jobs=2, batch_size=4, cache=cache_dir, journal=journal)
        outcomes = first.run(jobs, suite=suite)
        assert all(outcome.ok and not outcome.cached for outcome in outcomes)
        # A fresh executor over the same cache resolves every point
        # individually — one artifact per point, not per batch.
        second = Executor(jobs=2, batch_size=4, cache=cache_dir)
        cached = second.run(jobs, suite=suite)
        assert all(outcome.cached for outcome in cached)
        assert [comparable(o) for o in cached] == reference
        # And the journal alone resumes the batch point-by-point.
        third = Executor(jobs=1, batch_size=4, journal=journal)
        resumed = third.run(jobs, suite=suite)
        assert all(outcome.cached for outcome in resumed)

    def test_crashed_batch_degrades_to_singleton_retries(self, jobs, suite):
        chaotic = [Job(spec=SPECS[0], chaos=Chaos(exit_first_attempts=1))] + jobs[:3]
        outcomes = Executor(jobs=2, batch_size=4, retries=1).run(chaotic, suite=suite)
        assert all(outcome.ok for outcome in outcomes)

    def test_mixed_machines_split_across_batches(self, suite):
        mixed = [
            Job(spec=RunSpec(workload=("compress",), machine=machine,
                             commit_target=200))
            for machine in ("big.2.16", "small.2.8", "big.2.16", "small.2.8")
        ]
        outcomes = Executor(jobs=2, batch_size=4).run(mixed, suite=suite)
        assert all(outcome.ok for outcome in outcomes)
        for job, outcome in zip(mixed, outcomes):
            assert outcome.job is job


class TestWorkerBatchExecution:
    def _task(self, spec, key, suite_args=(12, False)):
        return {
            "key": key,
            "payload": job_to_payload(Job(spec=spec)),
            "suite": list(suite_args),
        }

    def test_execute_payload_batch_shapes(self, suite):
        payloads = [job_to_payload(Job(spec=spec)) for spec in SPECS[:2]]
        results = execute_payload_batch(payloads, (suite.iters, suite.extended))
        assert [status for status, _ in results] == ["ok", "ok"]
        for (_, body), spec in zip(results, SPECS[:2]):
            assert body["spec"]["features"] == spec.features

    def test_execute_task_batch_groups_and_reports_per_key(self):
        tasks = [
            self._task(RunSpec(workload=("compress",), commit_target=200), "t1"),
            self._task(RunSpec(workload=("li",), commit_target=200), "t2"),
            self._task(
                RunSpec(workload=("compress",), machine="small.2.8",
                        commit_target=200),
                "t3",
            ),
        ]
        results = execute_task_batch(tasks)
        assert set(results) == {"t1", "t2", "t3"}
        for key in ("t1", "t2", "t3"):
            status, body = results[key]
            assert status == "ok", body
            assert "stats" in body
