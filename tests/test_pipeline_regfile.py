"""Tests for the reference-counted physical register file."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pipeline.regfile import OutOfRegistersError, PhysicalRegisterFile


class TestAllocation:
    def test_alloc_starts_not_ready_refcount_one(self):
        rf = PhysicalRegisterFile(8, 8)
        reg = rf.alloc(fp=False)
        assert rf.refcount[reg] == 1
        assert not rf.is_ready(reg, cycle=10)

    def test_pools_are_separate(self):
        rf = PhysicalRegisterFile(4, 4)
        ints = [rf.alloc(fp=False) for _ in range(4)]
        assert all(r < 4 for r in ints)
        with pytest.raises(OutOfRegistersError):
            rf.alloc(fp=False)
        assert rf.can_alloc(fp=True)

    def test_alloc_ready_holds_value(self):
        rf = PhysicalRegisterFile(8, 8)
        reg = rf.alloc_ready(fp=True, value=2.5)
        assert rf.is_ready(reg, cycle=0)
        assert rf.read(reg) == 2.5

    def test_free_count(self):
        rf = PhysicalRegisterFile(8, 8)
        rf.alloc(fp=False)
        assert rf.free_count(False) == 7
        assert rf.free_count(True) == 8


class TestRefcounting:
    def test_decref_to_zero_frees(self):
        rf = PhysicalRegisterFile(2, 0)
        a = rf.alloc(fp=False)
        b = rf.alloc(fp=False)
        assert not rf.can_alloc(fp=False)
        rf.decref(a)
        assert rf.can_alloc(fp=False)
        c = rf.alloc(fp=False)
        assert c == a  # recycled
        rf.decref(b)
        rf.decref(c)

    def test_incref_prevents_free(self):
        rf = PhysicalRegisterFile(2, 0)
        a = rf.alloc(fp=False)
        rf.incref(a)
        rf.decref(a)
        assert rf.refcount[a] == 1
        rf.decref(a)
        assert rf.refcount[a] == 0

    def test_decref_dead_register_asserts(self):
        rf = PhysicalRegisterFile(2, 0)
        a = rf.alloc(fp=False)
        rf.decref(a)
        with pytest.raises(AssertionError):
            rf.decref(a)

    def test_incref_dead_register_asserts(self):
        rf = PhysicalRegisterFile(2, 0)
        a = rf.alloc(fp=False)
        rf.decref(a)
        with pytest.raises(AssertionError):
            rf.incref(a)

    def test_consistency_check(self):
        rf = PhysicalRegisterFile(4, 4)
        a = rf.alloc(fp=False)
        rf.alloc(fp=True)
        rf.decref(a)
        rf.check_consistency()

    @given(ops=st.lists(st.integers(0, 2), min_size=1, max_size=200))
    @settings(max_examples=40)
    def test_random_ops_keep_invariants(self, ops):
        rf = PhysicalRegisterFile(8, 8)
        live = []
        for op in ops:
            if op == 0 and rf.can_alloc(False):
                live.append(rf.alloc(False))
            elif op == 1 and live:
                rf.incref(live[0])
                live.append(live[0])
            elif op == 2 and live:
                rf.decref(live.pop())
        rf.check_consistency()
        # Live references match refcounts.
        from collections import Counter
        counts = Counter(live)
        for reg, n in counts.items():
            assert rf.refcount[reg] == n


class _RefModel:
    """Reference refcount model: plain dicts, no free-list machinery.

    Mirrors the rename-path lifecycle the real register file serves —
    alloc (map entry), fork (incref every mapped register), discard
    (decref every mapped register), commit (release the displaced
    ``prev_map`` reference) — with the dumbest possible bookkeeping, so
    any divergence is a bug in the SoA structure, not the model.
    """

    def __init__(self, total):
        self.counts = {reg: 0 for reg in range(total)}

    def alloc(self, reg):
        assert self.counts[reg] == 0
        self.counts[reg] = 1

    def incref(self, reg):
        self.counts[reg] += 1

    def decref(self, reg):
        self.counts[reg] -= 1
        assert self.counts[reg] >= 0


class TestObservationalEquivalence:
    """SoA regfile vs the reference model under random map lifecycles."""

    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 7)),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=60)
    def test_random_map_lifecycles_match_reference(self, ops):
        rf = PhysicalRegisterFile(12, 4)
        model = _RefModel(16)
        maps = [[]]  # start with one (empty) architectural map
        for op, arg in ops:
            if op == 0:  # rename: allocate a destination into a map
                fp = bool(arg & 1)
                if rf.can_alloc(fp):
                    reg = rf.alloc(fp)
                    model.alloc(reg)
                    maps[arg % len(maps)].append(reg)
            elif op == 1 and len(maps) < 6:  # fork: duplicate a map
                src = maps[arg % len(maps)]
                rf.incref_all(src)
                for reg in src:
                    model.incref(reg)
                maps.append(list(src))
            elif op == 2 and len(maps) > 1:  # reclaim: discard a map
                victim = maps.pop(arg % len(maps))
                rf.decref_all(victim)
                for reg in victim:
                    model.decref(reg)
            elif op == 3:  # commit: displace a map entry (prev_map free)
                m = maps[arg % len(maps)]
                if m:
                    prev = m.pop(arg % (len(m) or 1))
                    rf.decref(prev)
                    model.decref(prev)
        # Observational equivalence: identical per-register refcounts,
        # identical free capacity, and the structural invariants hold.
        rf.check_consistency()
        for reg in range(16):
            assert rf.refcount[reg] == model.counts[reg], f"p{reg} diverged"
        dead_int = sum(
            1 for reg in range(12) if model.counts[reg] == 0
        )
        dead_fp = sum(
            1 for reg in range(12, 16) if model.counts[reg] == 0
        )
        assert rf.free_count(False) == dead_int
        assert rf.free_count(True) == dead_fp
        assert rf.live_count() == sum(1 for c in model.counts.values() if c)


class TestValues:
    def test_write_sets_ready(self):
        rf = PhysicalRegisterFile(4, 4)
        reg = rf.alloc(fp=False)
        rf.write(reg, 42)
        assert rf.is_ready(reg, cycle=0) and rf.read(reg) == 42

    def test_write_with_future_ready_cycle(self):
        rf = PhysicalRegisterFile(4, 4)
        reg = rf.alloc(fp=False)
        rf.write(reg, 42, ready_at=7)
        assert not rf.is_ready(reg, cycle=6)
        assert rf.is_ready(reg, cycle=7)

    def test_read_not_ready_asserts(self):
        rf = PhysicalRegisterFile(4, 4)
        reg = rf.alloc(fp=False)
        with pytest.raises(AssertionError):
            rf.read(reg)

    def test_is_fp(self):
        rf = PhysicalRegisterFile(4, 4)
        assert not rf.is_fp(rf.alloc(fp=False))
        assert rf.is_fp(rf.alloc(fp=True))
