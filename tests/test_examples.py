"""Smoke tests: every example script must run end to end.

Each example is executed in-process (runpy) with small arguments so
the whole set stays fast; output is captured and sanity-checked so a
broken example cannot rot silently.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(capsys, monkeypatch, name, argv=()):
    monkeypatch.setattr(sys, "argv", [name] + list(argv))
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "quickstart.py", ["vortex", "400"])
        assert "variant" in out and "best variant" in out

    def test_multiprogram_throughput(self, capsys, monkeypatch):
        out = run_example(
            capsys, monkeypatch, "multiprogram_throughput.py", ["2", "400"]
        )
        assert "programs" in out and "TME gain" in out

    def test_custom_program(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "custom_program.py")
        assert "emulator:" in out and "REC/RS/RU" in out

    def test_fetch_policies(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "fetch_policies.py", ["compress", "400"])
        assert "stop-8" in out and "best=" in out

    def test_branch_entropy_sweep(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "branch_entropy_sweep.py", ["40"])
        assert "entropy" in out and "multipath gain" in out

    def test_pipeline_trace(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "pipeline_trace.py", ["compress"])
        assert "event log" in out and "pipeline view" in out

    def test_workload_characterization(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "workload_characterization.py")
        assert "hardest branches" in out
        assert "tomcatv" in out

    def test_design_space_sweep(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "design_space_sweep.py")
        assert "active_list" in out and "CSV" in out

    def test_every_example_has_a_test(self):
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        tested = {
            "quickstart.py",
            "multiprogram_throughput.py",
            "custom_program.py",
            "fetch_policies.py",
            "branch_entropy_sweep.py",
            "pipeline_trace.py",
            "workload_characterization.py",
            "design_space_sweep.py",
        }
        assert scripts == tested, f"untested examples: {scripts - tested}"
