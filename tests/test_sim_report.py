"""Tests for the markdown report generator and its CLI hook."""

import pytest

from repro.cli import main
from repro.sim import ReportConfig, generate_report
from repro.workloads import WorkloadSuite

SUITE = WorkloadSuite()


class TestReportConfig:
    def test_defaults_cover_paper(self):
        cfg = ReportConfig()
        assert set(cfg.sections) == {"fig3", "fig4", "fig5", "fig6", "table1"}

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError):
            ReportConfig(sections=("fig3", "fig99"))


class TestGenerateReport:
    def test_fig3_section(self):
        text = generate_report(
            ReportConfig(commit_target=250, num_mixes=1, sections=("fig3",)), SUITE
        )
        assert "# Instruction Recycling — measured results" in text
        assert "## Figure 3" in text
        assert "compress" in text
        assert "| program |" in text

    def test_fig4_section_includes_gains(self):
        text = generate_report(
            ReportConfig(commit_target=250, num_mixes=1, sections=("fig4",)), SUITE
        )
        assert "## Figure 4" in text
        assert "vs TME" in text

    def test_table1_section(self):
        text = generate_report(
            ReportConfig(commit_target=250, num_mixes=1, sections=("table1",)), SUITE
        )
        assert "## Table 1" in text
        assert "%Recyc" in text

    def test_markdown_table_well_formed(self):
        text = generate_report(
            ReportConfig(commit_target=250, num_mixes=1, sections=("fig3",)), SUITE
        )
        table_lines = [l for l in text.splitlines() if l.startswith("|")]
        widths = {l.count("|") for l in table_lines}
        assert len(widths) == 1  # every row has the same column count


class TestReportCli:
    def test_report_to_stdout(self, capsys):
        rc = main(["report", "--commit-target", "250", "--num-mixes", "1",
                   "--sections", "fig3"])
        assert rc == 0
        assert "## Figure 3" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        rc = main(["report", "--commit-target", "250", "--num-mixes", "1",
                   "--sections", "fig3", "-o", str(out)])
        assert rc == 0
        assert "## Figure 3" in out.read_text()
