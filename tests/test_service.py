"""End-to-end campaign service: dedupe, crash resume, workers, HTTP API.

These tests run real simulations (tiny ``commit_target``) through real
HTTP on loopback — the full ``submit → lease → execute → fetch`` path.
"""

import multiprocessing
import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.service import (
    ArtifactStore,
    CampaignServer,
    ServiceClient,
    ServiceError,
    run_worker,
    sweep_spec,
)
from repro.sim.sweep import Sweep

#: Tiny commit target: each simulation lands in tens of milliseconds.
CT = 150


def grid_spec(alist_values, label=""):
    return sweep_spec(
        ["compress", "go"],
        grid={"active_list_size": list(alist_values)},
        commit_target=CT,
        label=label,
    )


@pytest.fixture
def server(tmp_path):
    srv = CampaignServer(tmp_path / "store", port=0, local_workers=2).start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=60.0)


@pytest.fixture
def idle_server(tmp_path):
    """A head with no local workers: queued work stays queued."""
    srv = CampaignServer(tmp_path / "store", port=0, local_workers=0).start()
    yield srv
    srv.stop()


class TestEndToEnd:
    def test_submit_runs_to_completion(self, client):
        submitted = client.submit(grid_spec([32], label="smoke"))
        assert submitted["id"] == "c000001"
        assert [job["id"] for job in submitted["jobs"]] == [
            "c000001.0000", "c000001.0001"
        ]
        status = client.wait(submitted["id"], timeout=60.0)
        assert status["state"] == "done"
        assert status["job_states"] == {"done": 2}
        assert all(job["resolution"] == "run" for job in status["jobs"])
        results = client.fetch_results(submitted["id"])
        assert len(results) == 2
        for document in results:
            assert document["ipc"] > 0
            assert document["stats"]["cycles"] > 0

    def test_results_bit_identical_to_serial_sweep(self, client):
        grid = {"active_list_size": [32, 64]}
        submitted = client.submit(grid_spec(grid["active_list_size"]))
        client.wait(submitted["id"], timeout=120.0)
        documents = client.fetch_results(submitted["id"])
        rows = Sweep(
            workloads=[("compress",), ("go",)], grid=grid, commit_target=CT
        ).run()
        assert len(documents) == len(rows) == 4
        for document, row in zip(documents, rows):
            assert tuple(document["spec"]["workload"]) == row.workload
            assert document["overrides"] == row.params
            assert document["ipc"] == row.ipc  # bit-identical, not approx
            assert document["stats"]["cycles"] == row.cycles
            recycled = document["stats"]["recycled"]
            assert recycled["pct_recycled"] == row.pct_recycled
            assert recycled["pct_reused"] == row.pct_reused

    def test_resubmission_is_pure_store_hits(self, client):
        first = client.submit(grid_spec([32, 64]))
        client.wait(first["id"], timeout=120.0)
        executed = client.metrics()["jobs"]["tasks_executed"]
        second = client.submit(grid_spec([32, 64]))
        status = client.wait(second["id"], timeout=30.0)
        assert status["state"] == "done"
        assert all(job["resolution"] == "store" for job in status["jobs"])
        metrics = client.metrics()
        assert metrics["jobs"]["tasks_executed"] == executed  # nothing re-ran
        assert metrics["jobs"]["jobs_from_store"] == 4
        assert metrics["cache_hit_rate"] == pytest.approx(0.5)
        # And the warm campaign's results are byte-for-byte the originals.
        assert client.fetch_results(second["id"]) == [
            {**doc, "job_id": doc["job_id"].replace(first["id"], second["id"]),
             "campaign_id": second["id"], "resolution": "store"}
            for doc in client.fetch_results(first["id"])
        ]


class TestConcurrentClientsDedupe:
    """Acceptance: two clients, overlapping grids, every point exactly once."""

    def test_overlapping_grids_execute_each_point_once(self, server):
        # A covers {32, 48}, B covers {48, 64}: 3 unique points x 2
        # workloads = 6 unique tasks for 8 submitted jobs.
        specs = {"A": grid_spec([32, 48], "A"), "B": grid_spec([48, 64], "B")}
        statuses = {}

        def submit_and_wait(name):
            own_client = ServiceClient(server.url, timeout=60.0)
            submitted = own_client.submit(specs[name])
            statuses[name] = own_client.wait(submitted["id"], timeout=120.0)

        threads = [
            threading.Thread(target=submit_and_wait, args=(name,))
            for name in sorted(specs)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert statuses["A"]["state"] == statuses["B"]["state"] == "done"
        metrics = ServiceClient(server.url).metrics()
        assert metrics["jobs"]["tasks_executed"] == 6, (
            "every unique grid point must be simulated exactly once"
        )
        assert metrics["jobs"]["jobs_done"] == 8
        jobs = metrics["jobs"]
        assert (
            jobs["jobs_run"] + jobs["jobs_from_store"] + jobs["jobs_deduped"] == 8
        )

        # The shared points produced identical payloads for both clients.
        by_key = {}
        own_client = ServiceClient(server.url)
        for status in statuses.values():
            for job in status["jobs"]:
                document = own_client.result(job["id"])
                scrubbed = {
                    k: v for k, v in document.items()
                    if k not in ("job_id", "campaign_id", "resolution")
                }
                assert by_key.setdefault(job["key"], scrubbed) == scrubbed


def _serve_forever(root, url_file):
    server = CampaignServer(root, port=0, local_workers=1).start()
    Path(url_file).write_text(server.url)
    signal.pause()


class TestKillResume:
    """Acceptance: SIGKILL the server mid-campaign; a restart resumes from
    the journal without re-running completed jobs."""

    def test_restart_resumes_without_rerunning(self, tmp_path):
        root = tmp_path / "store"
        url_file = tmp_path / "url"
        process = multiprocessing.get_context("fork").Process(
            target=_serve_forever, args=(str(root), str(url_file)), daemon=True
        )
        process.start()
        deadline = time.monotonic() + 30.0
        while not url_file.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        client = ServiceClient(url_file.read_text().strip(), timeout=30.0)

        # 8 slower jobs on a single worker: a wide window to kill inside.
        spec = sweep_spec(
            ["compress", "go"],
            grid={"active_list_size": [16, 24, 32, 48]},
            commit_target=800,
            label="doomed",
        )
        campaign_id = client.submit(spec)["id"]
        while True:
            done = client.metrics()["jobs"]["jobs_done"]
            if done >= 2:
                break
            time.sleep(0.005)
        os.kill(process.pid, signal.SIGKILL)
        process.join(timeout=10.0)

        # Clean startup: compaction runs, the journal tells us exactly
        # which jobs the dead server had finished.
        store = ArtifactStore(root)
        completed = len(store.journaled_keys())
        assert 0 < completed < 8, "kill must land mid-campaign"

        restarted = CampaignServer(store, port=0, local_workers=2).start()
        try:
            assert campaign_id in restarted.resumed
            fresh = ServiceClient(restarted.url, timeout=60.0)
            status = fresh.wait(campaign_id, timeout=120.0)
            assert status["state"] == "done"
            resolutions = [job["resolution"] for job in status["jobs"]]
            assert resolutions.count("store") == completed
            metrics = fresh.metrics()
            assert metrics["jobs"]["jobs_from_store"] == completed
            assert metrics["jobs"]["tasks_executed"] == 8 - completed, (
                "journaled jobs must not re-run after restart"
            )
            assert len(fresh.fetch_results(campaign_id)) == 8
        finally:
            restarted.stop()


class TestRemoteWorker:
    def test_worker_mode_drains_the_head(self, idle_server):
        client = ServiceClient(idle_server.url, timeout=60.0)
        campaign_id = client.submit(grid_spec([32, 64]))["id"]
        assert client.metrics()["queue_depth"] == 4
        assert client.status(campaign_id)["state"] == "running"

        executed = []
        thread = threading.Thread(
            target=lambda: executed.append(
                run_worker(idle_server.url, "w0", lease_size=2,
                           poll=0.05, max_idle=1.0)
            )
        )
        thread.start()
        status = client.wait(campaign_id, timeout=120.0)
        thread.join(timeout=30.0)
        assert status["state"] == "done"
        assert executed == [4]
        metrics = client.metrics()
        assert metrics["queue_depth"] == 0
        assert metrics["jobs"]["leases_granted"] >= 2
        assert all(job["resolution"] == "run"
                   for job in status["jobs"])

    def test_worker_failure_reports_and_retries_exhaust(self, idle_server):
        client = ServiceClient(idle_server.url, timeout=30.0)
        campaign_id = client.submit({
            "kind": "jobs",
            "jobs": [{"workload": ["no_such_kernel"]}],
        })["id"]
        stop = threading.Event()
        thread = threading.Thread(
            target=run_worker,
            args=(idle_server.url, "w0"),
            kwargs={"poll": 0.05, "max_idle": 2.0, "stop": stop},
        )
        thread.start()
        try:
            status = client.wait(campaign_id, timeout=60.0)
        finally:
            stop.set()
            thread.join(timeout=30.0)
        assert status["state"] == "failed"
        job = status["jobs"][0]
        assert job["state"] == "failed"
        assert "no_such_kernel" in job["error"]
        metrics = client.metrics()["jobs"]
        assert metrics["jobs_failed"] == 1
        assert metrics["task_attempts"] == 3  # default max_attempts


class TestHttpApi:
    def test_healthz(self, client):
        from repro import __version__

        assert client.healthz() == {"ok": True, "version": __version__}

    def test_bad_spec_is_400_with_message(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"kind": "sweep", "workloads": [["compress"]],
                           "grid": {"no_such_knob": [1]}})
        assert excinfo.value.status == 400
        assert "no_such_knob" in str(excinfo.value)

    def test_unknown_ids_are_404(self, client):
        for call in (
            lambda: client.status("c999999"),
            lambda: client.cancel("c999999"),
            lambda: client.result("c999999.0000"),
        ):
            with pytest.raises(ServiceError) as excinfo:
                call()
            assert excinfo.value.status == 404

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/campaigns/c000001/teapot")
        assert excinfo.value.status == 404

    def test_pending_result_is_409(self, idle_server):
        client = ServiceClient(idle_server.url)
        submitted = client.submit(grid_spec([32]))
        with pytest.raises(ServiceError) as excinfo:
            client.result(submitted["jobs"][0]["id"])
        assert excinfo.value.status == 409

    def test_failed_result_is_410(self, client):
        submitted = client.submit({
            "kind": "jobs",
            "jobs": [{"workload": ["no_such_kernel"]}],
        })
        client.wait(submitted["id"], timeout=60.0)
        with pytest.raises(ServiceError) as excinfo:
            client.result(submitted["jobs"][0]["id"])
        assert excinfo.value.status == 410
        assert "no_such_kernel" in str(excinfo.value)

    def test_cancel_drains_the_queue(self, idle_server):
        client = ServiceClient(idle_server.url)
        campaign_id = client.submit(grid_spec([32, 64]))["id"]
        assert client.metrics()["queue_depth"] == 4
        status = client.cancel(campaign_id)
        assert status["state"] == "cancelled"
        assert status["job_states"] == {"cancelled": 4}
        assert client.metrics()["queue_depth"] == 0
        # Idempotent; and a cancelled job has no result to serve.
        assert client.cancel(campaign_id)["state"] == "cancelled"
        with pytest.raises(ServiceError) as excinfo:
            client.result(f"{campaign_id}.0000")
        assert excinfo.value.status == 409


class TestEventStream:
    def test_stream_ends_with_terminal_campaign_event(self, client):
        campaign_id = client.submit(grid_spec([32]))["id"]
        events = list(client.events(campaign_id))  # live-follows until done
        job_events = [e for e in events if e["type"] == "job"]
        assert len(job_events) == 2
        assert all(e["state"] == "done" for e in job_events)
        assert {e["job_id"] for e in job_events} == {
            f"{campaign_id}.0000", f"{campaign_id}.0001"
        }
        assert events[-1]["type"] == "campaign"
        assert events[-1]["state"] == "done"
        assert events[-1]["wall_seconds"] > 0

    def test_replay_after_completion_is_complete(self, client):
        campaign_id = client.submit(grid_spec([32]))["id"]
        client.wait(campaign_id, timeout=60.0)
        replay = list(client.events(campaign_id))
        assert [e["type"] for e in replay] == ["job", "job", "campaign"]
        # Progress counters ride every job event (the CLI renders these).
        assert replay[1]["done"] == 2 and replay[1]["total"] == 2

    def test_events_for_unknown_campaign_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            list(client.events("c999999"))
        assert excinfo.value.status == 404
