"""Tests for offline branch profiling."""

from repro.branch.analysis import profile_branches, profile_suite
from repro.isa import assemble
from repro.workloads import WorkloadSuite


class TestProfileBranches:
    def test_counted_loop_highly_predictable(self):
        prog = assemble(
            """
            main: movi r2, 500
            loop: addi r1, r1, 1
                  subi r2, r2, 1
                  bgt  r2, loop
                  halt
            """,
            name="loop",
        )
        profile = profile_branches(prog)
        assert profile.dynamic_branches == 500
        assert profile.accuracy > 0.95
        assert profile.taken_rate > 0.95
        assert len(profile.static_sites) == 1

    def test_random_branch_unpredictable(self):
        prog = assemble(
            """
            main: movi r1, 999
                  movi r2, 600
            loop: slli r3, r1, 13
                  xor  r1, r1, r3
                  srli r3, r1, 7
                  xor  r1, r1, r3
                  andi r4, r1, 1
                  beq  r4, skip
                  addi r5, r5, 1
            skip: subi r2, r2, 1
                  bgt  r2, loop
                  halt
            """,
            name="rng",
        )
        profile = profile_branches(prog)
        # The data-dependent beq drags accuracy well below the loop branch.
        assert profile.accuracy < 0.9
        assert profile.low_confidence_rate > 0.1
        assert 0.0 <= profile.fork_coverage_bound <= 1.0

    def test_instruction_budget_respected(self):
        prog = assemble("main: movi r2, 100000\nloop: subi r2, r2, 1\nbgt r2, loop\nhalt")
        profile = profile_branches(prog, max_instructions=500)
        assert profile.instructions == 500

    def test_no_branches_program(self):
        profile = profile_branches(assemble("main: movi r1, 1\nhalt"))
        assert profile.dynamic_branches == 0
        assert profile.accuracy == 1.0
        assert profile.taken_rate == 0.0
        assert profile.branch_density == 0.0

    def test_summary_text(self):
        profile = profile_branches(assemble("main: halt", name="tiny"))
        assert "tiny" in profile.summary()


class TestProfileSuite:
    def test_profiles_all_kernels(self):
        suite = WorkloadSuite(iters=300)
        profiles = profile_suite(suite, max_instructions=6000)
        assert set(profiles) == set(suite.names)

    def test_suite_profile_matches_paper_character(self):
        suite = WorkloadSuite(iters=2000)
        profiles = profile_suite(suite, max_instructions=10000)
        # go is among the hardest, vortex among the easiest.
        assert profiles["go"].accuracy < profiles["vortex"].accuracy
        # tomcatv's branches are counted loops: very high accuracy.
        assert profiles["tomcatv"].accuracy > 0.9
