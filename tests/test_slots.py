"""Allocation-shape tests: hot-path objects carry no ``__dict__``.

The scheduler rework made object allocation itself a measurable cost:
events, trace entries and per-fetch records are created tens of
thousands of times per run.  All of them are declared through
``repro.compat.slots_dataclass``, which applies ``dataclass(slots=True)``
on Python >= 3.10 (on 3.9 they degrade to ordinary dataclasses, so the
slot assertions are version-gated).  ``Uop`` declares ``__slots__``
manually and is checked unconditionally.
"""

import sys

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.pipeline import Core
from repro.pipeline.context import FetchedInstr, MergePoint
from repro.pipeline.events import ALL_EVENT_TYPES, Event
from repro.pipeline.uop import Uop
from repro.recycle.stream import RecycleStream, StreamKind, TraceEntry
from repro.sim.runner import RunSpec
from repro.workloads.suite import WorkloadSuite

SLOTTED = sys.version_info >= (3, 10)
needs_slots = pytest.mark.skipif(
    not SLOTTED, reason="dataclass(slots=True) needs Python 3.10+"
)


def _nop():
    return Instruction(Op.NOP)


@needs_slots
class TestSlotsDataclasses:
    def test_trace_entry_has_no_dict(self):
        entry = TraceEntry(_nop(), 0x1000, 0x1004, src_pos=0)
        assert not hasattr(entry, "__dict__")
        with pytest.raises(AttributeError):
            entry.bogus = 1

    def test_recycle_stream_has_no_dict(self):
        stream = RecycleStream(
            kind=StreamKind.BACK,
            dst_ctx=0,
            src_ctx=0,
            entries=[TraceEntry(_nop(), 0x1000, 0x1004, src_pos=0)],
            reuse_allowed=False,
        )
        assert not hasattr(stream, "__dict__")

    def test_fetched_instr_and_merge_point_have_no_dict(self):
        fi = FetchedInstr(_nop(), 0x1000, 0x1004, None, 0)
        mp = MergePoint(0x1000, 0)
        assert not hasattr(fi, "__dict__")
        assert not hasattr(mp, "__dict__")

    def test_every_published_event_has_no_dict(self):
        """Real events from full-feature runs are all slot-only.

        No single kernel publishes the whole catalogue (compress never
        store-forwards at this target), so the coverage is the union
        over two kernels.
        """
        captured = {}
        for kernel in ("compress", "li"):
            spec = RunSpec(workload=(kernel,), features="REC/RS/RU", commit_target=800)
            core = Core(spec.build_config())
            core.load(WorkloadSuite().mix(spec.workload), commit_target=800)
            unsubscribers = core.bus.subscribe_many({
                etype: (lambda ev, etype=etype: captured.setdefault(etype, ev))
                for etype in ALL_EVENT_TYPES
            })
            core.run(max_cycles=spec.max_cycles)
            for unsubscribe in unsubscribers:
                unsubscribe()
        assert set(captured) == set(ALL_EVENT_TYPES)
        for etype, ev in captured.items():
            assert not hasattr(ev, "__dict__"), f"{etype.__name__} grew a __dict__"


class TestUopSlots:
    def test_uop_has_no_dict(self):
        uop = Uop(_nop(), 0x1000, 0, None)
        assert not hasattr(uop, "__dict__")
        with pytest.raises(AttributeError):
            uop.bogus = 1


class TestConstructionCounterSurvivesSlots:
    def test_event_constructed_counter_still_counts(self):
        """``Event.constructed`` is a class attribute, not a slot — the
        slots conversion must not have broken the bookkeeping hook."""
        before = Event.constructed
        Event(0)
        assert Event.constructed == before + 1

    def test_non_events_do_not_touch_the_counter(self):
        before = Event.constructed
        TraceEntry(_nop(), 0x1000, 0x1004, src_pos=0)
        FetchedInstr(_nop(), 0x1000, 0x1004, None, 0)
        assert Event.constructed == before
