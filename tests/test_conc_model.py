"""Unit tests for the static concurrency model: lock discovery, lock
dataflow, guard inference, entry contexts, lock-order graph."""

import textwrap

import pytest

from repro.analysis.conc import ConcProgram
from repro.analysis.conc.guards import infer_guards
from repro.analysis.conc.model import build_module

import ast


def module(source: str, path: str = "m.py"):
    return build_module(path, ast.parse(textwrap.dedent(source)))


def program(*sources):
    return ConcProgram.from_sources(
        [(f"m{i}.py", textwrap.dedent(src)) for i, src in enumerate(sources)]
    )


# ----------------------------------------------------------------------
# Lock discovery
# ----------------------------------------------------------------------
class TestLockDiscovery:
    def test_threading_lock_kinds(self):
        m = module(
            """
            import threading
            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._r = threading.RLock()
                    self.flock = FileLock("x")
            """
        )
        cls = m.classes["S"]
        assert cls.locks["_lock"].kind == "memory"
        assert cls.locks["_r"].kind == "memory"
        assert cls.locks["flock"].kind == "file"
        assert cls.memory_locks == frozenset({"_lock", "_r"})

    def test_condition_aliases_wrapped_lock(self):
        m = module(
            """
            import threading
            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cv = threading.Condition(self._lock)
            """
        )
        cls = m.classes["S"]
        assert cls.locks["_cv"].alias_of == "_lock"
        assert cls.memory_locks == frozenset({"_lock"})

    def test_conc_wrap_is_transparent(self):
        m = module(
            """
            import threading
            class S:
                def __init__(self):
                    self._lock = conc_wrap(threading.Lock(), "S._lock")
            """
        )
        assert m.classes["S"].locks["_lock"].kind == "memory"

    def test_module_level_lock(self):
        m = module(
            """
            import threading
            _GLOBAL = threading.Lock()
            """
        )
        assert m.module_locks["_GLOBAL"].kind == "memory"


# ----------------------------------------------------------------------
# Lock-context dataflow
# ----------------------------------------------------------------------
class TestLockflow:
    def test_with_block_and_cv_alias(self):
        m = module(
            """
            import threading
            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cv = threading.Condition(self._lock)
                    self.items = []
                def a(self):
                    with self._lock:
                        self.items.append(1)
                def b(self):
                    with self._cv:
                        self.items.append(2)
                def c(self):
                    self.items.append(3)
            """
        )
        cls = m.classes["S"]
        held = {
            f.name: [sorted(a.held) for a in facts.accesses]
            for f, facts in ((cls.method_asts[n], cls.methods[n])
                             for n in ("a", "b", "c"))
        }
        assert held["a"] == [["_lock"]]
        assert held["b"] == [["_lock"]]  # CV resolves to the root lock
        assert held["c"] == [[]]

    def test_if_branches_meet_by_intersection(self):
        m = module(
            """
            import threading
            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []
                def f(self, flag):
                    if flag:
                        self._lock.acquire()
                    self.items.append(1)
            """
        )
        facts = m.classes["S"].methods["f"]
        # lock only held on one arm -> not held at the join
        assert facts.accesses[0].held == frozenset()

    def test_entry_context_applied_to_private_helper(self):
        p = program(
            """
            import threading
            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []
                def public(self):
                    with self._lock:
                        self._helper()
                def also_public(self):
                    with self._lock:
                        self._helper()
                def _helper(self):
                    self.items.append(1)
            """
        )
        assert p.entry_contexts[("S", "_helper")] == frozenset({"_lock"})
        facts = p.modules[0].classes["S"].methods["_helper"]
        assert facts.accesses[0].held == frozenset({"_lock"})

    def test_entry_context_is_intersection_of_callers(self):
        p = program(
            """
            import threading
            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []
                def locked_path(self):
                    with self._lock:
                        self._helper()
                def unlocked_path(self):
                    self._helper()
                def _helper(self):
                    self.items.append(1)
            """
        )
        assert p.entry_contexts[("S", "_helper")] == frozenset()


# ----------------------------------------------------------------------
# Guard inference
# ----------------------------------------------------------------------
class TestGuardInference:
    SRC = """
        import threading
        class S:
            def __init__(self):
                self._lock = threading.Lock()
                self.items = {}
            def a(self):
                with self._lock:
                    self.items["a"] = 1
            def b(self):
                with self._lock:
                    return self.items.get("b")
            def c(self):
                with self._lock:
                    del self.items["c"]
    """

    def test_infers_dominating_lock(self):
        m = module(self.SRC)
        guards = infer_guards(m.classes["S"])
        assert guards["items"].lock == "_lock"
        assert guards["items"].violations == []

    def test_minority_unguarded_access_is_violation(self):
        m = module(self.SRC + """
            def d(self):
                return len(self.items)
        """)
        guards = infer_guards(m.classes["S"])
        inference = guards["items"]
        assert inference.lock == "_lock"
        assert len(inference.violations) == 1
        assert inference.violations[0].func == "d"

    def test_below_ratio_no_inference(self):
        m = module(
            """
            import threading
            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []
                def a(self):
                    with self._lock:
                        self.items.append(1)
                def b(self):
                    self.items.append(2)
                def c(self):
                    self.items.append(3)
            """
        )
        assert infer_guards(m.classes["S"]) == {}

    def test_init_writes_do_not_count(self):
        m = module(self.SRC)
        guards = infer_guards(m.classes["S"])
        assert guards["items"].total == 3  # a, b, c — not __init__

    def test_lockless_class_has_no_guards(self):
        m = module(
            """
            class P:
                def __init__(self):
                    self.items = []
                def a(self):
                    self.items.append(1)
            """
        )
        assert infer_guards(m.classes["P"]) == {}


# ----------------------------------------------------------------------
# Lock-order graph
# ----------------------------------------------------------------------
class TestLockOrder:
    def test_nested_with_creates_edge(self):
        p = program(
            """
            import threading
            class S:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()
                def f(self):
                    with self.a:
                        with self.b:
                            pass
            """
        )
        assert ("S.a", "S.b") in p.order_edges()

    def test_inversion_detected_as_cycle(self):
        p = program(
            """
            import threading
            class S:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()
                def f(self):
                    with self.a:
                        with self.b:
                            pass
                def g(self):
                    with self.b:
                        with self.a:
                            pass
            """
        )
        cycles = p.graph.find_cycles()
        assert cycles == [["S.a", "S.b"]]

    def test_call_through_edge_across_classes(self):
        p = program(
            """
            import threading
            class Store:
                def __init__(self):
                    self.journal_lock = threading.Lock()
                def record(self):
                    with self.journal_lock:
                        pass
            class Sched:
                def __init__(self, store: Store):
                    self._lock = threading.Lock()
                    self.store = store
                def f(self):
                    with self._lock:
                        self.store.record()
            """
        )
        assert ("Sched._lock", "Store.journal_lock") in p.order_edges()

    def test_transitive_blocking_summary(self):
        p = program(
            """
            import threading, time
            def helper():
                time.sleep(1)
            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                def f(self):
                    with self._lock:
                        helper()
            """
        )
        findings = p.findings(["CONC003"])
        assert len(findings) == 1
        assert "helper" in findings[0].message
