"""Memory-side cross-checker rules (R2 / M6) and the MDB probe API.

Follows the corrupted-event injection model of test_analysis.py: a core
is loaded (not run), fake events are appended to the checker's recorded
lists, and verify() must convict them.  Each rule is also proven
*quiet* on a real instrumented run — zero violations on live traffic
(the full eight-kernel sweep is the blocking CI job).
"""

import pytest

from repro.analysis.checker import (
    RULE_DOCS,
    CrossChecker,
    ReuseEvent,
    StoreForwardEvent,
    Violation,
    check_spec,
    fmt_pc,
)
from repro.analysis.program import ProgramAnalysis
from repro.isa.assembler import assemble
from repro.pipeline.core import Core
from repro.recycle.mdb import MdbProbe, MemoryDisambiguationBuffer
from repro.sim.runner import RunSpec
from repro.workloads.suite import WorkloadSuite

# Store on every fork→load path, provably the same cell as the load.
MUST_DIRTY = """
main:   movi r1, 4096
        movi r2, 1
        beq  r3, skip
        addi r5, r5, 1
skip:   st   r2, 0(r1)
        ld   r4, 0(r1)
        halt
"""


@pytest.fixture()
def checker():
    suite = WorkloadSuite()
    spec = RunSpec(("compress",), features="REC/RS/RU", commit_target=200)
    core = Core(spec.build_config())
    chk = CrossChecker(core, memory=True)
    core.load(suite.mix(spec.workload), commit_target=spec.commit_target)
    return chk


def _template(chk):
    instance = chk.core.instances[0]
    return instance, chk.analysis_for(instance.id)


def _fork_pc(pa):
    return min(pc for pc, s in pa.sites.items() if s.is_conditional)


def _install_synthetic(chk, text):
    """Swap the cached analysis for a synthetic program so verify()
    replays injected events against hand-built static facts."""
    instance = chk.core.instances[0]
    pa = ProgramAnalysis(assemble(text, name="synthetic"), name="synthetic")
    chk._analyses[instance.id] = pa
    return instance, pa


def _reuse_event(instance, pc, fork_pc, eff_addr):
    return ReuseEvent(
        cycle=0, instance_id=instance.id, instance_name=instance.name,
        reuse_pc=pc, srcs=(), consistent=frozenset(), fork_pc=fork_pc,
        dst_ctx=0, src_ctx=1, is_load=True, eff_addr=eff_addr,
    )


def _forward_event(instance, load_pc, store_pc, address):
    return StoreForwardEvent(
        cycle=0, instance_id=instance.id, instance_name=instance.name,
        load_pc=load_pc, store_pc=store_pc, address=address, ctx=0,
    )


class TestR2Injection:
    def test_reused_load_at_non_load_pc_is_caught(self, checker):
        instance, pa = _template(checker)
        fork_pc = _fork_pc(pa)
        # reachable from the fork (so R1 doesn't trip first), not a load
        non_load_pc = next(
            pc for pc in sorted(pa.must_defs_from(fork_pc))
            if pa.memdep.access_at(pc) is None
        )
        checker.reuse_events.append(
            _reuse_event(instance, non_load_pc, fork_pc, 4096)
        )
        report = checker.verify()
        assert any(v.rule == "R2" for v in report.violations)

    def test_must_dirty_reuse_is_caught(self, checker):
        instance, pa = _install_synthetic(checker, MUST_DIRTY)
        load_pc = next(iter(pa.memdep.reusable_load_pcs()))
        store_pc = pa.memdep.stores[0].pc
        checker.reuse_events.append(
            _reuse_event(instance, load_pc, _fork_pc(pa), 4096)
        )
        report = checker.verify()
        r2 = [v for v in report.violations if v.rule == "R2"]
        assert r2 and fmt_pc(store_pc) in r2[0].detail

    def test_address_outside_static_set_is_caught(self, checker):
        instance, pa = _template(checker)
        md = pa.memdep
        load = next(a for a in md.loads if a.known)
        bogus = 0xDEAD000  # provably outside compress's data segment
        assert not load.addr.contains_address(bogus)
        checker.reuse_events.append(
            _reuse_event(instance, load.pc, _fork_pc(pa), bogus)
        )
        report = checker.verify()
        assert any(
            v.rule == "R2" and "outside the static address set" in v.detail
            for v in report.violations
        )

    def test_memory_off_never_runs_r2(self):
        suite = WorkloadSuite()
        spec = RunSpec(("compress",), features="REC/RS/RU", commit_target=200)
        core = Core(spec.build_config())
        chk = CrossChecker(core)  # memory defaults to False
        core.load(suite.mix(spec.workload), commit_target=spec.commit_target)
        instance, pa = _template(chk)
        fork_pc = _fork_pc(pa)
        non_load_pc = next(
            pc for pc in sorted(pa.must_defs_from(fork_pc))
            if pa.memdep.access_at(pc) is None
        )
        chk.reuse_events.append(
            _reuse_event(instance, non_load_pc, fork_pc, 4096)
        )
        report = chk.verify()
        assert not any(v.rule == "R2" for v in report.violations)


class TestM6Injection:
    def test_forward_between_disjoint_accesses_is_caught(self, checker):
        instance, pa = _template(checker)
        md = pa.memdep
        # compress's load/store pair is provably disjoint (NO alias)
        load, store = md.loads[0], md.stores[0]
        checker.forward_events.append(
            _forward_event(instance, load.pc, store.pc, 4096)
        )
        report = checker.verify()
        assert any(
            v.rule == "M6" and "disjoint" in v.detail
            for v in report.violations
        )

    def test_forward_into_non_load_pc_is_caught(self, checker):
        instance, pa = _template(checker)
        store_pc = pa.memdep.stores[0].pc
        checker.forward_events.append(
            _forward_event(instance, store_pc, store_pc, 4096)
        )
        report = checker.verify()
        assert any(
            v.rule == "M6" and "not a static load site" in v.detail
            for v in report.violations
        )

    def test_forward_address_outside_static_sets_is_caught(self, checker):
        instance, pa = _install_synthetic(checker, MUST_DIRTY)
        md = pa.memdep
        load, store = md.loads[0], md.stores[0]
        checker.forward_events.append(
            _forward_event(instance, load.pc, store.pc, 0xDEAD000)
        )
        report = checker.verify()
        assert any(
            v.rule == "M6" and "outside the" in v.detail
            for v in report.violations
        )


class TestLiveRunsAreClean:
    @pytest.mark.parametrize("kernel", ["compress", "li"])
    def test_memory_rules_quiet_on_real_traffic(self, kernel):
        spec = RunSpec((kernel,), features="REC/RS/RU", commit_target=800)
        result, report = check_spec(spec, memory=True)
        assert report.ok, [str(v) for v in report.violations]
        if kernel == "li":
            # li actually exercises M6: forwarding hits are checked
            assert report.forwards_checked > 0

    def test_report_dict_includes_memory_counters(self):
        spec = RunSpec(("li",), features="REC/RS/RU", commit_target=800)
        _, report = check_spec(spec, memory=True)
        d = report.to_dict()
        for key in ("reuse_loads_checked", "reuse_loads_unknown_address",
                    "forwards_checked", "forwards_unknown"):
            assert key in d


class TestViolationFormatting:
    def test_message_is_hex_and_carries_rule_doc(self):
        v = Violation("R2", "li", 0x1018, "something broke")
        text = str(v)
        assert "pc=0x1018" in text
        assert RULE_DOCS["R2"] in text

    def test_fmt_pc_handles_unknown(self):
        assert fmt_pc(None) == "?"
        assert fmt_pc(0x40) == "0x40"

    def test_every_rule_has_a_doc_line(self):
        for rule in ("M1", "M2", "M3", "M4", "M5", "M6", "R1", "R2"):
            assert rule in RULE_DOCS and RULE_DOCS[rule]


class TestMdbProbe:
    def test_hit(self):
        mdb = MemoryDisambiguationBuffer(entries=4)
        mdb.record_load(0x100, 4096, token=7)
        assert mdb.probe(0x100, 4096, token=7) is MdbProbe.HIT
        assert mdb.can_reuse(0x100, 4096, token=7)

    def test_store_conflict_reason(self):
        mdb = MemoryDisambiguationBuffer(entries=4)
        mdb.record_load(0x100, 4096, token=7)
        mdb.record_store(4096)
        assert mdb.probe(0x100, 4096, token=7) is MdbProbe.STORE_CONFLICT
        assert mdb.miss_reasons["store-conflict"] == 1

    def test_eviction_reason(self):
        mdb = MemoryDisambiguationBuffer(entries=1)
        mdb.record_load(0x100, 4096, token=1)
        mdb.record_load(0x108, 8192, token=2)  # evicts 0x100 (FIFO)
        assert mdb.probe(0x100, 4096, token=1) is MdbProbe.EVICTED

    def test_stale_reason(self):
        mdb = MemoryDisambiguationBuffer(entries=4)
        mdb.record_load(0x100, 4096, token=1)
        mdb.record_load(0x100, 4096, token=2)  # re-execution, new token
        assert mdb.probe(0x100, 4096, token=1) is MdbProbe.STALE

    def test_absent_reason(self):
        mdb = MemoryDisambiguationBuffer(entries=4)
        assert mdb.probe(0x100, 4096) is MdbProbe.ABSENT

    def test_reinsert_clears_gone_reason(self):
        mdb = MemoryDisambiguationBuffer(entries=4)
        mdb.record_load(0x100, 4096, token=1)
        mdb.record_store(4096)
        mdb.record_load(0x100, 4096, token=2)
        assert mdb.probe(0x100, 4096, token=2) is MdbProbe.HIT

    def test_counters_track_probe_outcomes(self):
        mdb = MemoryDisambiguationBuffer(entries=4)
        mdb.record_load(0x100, 4096, token=1)
        mdb.can_reuse(0x100, 4096, token=1)  # hit
        mdb.can_reuse(0x100, 9999, token=1)  # stale (address mismatch)
        mdb.can_reuse(0x200, 4096)  # absent
        assert mdb.reuse_hits == 1 and mdb.reuse_misses == 2
        assert mdb.miss_reasons["stale"] == 1
        assert mdb.miss_reasons["absent"] == 1

    def test_clear_resets_reason_tracking(self):
        mdb = MemoryDisambiguationBuffer(entries=4)
        mdb.record_load(0x100, 4096, token=1)
        mdb.record_store(4096)
        mdb.clear()
        assert mdb.probe(0x100, 4096, token=1) is MdbProbe.ABSENT
