"""Tests for the tracer and pipeline viewer."""

import pytest

from repro.debug import ALL_KINDS, CoreTracer, pipeview
from repro.isa import assemble
from repro.pipeline import Core, Features, MachineConfig

SRC = """
main:  movi r1, 777
       movi r2, 120
loop:  slli r3, r1, 13
       xor  r1, r1, r3
       srli r3, r1, 7
       xor  r1, r1, r3
       andi r4, r1, 1
       beq  r4, skip
       addi r5, r5, 1
skip:  subi r2, r2, 1
       bgt  r2, loop
       halt
"""


def traced_run(features=Features.rec_rs_ru(), kinds=None):
    core = Core(MachineConfig(features=features))
    core.load([assemble(SRC, name="t")])
    tracer = CoreTracer(core, kinds=kinds)
    core.run(max_cycles=200_000)
    return core, tracer


class TestTracer:
    def test_records_commits(self):
        core, tracer = traced_run(kinds={"commit"})
        commits = tracer.filter("commit")
        assert len(commits) == core.stats.committed

    def test_kinds_filtering(self):
        _, tracer = traced_run(kinds={"fork"})
        assert set(e.kind for e in tracer.events) <= {"fork"}
        assert tracer.filter("commit") == []

    def test_unknown_kind_rejected(self):
        core = Core(MachineConfig())
        with pytest.raises(ValueError):
            CoreTracer(core, kinds={"teleport"})

    def test_stream_lifecycle_events(self):
        _, tracer = traced_run(kinds={"stream_open", "stream_end"})
        opens = tracer.filter("stream_open")
        assert opens, "recycling should open streams on this kernel"
        assert all("kind" in e.info for e in opens)

    def test_fork_and_swap_events(self):
        _, tracer = traced_run(kinds={"fork", "swap"})
        assert tracer.filter("fork")
        # At least some forks should swap (mispredicted covered branches).
        assert tracer.filter("swap")

    def test_counts_summary(self):
        _, tracer = traced_run(kinds={"commit", "squash"})
        counts = tracer.counts()
        assert counts.get("commit", 0) > 0

    def test_event_str(self):
        _, tracer = traced_run(kinds={"commit"})
        text = str(tracer.events[0])
        assert "commit" in text and "pc=" in text

    def test_format_respects_limit(self):
        _, tracer = traced_run(kinds={"commit"})
        assert len(tracer.format(limit=5).splitlines()) == 5

    def test_max_events_cap(self):
        core = Core(MachineConfig(features=Features.smt()))
        core.load([assemble(SRC, name="t")])
        tracer = CoreTracer(core, kinds={"rename"}, max_events=10)
        core.run(max_cycles=200_000)
        assert len(tracer.events) == 10

    def test_all_kinds_constant(self):
        assert "commit" in ALL_KINDS and "stream_open" in ALL_KINDS


class TestPipeview:
    def test_renders_rows(self):
        _, tracer = traced_run()
        text = pipeview(tracer.committed_uops, max_rows=10)
        lines = text.splitlines()
        assert len(lines) == 12  # header + rule + 10 rows
        assert "R" in text and "x" in text

    def test_marks_recycled(self):
        _, tracer = traced_run()
        text = pipeview(tracer.committed_uops, max_rows=200)
        assert "[rec" in text

    def test_empty_input(self):
        assert "no committed uops" in pipeview([])

    def test_reused_marked_u(self):
        src = """
        main:  movi r1, 98765
               movi r2, 200
        loop:  slli r3, r1, 13
               xor  r1, r1, r3
               srli r3, r1, 7
               xor  r1, r1, r3
               andi r4, r1, 3
               beq  r4, odd
               addi r6, r31, 3
               br   join
        odd:   addi r7, r31, 7
        join:  subi r2, r2, 1
               bgt  r2, loop
               halt
        """
        core = Core(MachineConfig(features=Features.rec_ru()))
        core.load([assemble(src, name="d")])
        tracer = CoreTracer(core)
        core.run(max_cycles=200_000)
        if any(u.reused for u in tracer.committed_uops):
            text = pipeview([u for u in tracer.committed_uops if u.reused], max_rows=3)
            assert "U" in text
