"""Tests for the run-spec layer and the experiment registry."""

import pytest

from repro.sim import (
    EXPERIMENTS,
    VARIANTS,
    RunSpec,
    ablation_confidence,
    average_ipc,
    figure3,
    figure4,
    format_figure3,
    format_figure4,
    format_table1,
    run_matrix,
    run_spec,
    table1,
)
from repro.workloads import WorkloadSuite

SUITE = WorkloadSuite()
FAST = dict(commit_target=400)


class TestRunSpec:
    def test_build_config_features(self):
        spec = RunSpec(("compress",), features="REC/RU")
        cfg = spec.build_config()
        assert cfg.features.reuse and not cfg.features.respawn

    def test_build_config_policy(self):
        spec = RunSpec(("compress",), policy="stop-8")
        cfg = spec.build_config()
        assert cfg.policy.limit == 8

    def test_unknown_features_rejected(self):
        with pytest.raises(ValueError):
            RunSpec(("compress",), features="MAGIC").build_config()

    def test_label(self):
        spec = RunSpec(("gcc", "go"), features="SMT")
        assert "gcc+go" in spec.label() and "SMT" in spec.label()

    def test_confidence_override(self):
        spec = RunSpec(("compress",), confidence_threshold=3)
        assert spec.build_config().confidence_threshold == 3


class TestRunExecution:
    def test_single_run(self):
        result = run_spec(RunSpec(("compress",), **FAST), SUITE)
        assert result.ipc > 0
        assert result.stats.committed >= 400
        assert "compress" in result.per_program_ipc

    def test_multiprogram_run(self):
        result = run_spec(RunSpec(("gcc", "go"), **FAST), SUITE)
        assert len(result.per_program_ipc) == 2
        assert result.ipc > 0

    def test_run_matrix_and_average(self):
        specs = [RunSpec((k,), features="SMT", **FAST) for k in ("gcc", "perl")]
        results = run_matrix(specs, SUITE)
        assert len(results) == 2
        assert average_ipc(results) > 0
        assert average_ipc([]) == 0.0

    def test_summary_line_readable(self):
        result = run_spec(RunSpec(("vortex",), **FAST), SUITE)
        line = result.summary_line()
        assert "IPC=" in line and "vortex" in line


class TestExperiments:
    def test_registry_complete(self):
        assert {"fig3", "fig4", "fig5", "fig6", "table1"} <= set(EXPERIMENTS)

    def test_figure3_shape(self):
        data = figure3(
            commit_target=300, variants=("SMT", "TME"), kernels=("compress", "go"),
            suite=SUITE,
        )
        assert set(data) == {"compress", "go"}
        assert set(data["go"]) == {"SMT", "TME"}
        text = format_figure3(data)
        assert "compress" in text and "SMT" in text

    def test_figure4_shape(self):
        data = figure4(
            commit_target=300, num_mixes=2, variants=("SMT", "REC/RS/RU"),
            widths=(1, 2), suite=SUITE,
        )
        assert set(data) == {1, 2}
        assert all(set(row) == {"SMT", "REC/RS/RU"} for row in data.values())
        assert "programs" in format_figure4(data)

    def test_table1_shape(self):
        rows = table1(commit_target=300, num_mixes=1, widths=(2,), suite=SUITE)
        assert "compress" in rows and "1 prog avg" in rows and "2 progs avg" in rows
        for row in rows.values():
            assert set(row) == {
                "pct_recycled", "pct_reused", "branch_miss_cov", "pct_forks_tme",
                "pct_forks_recycled", "pct_forks_respawned",
                "merges_per_alt_path", "pct_back_merges",
            }
        assert "%Recyc" in format_table1(rows)

    def test_ablation_confidence_shape(self):
        data = ablation_confidence(
            thresholds=(1, 15), commit_target=300, kernels=("go",), suite=SUITE
        )
        assert set(data) == {1, 15}
        assert all(v > 0 for v in data.values())

    def test_variants_constant_matches_features(self):
        from repro.pipeline.config import Features
        assert VARIANTS == list(Features.all_variants())
