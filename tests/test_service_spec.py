"""Campaign spec parsing: validation, deterministic expansion, errors."""

import pytest

from repro.service import SpecError, parse_campaign, sweep_spec
from repro.sim.sweep import Sweep


def sweep_payload(**kwargs):
    payload = {
        "kind": "sweep",
        "workloads": [["compress"], ["go"]],
        "grid": {"active_list_size": [32, 64]},
        "commit_target": 250,
    }
    payload.update(kwargs)
    return payload


class TestSweepParsing:
    def test_expands_to_sweep_job_order(self):
        spec = parse_campaign(sweep_payload())
        sweep = Sweep(
            workloads=[("compress",), ("go",)],
            grid={"active_list_size": [32, 64]},
            commit_target=250,
        )
        assert list(spec.jobs) == sweep.jobs()

    def test_grid_key_order_is_irrelevant(self):
        forward = parse_campaign(
            sweep_payload(grid={"active_list_size": [32], "rename_width": [4, 8]})
        )
        backward = parse_campaign(
            sweep_payload(grid={"rename_width": [4, 8], "active_list_size": [32]})
        )
        assert forward.jobs == backward.jobs

    def test_kind_defaults_to_sweep(self):
        payload = sweep_payload()
        del payload["kind"]
        assert len(parse_campaign(payload).jobs) == 4

    def test_bare_workload_strings_accepted(self):
        spec = parse_campaign(sweep_payload(workloads=["compress", "go"]))
        assert [job.spec.workload for job in spec.jobs[:2]] == [
            ("compress",), ("go",)
        ]

    def test_policy_applies_to_every_job(self):
        spec = parse_campaign(sweep_payload(policy="stop-8"))
        assert all(job.spec.policy == "stop-8" for job in spec.jobs)

    def test_suite_defaults(self):
        spec = parse_campaign(sweep_payload())
        assert spec.suite_args == (5000, False)

    def test_suite_overrides(self):
        spec = parse_campaign(sweep_payload(suite={"iters": 100, "extended": True}))
        assert spec.suite_args == (100, True)

    def test_label_is_kept(self):
        assert parse_campaign(sweep_payload(label="abl")).label == "abl"


class TestJobsParsing:
    def test_explicit_jobs(self):
        spec = parse_campaign({
            "kind": "jobs",
            "jobs": [
                {"workload": ["compress"], "overrides": {"active_list_size": 32}},
                {"workload": ["go"], "features": "TME"},
            ],
        })
        assert len(spec.jobs) == 2
        assert spec.jobs[0].overrides == (("active_list_size", 32),)
        assert spec.jobs[1].spec.features == "TME"

    def test_override_order_is_canonical(self):
        spec = parse_campaign({
            "kind": "jobs",
            "jobs": [{"workload": ["compress"],
                      "overrides": {"rename_width": 4, "active_list_size": 32}}],
        })
        assert spec.jobs[0].overrides == (
            ("active_list_size", 32), ("rename_width", 4)
        )


class TestRejection:
    @pytest.mark.parametrize(
        "mangle",
        [
            lambda p: p.update(kind="mystery"),
            lambda p: p.update(workloads=[]),
            lambda p: p.update(workloads=[[]]),
            lambda p: p.update(workloads=[[7]]),
            lambda p: p.update(grid={"active_list_size": []}),
            lambda p: p.update(grid={"no_such_knob": [1]}),
            lambda p: p.update(grid="not-a-dict"),
            lambda p: p.update(machine="imaginary.9.9"),
            lambda p: p.update(suite={"iters": 0}),
            lambda p: p.update(suite={"iters": "many"}),
            lambda p: p.update(suite={"extended": "yes"}),
            lambda p: p.update(suite={"flavour": "spicy"}),
            lambda p: p.update(label=7),
            lambda p: p.update(typo_field=1),
        ],
    )
    def test_bad_sweep_payloads_raise(self, mangle):
        payload = sweep_payload()
        mangle(payload)
        with pytest.raises(SpecError):
            parse_campaign(payload)

    @pytest.mark.parametrize(
        "jobs",
        [
            [],
            ["not-an-object"],
            [{"workload": []}],
            [{"workload": ["compress"], "overrides": {"no_such_knob": 1}}],
            [{"workload": ["compress"], "surprise": 1}],
            [{"workload": ["compress"], "machine": "imaginary.9.9"}],
        ],
    )
    def test_bad_jobs_payloads_raise(self, jobs):
        with pytest.raises(SpecError):
            parse_campaign({"kind": "jobs", "jobs": jobs})

    def test_non_object_spec_raises(self):
        with pytest.raises(SpecError):
            parse_campaign(["not", "an", "object"])

    def test_error_message_names_the_bad_job(self):
        with pytest.raises(SpecError, match=r"jobs\[1\]"):
            parse_campaign({
                "kind": "jobs",
                "jobs": [{"workload": ["compress"]},
                         {"workload": ["compress"], "machine": "imaginary.9.9"}],
            })


class TestSweepSpecBuilder:
    def test_builder_output_parses(self):
        payload = sweep_spec(
            ["compress", ("go",)],
            grid={"active_list_size": [32, 64]},
            commit_target=250,
            label="quick",
        )
        spec = parse_campaign(payload)
        assert len(spec.jobs) == 4
        assert spec.label == "quick"

    def test_builder_sorts_grid(self):
        payload = sweep_spec(
            ["compress"], grid={"rename_width": [4], "active_list_size": [32]}
        )
        assert list(payload["grid"]) == ["active_list_size", "rename_width"]
