"""Injection tests: every SHR rule must fire on deliberately broken
code, stay quiet on the fixed variant, and respect ``# shr-ok``.

Each case lints synthetic files through the *real* engine path
(``lint_program``), so registration, program-scope dispatch and the
SHR suppression family are all exercised.  The final cases edit the
*real* tree in memory — single-copy drift in the inlined issue loop
must produce SHR002, which is the whole point of the markers.
"""

import textwrap
from pathlib import Path

from repro.analysis.lint import EFFECTS_PROFILE, run_lint
from repro.analysis.lint.engine import lint_program
from repro.analysis.lint.rules_sharing import SHR_RULE_CODES

REPO = Path(__file__).resolve().parent.parent


def lint(tmp_path, source, codes=SHR_RULE_CODES, name="inj.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_program([path], codes=tuple(codes))


def codes_of(findings):
    return sorted({f.code for f in findings})


# ----------------------------------------------------------------------
# SHR001 — run-phase mutation of batch-shared state
# ----------------------------------------------------------------------
BROKEN_001 = """
    class DecodeStore:
        def __init__(self):
            self._programs = {}
        def record(self, key, value):
            self._programs[key] = value

    class Core:
        def __init__(self, store: DecodeStore):
            self.store = store
        def step(self):
            self.store.record(1, 2)
"""


def test_shr001_fires_on_shared_mutation(tmp_path):
    findings = lint(tmp_path, BROKEN_001)
    assert codes_of(findings) == ["SHR001"]
    assert "DecodeStore._programs" in findings[0].message


def test_shr001_quiet_when_write_is_build_phase(tmp_path):
    fixed = BROKEN_001.replace("def step(self):", "def load(self):")
    assert lint(tmp_path, fixed) == []


def test_shr001_shr_ok_suppresses(tmp_path):
    blessed = BROKEN_001.replace(
        "self._programs[key] = value",
        "self._programs[key] = value  # shr-ok: warm-once, content-pure",
    )
    assert lint(tmp_path, blessed) == []


def test_det_ok_does_not_suppress_shr(tmp_path):
    wrong_marker = BROKEN_001.replace(
        "self._programs[key] = value",
        "self._programs[key] = value  # det-ok: wrong family",
    )
    assert codes_of(lint(tmp_path, wrong_marker)) == ["SHR001"]


# ----------------------------------------------------------------------
# SHR002 — spec-vs-inlined drift
# ----------------------------------------------------------------------
BROKEN_002 = """
    class Stage:
        def spec_one(self, ctx):
            self.table[ctx.uid] = 1
            self.sink.note(ctx)

        def hot(self):
            for ctx in self.work:
                # spec-inline begin r1 spec=spec_one
                self.table[ctx.uid] = 1
                # spec-inline end r1
"""


def test_shr002_fires_on_drift(tmp_path):
    findings = lint(tmp_path, BROKEN_002)
    assert codes_of(findings) == ["SHR002"]
    assert "spec-only" in findings[0].message


def test_shr002_quiet_when_copies_match(tmp_path):
    fixed = BROKEN_002.replace(
        "self.table[ctx.uid] = 1\n                # spec-inline end r1",
        "self.table[ctx.uid] = 1\n"
        "                self.sink.note(ctx)\n"
        "                # spec-inline end r1",
    )
    assert lint(tmp_path, fixed) == []


def test_shr002_fires_on_malformed_markers(tmp_path):
    findings = lint(tmp_path, """
        class Stage:
            def hot(self, ctx):
                # spec-inline begin r1 spec=spec_one
                self.table[ctx.uid] = 1
    """)
    assert codes_of(findings) == ["SHR002"]
    assert "never closed" in findings[0].message


# ----------------------------------------------------------------------
# SHR003 — event payload mutated after publish
# ----------------------------------------------------------------------
BROKEN_003 = """
    def emit(bus, event):
        bus.publish(event)
        event.tags.append("late")
"""


def test_shr003_fires_on_publish_then_mutate(tmp_path):
    findings = lint(tmp_path, BROKEN_003)
    assert codes_of(findings) == ["SHR003"]
    assert "mutated after publish" in findings[0].message


def test_shr003_quiet_when_mutation_precedes_publish(tmp_path):
    fixed = """
        def emit(bus, event):
            event.tags.append("early")
            bus.publish(event)
    """
    assert lint(tmp_path, fixed) == []


# ----------------------------------------------------------------------
# SHR004 — per-core state escaping into a shared container
# ----------------------------------------------------------------------
BROKEN_004 = """
    class CoreState:
        def __init__(self):
            self.table = {}

    class DecodeStore:
        def __init__(self):
            self._programs = {}

    class Core:
        def __init__(self, store: DecodeStore):
            self.state = CoreState()
            self.store = store
        def step(self):
            self.store._programs[0] = self.state  # shr-ok: injection
"""


def test_shr004_fires_on_escape(tmp_path):
    # The write itself is blessed; the *escape* must still block.
    findings = lint(tmp_path, BROKEN_004)
    assert "SHR004" in codes_of(findings)


def test_shr004_quiet_when_stored_value_is_fresh(tmp_path):
    fixed = BROKEN_004.replace(
        "self.store._programs[0] = self.state",
        "self.store._programs[0] = dict()",
    )
    assert lint(tmp_path, fixed) == []


# ----------------------------------------------------------------------
# SHR005 — process-global mutable state
# ----------------------------------------------------------------------
def test_shr005_fires_on_mutable_default(tmp_path):
    findings = lint(tmp_path, """
        def record(x, acc=[]):
            acc.append(x)
    """)
    assert codes_of(findings) == ["SHR005"]
    assert "mutable default" in findings[0].message


def test_shr005_fires_on_class_attr_mutation(tmp_path):
    findings = lint(tmp_path, """
        class Registry:
            entries = {}
            def add(self, key):
                Registry.entries[key] = 1
    """)
    assert codes_of(findings) == ["SHR005"]
    assert "class-level state Registry.entries" in findings[0].message


def test_shr005_fires_on_module_global_mutation(tmp_path):
    findings = lint(tmp_path, """
        CACHE = {}

        def put(key, value):
            CACHE[key] = value
    """)
    assert codes_of(findings) == ["SHR005"]
    assert "module-level mutable" in findings[0].message


def test_shr005_quiet_on_local_rebind(tmp_path):
    fixed = """
        CACHE = {}

        def put(key, value):
            CACHE = {}
            CACHE[key] = value
    """
    assert lint(tmp_path, fixed) == []


def test_shr005_shr_ok_suppresses(tmp_path):
    blessed = """
        CACHE = {}

        def put(key, value):
            CACHE[key] = value  # shr-ok: test-only counter
    """
    assert lint(tmp_path, blessed) == []


# ----------------------------------------------------------------------
# The real tree
# ----------------------------------------------------------------------
def _real_tree_findings(edit=None):
    """Build the effect analysis over the committed batch sources,
    optionally swapping one file's text through ``edit``."""
    from repro.analysis.effects.facts import (
        EffectsProgram, batch_source_paths,
    )

    sources = []
    for path in batch_source_paths():
        text = path.read_text()
        if edit is not None:
            text = edit(path, text)
        sources.append((str(path), text))
    return EffectsProgram.from_sources(sources).findings()


def test_effects_profile_clean_on_real_tree():
    """The committed pipeline/sim/workloads layers pass the SHR profile
    (their deliberate exceptions carry ``# shr-ok`` blessings)."""
    result = run_lint(EFFECTS_PROFILE)
    assert result.findings == [], [f.render() for f in result.findings]


def test_shr002_catches_single_copy_edit_to_inlined_issue_loop():
    """Acceptance: a deliberate edit to the inlined copy of the issue
    loop's memory-order check — leaving the spec untouched — must
    produce SHR002."""
    target = "pipeline/stages/issue.py"
    # The "and " prefix pins the *inlined* copy; the spec method reads
    # ``self.contexts[...]`` and must stay untouched.
    original = "and contexts[uop.ctx].older_store_pending(uop.seq)"

    def drift(path, text):
        if str(path).replace("\\", "/").endswith(target):
            assert text.count(original) == 1, (
                "issue loop changed; update this test"
            )
            return text.replace(original, "and False")
        return text

    findings = _real_tree_findings(drift)
    drifted = [f for f in findings if f.code == "SHR002"]
    assert len(drifted) == 1
    assert "issue-memcheck" in drifted[0].message
    assert "older_store_pending" in drifted[0].message


def test_shr002_catches_single_copy_edit_to_inlined_rename_loop():
    """Same for the rename loop: drop one inlined call, SHR002 fires."""
    target = "pipeline/stages/rename.py"
    # The indentation pins the hoisted-alias call inside the inlined
    # region; the spec's ``state.icount_order.note(ctx)`` stays put.
    original = "\n                note(ctx)"

    def drift(path, text):
        if str(path).replace("\\", "/").endswith(target):
            assert text.count(original) == 1, (
                "rename loop changed; update this test"
            )
            return text.replace(original, "\n                pass")
        return text

    findings = _real_tree_findings(drift)
    drifted = [f for f in findings if f.code == "SHR002"]
    assert len(drifted) == 1
    assert "rename-fetched" in drifted[0].message


def test_every_shr_rule_has_an_injection_proof():
    """Meta: the five registered SHR codes are exactly the ones the
    injection cases above cover."""
    from repro.analysis.lint import all_rules

    registered = {r.code for r in all_rules() if r.code.startswith("SHR")}
    assert registered == set(SHR_RULE_CODES)


def test_shr_severities_match_the_contract():
    """SHR002/SHR004 block; SHR001/003/005 are warn-first ratchets."""
    from repro.analysis.lint import get_rule

    assert get_rule("SHR002").blocking and get_rule("SHR004").blocking
    for code in ("SHR001", "SHR003", "SHR005"):
        assert not get_rule(code).blocking
