"""Lockstep batch simulation: bit-identity, grouping, and engine wiring.

The contract under test is the one :mod:`repro.sim.batch` documents:
every point simulated in a batch is *bit-identical* to the same point
run serially — golden stats, utilization histograms, cycle stamps —
regardless of batch composition or size.  The only permitted divergence
is the decoded-uop-cache counters (``uop_cache_*`` / ``decode_counts``),
whose attribution legitimately changes when siblings share a warm
:class:`~repro.pipeline.uopcache.DecodeStore`.
"""

import gc as gc_module
import importlib.util
import json
from pathlib import Path
from unittest import mock

import pytest

from repro.exec.jobs import Job, stats_to_payload
from repro.sim.batch import (
    BatchRunner,
    group_batches,
    run_jobs_batched,
    validate_batch,
)
from repro.sim.runner import RunSpec, run_spec
from repro.workloads.suite import WorkloadSuite

REPO = Path(__file__).resolve().parent.parent
FIXTURE = REPO / "tests" / "golden" / "core_stats_seed.json"
GOLDEN = json.loads(FIXTURE.read_text())

_spec = importlib.util.spec_from_file_location(
    "gen_golden_stats", REPO / "tools" / "gen_golden_stats.py"
)
gen_golden_stats = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gen_golden_stats)

#: SimStats fields allowed to differ between serial and batched runs:
#: a batch sibling may have warmed the shared decode store first, so
#: hit/miss/eviction attribution shifts while everything simulated is
#: unchanged.
UOP_CACHE_FIELDS = frozenset(
    {
        "uop_cache_hits",
        "uop_cache_misses",
        "uop_cache_evictions",
        "decode_counts",
        "uop_cache_hits_by_class",
    }
)

#: The golden fixture's 8 configurations (2 kernels x 4 feature sets).
GOLDEN_SPECS = [
    RunSpec(
        workload=(kernel,),
        features=features,
        commit_target=gen_golden_stats.COMMIT_TARGET,
    )
    for kernel in gen_golden_stats.KERNELS
    for features in gen_golden_stats.FEATURES
]


def comparable_stats(stats) -> dict:
    return {
        name: value
        for name, value in stats_to_payload(stats).items()
        if name not in UOP_CACHE_FIELDS
    }


def snapshot_from_driver(driver) -> dict:
    """The golden fixture's field set, off a finished batch driver."""
    stats = driver.core.stats
    util = driver.core.state.util
    out = {}
    for field in (
        "cycles", "committed", "fetched", "renamed", "renamed_recycled",
        "renamed_reused", "renamed_reused_loads", "squashed", "ipc",
        "pct_recycled", "pct_reused", "forks", "forks_used_tme", "respawns",
        "respawn_streams", "merges", "back_merges", "cond_branches_resolved",
        "mispredicts", "mispredicts_covered", "streams_ended_exhausted",
        "streams_ended_squashed", "streams_ended_branch_mismatch",
    ):
        out[field] = getattr(stats, field)
    out["fetch_util_average"] = util.fetch.average
    out["fetch_util_utilization"] = util.fetch.utilization
    out["rename_fill_from_recycling"] = util.rename_fill_from_recycling
    return out


@pytest.fixture(scope="module")
def suite():
    return WorkloadSuite()


@pytest.fixture(scope="module")
def serial_results(suite):
    return [run_spec(spec, suite) for spec in GOLDEN_SPECS]


class TestGoldenParity:
    def test_batch_of_8_matches_golden_fixture(self, suite):
        """The whole fixture matrix, lockstep in one batch, hits the seed
        numbers bit-for-bit — including utilization averages fed by the
        idle fast-forward's bulk recording."""
        runner = BatchRunner([Job(spec=s) for s in GOLDEN_SPECS], suite=suite)
        points = runner.run()
        assert all(p.error is None for p in points)
        for spec, driver in zip(GOLDEN_SPECS, runner.drivers):
            key = f"{spec.workload[0]}|{spec.features}"
            assert snapshot_from_driver(driver) == GOLDEN["runs"][key], key

    @pytest.mark.parametrize("batch_size", [1, 3, 8])
    def test_batched_stats_identical_to_serial(self, suite, serial_results, batch_size):
        jobs = [Job(spec=s) for s in GOLDEN_SPECS]
        points = run_jobs_batched(jobs, suite, batch_size=batch_size)
        assert len(points) == len(jobs)
        for serial, point in zip(serial_results, points):
            assert point.error is None, point.error
            assert comparable_stats(point.result.stats) == comparable_stats(
                serial.stats
            )
            assert point.result.per_program_ipc == serial.per_program_ipc

    def test_composition_independence(self, suite, serial_results):
        """A point's numbers do not depend on who else is in its batch."""
        target = GOLDEN_SPECS[0]
        expected = comparable_stats(serial_results[0].stats)
        for companions in ([1], [2, 3], [4, 5, 6, 7]):
            batch = [Job(spec=target)] + [
                Job(spec=GOLDEN_SPECS[i]) for i in companions
            ]
            points = BatchRunner(batch, suite=suite).run()
            assert comparable_stats(points[0].result.stats) == expected, companions

    def test_max_cycles_cutoff_identical_to_serial(self, suite):
        """Cutting a run short mid-flight lands on the same cycle/stats
        whether the last stretch was stepped or fast-forwarded."""
        spec = RunSpec(workload=("compress",), features="TME",
                       commit_target=800, max_cycles=400)
        serial = run_spec(spec, suite)
        (point,) = BatchRunner([Job(spec=spec)], suite=suite, quantum=64).run()
        assert point.error is None
        assert point.result.stats.cycles == serial.stats.cycles == 400
        assert comparable_stats(point.result.stats) == comparable_stats(serial.stats)


class TestGrouping:
    def test_mixed_machines_rejected_eagerly(self):
        jobs = [
            Job(spec=RunSpec(workload=("compress",), machine="big.2.16")),
            Job(spec=RunSpec(workload=("compress",), machine="small.2.8")),
        ]
        with pytest.raises(ValueError, match="incompatible machine"):
            validate_batch(jobs)
        with pytest.raises(ValueError, match="incompatible machine"):
            BatchRunner(jobs)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            BatchRunner([])

    def test_group_batches_never_mixes_machines(self):
        jobs = [
            Job(spec=RunSpec(workload=("compress",), machine=m))
            for m in ("big.2.16", "small.2.8", "big.2.16", "small.2.8")
        ]
        groups = group_batches(jobs, batch_size=4)
        assert sorted(sum(groups, [])) == [0, 1, 2, 3]  # a partition
        for indices in groups:
            machines = {jobs[i].spec.machine for i in indices}
            assert len(machines) == 1

    def test_group_batches_respects_size_and_order(self):
        jobs = [Job(spec=RunSpec(workload=("compress",))) for _ in range(5)]
        groups = group_batches(jobs, batch_size=2)
        assert groups == [[0, 1], [2, 3], [4]]

    def test_batch_size_one_is_all_singletons(self):
        jobs = [Job(spec=RunSpec(workload=("compress",))) for _ in range(3)]
        assert group_batches(jobs, batch_size=1) == [[0], [1], [2]]

    def test_chaos_jobs_run_as_singletons(self):
        from repro.exec.jobs import Chaos

        spec = RunSpec(workload=("compress",))
        jobs = [
            Job(spec=spec),
            Job(spec=spec, chaos=Chaos(fail_first_attempts=1)),
            Job(spec=spec),
        ]
        groups = group_batches(jobs, batch_size=3)
        assert [1] in groups
        assert sorted(sum(groups, [])) == [0, 1, 2]

    def test_run_jobs_batched_handles_mixed_machines(self, suite):
        jobs = [
            Job(spec=RunSpec(workload=("compress",), machine=m,
                             commit_target=200))
            for m in ("big.2.16", "small.2.8", "big.2.16")
        ]
        points = run_jobs_batched(jobs, suite, batch_size=3)
        assert len(points) == 3
        assert all(p.error is None for p in points)
        # Input order preserved across the machine split.
        for job, point in zip(jobs, points):
            assert point.job is job


class TestFailureIsolation:
    def test_failing_point_does_not_sink_siblings(self, suite):
        jobs = [
            Job(spec=RunSpec(workload=("compress",), commit_target=400)),
            Job(spec=RunSpec(workload=("compress",), commit_target=400,
                             max_cycles=0)),
            Job(spec=RunSpec(workload=("li",), commit_target=400)),
        ]
        points = BatchRunner(jobs, suite=suite).run()
        assert points[0].error is None and points[2].error is None
        # max_cycles=0 finishes instantly with zero commits — a valid
        # (empty) result, not an error; the isolation claim is that the
        # degenerate sibling changed nothing for the healthy ones.
        healthy = run_spec(jobs[0].spec, suite)
        assert comparable_stats(points[0].result.stats) == comparable_stats(
            healthy.stats
        )


class TestGcDiscipline:
    def test_collect_runs_even_when_gc_already_disabled(self, suite):
        """Satellite: ``Core.run`` must collect at end-of-run even when
        the caller (e.g. a batch driver) had already disabled the
        collector — otherwise each point's cyclic garbage rides along
        into every later point of the batch."""
        from repro.pipeline.core import Core

        spec = RunSpec(workload=("compress",), commit_target=200)
        core = Core(spec.build_config())
        core.load(suite.mix(spec.workload), commit_target=spec.commit_target)
        was_enabled = gc_module.isenabled()
        gc_module.disable()
        try:
            with mock.patch("repro.pipeline.core.gc.collect") as collect:
                core.run(max_cycles=spec.max_cycles)
            assert collect.called
            assert not gc_module.isenabled()  # run() must not re-enable
        finally:
            if was_enabled:
                gc_module.enable()

    def test_batch_runner_restores_collector_state(self, suite):
        jobs = [Job(spec=RunSpec(workload=("compress",), commit_target=200))]
        assert gc_module.isenabled()
        BatchRunner(jobs, suite=suite).run()
        assert gc_module.isenabled()
