"""Store-to-load forwarding: the hit path works, and compress's zero.

The profiler's ``store_fwd_hit_rate: 0.0`` on the pinned compress
benchmark spec prompted an investigation (is the forwarding index
losing hits?).  Finding: the mechanism is sound — a completed-but-not-
yet-retired older store to the same address *does* forward, exploiting
the commit → complete → issue stage order (a store completing in cycle
``c`` cannot retire before cycle ``c+1``, while a load blocked on it
un-blocks and issues in cycle ``c``).  Compress specifically never
forwards because its memory traffic is structurally disjoint: every
load reads the ``input`` stream and every store writes the ``htab``
hash table, so no load address is ever covered by an in-flight store.
These tests pin both facts.
"""

import pytest

from repro.isa import assemble
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import Core
from repro.pipeline.events import Issued
from repro.sim.runner import RunSpec
from repro.workloads.suite import WorkloadSuite

#: Every iteration stores to ``buf[0]`` and immediately loads it back:
#: the load is blocked while the store is pending, un-blocks the cycle
#: the store completes, and must forward (the store cannot have retired
#: yet — commit for that cycle already ran).
FORWARDING_LOOP = """
        .data
buf:    .space 64
        .text
main:   movi r1, buf
        movi r2, 20
loop:   ld   r4, 0(r1)
        addi r4, r4, 1
        st   r4, 0(r1)
        ld   r5, 0(r1)
        add  r6, r6, r5
        subi r2, r2, 1
        bgt  r2, loop
        halt
"""


class TestForwardingHitPath:
    def test_known_forwardable_pair_hits(self):
        core = Core(MachineConfig())
        core.load([assemble(FORWARDING_LOOP, name="fwd")])
        core.run(max_cycles=100_000)
        state = core.state
        assert state.store_fwd_hits > 0, (
            "a store -> same-address load pair in flight must forward; "
            f"got {state.store_fwd_hits} hits / {state.store_fwd_misses} misses"
        )
        # The reloaded value must be the stored one: r6 accumulates the
        # forwarded loads, so a wrong-value forward would change commits.
        assert state.store_fwd_misses <= 1  # only the cold first load misses

    def test_forwarded_value_is_correct(self):
        """End state proves values: 20 increments of buf[0] forwarded
        back out means the accumulator saw 1+2+...+20."""
        core = Core(MachineConfig())
        program = assemble(FORWARDING_LOOP, name="fwd")
        core.load([program])
        core.run(max_cycles=100_000)
        instance = core.instances[0]
        # buf[0] ends at 20 (memory state after all stores retired).
        base = program.data_base
        assert instance.memory.read64(base) == 20


class TestCompressNeverForwards:
    @pytest.fixture(scope="class")
    def traced_run(self):
        spec = RunSpec(workload=("compress",))
        core = Core(spec.build_config())
        core.load(
            WorkloadSuite().mix(spec.workload),
            commit_target=spec.commit_target,
        )
        load_addrs, store_addrs = set(), set()

        def on_issue(event):
            info = event.uop.instr.info
            if info.is_load:
                load_addrs.add(event.uop.eff_addr)
            elif info.is_store:
                store_addrs.add(event.uop.eff_addr)

        core.state.bus.subscribe(Issued, on_issue)
        core.run(max_cycles=spec.max_cycles)
        return core.state, load_addrs, store_addrs

    def test_zero_hits_is_legitimate_address_disjointness(self, traced_run):
        """Compress loads only the input stream and stores only the hash
        table — the address sets never intersect, so zero forwarding
        hits is correct behaviour, not a lost-hit bug."""
        state, load_addrs, store_addrs = traced_run
        assert state.store_fwd_hits == 0
        assert state.store_fwd_misses > 0  # loads did probe the index
        assert load_addrs and store_addrs
        assert not (load_addrs & store_addrs)
