"""Model-based property tests: hardware structures vs reference models."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.branch import BranchTargetBuffer
from repro.memory import Cache, CacheConfig
from repro.recycle.mdb import MemoryDisambiguationBuffer


class LruModel:
    """Reference set-associative LRU cache."""

    def __init__(self, sets, ways, line):
        self.sets, self.ways, self.line = sets, ways, line
        self.state = {i: OrderedDict() for i in range(sets)}

    def access(self, addr):
        lineno = addr // self.line
        idx = lineno % self.sets
        ways = self.state[idx]
        if lineno in ways:
            ways.move_to_end(lineno)
            return True
        ways[lineno] = True
        if len(ways) > self.ways:
            ways.popitem(last=False)
        return False


class TestCacheVsModel:
    @given(addrs=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=300))
    @settings(max_examples=60)
    def test_hit_miss_sequence_matches_lru_model(self, addrs):
        cfg = CacheConfig("T", size=64 * 2 * 8, assoc=2, banks=1)  # 8 sets, 2 ways
        cache = Cache(cfg)
        model = LruModel(sets=8, ways=2, line=64)
        for addr in addrs:
            hit = cache.lookup(addr)
            if not hit:
                cache.fill(addr)
            assert hit == model.access(addr), hex(addr)

    @given(addrs=st.lists(st.integers(0, 1 << 12), min_size=1, max_size=200))
    @settings(max_examples=40)
    def test_direct_mapped_matches_model(self, addrs):
        cfg = CacheConfig("T", size=64 * 4, assoc=1, banks=1)  # 4 sets, DM
        cache = Cache(cfg)
        model = LruModel(sets=4, ways=1, line=64)
        for addr in addrs:
            hit = cache.lookup(addr)
            if not hit:
                cache.fill(addr)
            assert hit == model.access(addr)


class BtbModel:
    """Reference 4-set, 2-way LRU target buffer."""

    def __init__(self, sets, ways):
        self.sets, self.ways = sets, ways
        self.state = {i: OrderedDict() for i in range(sets)}

    def lookup(self, pc):
        word = pc >> 2
        ways = self.state[word % self.sets]
        if word in ways:
            ways.move_to_end(word)
            return ways[word]
        return None

    def update(self, pc, target):
        word = pc >> 2
        ways = self.state[word % self.sets]
        if word in ways:
            del ways[word]
        ways[word] = target
        if len(ways) > self.ways:
            ways.popitem(last=False)


class TestBtbVsModel:
    @given(
        ops=st.lists(
            st.tuples(
                st.booleans(),  # lookup vs update
                st.integers(0, 255).map(lambda x: 0x1000 + 4 * x),
                st.integers(0, 1 << 16),
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50)
    def test_lookup_update_matches_model(self, ops):
        btb = BranchTargetBuffer(entries=8, assoc=2)  # 4 sets
        model = BtbModel(sets=4, ways=2)
        for is_lookup, pc, target in ops:
            if is_lookup:
                assert btb.lookup(pc) == model.lookup(pc)
            else:
                btb.update(pc, target)
                model.update(pc, target)


class MdbModel:
    """Reference FIFO-capped load table."""

    def __init__(self, entries):
        self.entries = entries
        self.state = OrderedDict()

    def load(self, pc, addr):
        if pc in self.state:
            self.state.move_to_end(pc)
        elif len(self.state) >= self.entries:
            self.state.popitem(last=False)
        self.state[pc] = addr

    def store(self, addr):
        for pc in [p for p, a in self.state.items() if a == addr]:
            del self.state[pc]

    def can_reuse(self, pc, addr):
        return self.state.get(pc) == addr


class TestMdbVsModel:
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 2),  # 0 load, 1 store, 2 query
                st.integers(0, 15).map(lambda x: 0x1000 + 4 * x),  # pc
                st.integers(0, 7).map(lambda x: 0x8000 + 8 * x),  # addr
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50)
    def test_mdb_matches_model(self, ops):
        mdb = MemoryDisambiguationBuffer(entries=4)
        model = MdbModel(entries=4)
        for kind, pc, addr in ops:
            if kind == 0:
                mdb.record_load(pc, addr)
                model.load(pc, addr)
            elif kind == 1:
                mdb.record_store(addr)
                model.store(addr)
            else:
                assert mdb.can_reuse(pc, addr) == model.can_reuse(pc, addr)
