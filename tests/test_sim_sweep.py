"""Tests for the generic parameter-sweep utility."""

import pytest

from repro.sim.sweep import Sweep, SweepRow
from repro.workloads import WorkloadSuite

SUITE = WorkloadSuite()


def small_sweep(**kwargs):
    defaults = dict(
        workloads=[("compress",)],
        grid={"active_list_size": [32, 64]},
        commit_target=300,
    )
    defaults.update(kwargs)
    return Sweep(**defaults)


class TestGrid:
    def test_points_cartesian(self):
        sweep = small_sweep(grid={"active_list_size": [32, 64], "fetch_total": [8, 16]})
        points = sweep.points()
        assert len(points) == 4
        assert {"active_list_size", "fetch_total"} == set(points[0])

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            small_sweep(grid={"warp_drive": [1]})

    def test_unknown_machine_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown machine"):
            small_sweep(machine="mega.9.99")

    def test_unknown_features_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown features"):
            small_sweep(features="REC/XYZ")

    def test_empty_grid_single_point(self):
        sweep = small_sweep(grid={})
        assert sweep.points() == [{}]


class TestRun:
    def test_rows_cover_grid_times_workloads(self):
        sweep = small_sweep(workloads=[("compress",), ("vortex",)])
        rows = sweep.run(SUITE)
        assert len(rows) == 4  # 2 sizes × 2 workloads
        assert all(isinstance(r, SweepRow) and r.ipc > 0 for r in rows)

    def test_params_attached(self):
        rows = small_sweep().run(SUITE)
        assert {r.params["active_list_size"] for r in rows} == {32, 64}

    def test_summarize_averages(self):
        sweep = small_sweep(workloads=[("compress",), ("vortex",)])
        rows = sweep.run(SUITE)
        summary = sweep.summarize(rows)
        assert len(summary) == 2
        assert all(v > 0 for v in summary.values())

    def test_summarize_keys_ordered_and_deterministic(self):
        sweep = small_sweep(
            grid={"fetch_total": [16, 8], "active_list_size": [64, 32]},
        )
        rows = sweep.run(SUITE)
        summary = sweep.summarize(rows)
        # Keys follow grid declaration order (fetch_total before
        # active_list_size) and points appear in cartesian (insertion) order.
        assert list(summary) == [
            (("fetch_total", 16), ("active_list_size", 64)),
            (("fetch_total", 16), ("active_list_size", 32)),
            (("fetch_total", 8), ("active_list_size", 64)),
            (("fetch_total", 8), ("active_list_size", 32)),
        ]
        assert summary == sweep.summarize(sweep.run(SUITE))


class TestCsv:
    def test_csv_shape(self):
        sweep = small_sweep()
        rows = sweep.run(SUITE)
        csv = sweep.to_csv(rows)
        lines = csv.strip().splitlines()
        assert len(lines) == 1 + len(rows)
        assert lines[0].startswith("active_list_size,workload,ipc")
        assert all(line.count(",") == lines[0].count(",") for line in lines)

    def test_multiprogram_workload_label(self):
        sweep = small_sweep(workloads=[("gcc", "go")], grid={})
        rows = sweep.run(SUITE)
        assert "gcc+go" in sweep.to_csv(rows)
