"""Tests for binary program images (save/load via the real encoding)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.emulator import Emulator
from repro.isa import assemble
from repro.isa.loader import LoaderError, load_program, save_program
from repro.workloads import GeneratorConfig, generate_program

SRC = """
        .data
vals:   .word 10, -3, 0x20
buf:    .space 16
        .text
main:   movi r1, vals
        ld   r2, 0(r1)
        ld   r3, 8(r1)
        add  r4, r2, r3
        jsr  ra, helper
        st   r4, 24(r1)
        halt
helper: addi r4, r4, 1
        ret  (ra)
"""


def roundtrip(program):
    return load_program(save_program(program), name=program.name)


class TestRoundTrip:
    def test_structure_preserved(self):
        prog = assemble(SRC, name="t")
        out = roundtrip(prog)
        assert out.text_base == prog.text_base
        assert out.data_base == prog.data_base
        assert out.entry == prog.entry
        assert out.data == prog.data
        assert out.labels == prog.labels
        assert out.instructions == prog.instructions

    def test_reloaded_program_executes_identically(self):
        prog = assemble(SRC, name="t")
        a, b = Emulator(prog), Emulator(roundtrip(prog))
        a.run_to_halt()
        b.run_to_halt()
        assert a.state.regs == b.state.regs
        assert a.state.memory == b.state.memory

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_generated_programs_roundtrip(self, seed):
        config = GeneratorConfig(seed=seed, iterations=20, body_size=12)
        prog = generate_program(config)
        out = roundtrip(prog)
        assert out.instructions == prog.instructions


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(LoaderError):
            load_program(b"NOPE" + b"\x00" * 64)

    def test_trailing_garbage(self):
        image = save_program(assemble("main: halt"))
        with pytest.raises(LoaderError):
            load_program(image + b"\x00")

    def test_unencodable_immediate_rejected(self):
        # 'movi' with a wide immediate is valid in decoded form but not
        # in the 16-bit binary encoding — save must refuse loudly.
        prog = assemble("main: movi r1, 0x123456\nhalt")
        with pytest.raises(LoaderError):
            save_program(prog)
