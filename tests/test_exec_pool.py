"""Orchestration engine: fault tolerance, retries, parallel == serial."""

import pytest

from repro.exec import Chaos, ExecutionError, Executor, Job, ProgressReporter
from repro.exec.jobs import stats_to_payload
from repro.sim.runner import RunSpec, run_matrix
from repro.sim.sweep import Sweep
from repro.workloads import WorkloadSuite

SUITE = WorkloadSuite()


def tiny_spec(**kwargs):
    defaults = dict(workload=("compress",), commit_target=250)
    defaults.update(kwargs)
    return RunSpec(**defaults)


SPECS = [
    tiny_spec(),
    tiny_spec(workload=("vortex",), features="TME"),
    tiny_spec(workload=("gcc", "go")),
]


class TestParallelEqualsSerial:
    def test_run_matrix_identical(self):
        serial = run_matrix(SPECS, SUITE)
        parallel = run_matrix(SPECS, SUITE, executor=Executor(jobs=2))
        assert [stats_to_payload(r.stats) for r in serial] == [
            stats_to_payload(r.stats) for r in parallel
        ]
        assert [r.per_program_ipc for r in serial] == [r.per_program_ipc for r in parallel]

    def test_order_preserved(self):
        results = Executor(jobs=3).map(SPECS, suite=SUITE)
        assert [r.spec.workload for r in results] == [s.workload for s in SPECS]

    def test_sweep_identical(self):
        sweep = Sweep(
            workloads=[("compress",), ("vortex",)],
            grid={"active_list_size": [32, 64]},
            commit_target=250,
        )
        serial = sweep.run(SUITE)
        parallel = sweep.run(SUITE, executor=Executor(jobs=2))
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert a.params == b.params and a.workload == b.workload
            assert a.ipc == b.ipc and a.cycles == b.cycles

    def test_experiment_identical(self):
        from repro.sim.experiments import figure3

        kwargs = dict(kernels=["compress", "go"], variants=["SMT", "TME"],
                      commit_target=250, suite=SUITE)
        assert figure3(**kwargs) == figure3(executor=Executor(jobs=2), **kwargs)


class TestFaultTolerance:
    def test_failing_job_is_retried_then_succeeds(self):
        job = Job(spec=tiny_spec(), chaos=Chaos(fail_first_attempts=1))
        outcome = Executor(jobs=2, retries=2).run([job], suite=SUITE)[0]
        assert outcome.ok and outcome.attempts == 2

    def test_exhausted_retries_yield_structured_failure(self):
        job = Job(spec=tiny_spec(), chaos=Chaos(fail_first_attempts=99))
        outcome = Executor(jobs=2, retries=1).run([job], suite=SUITE)[0]
        assert not outcome.ok
        assert outcome.failure.kind == "error"
        assert outcome.failure.attempts == 2
        assert "injected failure" in outcome.failure.message

    def test_failure_does_not_abort_batch(self):
        jobs = [
            Job(spec=SPECS[0]),
            Job(spec=SPECS[1], chaos=Chaos(fail_first_attempts=99)),
            Job(spec=SPECS[2]),
        ]
        outcomes = Executor(jobs=2, retries=0).run(jobs, suite=SUITE)
        assert [o.ok for o in outcomes] == [True, False, True]

    def test_worker_crash_surfaces_as_crash(self):
        job = Job(spec=tiny_spec(), chaos=Chaos(exit_first_attempts=99))
        outcome = Executor(jobs=2, retries=1).run([job], suite=SUITE)[0]
        assert not outcome.ok and outcome.failure.kind == "crash"

    def test_crash_recovers_on_retry(self):
        job = Job(spec=tiny_spec(), chaos=Chaos(exit_first_attempts=1))
        outcome = Executor(jobs=2, retries=1).run([job], suite=SUITE)[0]
        assert outcome.ok and outcome.attempts == 2

    def test_timeout_kills_and_reports(self):
        job = Job(
            spec=tiny_spec(),
            chaos=Chaos(sleep_first_attempts=99, sleep_seconds=30.0),
        )
        outcome = Executor(jobs=2, retries=0, timeout=0.5).run([job], suite=SUITE)[0]
        assert not outcome.ok and outcome.failure.kind == "timeout"
        assert outcome.elapsed < 10.0

    def test_timeout_recovers_on_retry(self):
        job = Job(
            spec=tiny_spec(),
            chaos=Chaos(sleep_first_attempts=1, sleep_seconds=30.0),
        )
        outcome = Executor(jobs=2, retries=1, timeout=0.5).run([job], suite=SUITE)[0]
        assert outcome.ok and outcome.attempts == 2

    def test_map_raises_execution_error(self):
        jobs = [Job(spec=tiny_spec(), chaos=Chaos(fail_first_attempts=99))]
        with pytest.raises(ExecutionError) as excinfo:
            Executor(jobs=2, retries=0).map(jobs, suite=SUITE)
        assert len(excinfo.value.failures) == 1

    def test_serial_path_retries_too(self):
        job = Job(spec=tiny_spec(), chaos=Chaos(fail_first_attempts=1))
        outcome = Executor(jobs=1, retries=1).run([job], suite=SUITE)[0]
        assert outcome.ok and outcome.attempts == 2

    def test_serial_path_structured_failure(self):
        job = Job(spec=tiny_spec(), chaos=Chaos(fail_first_attempts=99))
        outcome = Executor(jobs=1, retries=0).run([job], suite=SUITE)[0]
        assert not outcome.ok and outcome.failure.kind == "error"


class TestProgress:
    def test_events_cover_batch(self, tmp_path):
        events = []
        reporter = ProgressReporter(callback=events.append)
        Executor(jobs=2, cache=tmp_path, progress=reporter).run(SPECS, suite=SUITE)
        assert len(events) == len(SPECS)
        assert events[-1].done == events[-1].total == len(SPECS)
        assert events[-1].cache_hits == 0

    def test_cache_hits_counted(self, tmp_path):
        Executor(cache=tmp_path).run(SPECS, suite=SUITE)
        reporter = ProgressReporter()
        Executor(jobs=2, cache=tmp_path, progress=reporter).run(SPECS, suite=SUITE)
        event = reporter.event()
        assert event.cache_hits == len(SPECS)
        assert event.done == len(SPECS)

    def test_reporter_spans_batches(self):
        reporter = ProgressReporter()
        ex = Executor(progress=reporter)
        ex.run([tiny_spec()], suite=SUITE)
        ex.run([tiny_spec(workload=("vortex",))], suite=SUITE)
        assert reporter.event().total == 2
        assert reporter.event().done == 2

    def test_format_line(self):
        from repro.exec import format_line
        from repro.exec.progress import ProgressEvent

        line = format_line(
            ProgressEvent(done=3, total=10, cache_hits=2, failures=1,
                          elapsed=65.0, eta=30.0)
        )
        assert "jobs 3/10" in line and "2 cached" in line
        assert "1 failed" in line and "01:05" in line and "00:30" in line


class TestJobValidation:
    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError):
            Job(spec=tiny_spec(), overrides=(("warp_drive", 9),))

    def test_specs_accepted_directly(self):
        outcomes = Executor().run([tiny_spec()], suite=SUITE)
        assert outcomes[0].ok and outcomes[0].job.spec == tiny_spec()
