"""The runtime share sanitizer: watched containers, seal semantics,
static-map cross-checking, and batch parity under instrumentation.

The contract: a sanitized batch is *bit-identical* to a plain one
(watched containers are real dicts/deques), build-phase mutation is
free, sealed mutation is judged against the static ownership map, and
``Program`` images are fingerprint-verified rather than proxied.
"""

import pytest

from repro.analysis.effects.share import (
    SANITIZE_ENV,
    ShareSanitizer,
    _program_fingerprint,
    sanitizer_from_env,
)
from repro.exec.jobs import Job, stats_to_payload
from repro.isa.program import Program
from repro.sim.batch import BatchRunner
from repro.sim.runner import RunSpec
from repro.workloads.suite import WorkloadSuite

GUARDED_POLICY = {("DecodeStore", "_programs"): "shared-mutable-guarded"}
IMMUTABLE_POLICY = {("WorkloadSuite", "_cache"): "batch-shared-immutable"}


class Holder:
    """Anything with a dict-ish and a deque-ish attribute."""

    def __init__(self):
        self._programs = {"seed": 1}
        from collections import deque

        self._fifo = deque([1, 2])
        self._cache = {}


# ----------------------------------------------------------------------
# Watched containers
# ----------------------------------------------------------------------
class TestWatchedContainers:
    def test_watched_dict_preserves_contents_and_reads(self):
        sanitizer = ShareSanitizer(policy={})
        holder = Holder()
        sanitizer.watch_dict(holder, "_programs", ("DecodeStore", "_programs"))
        assert isinstance(holder._programs, dict)
        assert holder._programs == {"seed": 1}
        assert holder._programs.get("seed") == 1
        assert sanitizer.counts()["build_mutations"] == 0  # reads are free

    def test_unsealed_mutations_are_build_phase(self):
        sanitizer = ShareSanitizer(policy={})
        holder = Holder()
        sanitizer.watch_store(holder)
        holder._programs["warm"] = 2
        holder._fifo.append(3)
        holder._fifo.popleft()
        assert sanitizer.counts()["build_mutations"] == 3
        assert sanitizer.counts()["violations"] == 0

    def test_sealed_guarded_mutation_is_blessed(self):
        sanitizer = ShareSanitizer(policy=GUARDED_POLICY)
        holder = Holder()
        sanitizer.watch_dict(holder, "_programs", ("DecodeStore", "_programs"))
        sanitizer.seal()
        holder._programs["hot"] = 3
        assert sanitizer.counts()["blessed_mutations"] == 1
        assert sanitizer.counts()["violations"] == 0
        sanitizer.assert_quiet()

    def test_sealed_immutable_mutation_is_a_violation(self):
        sanitizer = ShareSanitizer(policy=IMMUTABLE_POLICY)
        holder = Holder()
        sanitizer.watch_dict(holder, "_cache", ("WorkloadSuite", "_cache"))
        sanitizer.seal()
        holder._cache["bogus"] = 1
        (violation,) = sanitizer.report()
        assert violation.kind == "shared-mutation"
        assert "WorkloadSuite._cache" in violation.message
        with pytest.raises(AssertionError, match="1 violation"):
            sanitizer.assert_quiet()

    def test_sealed_unknown_label_is_a_violation(self):
        sanitizer = ShareSanitizer(policy=None)
        holder = Holder()
        sanitizer.watch_dict(holder, "_programs", ("DecodeStore", "_programs"))
        sanitizer.seal()
        holder._programs.pop("seed")
        assert sanitizer.counts()["violations"] == 1

    def test_setdefault_on_present_key_is_a_pure_read(self):
        sanitizer = ShareSanitizer(policy=IMMUTABLE_POLICY)
        holder = Holder()
        sanitizer.watch_dict(holder, "_cache", ("WorkloadSuite", "_cache"))
        holder._cache["k"] = 1
        sanitizer.seal()
        assert holder._cache.setdefault("k", 2) == 1
        assert sanitizer.counts()["violations"] == 0
        holder._cache.setdefault("fresh", 3)
        assert sanitizer.counts()["violations"] == 1

    def test_rewatching_rebinds_to_the_live_sanitizer(self):
        stale = ShareSanitizer(policy={})
        live = ShareSanitizer(policy={})
        holder = Holder()
        stale.watch_store(holder)
        live.watch_store(holder)
        live.seal()
        holder._programs["x"] = 1
        assert stale.counts()["violations"] == 0
        assert live.counts()["violations"] == 1


# ----------------------------------------------------------------------
# Program fingerprints
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_untouched_program_passes_unseal(self):
        sanitizer = ShareSanitizer(policy={})
        suite = Holder()
        suite._cache = {("p",): Program(name="p", instructions=[])}
        sanitizer.watch_suite(suite)
        sanitizer.seal()
        sanitizer.unseal()
        assert sanitizer.counts()["violations"] == 0
        assert sanitizer.counts()["fingerprinted_programs"] == 1

    def test_mutated_program_is_reported_at_unseal(self):
        sanitizer = ShareSanitizer(policy={})
        program = Program(name="p", instructions=[], labels={"main": 0x1000})
        suite = Holder()
        suite._cache = {("p",): program}
        sanitizer.watch_suite(suite)
        sanitizer.seal()
        program.labels["sneaky"] = 0x2000
        sanitizer.unseal()
        (violation,) = sanitizer.report()
        assert violation.kind == "program-mutated"
        assert "'p'" in violation.message

    def test_fingerprint_covers_data_and_entry(self):
        base = Program(name="p", instructions=[], data=b"ab")
        assert _program_fingerprint(base) != _program_fingerprint(
            Program(name="p", instructions=[], data=b"xy")
        )
        assert _program_fingerprint(base) != _program_fingerprint(
            Program(name="p", instructions=[], data=b"ab", entry=0x1040)
        )


# ----------------------------------------------------------------------
# Env wiring and the static-facts policy
# ----------------------------------------------------------------------
class TestWiring:
    def test_env_off_installs_nothing(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        assert sanitizer_from_env() is None

    def test_env_on_loads_the_static_policy(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        sanitizer = sanitizer_from_env()
        assert sanitizer is not None
        assert sanitizer.policy[("DecodeStore", "_programs")] == (
            "shared-mutable-guarded"
        )
        assert sanitizer.policy[("WorkloadSuite", "_cache")] == (
            "batch-shared-immutable"
        )


# ----------------------------------------------------------------------
# End to end: a sanitized batch is bit-identical and quiet
# ----------------------------------------------------------------------
SPECS = [
    RunSpec(workload=("li",), features="REC/RS/RU", commit_target=400),
    RunSpec(workload=("compress",), features="REC", commit_target=400),
]


def run_batch(monkeypatch, sanitize):
    if sanitize:
        monkeypatch.setenv(SANITIZE_ENV, "1")
    else:
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
    jobs = [Job(spec=spec) for spec in SPECS]
    runner = BatchRunner(jobs, suite=WorkloadSuite())
    return runner.run()


def test_sanitized_batch_is_bit_identical_and_quiet(monkeypatch):
    plain = run_batch(monkeypatch, sanitize=False)
    sanitized = run_batch(monkeypatch, sanitize=True)
    assert [p.ok for p in plain] == [p.ok for p in sanitized] == [True, True]
    for before, after in zip(plain, sanitized):
        assert stats_to_payload(before.result.stats) == (
            stats_to_payload(after.result.stats)
        )
