"""Tests for TME context partitions and the stats counters."""

import pytest

from repro.pipeline.context import CtxState, HardwareContext
from repro.pipeline.regfile import PhysicalRegisterFile
from repro.stats import SimStats
from repro.tme import Partition


def make_contexts(n=4):
    rf = PhysicalRegisterFile(64, 64)
    return [HardwareContext(i, rf, 16) for i in range(n)]


class TestPartition:
    def test_primary_must_belong(self):
        ctxs = make_contexts()
        outsider = make_contexts(1)[0]
        with pytest.raises(ValueError):
            Partition(ctxs, outsider)

    def test_spare_mask_excludes_primary(self):
        ctxs = make_contexts(4)
        p = Partition(ctxs, ctxs[0])
        assert p.spare_mask == 0b1110

    def test_spare_mask_tracks_primary_change(self):
        ctxs = make_contexts(4)
        p = Partition(ctxs, ctxs[0])
        p.set_primary(ctxs[2])
        assert p.spare_mask == 0b1011

    def test_set_primary_requires_membership(self):
        ctxs = make_contexts(4)
        p = Partition(ctxs, ctxs[0])
        with pytest.raises(ValueError):
            p.set_primary(make_contexts(1)[0])

    def test_idle_context_lookup(self):
        ctxs = make_contexts(3)
        p = Partition(ctxs, ctxs[0])
        assert p.idle_context() is ctxs[1]
        ctxs[1].state = CtxState.ACTIVE
        assert p.idle_context() is ctxs[2]
        ctxs[2].state = CtxState.ACTIVE
        assert p.idle_context() is None

    def test_lru_inactive_ordering(self):
        ctxs = make_contexts(4)
        p = Partition(ctxs, ctxs[0])
        for i, when in ((1, 50), (2, 10), (3, 30)):
            ctxs[i].state = CtxState.INACTIVE
            ctxs[i].inactive_since = when
        assert p.lru_inactive() is ctxs[2]

    def test_lru_inactive_skips_pinned(self):
        ctxs = make_contexts(3)
        p = Partition(ctxs, ctxs[0])
        ctxs[1].state = CtxState.INACTIVE
        ctxs[1].inactive_since = 1
        ctxs[1].reuse_pins.add(99)
        ctxs[2].state = CtxState.INACTIVE
        ctxs[2].inactive_since = 2
        assert p.lru_inactive() is ctxs[2]
        assert p.lru_inactive(allow_pinned=True) is ctxs[1]

    def test_find_path_with_start(self):
        from repro.isa.instruction import Instruction
        from repro.isa.opcodes import Op
        from repro.pipeline.uop import Uop

        ctxs = make_contexts(3)
        p = Partition(ctxs, ctxs[0])
        alt = ctxs[1]
        alt.state = CtxState.INACTIVE
        uop = Uop(Instruction(Op.NOP), 0x2000, alt.id, None)
        pos = alt.active_list.append(uop)
        alt.note_first_entry(uop, pos)
        assert p.find_path_with_start(0x2000) is alt
        assert p.find_path_with_start(0x3000) is None


class TestSimStats:
    def test_percentages_guard_divzero(self):
        s = SimStats()
        assert s.ipc == 0.0
        assert s.pct_recycled == 0.0
        assert s.branch_miss_coverage == 0.0
        assert s.merges_per_alt_path == 0.0
        assert s.pct_back_merges == 0.0

    def test_ipc(self):
        s = SimStats(cycles=100, committed=250)
        assert s.ipc == 2.5

    def test_recycle_percentages(self):
        s = SimStats(renamed=200, renamed_recycled=50, renamed_reused=10)
        assert s.pct_recycled == 25.0
        assert s.pct_reused == 5.0

    def test_coverage(self):
        s = SimStats(mispredicts=40, mispredicts_covered=30)
        assert s.branch_miss_coverage == 75.0

    def test_prediction_accuracy(self):
        s = SimStats(cond_branches_resolved=100, mispredicts=8)
        assert s.branch_prediction_accuracy == 92.0

    def test_table1_row_keys(self):
        row = SimStats().table1_row()
        assert len(row) == 8

    def test_summary_contains_key_figures(self):
        s = SimStats(cycles=10, committed=20, renamed=30)
        text = s.summary()
        assert "IPC=2.000" in text and "renamed=30" in text

    def test_instance_ipc(self):
        s = SimStats(cycles=100)
        s.per_instance_committed[0] = 150
        s.per_instance_cycles[0] = 50
        assert s.instance_ipc(0) == 3.0
        assert s.instance_ipc(9) == 0.0
