"""Differential test: event-driven scheduler vs the old scan-based one.

The wakeup rework replaced "rescan every queue entry every cycle" with
per-register waiter lists and an incrementally maintained ready pool.
That optimization must be *behaviour-free*: this test keeps the old
readiness logic alive as a ``ReferenceQueue`` test double, runs the
same workloads through both queue implementations, and asserts the
issue streams are identical uop-for-uop.

The double implements the pre-rework semantics directly: membership in
an insertion-ordered dict, and ``take_ready`` as a full scan for
resident RENAMED uops whose every source register is ready at the
current cycle, oldest (lowest seq) first.  ``requeue`` is a no-op —
the next cycle's scan naturally finds blocked uops again — and no
waiters are ever registered, so ``regfile.write`` wakes nothing.
"""

from typing import List

import pytest

import repro.pipeline.stages.state as stage_state
from repro.pipeline import Core
from repro.pipeline.events import Issued
from repro.pipeline.uop import Uop, UopState
from repro.sim.runner import RunSpec
from repro.workloads.suite import WorkloadSuite


class ReferenceQueue:
    """The old scan-the-world instruction queue (test double)."""

    def __init__(self, name, size, regfile):
        self.name = name
        self.size = size
        self.regfile = regfile
        self._members = {}
        # Counter attributes the profiler reads on the real queue.
        self.wakeups = 0
        self.ready_polls = 0
        self.ready_returned = 0

    def has_room(self):
        return len(self._members) < self.size

    def occupancy(self):
        return len(self._members)

    def __contains__(self, uop):
        return uop in self._members

    def insert(self, uop):
        assert len(self._members) < self.size, f"{self.name} queue overflow"
        self._members[uop] = None

    def remove(self, uop):
        assert uop in self._members, f"removing non-resident uop {uop!r}"
        del self._members[uop]

    def remove_squashed(self):
        before = len(self._members)
        self._members = {u: None for u in self._members if not u.squashed}
        return before - len(self._members)

    def clear(self):
        self._members.clear()

    def _wake(self, uop):  # pragma: no cover - no waiters are registered
        raise AssertionError("ReferenceQueue never registers waiters")

    def take_ready(self, cycle):
        ready_cycles = self.regfile.ready_cycle
        out = [
            u
            for u in self._members
            if u.state is UopState.RENAMED
            and all(ready_cycles[p] <= cycle for p in u.phys_srcs)
        ]
        out.sort(key=lambda u: u.seq)
        self.ready_polls += 1
        self.ready_returned += len(out)
        return out

    def requeue(self, uops):
        pass  # next cycle's scan rediscovers them


def run_and_capture(spec: RunSpec, queue_cls=None):
    """Run ``spec``; return (stats, issue stream as (cycle, ctx, pc))."""
    if queue_cls is not None:
        real = stage_state.InstructionQueue
        stage_state.InstructionQueue = queue_cls
    try:
        core = Core(spec.build_config())
    finally:
        if queue_cls is not None:
            stage_state.InstructionQueue = real
    core.load(
        WorkloadSuite().mix(spec.workload), commit_target=spec.commit_target
    )
    issued: List[tuple] = []
    core.bus.subscribe(
        Issued, lambda ev: issued.append((ev.cycle, ev.uop.ctx, ev.uop.pc))
    )
    stats = core.run(max_cycles=spec.max_cycles)
    return stats, issued


WORKLOADS = sorted(WorkloadSuite().names)


@pytest.mark.parametrize("kernel", WORKLOADS)
def test_issue_stream_identical_with_recycling(kernel):
    spec = RunSpec(workload=(kernel,), features="REC/RS/RU", commit_target=500)
    stats_new, issued_new = run_and_capture(spec)
    stats_ref, issued_ref = run_and_capture(spec, queue_cls=ReferenceQueue)
    assert issued_new == issued_ref, f"{kernel}: issue order diverged"
    assert stats_new.cycles == stats_ref.cycles
    assert stats_new.committed == stats_ref.committed
    assert stats_new.squashed == stats_ref.squashed


@pytest.mark.parametrize("kernel", ["compress", "li"])
def test_issue_stream_identical_tme_only(kernel):
    """The no-recycle path (plain TME forking) is pinned too."""
    spec = RunSpec(workload=(kernel,), features="TME", commit_target=500)
    stats_new, issued_new = run_and_capture(spec)
    stats_ref, issued_ref = run_and_capture(spec, queue_cls=ReferenceQueue)
    assert issued_new == issued_ref
    assert stats_new.cycles == stats_ref.cycles
    assert stats_new.committed == stats_ref.committed
