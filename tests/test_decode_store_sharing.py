"""Shared :class:`DecodeStore` semantics under lockstep batching.

Several sibling cores hold :class:`DecodedUopCache` counter views over
one store.  The invariants: structural operations from one view (
``invalidate_program``, ``clear``) must not corrupt a sibling
mid-round; ``capacity == 0`` disables storage for the whole batch while
the simulated machine is unaffected; and every counter attributes to
the view that performed the lookup, not to whoever warmed the store.
"""

import pytest

from repro.exec.jobs import Job
from repro.pipeline.uopcache import DecodedUopCache, DecodeStore
from repro.sim.batch import BatchRunner
from repro.sim.runner import RunSpec
from repro.workloads.suite import WorkloadSuite


@pytest.fixture(scope="module")
def suite():
    return WorkloadSuite()


@pytest.fixture()
def programs(suite):
    return suite.program("compress", 0), suite.program("li", 1)


class TestSharedStoreStructure:
    def test_views_share_records(self, programs):
        compress, _ = programs
        store = DecodeStore(64)
        a = DecodedUopCache(64, store=store)
        b = DecodedUopCache(64, store=store)
        pc = compress.text_base
        dec = a.lookup(compress, pc)  # a decodes...
        assert b.lookup(compress, pc) is dec  # ...b hits the same record
        assert a.misses == 1 and a.hits == 0
        assert b.misses == 0 and b.hits == 1

    def test_capacity_mismatch_rejected(self):
        store = DecodeStore(64)
        with pytest.raises(ValueError, match="capacity"):
            DecodedUopCache(128, store=store)

    def test_invalidate_program_empties_sibling_views_in_place(self, programs):
        compress, _ = programs
        store = DecodeStore(64)
        a = DecodedUopCache(64, store=store)
        b = DecodedUopCache(64, store=store)
        pc = compress.text_base
        a.lookup(compress, pc)
        view_b = b.program_view(compress)  # b's fetch loop holds the view
        assert pc in view_b
        dropped = a.invalidate_program(compress)
        assert dropped == 1
        # The sibling's held dict was emptied in place — no stale record,
        # and its next probe misses into a clean re-registration.
        assert pc not in view_b
        assert b.lookup(compress, pc) is not None
        assert b.misses == 1
        assert len(store) == 1

    def test_capacity_zero_disables_storage_for_the_batch(self, programs):
        compress, _ = programs
        store = DecodeStore(0)
        a = DecodedUopCache(0, store=store)
        b = DecodedUopCache(0, store=store)
        pc = compress.text_base
        assert a.lookup(compress, pc) is not None
        assert b.lookup(compress, pc) is not None
        assert len(store) == 0  # nothing ever stored
        assert a.misses == 1 and b.misses == 1  # every lookup decodes
        assert a.hits == 0 and b.hits == 0

    def test_counters_attribute_to_the_right_kernel(self, programs):
        """Two views over one store, each driving a different kernel:
        decode_counts name the kernel the *owning* view decoded, and a
        view that only ever touched one kernel never shows the other."""
        compress, li = programs
        store = DecodeStore(4096)
        a = DecodedUopCache(4096, store=store)
        b = DecodedUopCache(4096, store=store)
        for pc in range(compress.text_base, compress.text_base + 5 * 8, 8):
            a.lookup(compress, pc)
        for pc in range(li.text_base, li.text_base + 3 * 8, 8):
            b.lookup(li, pc)
        assert set(a.decode_counts) == {compress.name}
        assert set(b.decode_counts) == {li.name}
        assert a.decode_counts[compress.name] == 5
        assert b.decode_counts[li.name] == 3


class TestBatchAttribution:
    def test_batch_uop_cache_counters_attribute_per_point(self, suite):
        """In a real lockstep batch, every point's SimStats decode
        counts name only that point's own kernel, and whole-batch
        conservation holds: total decodes equal what one cold run of
        each distinct kernel needs (each program decodes once per
        process, not once per point)."""
        specs = [
            RunSpec(workload=(kernel,), commit_target=400)
            for kernel in ("compress", "compress", "li", "li")
        ]
        runner = BatchRunner([Job(spec=s) for s in specs], suite=suite)
        points = runner.run()
        assert all(p.error is None for p in points)
        for spec, point in zip(specs, points):
            stats = point.result.stats
            assert set(stats.decode_counts) <= {spec.workload[0]}
            lookups = stats.uop_cache_hits + stats.uop_cache_misses
            assert lookups > 0  # every point did its own fetching
        # Conservation: across the batch each distinct (kernel, pc) was
        # decoded exactly once, so summed decode counts match a cold
        # serial run of one compress + one li point.
        batched_total = {}
        for point in points:
            for name, count in point.result.stats.decode_counts.items():
                batched_total[name] = batched_total.get(name, 0) + count
        for kernel in ("compress", "li"):
            solo = BatchRunner(
                [Job(spec=RunSpec(workload=(kernel,), commit_target=400))],
                suite=suite,
            ).run()[0]
            assert batched_total[kernel] <= solo.result.stats.decode_counts[kernel]
