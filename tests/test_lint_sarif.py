"""Golden SARIF 2.1.0 snapshot: the exported document is byte-stable.

GitHub code scanning diffs SARIF uploads, so rule order (registry code
order with the DET000 pseudo-rule appended last), result order
(blocking before baselined, each in finding sort order) and the level
mapping must not drift silently.  The fixture is regenerated with::

    PYTHONPATH=src python tests/test_lint_sarif.py

after a deliberate registry change.
"""

import json
from pathlib import Path

from repro.analysis.lint import Finding, LintResult, all_rules, to_sarif
from repro.analysis.lint.engine import SYNTAX_ERROR_CODE

GOLDEN = Path(__file__).resolve().parent / "golden" / "lint_sarif_seed.json"


def synthetic_result() -> LintResult:
    """One finding per family in each severity bucket, pre-sorted the
    way ``run_lint`` sorts."""
    blocking = [
        Finding("src/a.py", 0, SYNTAX_ERROR_CODE, "syntax error: bad token"),
        Finding("src/b.py", 7, "DET004", "core module monkey-patched"),
        Finding("src/c.py", 12, "SHR002",
                "inlined region 'r1' drifted from spec spec_one"),
        Finding("src/c.py", 31, "SHR004",
                "per-core CoreState escapes into batch-shared "
                "DecodeStore._programs"),
    ]
    baselined = [
        Finding("src/d.py", 3, "CONC001", "unguarded access to S.items"),
        Finding("src/e.py", 9, "SHR001",
                "run-phase mutation of batch-shared WorkloadSuite._cache"),
        Finding("src/e.py", 22, "SHR005", "mutable default argument in f"),
    ]
    return LintResult(
        findings=blocking + baselined,
        blocking=blocking,
        baselined=baselined,
    )


def test_sarif_document_matches_golden_snapshot():
    document = to_sarif(synthetic_result())
    expected = json.loads(GOLDEN.read_text())
    assert document == expected, (
        "SARIF output drifted from tests/golden/lint_sarif_seed.json; "
        "if the change is deliberate, regenerate with "
        "`PYTHONPATH=src python tests/test_lint_sarif.py`"
    )


def test_rule_order_is_registry_order_plus_syntax_pseudo_rule():
    rules = to_sarif(synthetic_result())["runs"][0]["tool"]["driver"]["rules"]
    ids = [rule["id"] for rule in rules]
    assert ids == [r.code for r in all_rules()] + [SYNTAX_ERROR_CODE]
    # The registry is sorted, so families arrive in a stable block order.
    assert ids[-1] == "DET000"
    assert ids == sorted(ids[:-1]) + ["DET000"]


def test_levels_follow_blocking_semantics():
    document = to_sarif(synthetic_result())
    run = document["runs"][0]
    by_id = {rule["id"]: rule for rule in run["tool"]["driver"]["rules"]}
    assert by_id["SHR002"]["defaultConfiguration"]["level"] == "error"
    assert by_id["SHR004"]["defaultConfiguration"]["level"] == "error"
    for code in ("SHR001", "SHR003", "SHR005"):
        assert by_id[code]["defaultConfiguration"]["level"] == "warning"
    levels = [result["level"] for result in run["results"]]
    assert levels == ["error"] * 4 + ["warning"] * 3


def test_every_registered_family_is_present():
    ids = {
        rule["id"]
        for rule in to_sarif(synthetic_result())
        ["runs"][0]["tool"]["driver"]["rules"]
    }
    for family in ("DET", "CONC", "SHR"):
        assert any(code.startswith(family) for code in ids), family


if __name__ == "__main__":  # regenerate the golden fixture
    GOLDEN.write_text(
        json.dumps(to_sarif(synthetic_result()), indent=2, sort_keys=True)
        + "\n"
    )
    print("wrote", GOLDEN)
