"""Tests for assembler pseudo-instructions."""

import pytest

from repro.emulator import Emulator
from repro.isa import assemble
from repro.isa.assembler import AssemblerError, PSEUDO_OPS
from repro.isa.opcodes import Op


def run(src):
    emu = Emulator(assemble(src))
    emu.run_to_halt()
    return emu.state.regs


class TestExpansion:
    def test_mov(self):
        regs = run("main: movi r1, 42\nmov r2, r1\nhalt")
        assert regs[2] == 42

    def test_fmov(self):
        prog = assemble(".data\nx: .double 2.5\n.text\nmovi r1, x\nfld f1, 0(r1)\nfmov f2, f1\nhalt")
        emu = Emulator(prog)
        emu.run_to_halt()
        assert emu.state.regs[32 + 2] == 2.5

    def test_neg(self):
        regs = run("main: movi r1, 7\nneg r2, r1\nhalt")
        assert regs[2] == -7

    def test_not(self):
        regs = run("main: movi r1, 0\nnot r2, r1\nhalt")
        assert regs[2] == -1

    def test_clr(self):
        regs = run("main: movi r1, 99\nclr r1\nhalt")
        assert regs[1] == 0

    def test_inc_dec(self):
        regs = run("main: movi r1, 10\ninc r1\ninc r1\ndec r1\nhalt")
        assert regs[1] == 11

    def test_bz_bnz(self):
        regs = run(
            """
            main: movi r1, 0
                  bz   r1, taken
                  movi r2, 1
            taken: movi r3, 5
                  bnz  r3, done
                  movi r2, 2
            done: halt
            """
        )
        assert regs[2] == 0 and regs[3] == 5

    def test_j(self):
        regs = run("main: j over\nmovi r1, 1\nover: movi r2, 2\nhalt")
        assert regs[1] == 0 and regs[2] == 2


class TestStructure:
    def test_pseudo_is_single_instruction(self):
        """Labels after pseudos must land exactly one word later."""
        prog = assemble("a: mov r1, r2\nb: halt")
        assert prog.labels["b"] - prog.labels["a"] == 4

    def test_expansion_uses_real_opcodes(self):
        prog = assemble("mov r1, r2")
        assert prog.instructions[0].op is Op.OR

    def test_wrong_arity_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("mov r1")
        with pytest.raises(AssemblerError):
            assemble("clr r1, r2")

    def test_all_pseudos_have_templates(self):
        for name, (arity, template) in PSEUDO_OPS.items():
            for i in range(arity):
                assert "{%d}" % i in template, name
