"""Edge-case and property tests for analysis/killsets.py.

The cases the original tests skirted: indirect branches (flow
successors fan out to every labelled block), a block that loops back to
itself, and a reuse window whose trace ends in a store.  The hypothesis
property pins the fact every ceiling argument leans on: the reusable
count is monotone non-increasing as the kill set grows.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import ProgramAnalysis, count_reusable, reuse_bound
from repro.analysis.cfg import CFG
from repro.analysis.killsets import arm_may_defs, must_def_masks
from repro.isa.assembler import assemble
from repro.workloads.suite import WorkloadSuite

INDIRECT = """
main:   movi r1, 1
        beq  r2, other
        movi r11, dispatch1
        jmp  (r11)
other:  movi r11, dispatch2
        jmp  (r11)
dispatch1: addi r3, r3, 1
        br   join
dispatch2: addi r4, r4, 1
join:   addi r5, r1, 0
        halt
"""

SELF_LOOP = """
main:   movi r1, 8
        beq  r2, skip
loop:   subi r1, r1, 1
        bgt  r1, loop
skip:   addi r3, r1, 0
        addi r4, r5, 0
        halt
"""

STORE_TAIL = """
main:   movi r1, 4096
        beq  r2, skip
        addi r3, r3, 1
skip:   addi r4, r4, 1
        st   r4, 0(r1)
        halt
"""


class TestIndirectBranches:
    def test_must_defs_survive_indirect_fanout(self):
        pa = ProgramAnalysis(assemble(INDIRECT, name="ind"), name="ind")
        fork_pc = min(pc for pc, s in pa.sites.items() if s.is_conditional)
        masks = pa.must_defs_from(fork_pc)
        assert masks, "analysis must reach past the indirect jumps"
        # r11 is written on both arms before the jmp: must-defined at join
        join_idx = next(
            i for i, ins in enumerate(pa.program.instructions)
            if ins.dst == 5
        )
        in_mask = masks.get(pa.cfg.pc_of(join_idx))
        assert in_mask is not None and (in_mask >> 11) & 1

    def test_fixpoint_terminates_with_indirect(self):
        program = assemble(INDIRECT, name="ind")
        cfg = CFG(program)
        masks = must_def_masks(program, cfg.flow_successors(), [2, 4])
        assert all(0 <= m < (1 << 64) for m in masks.values())


class TestSelfLoop:
    def test_arm_may_defs_handles_self_loop_block(self):
        program = assemble(SELF_LOOP, name="sl")
        cfg = CFG(program)
        loop_idx = cfg.index_of(cfg.pc_of(2))
        skip_idx = next(
            i for i, ins in enumerate(program.instructions)
            if ins.dst == 3
        )
        kills = arm_may_defs(cfg, loop_idx, cfg.block_of[skip_idx])
        assert (kills >> 1) & 1  # the loop writes r1

    def test_reuse_bound_converges_across_self_loop(self):
        program = assemble(SELF_LOOP, name="sl")
        cfg = CFG(program)
        pa = ProgramAnalysis(program, name="sl")
        fork_pc = min(pc for pc, s in pa.sites.items() if s.is_conditional)
        recon = pa.reconvergence_pc(fork_pc)
        assert recon is not None
        bound = reuse_bound(
            cfg, cfg.index_of(fork_pc), cfg.index_of(recon), window=8
        )
        # r3 := r1 reads the loop-written register: not reusable after
        # the loop arm ran; r4 := r5 dodges it entirely.
        assert bound.reusable_after_fall >= 1
        assert 1 in bound.fall_kills


class TestStoreTail:
    def test_trailing_store_never_counts_as_reusable(self):
        program = assemble(STORE_TAIL, name="tail")
        cfg = CFG(program)
        pa = ProgramAnalysis(program, name="tail")
        fork_pc = min(pc for pc, s in pa.sites.items() if s.is_conditional)
        recon = pa.reconvergence_pc(fork_pc)
        recon_idx = cfg.index_of(recon)
        # with an empty kill set every eligible instruction counts; the
        # store and halt in the window must still be excluded
        n = count_reusable(cfg, recon_idx, 0, window=16)
        eligible = sum(
            1 for ins in program.instructions[recon_idx:]
            if ins.dst is not None and not ins.is_store and not ins.is_branch
        )
        assert n == eligible

    def test_memdep_must_stores_with_store_last(self):
        from repro.analysis.memdep import MemoryDependenceAnalysis

        program = assemble(STORE_TAIL, name="tail")
        md = MemoryDependenceAnalysis(program, name="tail")
        pa = ProgramAnalysis(program, name="tail")
        fork_pc = min(pc for pc, s in pa.sites.items() if s.is_conditional)
        halt_pc = md.cfg.pc_of(len(program.instructions) - 1)
        assert md.stores[0].pc in {
            a.pc for a in md.must_stores_between(fork_pc, halt_pc)
        }


class TestMonotonicity:
    """Growing the kill set can only shrink the reusable count."""

    @given(st.integers(0, (1 << 64) - 1), st.integers(0, (1 << 64) - 1))
    @settings(max_examples=60)
    def test_count_reusable_monotone_on_diamond(self, k1, k2):
        program = assemble(SELF_LOOP, name="sl")
        cfg = CFG(program)
        pa = ProgramAnalysis(program, name="sl")
        fork_pc = min(pc for pc, s in pa.sites.items() if s.is_conditional)
        recon_idx = cfg.index_of(pa.reconvergence_pc(fork_pc))
        assert count_reusable(cfg, recon_idx, k1) >= count_reusable(
            cfg, recon_idx, k1 | k2
        )

    @given(st.integers(0, (1 << 64) - 1))
    @settings(max_examples=30)
    def test_count_reusable_monotone_on_kernel(self, extra):
        suite = WorkloadSuite()
        pa = ProgramAnalysis(suite.program("compress"), name="compress")
        cfg = pa.cfg
        fork_pc = min(pc for pc, s in pa.sites.items() if s.is_conditional)
        recon_idx = cfg.index_of(pa.reconvergence_pc(fork_pc))
        base = count_reusable(cfg, recon_idx, 0)
        assert count_reusable(cfg, recon_idx, extra) <= base

    def test_empty_kill_set_is_the_ceiling(self):
        suite = WorkloadSuite()
        for name in ("compress", "li"):
            pa = ProgramAnalysis(suite.program(name), name=name)
            for pc, site in pa.sites.items():
                if not site.is_conditional:
                    continue
                recon = pa.reconvergence_pc(pc)
                if recon is None:
                    continue
                recon_idx = pa.cfg.index_of(recon)
                ceiling = count_reusable(pa.cfg, recon_idx, 0)
                bound = reuse_bound(
                    pa.cfg, pa.cfg.index_of(pc), recon_idx
                )
                assert bound.best <= ceiling
