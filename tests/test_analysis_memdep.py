"""Tests for the static memory-dependence analysis (analysis/memdep.py).

Synthetic programs pin each alias/classification outcome exactly; the
kernel-suite tests then assert the properties the R2 rule and the
static load-reuse ceiling rest on, including the golden-fixture tie-in:
every dynamically reused load must be a statically reuse-eligible site.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.memdep import (
    AliasClass,
    LoadReuseClass,
    MemoryDependenceAnalysis,
)
from repro.analysis.program import ProgramAnalysis
from repro.isa.assembler import assemble
from repro.sim.runner import RunSpec
from repro.workloads.suite import WorkloadSuite

GOLDEN = Path(__file__).parent / "golden" / "core_stats_seed.json"

# Fork at beq; the store is on every path from the fork to the load and
# provably hits the same 8-byte cell the load reads.
MUST_DIRTY = """
main:   movi r1, 4096
        movi r2, 1
        beq  r3, skip
        addi r5, r5, 1
skip:   st   r2, 0(r1)
        ld   r4, 0(r1)
        halt
"""

# Same shape, but the store provably writes a different cell.
DISJOINT = """
main:   movi r1, 4096
        movi r2, 8192
        beq  r3, skip
        addi r5, r5, 1
skip:   st   r6, 0(r2)
        ld   r7, 0(r1)
        halt
"""

# The load's base register is never defined: unknown address.
UNKNOWN = """
main:   movi r1, 4096
        beq  r3, skip
        addi r5, r5, 1
skip:   ld   r7, 0(r9)
        halt
"""

LOOP_CARRIED = """
main:   movi r1, 4096
        movi r2, 0
loop:   st   r3, 0(r1)
        ld   r4, 0(r1)
        addi r2, r2, 1
        subi r5, r2, 4
        blt  r5, loop
        halt
"""


def memdep_of(text, name):
    return MemoryDependenceAnalysis(assemble(text, name=name), name=name)


def pc_of_load(md):
    return next(a.pc for a in md.loads)


def fork_pc_of(md):
    return next(
        md.cfg.pc_of(i) for i, ins in enumerate(md.program.instructions)
        if ins.info.is_cond_branch
    )


class TestAliasClasses:
    def test_must_alias_same_singleton_cell(self):
        md = memdep_of(MUST_DIRTY, "dirty")
        load, store = md.loads[0], md.stores[0]
        assert md.alias_class(store, load) is AliasClass.MUST

    def test_no_alias_disjoint_singletons(self):
        md = memdep_of(DISJOINT, "disjoint")
        load, store = md.loads[0], md.stores[0]
        assert md.alias_class(store, load) is AliasClass.NO

    def test_unknown_address_is_unknown_alias(self):
        md = memdep_of(UNKNOWN, "unknown")
        assert not md.loads[0].known
        # pair it against a store from another program shape
        dirty = memdep_of(MUST_DIRTY, "dirty")
        assert md.loads[0].known is False

    def test_alias_table_covers_all_pairs(self):
        md = memdep_of(LOOP_CARRIED, "loop")
        table = md.alias_table()
        assert len(table) == len(md.loads) * len(md.stores)


class TestClassifyLoadReuse:
    def test_must_dirty_when_store_on_every_path(self):
        md = memdep_of(MUST_DIRTY, "dirty")
        verdict, store_pc = md.classify_load_reuse(
            pc_of_load(md), fork_pc_of(md)
        )
        assert verdict is LoadReuseClass.MUST_DIRTY
        assert store_pc == md.stores[0].pc

    def test_may_clean_when_store_provably_disjoint(self):
        md = memdep_of(DISJOINT, "disjoint")
        verdict, _ = md.classify_load_reuse(pc_of_load(md), fork_pc_of(md))
        assert verdict is LoadReuseClass.MAY_CLEAN

    def test_unknown_address_flagged_not_failed(self):
        md = memdep_of(UNKNOWN, "unknown")
        verdict, _ = md.classify_load_reuse(pc_of_load(md), fork_pc_of(md))
        assert verdict is LoadReuseClass.UNKNOWN_ADDRESS

    def test_non_load_pc_raises(self):
        md = memdep_of(MUST_DIRTY, "dirty")
        with pytest.raises(ValueError):
            md.classify_load_reuse(md.stores[0].pc)

    def test_no_fork_context_proves_nothing(self):
        # Without a fork PC there is no path set to reason over; the
        # checker skips such events before R2, and memdep mirrors that
        # by reporting may-clean (never a spurious MUST_DIRTY proof).
        md = memdep_of(MUST_DIRTY, "dirty")
        verdict, _ = md.classify_load_reuse(pc_of_load(md), fork_pc=None)
        assert verdict is LoadReuseClass.MAY_CLEAN


class TestMustStores:
    def test_store_on_every_path_is_must(self):
        md = memdep_of(MUST_DIRTY, "dirty")
        fork = fork_pc_of(md)
        assert md.stores[0].pc in {
            a.pc for a in md.must_stores_between(fork, pc_of_load(md))
        }

    def test_store_not_counted_at_its_own_pc(self):
        md = memdep_of(MUST_DIRTY, "dirty")
        fork = fork_pc_of(md)
        store_pc = md.stores[0].pc
        # IN-state at the store itself excludes the store's own write
        assert store_pc not in {
            a.pc for a in md.must_stores_between(fork, store_pc)
        }


class TestLoopCarried:
    def test_same_cell_store_load_in_loop_is_carried(self):
        md = memdep_of(LOOP_CARRIED, "loop")
        deps = md.loop_carried_deps()
        assert deps, "loop with a store/load to one cell must carry a dep"
        (pairs,) = deps.values()
        store_pcs = {s for s, _ in pairs}
        assert md.stores[0].pc in store_pcs

    def test_disjoint_program_has_no_carried_deps(self):
        md = memdep_of(DISJOINT, "disjoint")
        assert not md.loop_carried_deps()


class TestSummary:
    def test_summary_counts_are_consistent(self):
        md = memdep_of(LOOP_CARRIED, "loop")
        s = md.summary()
        assert s.loads == 1 and s.stores == 1
        assert s.alias_pairs == s.may_alias_pairs + s.must_alias_pairs + \
            s.no_alias_pairs + s.unknown_alias_pairs
        assert 0.0 <= s.known_address_pct <= 100.0

    def test_always_clean_implies_reusable(self):
        md = memdep_of(DISJOINT, "disjoint")
        assert md.always_clean_load_pcs() <= md.reusable_load_pcs()


class TestKernelSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return WorkloadSuite()

    def test_every_kernel_summarises(self, suite):
        for name in suite.names:
            s = ProgramAnalysis(suite.program(name), name=name).memory_summary()
            assert s.loads > 0 or s.stores >= 0
            assert s.always_clean_load_sites <= s.reusable_load_sites
            assert s.unknown_address_load_sites <= s.loads

    def test_compress_has_a_no_alias_proof(self, suite):
        s = ProgramAnalysis(suite.program("compress"), name="compress").memory_summary()
        assert s.no_alias_pairs >= 1

    def test_memdep_cached_on_program_analysis(self, suite):
        pa = ProgramAnalysis(suite.program("li"), name="li")
        assert pa.memdep is pa.memdep


class TestCeilingVsGolden:
    """The static load-reuse ceiling dominates observed dynamic reuse.

    Units: the ceiling is the set of statically reuse-eligible load
    PCs; every dynamically reused load must land on one of them, so the
    count of *distinct* reused-load PCs is bounded by the ceiling.
    """

    @pytest.mark.parametrize("kernel", ["compress", "li"])
    def test_golden_run_respects_static_ceiling(self, kernel):
        from repro.analysis.checker import check_spec

        golden = json.loads(GOLDEN.read_text())
        row = golden["runs"][f"{kernel}|REC/RS/RU"]
        spec = RunSpec(
            workload=(kernel,), features="REC/RS/RU",
            commit_target=golden["commit_target"],
        )
        result, report = check_spec(spec, memory=True)
        # the instrumented run reproduces the golden dynamic counts
        assert result.stats.renamed_reused_loads == row["renamed_reused_loads"]
        assert result.stats.renamed_reused == row["renamed_reused"]

        suite = WorkloadSuite()
        md = ProgramAnalysis(suite.program(kernel), name=kernel).memdep
        eligible = md.reusable_load_pcs()
        dynamic_pcs = {e.reuse_pc for e in report.reuse_events if e.is_load}
        assert dynamic_pcs <= eligible
        assert len(dynamic_pcs) <= len(eligible)

    def test_live_reused_load_is_statically_eligible(self):
        # li at commit_target 3000 is the known-live case: it actually
        # reuses a load, so this asserts the ceiling on real traffic.
        from repro.analysis.checker import check_spec

        spec = RunSpec(workload=("li",), features="REC/RS/RU", commit_target=3000)
        result, report = check_spec(spec, memory=True)
        dynamic_pcs = {e.reuse_pc for e in report.reuse_events if e.is_load}
        assert dynamic_pcs, "expected at least one reused load at this target"
        suite = WorkloadSuite()
        md = ProgramAnalysis(suite.program("li"), name="li").memdep
        assert dynamic_pcs <= md.reusable_load_pcs()
        assert report.ok, [str(v) for v in report.violations]
