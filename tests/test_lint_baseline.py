"""Baseline hygiene: stale-entry detection, pruning, and the CLI flags
that enforce it (``--prune-baseline``, ``--fail-stale``, ``--conc``).

A baseline entry goes *stale* when the run re-checked it — its rule ran
and its file was linted — yet the finding no longer fires.  Stale
entries are ratchet debt that silently re-admits regressions, so CI can
fail on them and ``--prune-baseline`` removes them.
"""

import json
import textwrap

import pytest

from repro.analysis.lint import Baseline, LintTarget, run_lint
from repro.cli import main

# One CONC001 hit: three guarded accesses and one racy (3/4 = ratio).
RACY = """
    import threading
    class S:
        def __init__(self):
            self._lock = threading.Lock()
            self.items = {}
        def a(self):
            with self._lock:
                self.items["a"] = 1
        def b(self):
            with self._lock:
                return self.items.get("b")
        def c(self):
            with self._lock:
                del self.items["c"]
        def racy(self):
            return len(self.items)
"""

FIXED = RACY.replace(
    "def racy(self):\n            return len(self.items)",
    "def racy(self):\n            with self._lock:\n"
    "                return len(self.items)",
)


def write_module(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


def conc001_target(path):
    return [LintTarget(paths=(str(path),), codes=("CONC001",))]


@pytest.fixture
def racy_baseline(tmp_path):
    """A module with one CONC001 hit and a baseline that covers it."""
    path = write_module(tmp_path, RACY)
    result = run_lint(conc001_target(path))
    assert len(result.findings) == 1
    baseline = Baseline.from_findings(result.findings)
    baseline_path = tmp_path / "baseline.json"
    baseline.save(baseline_path)
    return path, baseline_path, result.findings[0].fingerprint


class TestStaleDetection:
    def test_live_entry_is_not_stale(self, racy_baseline):
        path, baseline_path, _ = racy_baseline
        result = run_lint(
            conc001_target(path), baseline=Baseline.load(baseline_path)
        )
        assert result.stale == []
        assert result.blocking == []  # covered by the baseline
        assert len(result.baselined) == 1

    def test_fixed_finding_goes_stale(self, racy_baseline):
        path, baseline_path, fingerprint = racy_baseline
        path.write_text(textwrap.dedent(FIXED))
        result = run_lint(
            conc001_target(path), baseline=Baseline.load(baseline_path)
        )
        assert result.stale == [fingerprint]
        assert result.findings == []

    def test_unchecked_entry_is_left_alone(self, racy_baseline):
        """An entry is only stale when this run actually re-checked it:
        linting a *different* file, or skipping the rule, must not
        condemn it."""
        path, baseline_path, _ = racy_baseline
        path.write_text(textwrap.dedent(FIXED))
        baseline = Baseline.load(baseline_path)

        other = write_module(path.parent, FIXED, name="other.py")
        assert run_lint(conc001_target(other), baseline=baseline).stale == []

        different_rule = [LintTarget(paths=(str(path),), codes=("CONC003",))]
        assert run_lint(different_rule, baseline=baseline).stale == []


class TestPrune:
    def test_prune_removes_and_counts(self):
        baseline = Baseline({"a::CONC001::x": 1, "b::CONC001::y": 2})
        assert baseline.prune(["a::CONC001::x", "never::CONC001::z"]) == 1
        assert sorted(baseline.entries) == ["b::CONC001::y"]

    def test_prune_empty_is_noop(self):
        baseline = Baseline({"a::CONC001::x": 1})
        assert baseline.prune([]) == 0
        assert len(baseline) == 1


class TestDeadRuleEntries:
    """Entries whose rule id left the registry are stale no matter what
    was linted: a retired rule can never fire again, so its debt is
    dead weight."""

    def test_dead_rule_entry_is_stale_without_relinting(self, tmp_path):
        path = write_module(tmp_path, FIXED)
        baseline = Baseline({"elsewhere.py::DET999::long gone": 1})
        result = run_lint(conc001_target(path), baseline=baseline)
        assert result.stale == ["elsewhere.py::DET999::long gone"]

    def test_live_rule_entry_for_unlinted_file_survives(self, tmp_path):
        """Contrast: a *known* rule's entry for a file this run never
        looked at must not be condemned."""
        path = write_module(tmp_path, FIXED)
        baseline = Baseline({"elsewhere.py::CONC001::maybe still real": 1})
        result = run_lint(conc001_target(path), baseline=baseline)
        assert result.stale == []

    def test_malformed_fingerprints_are_left_alone(self, tmp_path):
        path = write_module(tmp_path, FIXED)
        baseline = Baseline({"not-a-fingerprint": 1})
        assert run_lint(conc001_target(path), baseline=baseline).stale == []

    def test_prune_baseline_drops_dead_rule_entries(self, tmp_path, capsys):
        path = write_module(tmp_path, FIXED)
        baseline_path = tmp_path / "baseline.json"
        Baseline({"elsewhere.py::DET999::long gone": 1}).save(baseline_path)
        code = main([
            "lint", str(path), "--rules", "CONC001",
            "--baseline", str(baseline_path), "--prune-baseline",
        ])
        assert code == 0
        assert "pruned 1 stale entry" in capsys.readouterr().out
        assert json.loads(baseline_path.read_text())["entries"] == {}


class TestCliHygieneFlags:
    def lint(self, *argv):
        return main(["lint", *argv])

    def test_fail_stale_exits_nonzero(self, racy_baseline, capsys):
        path, baseline_path, fingerprint = racy_baseline
        path.write_text(textwrap.dedent(FIXED))
        code = self.lint(
            str(path), "--rules", "CONC001",
            "--baseline", str(baseline_path), "--fail-stale",
        )
        assert code == 1
        assert fingerprint in capsys.readouterr().err

    def test_fail_stale_quiet_when_baseline_is_live(self, racy_baseline):
        path, baseline_path, _ = racy_baseline
        code = self.lint(
            str(path), "--rules", "CONC001",
            "--baseline", str(baseline_path), "--fail-stale",
        )
        assert code == 0

    def test_prune_baseline_rewrites_file(self, racy_baseline, capsys):
        path, baseline_path, fingerprint = racy_baseline
        path.write_text(textwrap.dedent(FIXED))
        code = self.lint(
            str(path), "--rules", "CONC001",
            "--baseline", str(baseline_path), "--prune-baseline",
        )
        assert code == 0
        assert "pruned 1 stale entry" in capsys.readouterr().out
        assert json.loads(baseline_path.read_text())["entries"] == {}
        # A second prune finds nothing left to do.
        code = self.lint(
            str(path), "--rules", "CONC001",
            "--baseline", str(baseline_path), "--prune-baseline",
        )
        assert code == 0
        assert "pruned 0 stale entries" in capsys.readouterr().out

    def test_conc_flag_runs_conc_profile_clean(self, monkeypatch, capsys):
        """``lint --conc`` adds the whole-program concurrency profile to
        the default determinism run — and the committed tree passes it
        against the committed baseline, with nothing stale."""
        import pathlib

        monkeypatch.chdir(pathlib.Path(__file__).resolve().parent.parent)
        code = self.lint("--conc", "--fail-stale")
        assert code == 0, capsys.readouterr().err
