"""The effect/ownership analysis stack: summaries, call graph,
spec-vs-inline matching, ownership classification.

Everything here runs over small synthetic programs using the canonical
batch class names (``BatchRunner``, ``Core``, ``DecodeStore``...), so
the shared/per-core vocabularies in :mod:`repro.analysis.effects.ownership`
apply exactly as they do on the real tree.
"""

import ast
import textwrap

from repro.analysis.effects import (
    LOCAL,
    EffectsGraph,
    EffectsProgram,
    FieldType,
    OwnershipMap,
    check_regions,
    parse_regions,
    summarize_function,
)


def summarize(source, name=None, class_name=None):
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and (
            name is None or node.name == name
        ):
            return summarize_function(node, "t.py", class_name=class_name)
    raise AssertionError("no function found")


def program(*sources):
    return EffectsProgram.from_sources(
        [("mod%d.py" % i, textwrap.dedent(s)) for i, s in enumerate(sources)]
    )


def graph_of(*sources):
    return EffectsGraph.build(
        [("mod%d.py" % i, textwrap.dedent(s)) for i, s in enumerate(sources)]
    )


# ----------------------------------------------------------------------
# Function summaries
# ----------------------------------------------------------------------
class TestSummaries:
    def test_setitem_chain_with_subscript_normalized(self):
        s = summarize("""
            def f(self):
                self.state.cols.nsrcs[3] = 1
        """)
        (site,) = s.mutations
        assert site.kind == "setitem"
        assert site.chain == ("self", "state", "cols", "nsrcs", "[]")

    def test_alias_expansion_restores_spec_chain(self):
        """The hand-inlined hoist ``cols = state.cols`` must normalize
        to the same chain the readable spec produces."""
        s = summarize("""
            def f(self, state):
                cols = state.cols
                cols.nsrcs[0] = 1
        """)
        (site,) = s.mutations
        assert s.expand(site.chain) == frozenset(
            {("state", "cols", "nsrcs", "[]")}
        )

    def test_call_result_roots_at_local(self):
        s = summarize("""
            def f(self):
                fresh = build()
                fresh.items.append(1)
        """)
        mutator = [m for m in s.mutations if m.kind == "mutator-call"]
        assert len(mutator) == 1
        expanded = s.expand(mutator[0].chain)
        assert all(chain[0] == LOCAL for chain in expanded)

    def test_mutator_call_records_argument_values(self):
        s = summarize("""
            def f(self, uop):
                self.queue.append(uop)
        """)
        (site,) = [m for m in s.mutations if m.kind == "mutator-call"]
        assert site.chain == ("self", "queue")
        assert ("uop",) in site.values

    def test_tuple_store_spills_elements_into_values(self):
        s = summarize("""
            def f(self, view, pc):
                self.fifo.append((view, pc))
        """)
        (site,) = [m for m in s.mutations if m.kind == "mutator-call"]
        assert ("view",) in site.values and ("pc",) in site.values

    def test_augassign_on_attribute_is_a_mutation(self):
        s = summarize("""
            def f(self):
                self.size += 1
                local = 0
                local += 1
        """)
        assert [m.chain for m in s.mutations] == [("self", "size")]

    def test_publish_records_first_argument(self):
        s = summarize("""
            def f(self, bus, event):
                bus.publish(event)
        """)
        assert s.publishes == [("event", 3)]

    def test_mutable_default_detected(self):
        s = summarize("""
            def f(x, acc=[]):
                acc.append(x)
        """)
        assert s.mutable_defaults == [2]

    def test_for_target_stays_bare_root(self):
        """The spec's ``ctx`` parameter and the inlined loop's ``ctx``
        iteration variable must normalize identically (SHR002)."""
        spec = summarize("""
            def spec(self, ctx):
                self.table[ctx.uid] = 1
        """)
        inline = summarize("""
            def hot(self):
                for ctx in self.contexts:
                    self.table[ctx.uid] = 1
        """)
        assert spec.comparable_effects() == inline.comparable_effects()

    def test_comparable_effects_exclude_attr_writes_and_bare_calls(self):
        s = summarize("""
            def f(self):
                self.count = 1
                len(self.items)
                self.sink.note(2)
                self.table[0] = 1
        """)
        assert s.comparable_effects() == {
            ("call", ("self", "sink", "note")),
            ("setitem", ("self", "table", "[]")),
        }

    def test_nested_function_bodies_are_skipped(self):
        s = summarize("""
            def f(self):
                def inner():
                    self.table[0] = 1
                return inner
        """, name="f")
        assert s.mutations == []


# ----------------------------------------------------------------------
# Call graph: field typing, edges, reachability
# ----------------------------------------------------------------------
CHAIN_PROGRAM = """
    class DecodeStore:
        def __init__(self):
            self._programs = {}
        def record(self, key, value):
            self._programs[key] = value

    class DecodedUopCache:
        def __init__(self, store: DecodeStore):
            self.store = store

    class CoreState:
        def __init__(self, store: DecodeStore):
            self.uop_cache = DecodedUopCache(store)

    class Core:
        def __init__(self, store: DecodeStore):
            self.state = CoreState(store)
        def step(self):
            self.state.uop_cache.store.record(1, 2)
"""


class TestCallGraph:
    def test_constructor_calls_type_fields(self):
        g = graph_of(CHAIN_PROGRAM)
        assert g.classes["Core"].fields["state"] == FieldType(cls="CoreState")
        assert g.classes["CoreState"].fields["uop_cache"] == FieldType(
            cls="DecodedUopCache"
        )

    def test_parameter_annotation_types_field(self):
        g = graph_of(CHAIN_PROGRAM)
        assert g.classes["DecodedUopCache"].fields["store"] == FieldType(
            cls="DecodeStore"
        )

    def test_deep_chain_call_resolves_across_classes(self):
        g = graph_of(CHAIN_PROGRAM)
        assert ("DecodeStore", "record") in g.edges[("Core", "step")]

    def test_annotated_container_field_gets_element_type(self):
        g = graph_of("""
            from typing import Dict

            class Program:
                pass

            class WorkloadSuite:
                def __init__(self):
                    self._cache: Dict[tuple, Program] = {}
        """)
        field = g.classes["WorkloadSuite"].fields["_cache"]
        assert field == FieldType(elem="Program")

    def test_callable_field_becomes_call_edge(self):
        g = graph_of("""
            class IssueStage:
                def execute(self, uop):
                    self.table[uop] = 1

            class Core:
                def __init__(self):
                    self.issue = IssueStage()
                    self._execute = self.issue.execute
                def step(self):
                    self._execute(0)
        """)
        info = g.classes["Core"]
        assert info.callable_fields["_execute"] == ("IssueStage", "execute")
        assert ("IssueStage", "execute") in g.edges[("Core", "step")]

    def test_reachability_stops_at_build_phase_cut(self):
        g = graph_of("""
            class DecodeStore:
                def __init__(self):
                    self._programs = {}
                def warm(self, k):
                    self._programs[k] = 1

            class Core:
                def load(self, store):
                    store.warm(0)
                def step(self):
                    pass
        """)
        reached = g.reachable()
        assert ("Core", "step") in reached
        assert ("Core", "load") not in reached
        assert ("DecodeStore", "warm") not in reached

    def test_resolve_owner_lands_on_untyped_container_field(self):
        g = graph_of(CHAIN_PROGRAM)
        record = g.functions[("DecodeStore", "record")]
        (site,) = record.mutations
        assert g.resolve_owner(record, site.chain) == (
            "DecodeStore", "_programs",
        )

    def test_resolve_owner_walks_to_deepest_known_class(self):
        g = graph_of(CHAIN_PROGRAM + """
    class Driver:
        def __init__(self, core: Core):
            self.core = core
        def poke(self):
            self.core.state.uop_cache.store._programs[0] = 1
""")
        poke = g.functions[("Driver", "poke")]
        (site,) = poke.mutations
        assert g.resolve_owner(poke, site.chain) == (
            "DecodeStore", "_programs",
        )


# ----------------------------------------------------------------------
# Spec-vs-inline regions
# ----------------------------------------------------------------------
SPEC_OK = """
    class Stage:
        def spec_one(self, ctx):
            self.table[ctx.uid] = 1
            self.sink.note(ctx)

        def hot(self):
            for ctx in self.work:
                # spec-inline begin r1 spec=spec_one
                self.table[ctx.uid] = 1
                self.sink.note(ctx)
                # spec-inline end r1
"""


class TestSpecMatch:
    def test_matching_region_is_quiet(self):
        g = graph_of(SPEC_OK)
        assert check_regions(g, "mod0.py", textwrap.dedent(SPEC_OK)) == []

    def test_drift_is_reported_with_both_diffs(self):
        drifted = SPEC_OK.replace(
            "self.sink.note(ctx)\n                # spec-inline end",
            "self.other.note(ctx)\n                # spec-inline end",
        )
        g = graph_of(drifted)
        (mismatch,) = check_regions(g, "mod0.py", textwrap.dedent(drifted))
        assert "inlined-only {call self.other.note}" in mismatch.message
        assert "spec-only {call self.sink.note}" in mismatch.message

    def test_multi_span_region_unions_lines(self):
        source = textwrap.dedent("""
            class Stage:
                def spec_one(self, ctx):
                    self.table[ctx.uid] = 1
                    self.sink.note(ctx)

                def hot(self, ctx):
                    # spec-inline begin r1 spec=spec_one
                    self.table[ctx.uid] = 1
                    # spec-inline end r1
                    bookkeeping = 1
                    # spec-inline begin r1 spec=spec_one
                    self.sink.note(ctx)
                    # spec-inline end r1
        """)
        g = EffectsGraph.build([("m.py", source)])
        assert check_regions(g, "m.py", source) == []

    def test_unclosed_begin_is_an_error(self):
        regions, errors = parse_regions(
            "m.py", "# spec-inline begin r1 spec=a\n"
        )
        assert regions == []
        assert "never closed" in errors[0].message

    def test_end_without_begin_is_an_error(self):
        _, errors = parse_regions("m.py", "# spec-inline end r1\n")
        assert "without begin" in errors[0].message

    def test_reopen_with_different_specs_is_an_error(self):
        _, errors = parse_regions("m.py", (
            "# spec-inline begin r1 spec=a\n"
            "# spec-inline end r1\n"
            "# spec-inline begin r1 spec=b\n"
            "# spec-inline end r1\n"
        ))
        assert any("different spec list" in e.message for e in errors)

    def test_unknown_spec_method_is_an_error(self):
        source = textwrap.dedent("""
            class Stage:
                def hot(self, ctx):
                    # spec-inline begin r1 spec=no_such_method
                    self.table[ctx.uid] = 1
                    # spec-inline end r1
        """)
        g = EffectsGraph.build([("m.py", source)])
        (mismatch,) = check_regions(g, "m.py", source)
        assert "unknown spec method" in mismatch.message


# ----------------------------------------------------------------------
# Ownership classification
# ----------------------------------------------------------------------
SHARED_WRITE = """
    class DecodeStore:
        def __init__(self):
            self._programs = {}
        def record(self, key, value):
            self._programs[key] = value

    class Core:
        def __init__(self, store: DecodeStore):
            self.store = store
        def step(self):
            self.store.record(1, 2)
"""


class TestOwnership:
    def test_unblessed_shared_write_is_shr001(self):
        p = program(SHARED_WRITE)
        (violation,) = p.ownership.violations
        assert violation.code == "SHR001"
        assert "DecodeStore._programs" in violation.message

    def test_blessed_write_reclassifies_as_guarded(self):
        blessed = SHARED_WRITE.replace(
            "self._programs[key] = value",
            "self._programs[key] = value  # shr-ok: warm-once",
        )
        p = program(blessed)
        assert p.ownership.violations == []
        entry = p.ownership.entries[("DecodeStore", "_programs")]
        assert entry.classification == "shared-mutable-guarded"
        assert entry.blessing == "shr-ok"

    def test_lock_guarded_write_reclassifies_as_guarded(self):
        """The PR 7 CONC guard facts join in: a lock-guarded attribute
        needs no ``# shr-ok`` blessing."""
        p = program("""
            import threading

            class DecodeStore:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._programs = {}
                def record(self, key, value):
                    with self._lock:
                        self._programs[key] = value
                def get(self, key):
                    with self._lock:
                        return self._programs.get(key)

            class Core:
                def __init__(self, store: DecodeStore):
                    self.store = store
                def step(self):
                    self.store.record(1, 2)
        """)
        assert p.ownership.violations == []
        entry = p.ownership.entries[("DecodeStore", "_programs")]
        assert entry.classification == "shared-mutable-guarded"
        assert entry.blessing == "guarded"

    def test_build_phase_write_is_not_a_violation(self):
        p = program("""
            class DecodeStore:
                def __init__(self):
                    self._programs = {}
                def warm(self, k):
                    self._programs[k] = 1

            class Core:
                def load(self, store: DecodeStore):
                    store.warm(0)
                def step(self):
                    pass
        """)
        assert p.ownership.violations == []

    def test_per_core_write_is_private_not_violating(self):
        p = program("""
            class CoreState:
                def __init__(self):
                    self.table = {}

            class Core:
                def __init__(self):
                    self.state = CoreState()
                def step(self):
                    self.state.table[0] = 1
        """)
        assert p.ownership.violations == []
        assert p.ownership.classification("CoreState", "table") == (
            "per-core-private"
        )

    def test_per_core_escape_into_shared_container_is_shr004(self):
        p = program("""
            class CoreState:
                def __init__(self):
                    self.table = {}

            class DecodeStore:
                def __init__(self):
                    self._programs = {}

            class Core:
                def __init__(self, store: DecodeStore):
                    self.state = CoreState()
                    self.store = store
                def step(self):
                    self.store._programs[0] = self.state  # the escape
        """)
        codes = {v.code for v in p.ownership.violations}
        assert "SHR004" in codes
        (escape,) = [v for v in p.ownership.violations if v.code == "SHR004"]
        assert "per-core CoreState escapes" in escape.message

    def test_inventory_covers_untouched_report_class_fields(self):
        p = program("""
            class WorkloadSuite:
                def __init__(self):
                    self._cache = {}
                def lookup(self, key):
                    return self._cache.get(key)
        """)
        assert p.ownership.classification("WorkloadSuite", "_cache") == (
            "batch-shared-immutable"
        )

    def test_to_dict_round_trips_entries_and_violations(self):
        p = program(SHARED_WRITE)
        data = p.ownership.to_dict()
        assert "DecodeStore" in data["classes"]
        classification = data["classes"]["DecodeStore"]["_programs"]
        assert classification["classification"] == "batch-shared-immutable"
        assert data["violations"][0]["code"] == "SHR001"


# ----------------------------------------------------------------------
# The real tree
# ----------------------------------------------------------------------
class TestRealTree:
    def test_batch_facts_build_and_classify_the_decode_store(self):
        from repro.analysis.effects.facts import batch_facts

        facts = batch_facts()
        ownership = facts.ownership
        assert ownership.classification("DecodeStore", "_programs") == (
            "shared-mutable-guarded"
        )
        assert ownership.classification("DecodeStore", "_fifo") == (
            "shared-mutable-guarded"
        )
        assert ownership.classification("WorkloadSuite", "_cache") == (
            "batch-shared-immutable"
        )

    def test_core_step_reaches_every_stage(self):
        from repro.analysis.effects.facts import batch_facts

        reached = batch_facts().graph.reachable()
        stages = {
            cls for cls, _name in reached if cls.endswith("Stage")
        }
        assert {
            "FetchStage", "RenameStage", "IssueStage",
            "ResolveStage", "CommitStage",
        } <= stages

    def test_committed_tree_has_no_effect_findings(self):
        from repro.analysis.effects.facts import batch_facts

        findings = batch_facts().findings()
        assert findings == [], [
            "%s:%d %s %s" % (f.path, f.line, f.code, f.message)
            for f in findings
        ]
