"""Tests for the strided-interval domain (repro.analysis.ranges).

The domain's soundness contract is that every concrete value a register
can hold is contained in its abstract value; the lattice contract is
that join/widen only ever grow the set.  Both are pinned here on hand
cases and with hypothesis over random inputs, alongside the fixpoint
engine's exactness on straight-line constant code.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.ranges import TOP, StridedInterval, ValueRangeAnalysis
from repro.isa.assembler import assemble
from repro.isa.semantics import to_signed, to_unsigned

S = StridedInterval


def si(stride, offset, lo, hi):
    return StridedInterval.make(stride, offset, lo, hi)


class TestConstruction:
    def test_const_is_singleton(self):
        x = S.const(42)
        assert x.is_singleton and x.value == 42
        assert x.contains(42) and not x.contains(43)

    def test_bounds_tighten_onto_congruence(self):
        # [1, 30] with x ≡ 0 (mod 8) snaps to [8, 24]
        x = si(8, 0, 1, 30)
        assert (x.lo, x.hi) == (8, 24)

    def test_empty_congruence_window_is_top(self):
        # no multiple of 8 in [1, 7] — nothing representable, go to TOP
        assert si(8, 0, 1, 7).is_top

    def test_congruence_only_requires_pow2_stride(self):
        assert not si(8, 4, None, None).is_top  # 8 divides 2^64: wrap-safe
        assert si(12, 4, None, None).is_top  # 12 doesn't: unsound, drop

    def test_out_of_signed64_bounds_is_top(self):
        assert si(1, 0, -(2**70), 0).is_top

    def test_equal_bounds_collapse_to_singleton(self):
        assert si(4, 1, 5, 5).is_singleton


class TestLattice:
    def test_join_of_constants_keeps_congruence(self):
        x = S.const(8).join(S.const(24))
        assert x.stride == 16 and x.contains(8) and x.contains(24)
        assert not x.contains(12)

    def test_join_is_upper_bound(self):
        a = si(8, 0, 0, 64)
        b = si(4, 2, -10, 10)
        j = a.join(b)
        for v in (0, 64, -10, 6):
            assert j.contains(v)

    def test_widen_drops_unstable_bounds_together(self):
        a = si(4, 0, 0, 16)
        b = si(4, 0, 0, 32)  # hi grew: both bounds must go
        w = a.widen(b)
        assert w.lo is None and w.hi is None
        assert w.stride == 4  # congruence survives widening

    def test_widen_keeps_stable_value(self):
        a = si(4, 0, 0, 16)
        assert a.widen(a) == a

    @given(
        st.integers(-1000, 1000), st.integers(-1000, 1000),
        st.integers(-1000, 1000),
    )
    def test_join_contains_both_operands_members(self, a, b, c):
        x = S.const(a).join(S.const(b))
        y = x.join(S.const(c))
        for v in (a, b, c):
            assert y.contains(v)


class TestTransfer:
    def test_add_singletons_exact(self):
        assert S.const(3).add(S.const(4)).value == 7

    def test_add_interval_shifts_bounds(self):
        x = si(8, 0, 0, 64).add(S.const(16))
        assert (x.lo, x.hi) == (16, 80) and x.contains(24 + 16)

    def test_align_down_models_address_masking(self):
        # x & ~7 for x in [13, 29] → multiples of 8 in [8, 24]
        x = si(1, 0, 13, 29).align_down(8)
        assert x.stride == 8 and (x.lo, x.hi) == (8, 24)

    def test_align_down_of_top_keeps_congruence_only(self):
        x = TOP.align_down(8)
        assert x.lo is None and x.stride == 8 and x.contains(16)
        assert not x.contains(12)

    def test_and_const_alignment_mask(self):
        x = si(1, 0, 0, 100).and_const(-8)
        assert x.stride == 8 and x.hi == 96

    def test_and_const_low_mask(self):
        x = si(1, 0, -50, 50).and_const(0xF)
        assert (x.lo, x.hi) == (0, 15)

    def test_shl_const(self):
        x = si(1, 0, 0, 7).shl_const(3)
        assert x.stride == 8 and (x.lo, x.hi) == (0, 56)

    def test_mul_const(self):
        x = si(2, 0, 0, 10).mul_const(3)
        assert x.stride == 6 and (x.lo, x.hi) == (0, 30)

    @given(st.integers(-(2**31), 2**31), st.integers(0, 1000))
    def test_align_down_membership_sound(self, base, spread):
        x = si(1, 0, base, base + spread)
        aligned = x.align_down(8)
        for v in (base, base + spread // 2, base + spread):
            assert aligned.contains(v - (v % 8))


class TestSetRelations:
    def test_disjoint_bounded_ranges_cannot_intersect(self):
        a = si(8, 0, 0, 64)
        b = si(8, 0, 128, 256)
        assert not a.may_intersect(b)

    def test_incompatible_congruences_cannot_intersect(self):
        a = si(8, 0, None, None)
        b = si(8, 4, None, None)
        assert not a.may_intersect(b)

    def test_overlap_may_intersect(self):
        assert si(8, 0, 0, 64).may_intersect(si(8, 0, 32, 96))

    def test_must_equal_only_for_equal_singletons(self):
        assert S.const(5).must_equal(S.const(5))
        assert not S.const(5).must_equal(S.const(6))
        assert not si(1, 0, 0, 5).must_equal(si(1, 0, 0, 5))

    def test_top_intersects_everything(self):
        assert TOP.may_intersect(S.const(0))

    @given(st.integers(-10**6, 10**6), st.integers(1, 64),
           st.integers(0, 63), st.integers(-10**6, 10**6))
    def test_no_intersection_claim_is_a_proof(self, v, stride, off, base):
        a = S.const(v)
        b = si(stride, off, base, base + 512)
        if not a.may_intersect(b):
            assert not b.contains(v)


PROGRAM = """
main:   movi r1, 4096
        movi r2, 7
        andi r2, r2, 3
        slli r3, r2, 3
        add  r4, r1, r3
        ld   r5, 8(r4)
        halt
"""


class TestValueRangeAnalysis:
    def test_straight_line_constants_exact(self):
        program = assemble(PROGRAM, name="t")
        vra = ValueRangeAnalysis(program)
        # r1 = 4096 exactly once the movi executed (state before ld)
        load_idx = next(
            i for i, ins in enumerate(program.instructions) if ins.info.is_load
        )
        assert vra.reg_at(load_idx, 1).value == 4096
        assert vra.reg_at(load_idx, 2).value == 3
        assert vra.reg_at(load_idx, 4).value == 4096 + 24

    def test_zero_register_reads_as_zero(self):
        program = assemble(PROGRAM, name="t")
        vra = ValueRangeAnalysis(program)
        assert vra.reg_at(0, 31).value == 0

    def test_loop_counter_stays_bounded_or_sound(self):
        program = assemble(
            """
main:   movi r1, 0
loop:   addi r1, r1, 8
        subi r2, r1, 64
        blt  r2, loop
        halt
""",
            name="loop",
        )
        vra = ValueRangeAnalysis(program)
        # at loop entry r1 is a multiple of 8 (stride survives widening)
        loop_idx = 1
        x = vra.reg_at(loop_idx, 1)
        assert x.contains(0) and x.contains(8) and x.contains(64)
        assert x.stride % 8 == 0 or x.is_top is False

    def test_fixpoint_terminates_on_all_kernels(self):
        from repro.workloads.suite import WorkloadSuite

        suite = WorkloadSuite()
        for name in suite.names:
            vra = ValueRangeAnalysis(suite.program(name))
            assert vra.iterations < vra.MAX_VISITS * len(
                suite.program(name).instructions
            )

    def test_address_eval_agrees_with_unsigned_view(self):
        # contains_address bridges signed analysis to unsigned addresses
        x = S.const(to_signed(0xFFFF_FFFF_FFFF_FFF8))
        assert x.contains_address(to_unsigned(-8))
