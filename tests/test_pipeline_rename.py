"""Tests for rename maps: define/install/restore and fork refcounting."""

import pytest

from repro.isa.registers import NUM_LOGICAL_REGS
from repro.pipeline.regfile import PhysicalRegisterFile
from repro.pipeline.rename import RenameMap


def fresh(rf=None):
    rf = rf or PhysicalRegisterFile(256, 256)
    m = RenameMap(rf)
    m.init_fresh(lambda logical: 0.0 if logical >= 32 else 0)
    return m, rf


class TestLifecycle:
    def test_init_maps_every_logical(self):
        m, rf = fresh()
        for logical in range(NUM_LOGICAL_REGS):
            reg = m.lookup(logical)
            assert rf.refcount[reg] == 1
            assert rf.is_ready(reg, cycle=0)

    def test_double_init_asserts(self):
        m, _ = fresh()
        with pytest.raises(AssertionError):
            m.init_fresh(lambda logical: 0)

    def test_discard_frees_everything(self):
        m, rf = fresh()
        m.discard()
        assert rf.live_count() == 0
        assert not m.valid

    def test_define_returns_displaced(self):
        m, rf = fresh()
        old = m.lookup(5)
        new, displaced = m.define(5, fp=False)
        assert displaced == old
        assert m.lookup(5) == new
        # Displaced reference transferred to caller: count unchanged.
        assert rf.refcount[old] == 1

    def test_restore_undoes_define(self):
        m, rf = fresh()
        old = m.lookup(5)
        new, displaced = m.define(5, fp=False)
        m.restore(5, displaced)
        assert m.lookup(5) == old
        assert rf.refcount[new] == 0  # freed


class TestFork:
    def test_fork_shares_registers(self):
        m, rf = fresh()
        m2 = RenameMap(rf)
        m2.fork_from(m)
        for logical in range(NUM_LOGICAL_REGS):
            assert m2.lookup(logical) == m.lookup(logical)
            assert rf.refcount[m.lookup(logical)] == 2

    def test_fork_then_discard_leaves_parent_live(self):
        m, rf = fresh()
        m2 = RenameMap(rf)
        m2.fork_from(m)
        m2.discard()
        for logical in range(NUM_LOGICAL_REGS):
            assert rf.refcount[m.lookup(logical)] == 1

    def test_parent_commit_does_not_free_shared(self):
        """The paper's reuse-safety property: a register still referenced
        by a forked map survives the parent's old-mapping free."""
        m, rf = fresh()
        m2 = RenameMap(rf)
        m2.fork_from(m)
        old = m.lookup(7)
        _, displaced = m.define(7, fp=False)
        # Parent commits the redefining instruction: frees its displaced ref.
        rf.decref(displaced)
        # The child still references the old register.
        assert rf.refcount[old] == 1
        assert m2.lookup(7) == old


class TestInstall:
    def test_install_increfs(self):
        m, rf = fresh()
        m2 = RenameMap(rf)
        m2.fork_from(m)
        src_reg, _ = m2.define(3, fp=False)
        rf.write(src_reg, 99)
        displaced = m.install(3, src_reg)
        assert m.lookup(3) == src_reg
        assert rf.refcount[src_reg] == 2  # child map + parent map
        # Squash path: restore puts the displaced mapping back.
        m.restore(3, displaced)
        assert rf.refcount[src_reg] == 1


class TestModelBasedProperty:
    """Random define/install/restore/fork sequences against a reference
    model of (map contents × refcounts)."""

    def test_random_operations_match_model(self):
        import random
        from collections import Counter

        from repro.pipeline.regfile import PhysicalRegisterFile
        from repro.pipeline.rename import RenameMap

        rng = random.Random(7)
        rf = PhysicalRegisterFile(512, 512)
        maps = []
        for _ in range(3):
            m = RenameMap(rf)
            m.init_fresh(lambda logical: 0)
            maps.append(m)
        # model: per-map table + global refcounts
        model_tables = [[m.lookup(i) for i in range(64)] for m in maps]
        model_refs = Counter()
        for table in model_tables:
            for reg in table:
                model_refs[reg] += 1
        undo = []  # (map idx, logical, displaced)

        for _ in range(600):
            op = rng.randrange(4)
            mi = rng.randrange(3)
            logical = rng.randrange(64)
            m, table = maps[mi], model_tables[mi]
            if op == 0 and rf.can_alloc(logical >= 32):  # define
                new, displaced = m.define(logical, fp=logical >= 32)
                assert displaced == table[logical]
                table[logical] = new
                model_refs[new] += 1  # map ref; displaced ref moves to undo
                undo.append((mi, logical, displaced, new))
            elif op == 1 and undo:  # commit oldest (free displaced)
                mj, lg, displaced, new = undo.pop(0)
                rf.decref(displaced)
                model_refs[displaced] -= 1
            elif op == 2 and undo:  # squash youngest (restore)
                mj, lg, displaced, new = undo.pop()
                # only restorable if still the current mapping
                if model_tables[mj][lg] == new:
                    maps[mj].restore(lg, displaced)
                    model_tables[mj][lg] = displaced
                    model_refs[new] -= 1
                else:
                    undo.append((mj, lg, displaced, new))
            else:  # install (reuse-style) from another map
                src = model_tables[(mi + 1) % 3][logical]
                displaced = m.install(logical, src)
                assert displaced == table[logical]
                table[logical] = src
                model_refs[src] += 1
                undo.append((mi, logical, displaced, src))

        for mi, m in enumerate(maps):
            for logical in range(64):
                assert m.lookup(logical) == model_tables[mi][logical]
        for reg, count in model_refs.items():
            assert rf.refcount[reg] == count, reg
        rf.check_consistency()
