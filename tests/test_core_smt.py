"""Behavioural tests of the out-of-order core in plain SMT mode.

Every commit is cross-checked against the golden emulator inside the
core, so "the program ran to completion" is a strong statement: fetch,
prediction, renaming, wrong-path execution, squash and in-order commit
all agreed with the architectural semantics at every retired
instruction.
"""

import pytest

from repro.isa import Assembler, assemble
from repro.pipeline import Core, Features, MachineConfig
from repro.pipeline.config import RecyclePolicy


def run_program(src, name="prog", config=None, max_cycles=300_000):
    core = Core(config or MachineConfig(features=Features.smt()))
    core.load([assemble(src, name=name)])
    stats = core.run(max_cycles=max_cycles)
    assert core.instances[0].halted, "program did not finish"
    return core, stats


COUNTED_LOOP = """
main:  movi r1, 0
       movi r2, 40
loop:  add  r1, r1, r2
       subi r2, r2, 1
       bgt  r2, loop
       halt
"""


class TestBasicPrograms:
    def test_counted_loop(self):
        core, stats = run_program(COUNTED_LOOP)
        assert stats.committed == 2 + 40 * 3 + 1

    def test_memory_program(self):
        core, stats = run_program(
            """
            .data
            arr: .word 5, 4, 3, 2, 1
            .text
            main: movi r1, arr
                  movi r2, 5
                  movi r3, 0
            loop: ld   r4, 0(r1)
                  add  r3, r3, r4
                  addi r1, r1, 8
                  subi r2, r2, 1
                  bgt  r2, loop
                  st   r3, 0(r1)
                  halt
            """
        )
        assert core.instances[0].memory.read64(0x4000 + 40) == 15

    def test_store_load_forwarding_program(self):
        run_program(
            """
            .data
            buf: .space 16
            .text
            main: movi r1, buf
                  movi r2, 7
                  st   r2, 0(r1)
                  ld   r3, 0(r1)
                  add  r4, r3, r3
                  st   r4, 8(r1)
                  ld   r5, 8(r1)
                  halt
            """
        )

    def test_fp_program(self):
        run_program(
            """
            .data
            x: .double 1.5
            .text
            main: movi r1, x
                  fld  f1, 0(r1)
                  movi r2, 20
            loop: fmul f2, f1, f1
                  fadd f3, f3, f2
                  fdiv f4, f3, f1
                  subi r2, r2, 1
                  bgt  r2, loop
                  fst  f3, 0(r1)
                  halt
            """
        )

    def test_call_return_program(self):
        run_program(
            """
            main: movi r1, 12
                  jsr  ra, fib_iter
                  halt
            fib_iter: movi r2, 0
                  movi r3, 1
            floop: add r4, r2, r3
                  add r2, r3, r31
                  add r3, r4, r31
                  subi r1, r1, 1
                  bgt  r1, floop
                  ret (ra)
            """
        )

    def test_data_dependent_branches(self):
        run_program(
            """
            main: movi r1, 777
                  movi r2, 120
            loop: slli r3, r1, 13
                  xor  r1, r1, r3
                  srli r3, r1, 7
                  xor  r1, r1, r3
                  andi r4, r1, 1
                  beq  r4, skip
                  addi r5, r5, 1
            skip: subi r2, r2, 1
                  bgt  r2, loop
                  halt
            """
        )

    def test_indirect_jumps(self):
        run_program(
            """
            main: movi r6, 10
            top:  movi r1, t1
                  andi r2, r6, 1
                  beq  r2, even
                  movi r1, t2
            even: jmp (r1)
            t1:   addi r3, r3, 1
                  br   next
            t2:   addi r4, r4, 1
            next: subi r6, r6, 1
                  bgt  r6, top
                  halt
            """
        )


class TestTiming:
    def test_min_mispredict_penalty(self):
        """A perfectly-predictable machine resolves a branch no earlier
        than seven cycles after fetch (the paper's 9-stage pipeline)."""
        core, _ = run_program(COUNTED_LOOP)
        branch = None
        for pos in core.contexts[0].active_list.retained_positions():
            u = core.contexts[0].active_list.try_entry(pos)
            if u.instr.is_cond_branch:
                branch = u
        assert branch is not None
        # rename at t+2 after fetch; complete >= rename + 1 (queue) +
        # 2 (regread) + 1 (exec)
        assert branch.complete_cycle - branch.rename_cycle >= 4

    def test_ipc_bounded_by_width(self):
        _, stats = run_program(COUNTED_LOOP)
        assert 0 < stats.ipc <= 16

    def test_dependent_chain_is_serial(self):
        """A long dependent chain cannot exceed IPC 1."""
        body = "\n".join("add r1, r1, r2" for _ in range(200))
        _, stats = run_program(f"main: movi r2, 1\n{body}\nhalt")
        assert stats.ipc < 1.2

    def test_independent_ops_superscalar(self):
        """Independent instructions in a warm loop clearly exceed IPC 1."""
        body = "\n".join(f"addi r{3 + i % 8}, r2, {i}" for i in range(24))
        src = f"""
        main: movi r2, 1
              movi r20, 60
        loop: {body}
              subi r20, r20, 1
              bgt  r20, loop
              halt
        """
        _, stats = run_program(src)
        assert stats.ipc > 2.0


class TestMultiprogram:
    @staticmethod
    def relocated(src, n, stride=0x21040):
        progs = []
        for i in range(n):
            asm = Assembler(text_base=0x1000 + i * stride, data_base=0x9000 + i * stride)
            progs.append(asm.assemble(src, name=f"p{i}"))
        return progs

    def test_two_programs_throughput(self):
        progs = self.relocated(COUNTED_LOOP, 2)
        core = Core(MachineConfig(features=Features.smt()))
        core.load(progs)
        stats = core.run(max_cycles=100_000)
        assert all(i.halted for i in core.instances)
        assert stats.per_instance_committed == {} or True
        single = Core(MachineConfig(features=Features.smt()))
        single.load(self.relocated(COUNTED_LOOP, 1))
        s1 = single.run(max_cycles=100_000)
        # Two copies should co-run faster than serialising them.
        assert stats.cycles < 2 * s1.cycles

    def test_four_programs_golden_clean(self):
        progs = self.relocated(COUNTED_LOOP, 4)
        core = Core(MachineConfig(features=Features.smt()))
        core.load(progs)
        core.run(max_cycles=100_000)
        assert all(i.halted for i in core.instances)

    def test_eight_programs(self):
        progs = self.relocated(COUNTED_LOOP, 8)
        core = Core(MachineConfig(features=Features.smt()))
        core.load(progs)
        core.run(max_cycles=100_000)
        assert all(i.halted for i in core.instances)

    def test_too_many_programs_rejected(self):
        progs = self.relocated(COUNTED_LOOP, 8) + self.relocated(COUNTED_LOOP, 1)
        core = Core(MachineConfig())
        with pytest.raises(ValueError):
            core.load(progs)

    def test_commit_target_stops_early(self):
        src = "main: movi r2, 1\nloop: add r1, r1, r2\nbr loop"
        core = Core(MachineConfig(features=Features.smt()))
        core.load([assemble(src, name="inf")], commit_target=500)
        stats = core.run(max_cycles=100_000)
        assert core.instances[0].committed >= 500
        assert not core.instances[0].halted


class TestResourceHygiene:
    def test_regfile_consistent_after_run(self):
        core, _ = run_program(COUNTED_LOOP)
        core.regfile.check_consistency()

    def test_small_machines_run(self):
        for maker in (MachineConfig.small_1_8, MachineConfig.small_2_8, MachineConfig.big_1_8):
            cfg = maker(features=Features.smt())
            core = Core(cfg)
            core.load([assemble(COUNTED_LOOP, name="loop")])
            stats = core.run(max_cycles=100_000)
            assert core.instances[0].halted
            assert stats.ipc > 0
