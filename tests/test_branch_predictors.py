"""Tests for PHT, BTB, RAS and the confidence estimator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.branch import (
    BranchTargetBuffer,
    ConfidenceEstimator,
    PatternHistoryTable,
    ReturnAddressStack,
)


class TestPht:
    def test_learns_always_taken(self):
        pht = PatternHistoryTable(64)
        for _ in range(4):
            pht.update(0x1000, 0, True)
        assert pht.predict(0x1000, 0)

    def test_learns_never_taken(self):
        pht = PatternHistoryTable(64)
        for _ in range(4):
            pht.update(0x1000, 0, False)
        assert not pht.predict(0x1000, 0)

    def test_counter_saturates(self):
        pht = PatternHistoryTable(64)
        for _ in range(10):
            pht.update(0x1000, 0, True)
        assert pht.counter(0x1000, 0) == 3
        pht.update(0x1000, 0, False)
        assert pht.predict(0x1000, 0)  # hysteresis: still weakly taken

    def test_history_separates_patterns(self):
        pht = PatternHistoryTable(64)
        # Alternating branch: taken under history 0, not under history 1.
        for _ in range(4):
            pht.update(0x1000, 0b0, True)
            pht.update(0x1000, 0b1, False)
        assert pht.predict(0x1000, 0b0)
        assert not pht.predict(0x1000, 0b1)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            PatternHistoryTable(100)

    @given(
        outcomes=st.lists(st.booleans(), min_size=1, max_size=50),
        pc=st.integers(0, 1 << 20).map(lambda x: x * 4),
    )
    @settings(max_examples=40)
    def test_constant_branch_converges(self, outcomes, pc):
        pht = PatternHistoryTable(256)
        direction = outcomes[0]
        for _ in range(4):
            pht.update(pc, 7, direction)
        assert pht.predict(pc, 7) == direction


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer()
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_target_replacement(self):
        btb = BranchTargetBuffer()
        btb.update(0x1000, 0x2000)
        btb.update(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(entries=8, assoc=2)  # 4 sets
        stride = 4 * 4  # pcs mapping to the same set: (pc>>2) & 3
        pcs = [0x1000, 0x1000 + stride, 0x1000 + 2 * stride]
        btb.update(pcs[0], 0xA)
        btb.update(pcs[1], 0xB)
        btb.lookup(pcs[0])  # refresh
        btb.update(pcs[2], 0xC)  # evicts pcs[1]
        assert btb.lookup(pcs[0]) == 0xA
        assert btb.lookup(pcs[1]) is None

    def test_stats_counted(self):
        btb = BranchTargetBuffer()
        btb.lookup(0x1000)
        btb.update(0x1000, 0x2000)
        btb.lookup(0x1000)
        assert btb.misses == 1 and btb.hits == 1

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=10, assoc=4)


class TestRas:
    def test_push_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(0x10)
        ras.push(0x20)
        assert ras.pop() == 0x20
        assert ras.pop() == 0x10
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        for a in (1, 2, 3):
            ras.push(a)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_snapshot_restore(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        snap = ras.snapshot()
        ras.push(2)
        ras.pop()
        ras.pop()
        ras.restore(snap)
        assert ras.peek() == 1 and len(ras) == 1

    def test_copy_from(self):
        a = ReturnAddressStack(4)
        a.push(7)
        b = ReturnAddressStack(4)
        b.copy_from(a)
        a.pop()
        assert b.pop() == 7  # independent copy

    @given(ops=st.lists(st.one_of(st.integers(1, 100), st.none()), max_size=60))
    @settings(max_examples=40)
    def test_never_exceeds_capacity(self, ops):
        ras = ReturnAddressStack(12)
        for op in ops:
            if op is None:
                ras.pop()
            else:
                ras.push(op)
            assert len(ras) <= 12


class TestConfidence:
    def test_starts_low_confidence(self):
        conf = ConfidenceEstimator(threshold=8)
        assert conf.is_low_confidence(0x1000, 0)

    def test_becomes_confident_after_streak(self):
        conf = ConfidenceEstimator(threshold=4)
        for _ in range(4):
            conf.update(0x1000, 0, correct=True)
        assert not conf.is_low_confidence(0x1000, 0)

    def test_reset_on_mispredict(self):
        conf = ConfidenceEstimator(threshold=4)
        for _ in range(10):
            conf.update(0x1000, 0, correct=True)
        conf.update(0x1000, 0, correct=False)
        assert conf.is_low_confidence(0x1000, 0)
        assert conf.counter(0x1000, 0) == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ConfidenceEstimator(counter_bits=2, threshold=10)
        with pytest.raises(ValueError):
            ConfidenceEstimator(entries=100)

    def test_query_stats(self):
        conf = ConfidenceEstimator(threshold=1)
        conf.is_low_confidence(0x1000, 0)
        conf.update(0x1000, 0, True)
        conf.is_low_confidence(0x1000, 0)
        assert conf.low_confidence_seen == 1
        assert conf.high_confidence_seen == 1
