"""Unit and property tests for the shared instruction semantics."""

import math

from hypothesis import given, settings, strategies as st

from repro.isa import semantics as S
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op

i64 = st.integers(-(1 << 63), (1 << 63) - 1)


class TestIntegerAlu:
    def test_add_wraps(self):
        ins = Instruction(Op.ADD, rd=1, ra=2, rb=3)
        assert S.compute_value(ins, ((1 << 63) - 1, 1), 0) == -(1 << 63)

    def test_sub(self):
        ins = Instruction(Op.SUB, rd=1, ra=2, rb=3)
        assert S.compute_value(ins, (5, 9), 0) == -4

    def test_mul_wraps(self):
        ins = Instruction(Op.MUL, rd=1, ra=2, rb=3)
        assert S.compute_value(ins, (1 << 62, 4), 0) == 0

    def test_logical(self):
        assert S.compute_value(Instruction(Op.AND, rd=1, ra=2, rb=3), (0b1100, 0b1010), 0) == 0b1000
        assert S.compute_value(Instruction(Op.OR, rd=1, ra=2, rb=3), (0b1100, 0b1010), 0) == 0b1110
        assert S.compute_value(Instruction(Op.XOR, rd=1, ra=2, rb=3), (0b1100, 0b1010), 0) == 0b0110

    def test_shifts(self):
        assert S.compute_value(Instruction(Op.SLL, rd=1, ra=2, rb=3), (1, 4), 0) == 16
        assert S.compute_value(Instruction(Op.SRL, rd=1, ra=2, rb=3), (-1, 60), 0) == 15
        assert S.compute_value(Instruction(Op.SRA, rd=1, ra=2, rb=3), (-16, 2), 0) == -4

    def test_compares(self):
        assert S.compute_value(Instruction(Op.CMPLT, rd=1, ra=2, rb=3), (-1, 0), 0) == 1
        assert S.compute_value(Instruction(Op.CMPULT, rd=1, ra=2, rb=3), (-1, 0), 0) == 0
        assert S.compute_value(Instruction(Op.CMPEQ, rd=1, ra=2, rb=3), (7, 7), 0) == 1
        assert S.compute_value(Instruction(Op.CMPLE, rd=1, ra=2, rb=3), (7, 7), 0) == 1

    def test_immediates_match_register_forms(self):
        a = 123456
        ri = Instruction(Op.ADDI, rd=1, ra=2, imm=-77)
        rr = Instruction(Op.ADD, rd=1, ra=2, rb=3)
        assert S.compute_value(ri, (a,), 0) == S.compute_value(rr, (a, -77), 0)

    def test_movi(self):
        assert S.compute_value(Instruction(Op.MOVI, rd=1, imm=-5), (), 0) == -5

    @given(a=i64, b=i64)
    @settings(max_examples=100)
    def test_add_stays_in_64_bit_range(self, a, b):
        v = S.compute_value(Instruction(Op.ADD, rd=1, ra=2, rb=3), (a, b), 0)
        assert -(1 << 63) <= v < (1 << 63)

    @given(a=i64, b=i64)
    @settings(max_examples=100)
    def test_add_sub_inverse(self, a, b):
        add = S.compute_value(Instruction(Op.ADD, rd=1, ra=2, rb=3), (a, b), 0)
        back = S.compute_value(Instruction(Op.SUB, rd=1, ra=2, rb=3), (add, b), 0)
        assert back == a

    @given(a=i64)
    @settings(max_examples=100)
    def test_signed_unsigned_roundtrip(self, a):
        assert S.to_signed(S.to_unsigned(a)) == a


class TestFloat:
    def test_fp_ops(self):
        assert S.compute_value(Instruction(Op.FADD, rd=1, ra=2, rb=3), (1.5, 2.5), 0) == 4.0
        assert S.compute_value(Instruction(Op.FMUL, rd=1, ra=2, rb=3), (3.0, -2.0), 0) == -6.0
        assert S.compute_value(Instruction(Op.FDIV, rd=1, ra=2, rb=3), (1.0, 4.0), 0) == 0.25

    def test_fdiv_by_zero_is_inf(self):
        v = S.compute_value(Instruction(Op.FDIV, rd=1, ra=2, rb=3), (1.0, 0.0), 0)
        assert math.isinf(v) and v > 0

    def test_fdiv_zero_by_zero_is_nan(self):
        v = S.compute_value(Instruction(Op.FDIV, rd=1, ra=2, rb=3), (0.0, 0.0), 0)
        assert math.isnan(v)

    def test_fcmp(self):
        assert S.compute_value(Instruction(Op.FCMPLT, rd=1, ra=2, rb=3), (1.0, 2.0), 0) == 1
        assert S.compute_value(Instruction(Op.FCMPEQ, rd=1, ra=2, rb=3), (1.0, 2.0), 0) == 0

    def test_conversions(self):
        assert S.compute_value(Instruction(Op.CVTIF, rd=1, ra=2, rb=31), (7,), 0) == 7.0
        assert S.compute_value(Instruction(Op.CVTFI, rd=1, ra=2, rb=31), (-2.9,), 0) == -2

    def test_cvtfi_saturates(self):
        assert S.compute_value(Instruction(Op.CVTFI, rd=1, ra=2, rb=31), (1e300,), 0) == (1 << 63) - 1
        assert S.compute_value(Instruction(Op.CVTFI, rd=1, ra=2, rb=31), (float("nan"),), 0) == 0

    @given(st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=100)
    def test_float_bits_roundtrip(self, f):
        assert S.bits_to_float(S.float_to_bits(f)) == f


class TestBranches:
    def test_conditional_outcomes(self):
        cases = [
            (Op.BEQ, 0, True), (Op.BEQ, 1, False),
            (Op.BNE, 0, False), (Op.BNE, -3, True),
            (Op.BLT, -1, True), (Op.BLT, 0, False),
            (Op.BLE, 0, True), (Op.BLE, 1, False),
            (Op.BGT, 1, True), (Op.BGT, 0, False),
            (Op.BGE, 0, True), (Op.BGE, -1, False),
        ]
        for op, val, expect in cases:
            ins = Instruction(op, ra=1, target=0x2000)
            taken, target = S.branch_outcome(ins, (val,), 0x1000)
            assert taken is expect, (op, val)
            assert target == (0x2000 if expect else 0x1004)

    def test_unconditional(self):
        taken, target = S.branch_outcome(Instruction(Op.BR, target=0x3000), (), 0x1000)
        assert taken and target == 0x3000

    def test_indirect_masks_alignment(self):
        taken, target = S.branch_outcome(Instruction(Op.JMP, ra=1), (0x2002,), 0)
        assert taken and target == 0x2000

    def test_jsr_link_value(self):
        ins = Instruction(Op.JSR, rd=26, target=0x4000)
        assert S.compute_value(ins, (), 0x1000) == 0x1004


class TestMemoryHelpers:
    def test_effective_address_aligns(self):
        ins = Instruction(Op.LD, rd=1, ra=2, imm=5)
        assert S.effective_address(ins, 0x100) == 0x100

    def test_negative_offset(self):
        ins = Instruction(Op.LD, rd=1, ra=2, imm=-8)
        assert S.effective_address(ins, 0x100) == 0xF8

    def test_store_load_bits_int(self):
        assert S.load_value(S.store_bits(-123, False), False) == -123

    def test_store_load_bits_fp(self):
        assert S.load_value(S.store_bits(2.75, True), True) == 2.75
