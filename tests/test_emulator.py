"""Functional emulator tests on small assembled programs."""

import pytest

from repro.emulator import EmulationError, Emulator, SparseMemory, branch_trace
from repro.isa import assemble
from repro.isa.program import STACK_TOP
from repro.isa.registers import STACK_POINTER_REG, fp_reg


def run(source: str, limit: int = 100_000) -> Emulator:
    emu = Emulator(assemble(source))
    emu.run_to_halt(limit)
    return emu


class TestStraightLine:
    def test_arithmetic_chain(self):
        emu = run(
            """
            movi r1, 6
            movi r2, 7
            mul  r3, r1, r2
            addi r3, r3, -2
            halt
            """
        )
        assert emu.state.regs[3] == 40

    def test_zero_register_write_ignored(self):
        emu = run("movi r31, 99\nadd r1, r31, r31\nhalt")
        assert emu.state.regs[31] == 0
        assert emu.state.regs[1] == 0

    def test_stack_pointer_initialised(self):
        emu = Emulator(assemble("halt"))
        assert emu.state.regs[STACK_POINTER_REG] == STACK_TOP


class TestLoops:
    def test_counted_loop_sum(self):
        emu = run(
            """
            movi r1, 0      # sum
            movi r2, 10     # i
            loop: add r1, r1, r2
            subi r2, r2, 1
            bgt  r2, loop
            halt
            """
        )
        assert emu.state.regs[1] == 55

    def test_instret_counts(self):
        emu = run("movi r1, 3\nl: subi r1, r1, 1\nbgt r1, l\nhalt")
        # movi + 3*(subi+bgt) + halt
        assert emu.instret == 8


class TestMemory:
    def test_store_then_load(self):
        emu = run(
            """
            .data
            buf: .space 64
            .text
            movi r1, buf
            movi r2, -42
            st   r2, 8(r1)
            ld   r3, 8(r1)
            halt
            """
        )
        assert emu.state.regs[3] == -42

    def test_data_image_visible(self):
        emu = run(
            """
            .data
            vals: .word 11, 22
            .text
            movi r1, vals
            ld   r2, 0(r1)
            ld   r3, 8(r1)
            halt
            """
        )
        assert (emu.state.regs[2], emu.state.regs[3]) == (11, 22)

    def test_fp_memory_roundtrip(self):
        emu = run(
            """
            .data
            x: .double 1.25
            buf: .space 8
            .text
            movi r1, x
            fld  f1, 0(r1)
            fadd f2, f1, f1
            fst  f2, 8(r1)
            fld  f3, 8(r1)
            halt
            """
        )
        assert emu.state.regs[fp_reg(3)] == 2.5

    def test_uninitialised_reads_zero(self):
        emu = run("movi r1, 0x3000\nld r2, 0(r1)\nhalt")
        assert emu.state.regs[2] == 0


class TestControl:
    def test_call_return(self):
        emu = run(
            """
            main: movi r1, 5
                  jsr  ra, double
                  halt
            double: add r1, r1, r1
                  ret (ra)
            """
        )
        assert emu.state.regs[1] == 10

    def test_nested_calls_via_stack(self):
        emu = run(
            """
            main:  movi r1, 1
                   jsr ra, f
                   halt
            f:     subi sp, sp, 8
                   st  ra, 0(sp)
                   jsr ra, g
                   ld  ra, 0(sp)
                   addi sp, sp, 8
                   ret (ra)
            g:     addi r1, r1, 100
                   ret (ra)
            """
        )
        assert emu.state.regs[1] == 101
        assert emu.state.regs[STACK_POINTER_REG] == STACK_TOP

    def test_indirect_jump(self):
        emu = run(
            """
            main: movi r1, tgt
                  jmp (r1)
                  movi r2, 1
            tgt:  movi r2, 2
                  halt
            """
        )
        assert emu.state.regs[2] == 2

    def test_pc_out_of_text_raises(self):
        emu = Emulator(assemble("movi r1, 0x9000\njmp (r1)"))
        with pytest.raises(EmulationError):
            emu.run(10)

    def test_run_to_halt_limit(self):
        emu = Emulator(assemble("l: br l"))
        with pytest.raises(EmulationError):
            emu.run_to_halt(limit=100)

    def test_halted_step_is_noop(self):
        emu = run("halt")
        pc = emu.state.pc
        emu.step()
        assert emu.state.pc == pc and emu.halted


class TestTracing:
    def test_branch_trace(self):
        trace = branch_trace(
            assemble("movi r1, 3\nl: subi r1, r1, 1\nbgt r1, l\nhalt"),
            1000,
        )
        assert [t for _, t in trace] == [True, True, False]

    def test_shared_memory_injection(self):
        mem = SparseMemory()
        mem.write64(0x3000, 123)
        emu = Emulator(assemble("movi r1, 0x3000\nld r2, 0(r1)\nhalt"), memory=mem)
        emu.run_to_halt()
        assert emu.state.regs[2] == 123
