"""Tests for SparseMemory (the data half of the memory system)."""

from hypothesis import given, settings, strategies as st

from repro.emulator import SparseMemory

u64 = st.integers(0, (1 << 64) - 1)
addrs = st.integers(0, 1 << 20).map(lambda a: a * 8)


class TestBasics:
    def test_uninitialised_reads_zero(self):
        assert SparseMemory().read64(0x1234560) == 0

    def test_write_read(self):
        m = SparseMemory()
        m.write64(0x100, 42)
        assert m.read64(0x100) == 42

    def test_unaligned_access_aligns_down(self):
        m = SparseMemory()
        m.write64(0x105, 7)
        assert m.read64(0x100) == 7
        assert m.read64(0x107) == 7

    def test_zero_write_stays_sparse(self):
        m = SparseMemory()
        m.write64(0x100, 5)
        m.write64(0x100, 0)
        assert len(m) == 0
        assert m.read64(0x100) == 0

    def test_truncates_to_64_bits(self):
        m = SparseMemory()
        m.write64(0x100, 1 << 64)
        assert m.read64(0x100) == 0


class TestImages:
    def test_load_image(self):
        m = SparseMemory()
        m.load_image(0x1000, (1234).to_bytes(8, "little") + (5678).to_bytes(8, "little"))
        assert m.read64(0x1000) == 1234
        assert m.read64(0x1008) == 5678

    def test_image_padding(self):
        m = SparseMemory()
        m.load_image(0x1000, b"\x01\x02\x03")  # 3 bytes, padded to a word
        assert m.read64(0x1000) == 0x030201

    def test_unaligned_base_rejected(self):
        m = SparseMemory()
        try:
            m.load_image(0x1001, b"\x00" * 8)
        except ValueError:
            return
        raise AssertionError("expected ValueError")

    def test_copy_is_independent(self):
        m = SparseMemory()
        m.write64(0x100, 1)
        c = m.copy()
        c.write64(0x100, 2)
        assert m.read64(0x100) == 1
        assert c.read64(0x100) == 2

    def test_equality(self):
        a, b = SparseMemory(), SparseMemory()
        a.write64(0x10, 3)
        assert a != b
        b.write64(0x10, 3)
        assert a == b


class TestProperties:
    @given(ops=st.lists(st.tuples(addrs, u64), max_size=60))
    @settings(max_examples=40)
    def test_last_write_wins(self, ops):
        m = SparseMemory()
        model = {}
        for addr, value in ops:
            m.write64(addr, value)
            model[addr] = value
        for addr, value in model.items():
            assert m.read64(addr) == value

    @given(ops=st.lists(st.tuples(addrs, u64), max_size=40))
    @settings(max_examples=30)
    def test_nonzero_words_matches_contents(self, ops):
        m = SparseMemory()
        for addr, value in ops:
            m.write64(addr, value)
        for addr, bits in m.nonzero_words():
            assert bits != 0
            assert m.read64(addr) == bits
