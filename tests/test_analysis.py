"""Tests for the static-analysis subsystem and the cross-checker.

Covers: CFG construction, dominators/post-dominators on hand-built
programs, natural loops, the shared branch taxonomy, kill sets and
must-define dataflow, static-vs-dynamic merge agreement on every
workload kernel, and — via event injection — proof that the checker's
invariant rules actually fire on corrupted merges/reuses.
"""

import pytest

from repro.analysis import (
    EXIT_BLOCK,
    BranchClass,
    EdgeKind,
    ProgramAnalysis,
    classify_static,
    dominates,
)
from repro.analysis.checker import (
    CrossChecker,
    MergeEvent,
    ReuseEvent,
    check_spec,
)
from repro.isa.assembler import assemble
from repro.pipeline.core import Core
from repro.sim.runner import RunSpec
from repro.workloads.suite import WorkloadSuite

DIAMOND = """
main:   movi r1, 5
        movi r2, 0
        beq r1, else
        addi r2, r2, 1
        br join
else:   addi r2, r2, 2
join:   addi r4, r5, 1
        addi r3, r2, 0
        halt
"""

LOOP = """
main:   movi r1, 3
loop:   subi r1, r1, 1
        bgt r1, loop
        halt
"""

CALL = """
main:   movi r1, 1
        jsr ra, helper
        halt
helper: addi r1, r1, 1
        ret (ra)
"""


@pytest.fixture(scope="module")
def diamond():
    return ProgramAnalysis(assemble(DIAMOND, name="diamond"), name="diamond")


@pytest.fixture(scope="module")
def loop():
    return ProgramAnalysis(assemble(LOOP, name="loop"), name="loop")


class TestCFG:
    def test_diamond_block_structure(self, diamond):
        cfg = diamond.cfg
        # entry(3) / then(2) / else(1) / join+halt(3)
        assert [len(b) for b in cfg.blocks] == [3, 2, 1, 3]
        kinds = {
            (b.id, s): k for b in cfg.blocks for s, k in b.succs
        }
        assert kinds[(0, 1)] is EdgeKind.FALL
        assert kinds[(0, 2)] is EdgeKind.TAKEN
        assert kinds[(1, 3)] is EdgeKind.JUMP
        assert kinds[(2, 3)] is EdgeKind.FALL
        assert kinds[(3, EXIT_BLOCK)] is EdgeKind.HALT

    def test_leaders_and_pc_mapping(self, diamond):
        cfg = diamond.cfg
        program = diamond.program
        for label in ("main", "else", "join"):
            assert cfg.is_leader(program.labels[label])
        # mid-block pc is not a leader (second instruction of entry)
        assert not cfg.is_leader(program.labels["main"] + 4)

    def test_call_and_return_edges(self):
        pa = ProgramAnalysis(assemble(CALL, name="call"), name="call")
        cfg = pa.cfg
        # jsr falls through to its return site intraprocedurally ...
        jsr_block = cfg.block_at_pc(pa.program.labels["main"] + 4)
        assert any(k is EdgeKind.CALL for _, k in jsr_block.succs)
        # ... and ret goes to EXIT
        ret_block = cfg.blocks[-1]
        assert ret_block.succs == [(EXIT_BLOCK, EdgeKind.RET)]
        # flow relation adds jsr -> callee entry and ret -> return sites
        flow = cfg.flow_successors()
        jsr_idx = cfg.index_of(pa.program.labels["main"] + 4)
        helper_idx = cfg.index_of(pa.program.labels["helper"])
        assert helper_idx in flow[jsr_idx]
        ret_idx = len(pa.program.instructions) - 1
        assert (jsr_idx + 1) in flow[ret_idx]


class TestDominance:
    def test_diamond_dominators(self, diamond):
        idom = diamond.idom
        # entry dominates everything; neither arm dominates the join
        assert all(dominates(idom, 0, b) for b in idom)
        assert idom[3] == 0

    def test_diamond_postdominators(self, diamond):
        ipostdom = diamond.ipostdom
        # the join block (3) post-dominates both arms and the entry
        assert ipostdom[1] == 3 and ipostdom[2] == 3 and ipostdom[0] == 3
        assert ipostdom[3] == EXIT_BLOCK

    def test_reconvergence_is_join(self, diamond):
        program = diamond.program
        branch_pc = program.labels["main"] + 8  # the beq
        assert diamond.reconvergence_pc(branch_pc) == program.labels["join"]

    def test_natural_loop(self, loop):
        loops = loop.loops
        assert len(loops) == 1
        header, body = next(iter(loops.items()))
        latch_block = loop.cfg.block_at_pc(loop.program.labels["loop"])
        assert header == latch_block.id and header in body


class TestTaxonomy:
    def test_diamond_is_forward(self, diamond):
        branch_pc = diamond.program.labels["main"] + 8
        assert diamond.site(branch_pc).branch_class is BranchClass.FORWARD

    def test_loop_back_is_loop_back(self, loop):
        (site,) = [s for s in loop.sites.values() if s.is_conditional]
        assert site.branch_class is BranchClass.LOOP_BACK

    def test_classify_static_counts(self):
        counts = classify_static(assemble(CALL, name="call"))
        assert counts[BranchClass.FORWARD] == 1  # the jsr
        assert counts[BranchClass.INDIRECT] == 1  # the ret

    def test_backward_branch_targets(self, loop):
        assert loop.backward_branch_targets == frozenset(
            {loop.program.labels["loop"]}
        )


class TestKillSets:
    def test_diamond_kill_sets(self, diamond):
        (bound,) = diamond.reuse_bounds(window=4)
        assert bound.fall_kills == frozenset({2})
        assert bound.taken_kills == frozenset({2})
        # `addi r4, r5, 1` at the join survives either arm;
        # `addi r3, r2, 0` reads the killed r2 and does not.
        assert bound.reusable_after_taken == 1
        assert bound.reusable_after_fall == 1

    def test_must_defs_at_join(self, diamond):
        program = diamond.program
        branch_pc = program.labels["main"] + 8
        masks = diamond.must_defs_from(branch_pc)
        join_mask = masks[program.labels["join"]]
        assert (join_mask >> 2) & 1  # both arms write r2
        assert not (join_mask >> 4) & 1  # nobody writes r4 before join

    def test_summary_counts(self, diamond):
        summary = diamond.summary(window=4)
        assert summary.cond_sites == 1
        assert summary.merge_coverage_pct == 100.0
        assert summary.avg_kill_set_size == 1.0


class TestStaticVsDynamic:
    """Static-vs-dynamic merge agreement on every workload kernel."""

    @pytest.mark.parametrize("kernel", WorkloadSuite().names)
    def test_cross_check_clean(self, kernel):
        spec = RunSpec((kernel,), features="REC/RS/RU", commit_target=500)
        result, report = check_spec(spec)
        assert report.ok, [str(v) for v in report.violations]
        assert report.merges_checked > 0
        assert result.stats.committed >= 500

    def test_multiprogram_cross_check_clean(self):
        spec = RunSpec(
            ("compress", "li"), features="REC/RS/RU", commit_target=400
        )
        _, report = check_spec(spec)
        assert report.ok, [str(v) for v in report.violations]
        assert report.merges_checked > 0


class TestCheckerCatchesCorruption:
    """Inject corrupted events: the invariant rules must fire."""

    @pytest.fixture()
    def checker(self):
        suite = WorkloadSuite()
        spec = RunSpec(("compress",), features="REC/RS/RU", commit_target=200)
        core = Core(spec.build_config())
        checker = CrossChecker(core)
        core.load(suite.mix(spec.workload), commit_target=spec.commit_target)
        return checker

    def _template(self, checker):
        instance = checker.core.instances[0]
        return instance, ProgramAnalysis(instance.program, name=instance.name)

    def test_corrupted_back_merge_is_caught(self, checker):
        instance, pa = self._template(checker)
        # a mid-block pc that is provably not a backward-branch target
        bogus = next(
            pa.cfg.pc_of(i)
            for i in range(len(instance.program.instructions))
            if pa.cfg.pc_of(i) not in pa.backward_branch_targets
        )
        checker.merge_events.append(MergeEvent(
            cycle=0, instance_id=instance.id, instance_name=instance.name,
            kind="back", merge_pc=bogus, fork_pc=None, dst_ctx=0, src_ctx=0,
        ))
        report = checker.verify()
        assert any(v.rule == "M3" for v in report.violations)

    def test_off_text_merge_is_caught(self, checker):
        instance, _ = self._template(checker)
        checker.merge_events.append(MergeEvent(
            cycle=0, instance_id=instance.id, instance_name=instance.name,
            kind="alternate", merge_pc=0xDEAD0, fork_pc=None,
            dst_ctx=0, src_ctx=0,
        ))
        report = checker.verify()
        assert any(v.rule == "M1" for v in report.violations)

    def test_corrupted_alternate_merge_is_caught(self, checker):
        instance, pa = self._template(checker)
        fork_pc = min(
            pc for pc, s in pa.sites.items() if s.is_conditional
        )
        succs = pa.static_successor_pcs(fork_pc)
        bogus = next(
            pa.cfg.pc_of(i)
            for i in range(len(instance.program.instructions))
            if pa.cfg.pc_of(i) not in succs
        )
        checker.merge_events.append(MergeEvent(
            cycle=0, instance_id=instance.id, instance_name=instance.name,
            kind="alternate", merge_pc=bogus, fork_pc=fork_pc,
            dst_ctx=0, src_ctx=0,
        ))
        report = checker.verify()
        assert any(v.rule == "M2" for v in report.violations)

    def test_corrupted_reuse_is_caught(self, checker):
        instance, pa = self._template(checker)
        # Find a (fork, pc, reg) where reg is must-defined from the fork:
        # claiming it was reused untouched must violate R1.
        for fork_pc, site in sorted(pa.sites.items()):
            if not site.is_conditional:
                continue
            for pc, mask in sorted(pa.must_defs_from(fork_pc).items()):
                regs = [r for r in range(31) if (mask >> r) & 1]
                if regs:
                    checker.reuse_events.append(ReuseEvent(
                        cycle=0, instance_id=instance.id,
                        instance_name=instance.name, reuse_pc=pc,
                        srcs=(regs[0],), consistent=frozenset(),
                        fork_pc=fork_pc, dst_ctx=0, src_ctx=0,
                    ))
                    report = checker.verify()
                    assert any(v.rule == "R1" for v in report.violations)
                    return
        pytest.skip("no must-defined register found in this kernel")

    def test_consistent_write_exempts_reuse(self, checker):
        instance, pa = self._template(checker)
        for fork_pc, site in sorted(pa.sites.items()):
            if not site.is_conditional:
                continue
            for pc, mask in sorted(pa.must_defs_from(fork_pc).items()):
                regs = [r for r in range(31) if (mask >> r) & 1]
                if regs:
                    checker.reuse_events.append(ReuseEvent(
                        cycle=0, instance_id=instance.id,
                        instance_name=instance.name, reuse_pc=pc,
                        srcs=(regs[0],), consistent=frozenset({regs[0]}),
                        fork_pc=fork_pc, dst_ctx=0, src_ctx=0,
                    ))
                    report = checker.verify()
                    assert not any(v.rule == "R1" for v in report.violations)
                    return
        pytest.skip("no must-defined register found in this kernel")


class TestExperimentRegistry:
    def test_static_ceilings_registered(self):
        from repro.sim.experiments import EXPERIMENTS

        assert "static-ceilings" in EXPERIMENTS

    def test_static_ceilings_rows(self):
        from repro.sim.experiments import format_static_ceilings, static_ceilings

        data = static_ceilings(commit_target=300, kernels=["vortex"])
        row = data["vortex"]
        assert row["violations"] == 0.0
        assert row["merge_cov"] == 100.0
        assert 0.0 <= row["reuse_ceiling"] <= 100.0
        text = format_static_ceilings(data)
        assert "vortex" in text and "RuCeil%" in text
