"""The TSan-lite dynamic sanitizer: lock-order recording, guarded
attribute checks, the static cross-check, and service-layer wiring."""

import threading
import time

import pytest

from repro.analysis.conc import service_facts
from repro.analysis.conc.sanitizer import (
    Sanitizer,
    SanitizedLock,
    conc_wrap,
    current_sanitizer,
    install_guards,
    sanitized,
)


class Box:
    """Minimal lock-owning class for guard tests."""

    def __init__(self):
        self._lock = conc_wrap(threading.Lock(), "Box._lock")
        self.items = []


# ----------------------------------------------------------------------
# conc_wrap activation
# ----------------------------------------------------------------------
def test_conc_wrap_is_identity_when_inactive():
    lock = threading.Lock()
    assert conc_wrap(lock, "x") is lock
    assert current_sanitizer() is None


def test_conc_wrap_proxies_when_active():
    with sanitized():
        lock = conc_wrap(threading.Lock(), "x")
        assert isinstance(lock, SanitizedLock)
        with lock:
            assert lock.locked()  # protocol delegates through the proxy
        assert not lock.locked()


def test_nested_activation_rejected():
    with sanitized():
        with pytest.raises(RuntimeError):
            sanitized().__enter__()


# ----------------------------------------------------------------------
# Dynamic lock-order checking
# ----------------------------------------------------------------------
def test_lock_order_inversion_detected():
    with sanitized() as s:
        a = conc_wrap(threading.Lock(), "A")
        b = conc_wrap(threading.Lock(), "B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
    violations = s.report()
    assert [v.kind for v in violations] == ["lock-order"]
    assert "A" in violations[0].message and "B" in violations[0].message


def test_consistent_order_is_quiet():
    with sanitized() as s:
        a = conc_wrap(threading.Lock(), "A")
        b = conc_wrap(threading.Lock(), "B")
        for _ in range(3):
            with a:
                with b:
                    pass
    s.assert_quiet()
    assert ("A", "B") in s.edges


def test_cross_thread_inversion_detected():
    with sanitized() as s:
        a = conc_wrap(threading.Lock(), "A")
        b = conc_wrap(threading.Lock(), "B")
        with a:
            with b:
                pass

        def invert():
            with b:
                with a:
                    pass

        t = threading.Thread(target=invert)
        t.start()
        t.join()
    assert [v.kind for v in s.report()] == ["lock-order"]


def test_reentrant_rlock_not_an_edge():
    with sanitized() as s:
        r = conc_wrap(threading.RLock(), "R")
        with r:
            with r:
                pass
    s.assert_quiet()
    assert s.edges == {}


# ----------------------------------------------------------------------
# Static cross-check
# ----------------------------------------------------------------------
def test_dynamic_edge_must_be_in_static_graph():
    with sanitized(static_edges=frozenset({("A", "B")})) as s:
        a = conc_wrap(threading.Lock(), "A")
        b = conc_wrap(threading.Lock(), "B")
        c = conc_wrap(threading.Lock(), "C")
        with a:
            with b:  # statically known edge: fine
                pass
        with a:
            with c:  # never predicted statically: flagged
                pass
    violations = s.report()
    assert [v.kind for v in violations] == ["static-mismatch"]
    assert "A -> C" in violations[0].message


def test_no_static_edges_no_cross_check():
    with sanitized() as s:  # static_edges=None disables the subset check
        a = conc_wrap(threading.Lock(), "A")
        b = conc_wrap(threading.Lock(), "B")
        with a:
            with b:
                pass
    s.assert_quiet()


# ----------------------------------------------------------------------
# Guarded attributes
# ----------------------------------------------------------------------
def test_unguarded_cross_thread_access_detected():
    with sanitized() as s:
        uninstall = install_guards(Box, {"items": "_lock"})
        box = Box()  # guards first, construction second: creator recorded
        try:
            def worker():
                box.items.append(1)  # no lock, different thread

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        finally:
            uninstall()
    violations = s.report()
    assert [v.kind for v in violations] == ["unguarded-access"]
    assert "Box.items" in violations[0].message


def test_guarded_access_is_quiet():
    with sanitized() as s:
        box = Box()
        uninstall = install_guards(Box, {"items": "_lock"})
        try:
            def worker():
                with box._lock:
                    box.items.append(1)

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            uninstall()
    s.assert_quiet()
    assert box.items == [1, 1, 1, 1]


def test_creator_thread_tolerated_until_contention():
    with sanitized() as s:
        uninstall = install_guards(Box, {"items": "_lock"})
        box = Box()
        try:
            box.items.append(1)  # single-threaded setup: tolerated
            s.assert_quiet()

            def worker():
                with box._lock:
                    box.items.append(2)

            t = threading.Thread(target=worker)
            t.start()
            t.join()
            box.items  # now another thread uses the lock: flagged
        finally:
            uninstall()
    assert [v.kind for v in s.report()] == ["unguarded-access"]


def test_uninstall_restores_plain_attribute_access():
    with sanitized():
        box = Box()
        uninstall = install_guards(Box, {"items": "_lock"})
        with box._lock:
            box.items.append(1)
        uninstall()
    assert box.items == [1]
    assert "items" not in Box.__dict__


def test_guards_inert_without_sanitizer():
    box = Box()
    uninstall = install_guards(Box, {"items": "_lock"})
    try:
        box.items.append(1)  # no active sanitizer: descriptor is passive
        assert box.items == [1]
    finally:
        uninstall()


# ----------------------------------------------------------------------
# Service integration: static facts drive the dynamic checks
# ----------------------------------------------------------------------
def test_service_e2e_with_static_facts_is_quiet(tmp_path):
    """A real campaign through Scheduler + ArtifactStore + workers with
    the inferred guards installed and the static edge set cross-checked:
    the production locking discipline must be violation-free."""
    facts = service_facts()
    guard_map = facts.guard_attrs("Scheduler")
    assert guard_map  # inference found the Scheduler invariants

    from repro.service.scheduler import Scheduler
    from repro.service.store import ArtifactStore
    from repro.service.worker import LocalWorkerPool
    from repro.service.spec import sweep_spec

    with sanitized(static_edges=facts.order_edges()) as s:
        store = ArtifactStore(tmp_path)
        scheduler = Scheduler(store, lease_ttl=30.0)
        uninstall = install_guards(Scheduler, guard_map)
        try:
            pool = LocalWorkerPool(scheduler, workers=2, poll=0.01)
            pool.start()
            status = scheduler.submit(
                sweep_spec(
                    ["compress"],
                    grid={"active_list_size": [16, 32]},
                    commit_target=200,
                    label="sanitized",
                )
            )
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                current = scheduler.campaign_status(status["id"])
                if current["state"] == "done":
                    break
                time.sleep(0.05)
            else:
                pytest.fail("campaign did not finish under the sanitizer")
            pool.stop()
        finally:
            uninstall()
    counts = s.counts()
    assert counts["acquires"] > 0
    assert counts["guard_checks"] > 0
    s.assert_quiet()


def test_sanitized_scheduler_lock_is_proxied(tmp_path):
    from repro.service.scheduler import Scheduler
    from repro.service.store import ArtifactStore

    with sanitized():
        scheduler = Scheduler(ArtifactStore(tmp_path))
        assert isinstance(scheduler._lock, SanitizedLock)
        assert isinstance(scheduler.store.journal_lock, SanitizedLock)
        # The condition variable shares the proxied mutex.
        with scheduler._cv:
            pass
