"""Tests for instruction queues and functional-unit accounting."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import FuClass, Op
from repro.pipeline.queues import FunctionalUnits, InstructionQueue
from repro.pipeline.regfile import PhysicalRegisterFile
from repro.pipeline.uop import Uop, UopState


def mk_uop(op=Op.ADD, srcs=()):
    u = Uop(Instruction(op, rd=1, ra=2, rb=3), 0x1000, 0, None)
    u.phys_srcs = list(srcs)
    return u


def mk_queue(size=8, rf=None):
    return InstructionQueue("int", size, rf or PhysicalRegisterFile(8, 8))


class TestQueue:
    def test_capacity(self):
        q = mk_queue(size=2)
        q.insert(mk_uop())
        q.insert(mk_uop())
        assert not q.has_room()

    def test_ready_requires_sources(self):
        rf = PhysicalRegisterFile(8, 8)
        a = rf.alloc(fp=False)
        q = mk_queue(rf=rf)
        u = mk_uop(srcs=[a])
        q.insert(u)
        assert q.take_ready(0) == []
        rf.write(a, 5)
        assert q.take_ready(0) == [u]

    def test_wakeup_respects_ready_cycle(self):
        """A producer result forwardable at cycle N wakes dependents then."""
        rf = PhysicalRegisterFile(8, 8)
        a = rf.alloc(fp=False)
        q = mk_queue(rf=rf)
        u = mk_uop(srcs=[a])
        q.insert(u)
        rf.write(a, 5, ready_at=3)
        assert q.take_ready(2) == []
        assert q.take_ready(3) == [u]

    def test_ready_oldest_first(self):
        q = mk_queue()
        u1, u2 = mk_uop(), mk_uop()
        q.insert(u2)
        q.insert(u1)
        ready = q.take_ready(0)
        assert ready == sorted([u1, u2], key=lambda u: u.seq)

    def test_requeue_returns_blocked_uops(self):
        q = mk_queue()
        u = mk_uop()
        q.insert(u)
        assert q.take_ready(0) == [u]
        assert q.take_ready(0) == []  # the caller owns them now
        q.requeue([u])
        assert q.take_ready(0) == [u]

    def test_issued_uops_not_ready(self):
        q = mk_queue()
        u = mk_uop()
        q.insert(u)
        u.state = UopState.ISSUED
        assert q.take_ready(0) == []

    def test_squashed_waiter_dropped(self):
        """A waiter squashed before its producer writes never surfaces."""
        rf = PhysicalRegisterFile(8, 8)
        a = rf.alloc(fp=False)
        q = mk_queue(rf=rf)
        u = mk_uop(srcs=[a])
        q.insert(u)
        q.remove(u)
        u.state = UopState.SQUASHED
        rf.write(a, 5)
        assert q.take_ready(0) == []

    def test_remove_absent_asserts(self):
        q = mk_queue()
        with pytest.raises(AssertionError):
            q.remove(mk_uop())

    def test_double_remove_asserts(self):
        q = mk_queue()
        u = mk_uop()
        q.insert(u)
        q.remove(u)
        with pytest.raises(AssertionError):
            q.remove(u)


class TestFunctionalUnits:
    def test_int_units_limit(self):
        fus = FunctionalUnits(2, 1, 1)
        assert fus.try_issue(FuClass.INT)
        assert fus.try_issue(FuClass.INT)
        assert not fus.try_issue(FuClass.INT)

    def test_fp_units_independent(self):
        fus = FunctionalUnits(1, 1, 1)
        assert fus.try_issue(FuClass.INT)
        assert fus.try_issue(FuClass.FP)
        assert not fus.try_issue(FuClass.INT)

    def test_ldst_consumes_int_unit(self):
        fus = FunctionalUnits(2, 0, 2)
        assert fus.try_issue(FuClass.LDST)
        assert fus.try_issue(FuClass.LDST)
        # Both integer units consumed by the two memory ops.
        assert not fus.try_issue(FuClass.INT)

    def test_ldst_port_limit(self):
        fus = FunctionalUnits(12, 6, 1)
        assert fus.try_issue(FuClass.LDST)
        assert not fus.try_issue(FuClass.LDST)
        assert fus.try_issue(FuClass.INT)

    def test_new_cycle_resets(self):
        fus = FunctionalUnits(1, 1, 1)
        fus.try_issue(FuClass.INT)
        fus.new_cycle()
        assert fus.try_issue(FuClass.INT)

    def test_paper_configuration(self):
        """12 int, 6 fp, 8 ld/st → 18 issues max, 8 of them memory."""
        fus = FunctionalUnits(12, 6, 8)
        mem = sum(fus.try_issue(FuClass.LDST) for _ in range(10))
        ints = sum(fus.try_issue(FuClass.INT) for _ in range(10))
        fps = sum(fus.try_issue(FuClass.FP) for _ in range(10))
        assert mem == 8 and ints == 4 and fps == 6
