"""Tests for instruction queues and functional-unit accounting."""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import FuClass, Op
from repro.pipeline.queues import FunctionalUnits, InstructionQueue
from repro.pipeline.regfile import PhysicalRegisterFile
from repro.pipeline.uop import Uop, UopState


def mk_uop(op=Op.ADD, srcs=()):
    u = Uop(Instruction(op, rd=1, ra=2, rb=3), 0x1000, 0, None)
    u.phys_srcs = list(srcs)
    return u


class TestQueue:
    def test_capacity(self):
        q = InstructionQueue("int", 2)
        q.insert(mk_uop())
        q.insert(mk_uop())
        assert not q.has_room()

    def test_ready_requires_sources(self):
        rf = PhysicalRegisterFile(8, 8)
        a = rf.alloc(fp=False)
        q = InstructionQueue("int", 8)
        u = mk_uop(srcs=[a])
        q.insert(u)
        assert q.ready_uops(rf, lambda _: True, 0) == []
        rf.write(a, 5)
        assert q.ready_uops(rf, lambda _: True, 0) == [u]

    def test_ready_oldest_first(self):
        rf = PhysicalRegisterFile(8, 8)
        q = InstructionQueue("int", 8)
        u1, u2 = mk_uop(), mk_uop()
        q.insert(u2)
        q.insert(u1)
        ready = q.ready_uops(rf, lambda _: True, 0)
        assert ready == sorted([u1, u2], key=lambda u: u.seq)

    def test_extra_constraint_filters(self):
        rf = PhysicalRegisterFile(8, 8)
        q = InstructionQueue("int", 8)
        u = mk_uop()
        q.insert(u)
        assert q.ready_uops(rf, lambda _: False, 0) == []

    def test_issued_uops_not_ready(self):
        rf = PhysicalRegisterFile(8, 8)
        q = InstructionQueue("int", 8)
        u = mk_uop()
        u.state = UopState.ISSUED
        q.insert(u)
        assert q.ready_uops(rf, lambda _: True, 0) == []

    def test_remove_absent_is_noop(self):
        q = InstructionQueue("int", 8)
        q.remove(mk_uop())


class TestFunctionalUnits:
    def test_int_units_limit(self):
        fus = FunctionalUnits(2, 1, 1)
        assert fus.try_issue(FuClass.INT)
        assert fus.try_issue(FuClass.INT)
        assert not fus.try_issue(FuClass.INT)

    def test_fp_units_independent(self):
        fus = FunctionalUnits(1, 1, 1)
        assert fus.try_issue(FuClass.INT)
        assert fus.try_issue(FuClass.FP)
        assert not fus.try_issue(FuClass.INT)

    def test_ldst_consumes_int_unit(self):
        fus = FunctionalUnits(2, 0, 2)
        assert fus.try_issue(FuClass.LDST)
        assert fus.try_issue(FuClass.LDST)
        # Both integer units consumed by the two memory ops.
        assert not fus.try_issue(FuClass.INT)

    def test_ldst_port_limit(self):
        fus = FunctionalUnits(12, 6, 1)
        assert fus.try_issue(FuClass.LDST)
        assert not fus.try_issue(FuClass.LDST)
        assert fus.try_issue(FuClass.INT)

    def test_new_cycle_resets(self):
        fus = FunctionalUnits(1, 1, 1)
        fus.try_issue(FuClass.INT)
        fus.new_cycle()
        assert fus.try_issue(FuClass.INT)

    def test_paper_configuration(self):
        """12 int, 6 fp, 8 ld/st → 18 issues max, 8 of them memory."""
        fus = FunctionalUnits(12, 6, 8)
        mem = sum(fus.try_issue(FuClass.LDST) for _ in range(10))
        ints = sum(fus.try_issue(FuClass.INT) for _ in range(10))
        fps = sum(fus.try_issue(FuClass.FP) for _ in range(10))
        assert mem == 8 and ints == 4 and fps == 6
