"""ProgressReporter edge cases: ETA math, batch reuse, empty campaigns."""

from repro.exec.progress import ProgressEvent, ProgressReporter, format_line


class FakeClock:
    """Deterministic monotonic clock the tests advance by hand."""

    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make(callback=None):
    clock = FakeClock()
    return ProgressReporter(callback=callback, clock=clock), clock


class TestEtaExcludesCacheHits:
    def test_no_eta_until_one_job_executed(self):
        reporter, clock = make()
        reporter.add_total(10)
        for _ in range(4):
            clock.advance(0.5)
            event = reporter.record(cached=True, failed=False, elapsed=0.0)
        assert event.done == 4 and event.cache_hits == 4
        # Only cache hits so far: no execution time sample, no promise.
        assert event.eta is None

    def test_cache_hits_do_not_dilute_the_estimate(self):
        reporter, clock = make()
        reporter.add_total(10)
        # Four instant cache hits, then one real 2-second execution.
        for _ in range(4):
            reporter.record(cached=True, failed=False, elapsed=0.0)
        clock.advance(2.0)
        event = reporter.record(cached=False, failed=False, elapsed=2.0)
        # 5 remaining jobs at 2s each on one worker: a warm campaign must
        # not promise (total_elapsed / done) * remaining ≈ 0.4s per job.
        assert event.eta == 2.0 * 5

    def test_failures_count_as_executed_time(self):
        reporter, _ = make()
        reporter.add_total(2)
        event = reporter.record(cached=False, failed=True, elapsed=3.0)
        assert event.failures == 1
        assert event.eta == 3.0  # one job left at the observed 3s pace

    def test_workers_scale_eta(self):
        reporter, _ = make()
        reporter.workers = 4
        reporter.add_total(9)
        event = reporter.record(cached=False, failed=False, elapsed=4.0)
        assert event.eta == 4.0 * 8 / 4


class TestMultiBatchReuse:
    def test_totals_accumulate_across_batches(self):
        reporter, clock = make()
        reporter.add_total(2)
        reporter.record(cached=False, failed=False, elapsed=1.0)
        reporter.record(cached=False, failed=False, elapsed=1.0)
        # Second figure rides the same reporter (the `campaign` CLI path).
        reporter.add_total(3)
        event = reporter.event()
        assert event.total == 5 and event.done == 2
        assert event.eta == 1.0 * 3

    def test_clock_starts_at_first_batch_only(self):
        reporter, clock = make()
        reporter.add_total(1)
        clock.advance(7.0)
        reporter.add_total(1)  # must NOT restart the clock
        assert reporter.event().elapsed == 7.0

    def test_counts_survive_batch_boundaries(self):
        events = []
        reporter, _ = make(callback=events.append)
        reporter.add_total(1)
        reporter.record(cached=True, failed=False, elapsed=0.0)
        reporter.add_total(1)
        reporter.record(cached=False, failed=True, elapsed=0.5)
        assert events[-1].cache_hits == 1 and events[-1].failures == 1
        assert events[-1].done == 2 and events[-1].total == 2


class TestZeroJobCampaign:
    def test_event_before_any_batch(self):
        reporter, clock = make()
        clock.advance(5.0)
        event = reporter.event()
        # No add_total yet: the clock never started.
        assert event.elapsed == 0.0
        assert event.done == 0 and event.total == 0 and event.eta is None

    def test_empty_batch_still_starts_clock(self):
        reporter, clock = make()
        reporter.add_total(0)
        clock.advance(2.0)
        event = reporter.event()
        assert event.elapsed == 2.0
        assert event.total == 0 and event.eta is None

    def test_format_line_handles_empty(self):
        line = format_line(ProgressEvent(done=0, total=0, cache_hits=0,
                                         failures=0, elapsed=0.0, eta=None))
        assert line == "jobs 0/0 elapsed 00:00"


class TestEventPayload:
    def test_to_payload_round_trips_fields(self):
        event = ProgressEvent(done=1, total=2, cache_hits=1, failures=0,
                              elapsed=1.5, eta=None, label="x")
        payload = event.to_payload()
        assert payload == {"done": 1, "total": 2, "cache_hits": 1,
                           "failures": 0, "elapsed": 1.5, "eta": None,
                           "label": "x"}
        assert ProgressEvent(**payload) == event
