"""Tests for the typed pipeline event bus (repro.pipeline.events).

Three guarantees are pinned here:

* subscription/delivery order is deterministic (handlers fire in
  subscription order, ``subscribe_many`` follows its dict),
* an unsubscribed bus costs **zero event allocations** during a full
  simulation (``Event.constructed`` does not move), and
* the workload suite actually exercises the whole event catalogue —
  every type in ``ALL_EVENT_TYPES`` is published by a REC/RS/RU run.
"""

import pytest

from repro.pipeline import Core
from repro.pipeline.events import (
    ALL_EVENT_TYPES,
    Event,
    EventBus,
    FetchBlock,
    Retired,
)
from repro.sim.runner import RunSpec
from repro.workloads.suite import WorkloadSuite


class TestEventBusUnit:
    def test_wants_reflects_subscriptions(self):
        bus = EventBus()
        assert not bus.wants(FetchBlock)
        unsubscribe = bus.subscribe(FetchBlock, lambda ev: None)
        assert bus.wants(FetchBlock)
        assert not bus.wants(Retired)
        unsubscribe()
        assert not bus.wants(FetchBlock)

    def test_handlers_run_in_subscription_order(self):
        bus = EventBus()
        order = []
        for tag in ("first", "second", "third"):
            bus.subscribe(Retired, lambda ev, tag=tag: order.append(tag))
        bus.publish(Retired(cycle=0, uop=None, instance=None))
        assert order == ["first", "second", "third"]

    def test_subscribe_many_follows_mapping_order(self):
        bus = EventBus()
        order = []
        unsubscribers = bus.subscribe_many({
            FetchBlock: lambda ev: order.append("fetch"),
            Retired: lambda ev: order.append("retire"),
        })
        assert len(unsubscribers) == 2
        bus.publish(Retired(cycle=0, uop=None, instance=None))
        bus.publish(FetchBlock(cycle=0, ctx=None, count=1, next_pc=0))
        assert order == ["retire", "fetch"]
        for unsubscribe in unsubscribers:
            unsubscribe()
        assert not bus.wants(FetchBlock) and not bus.wants(Retired)

    def test_unsubscribe_is_idempotent_and_restores_fast_path(self):
        bus = EventBus()
        unsubscribe = bus.subscribe(Retired, lambda ev: None)
        unsubscribe()
        unsubscribe()  # second call is a no-op, not an error
        assert not bus.wants(Retired)

    def test_subscribe_rejects_non_event_types(self):
        bus = EventBus()
        with pytest.raises(TypeError):
            bus.subscribe(int, lambda ev: None)
        with pytest.raises(TypeError):
            bus.subscribe("Retired", lambda ev: None)

    def test_published_counts_per_type(self):
        bus = EventBus()
        bus.subscribe(Retired, lambda ev: None)
        for _ in range(3):
            bus.publish(Retired(cycle=0, uop=None, instance=None))
        assert bus.published == {Retired: 3}


def _run_spec(kernel, features, commit_target=800):
    spec = RunSpec(
        workload=(kernel,), features=features, commit_target=commit_target
    )
    core = Core(spec.build_config())
    core.load(WorkloadSuite().mix(spec.workload), commit_target=commit_target)
    return core, spec


class TestZeroOverheadWhenUnsubscribed:
    def test_detached_bus_constructs_no_events(self):
        core, spec = _run_spec("compress", "REC/RS/RU")
        core.stats_recorder.detach()  # the only default subscriber
        before = Event.constructed
        stats = core.run(max_cycles=spec.max_cycles)
        assert stats.committed >= 800  # the run really happened
        assert Event.constructed == before  # not one event allocated
        assert core.bus.published == {}  # ...and none published

    def test_detaching_does_not_change_results(self):
        core_a, spec = _run_spec("compress", "REC/RS/RU")
        stats_a = core_a.run(max_cycles=spec.max_cycles)
        core_b, _ = _run_spec("compress", "REC/RS/RU")
        core_b.stats_recorder.detach()
        stats_b = core_b.run(max_cycles=spec.max_cycles)
        assert stats_a.cycles == stats_b.cycles
        assert stats_a.committed == stats_b.committed
        assert stats_a.ipc == stats_b.ipc


class TestEventCatalogueCoverage:
    def test_full_feature_runs_publish_every_event_type(self):
        # The catalogue is covered by the union of two kernels: no
        # single kernel exercises everything (compress, for one, never
        # hits store-to-load forwarding at this commit target).
        seen = set()
        for kernel in ("compress", "li"):
            core, spec = _run_spec(kernel, "REC/RS/RU")
            unsubscribers = core.bus.subscribe_many({
                etype: (lambda ev, etype=etype: seen.add(etype))
                for etype in ALL_EVENT_TYPES
            })
            core.run(max_cycles=spec.max_cycles)
            # publish counts agree with what the handlers observed
            assert set(core.bus.published) <= seen
            for unsubscribe in unsubscribers:
                unsubscribe()
        missing = [t.__name__ for t in ALL_EVENT_TYPES if t not in seen]
        assert not missing, f"never published: {missing}"
