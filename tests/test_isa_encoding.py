"""Round-trip and boundary tests for the binary encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.encoding import (
    EncodingError,
    IMM16_MAX,
    IMM16_MIN,
    OFF21_MAX,
    decode,
    encode,
)
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Format, Op, info

PC = 0x1000

_R3_OPS = [op for op in Op if info(op).fmt is Format.R3]
_R2I_OPS = [op for op in Op if info(op).fmt is Format.R2I]
_COND_OPS = [op for op in Op if info(op).is_cond_branch]


def roundtrip(ins: Instruction, pc: int = PC) -> Instruction:
    return decode(encode(ins, pc), pc)


class TestRoundTripExamples:
    def test_r3(self):
        ins = Instruction(Op.ADD, rd=1, ra=2, rb=3)
        assert roundtrip(ins) == ins

    def test_r2i_negative_imm(self):
        ins = Instruction(Op.ADDI, rd=1, ra=2, imm=-7)
        assert roundtrip(ins) == ins

    def test_movi(self):
        ins = Instruction(Op.MOVI, rd=9, imm=1234)
        assert roundtrip(ins) == ins

    def test_load_store(self):
        ld = Instruction(Op.LD, rd=4, ra=5, imm=-16)
        st_ = Instruction(Op.ST, rb=6, ra=7, imm=24)
        assert roundtrip(ld) == ld
        assert roundtrip(st_) == st_

    def test_fp_mem(self):
        fld = Instruction(Op.FLD, rd=1, ra=2, imm=8)
        fst = Instruction(Op.FST, rb=3, ra=4, imm=8)
        assert roundtrip(fld) == fld
        assert roundtrip(fst) == fst

    def test_cond_branch_backward(self):
        ins = Instruction(Op.BNE, ra=3, target=PC - 12 * INSTRUCTION_BYTES)
        assert roundtrip(ins) == ins

    def test_br_forward(self):
        ins = Instruction(Op.BR, target=PC + 100 * INSTRUCTION_BYTES)
        assert roundtrip(ins) == ins

    def test_jsr_keeps_link_reg(self):
        ins = Instruction(Op.JSR, rd=26, target=PC + 40)
        out = roundtrip(ins)
        assert out == ins and out.rd == 26

    def test_jump_reg(self):
        for op in (Op.JMP, Op.RET):
            ins = Instruction(op, ra=26)
            assert roundtrip(ins) == ins

    def test_none_format(self):
        assert roundtrip(Instruction(Op.NOP)) == Instruction(Op.NOP)
        assert roundtrip(Instruction(Op.HALT)) == Instruction(Op.HALT)


class TestBoundaries:
    def test_imm16_limits(self):
        for imm in (IMM16_MIN, IMM16_MAX):
            ins = Instruction(Op.ADDI, rd=1, ra=1, imm=imm)
            assert roundtrip(ins) == ins

    def test_imm16_overflow_raises(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Op.ADDI, rd=1, ra=1, imm=IMM16_MAX + 1), PC)

    def test_branch_offset_overflow_raises(self):
        far = PC + (IMM16_MAX + 10) * INSTRUCTION_BYTES
        with pytest.raises(EncodingError):
            encode(Instruction(Op.BEQ, ra=1, target=far), PC)

    def test_jump_reaches_farther_than_branch(self):
        far = PC + (OFF21_MAX - 1) * INSTRUCTION_BYTES
        ins = Instruction(Op.BR, target=far)
        assert roundtrip(ins) == ins

    def test_unaligned_target_raises(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Op.BEQ, ra=1, target=PC + 6), PC)

    def test_unknown_opcode_raises(self):
        with pytest.raises(EncodingError):
            decode(0x3F << 26, PC)


class TestRoundTripProperties:
    @given(
        op=st.sampled_from(_R3_OPS),
        rd=st.integers(0, 31),
        ra=st.integers(0, 31),
        rb=st.integers(0, 31),
    )
    @settings(max_examples=60)
    def test_r3_roundtrip(self, op, rd, ra, rb):
        ins = Instruction(op, rd=rd, ra=ra, rb=rb)
        assert roundtrip(ins) == ins

    @given(
        op=st.sampled_from(_R2I_OPS),
        rd=st.integers(0, 31),
        ra=st.integers(0, 31),
        imm=st.integers(IMM16_MIN, IMM16_MAX),
    )
    @settings(max_examples=60)
    def test_r2i_roundtrip(self, op, rd, ra, imm):
        ins = Instruction(op, rd=rd, ra=ra, imm=imm)
        assert roundtrip(ins) == ins

    @given(
        op=st.sampled_from(_COND_OPS),
        ra=st.integers(0, 31),
        words=st.integers(IMM16_MIN, IMM16_MAX),
        pc=st.integers(0, 1 << 20).map(lambda x: x * 4),
    )
    @settings(max_examples=60)
    def test_branch_roundtrip(self, op, ra, words, pc):
        target = pc + INSTRUCTION_BYTES + words * INSTRUCTION_BYTES
        ins = Instruction(op, ra=ra, target=target)
        assert roundtrip(ins, pc) == ins
