"""Tests for machine configurations and feature variants."""

import pytest

from repro.pipeline.config import (
    Features,
    MachineConfig,
    PolicyKind,
    RecyclePolicy,
)


class TestFeatures:
    def test_labels(self):
        assert Features.smt().label == "SMT"
        assert Features.tme_only().label == "TME"
        assert Features.rec().label == "REC"
        assert Features.rec_ru().label == "REC/RU"
        assert Features.rec_rs().label == "REC/RS"
        assert Features.rec_rs_ru().label == "REC/RS/RU"

    def test_all_variants_cover_figure3(self):
        variants = Features.all_variants()
        assert set(variants) == {"SMT", "TME", "REC", "REC/RU", "REC/RS", "REC/RS/RU"}

    def test_recycle_requires_tme(self):
        with pytest.raises(ValueError):
            Features(recycle=True)

    def test_reuse_requires_recycle(self):
        with pytest.raises(ValueError):
            Features(tme=True, reuse=True)


class TestPolicy:
    def test_str_round_trip(self):
        for kind in PolicyKind:
            for limit in (8, 16, 32):
                p = RecyclePolicy(kind, limit)
                assert RecyclePolicy.parse(str(p)) == p

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            RecyclePolicy.parse("sometimes-8")


class TestMachineConfigs:
    def test_baseline_is_papers(self):
        cfg = MachineConfig.big_2_16()
        assert cfg.fetch_threads == 2
        assert cfg.fetch_block == 8
        assert cfg.fetch_total == 16
        assert cfg.num_contexts == 8
        assert cfg.int_units == 12 and cfg.fp_units == 6 and cfg.ldst_ports == 8
        assert cfg.int_queue_size == 64
        assert cfg.phys_regs_per_file() == 32 * 8 + 100

    def test_big_1_8(self):
        cfg = MachineConfig.big_1_8()
        assert cfg.fetch_threads == 1 and cfg.fetch_total == 8
        assert cfg.int_units == 12  # same 18 functional units

    def test_small_halves_resources(self):
        small = MachineConfig.small_1_8()
        big = MachineConfig.big_2_16()
        assert small.int_units * 2 == big.int_units
        assert small.fp_units * 2 == big.fp_units
        assert small.int_queue_size * 2 == big.int_queue_size
        assert small.hierarchy.icache.size * 2 == big.hierarchy.icache.size

    def test_small_2_8_shares_8_slots(self):
        cfg = MachineConfig.small_2_8()
        assert cfg.fetch_threads == 2 and cfg.fetch_total == 8

    def test_by_name(self):
        for name in ("big.2.16", "big.1.8", "small.1.8", "small.2.8"):
            assert MachineConfig.by_name(name).name == name
        with pytest.raises(ValueError):
            MachineConfig.by_name("huge.4.32")

    def test_with_features(self):
        cfg = MachineConfig().with_features(Features.rec())
        assert cfg.features.recycle

    def test_with_policy(self):
        cfg = MachineConfig().with_policy(RecyclePolicy(PolicyKind.STOP, 8))
        assert cfg.policy.limit == 8
