"""Tests for the extended compute opcodes (div/rem/umulh/cmov/sext/f*)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.emulator import Emulator
from repro.isa import assemble
from repro.isa import semantics as S
from repro.isa.encoding import decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import LAT_FSQRT, LAT_IDIV, Op, info
from repro.pipeline import Core, Features, MachineConfig

i64 = st.integers(-(1 << 63), (1 << 63) - 1)


def value(op, *srcs):
    return S.compute_value(Instruction(op, rd=1, ra=2, rb=3), srcs, 0)


class TestIntegerExtended:
    def test_div_truncates_toward_zero(self):
        assert value(Op.DIV, 7, 2) == 3
        assert value(Op.DIV, -7, 2) == -3
        assert value(Op.DIV, 7, -2) == -3
        assert value(Op.DIV, -7, -2) == 3

    def test_div_by_zero_is_zero(self):
        assert value(Op.DIV, 42, 0) == 0

    def test_rem_matches_div(self):
        assert value(Op.REM, 7, 2) == 1
        assert value(Op.REM, -7, 2) == -1
        assert value(Op.REM, 42, 0) == 42

    @given(a=i64, b=i64)
    @settings(max_examples=120)
    def test_div_rem_identity(self, a, b):
        q = value(Op.DIV, a, b)
        r = value(Op.REM, a, b)
        if b != 0:
            assert S.wrap(q * b + r) == a
            assert abs(r) < abs(b)

    def test_umulh(self):
        assert value(Op.UMULH, 1 << 63, 2) == 1
        assert value(Op.UMULH, 3, 4) == 0
        assert value(Op.UMULH, -1, -1) == -2  # (2^64-1)^2 >> 64

    def test_sextb(self):
        assert value(Op.SEXTB, 0x7F, 0) == 127
        assert value(Op.SEXTB, 0x80, 0) == -128
        assert value(Op.SEXTB, 0x1FF, 0) == -1

    def test_sextw(self):
        assert value(Op.SEXTW, 0x7FFFFFFF, 0) == 0x7FFFFFFF
        assert value(Op.SEXTW, 0x80000000, 0) == -(1 << 31)


class TestConditionalMove:
    def test_reads_destination(self):
        ins = Instruction(Op.CMOVEQ, rd=5, ra=1, rb=2)
        assert ins.srcs == (1, 2, 5)

    def test_cmoveq_semantics(self):
        # srcs order: (ra, rb, old dst)
        assert value(Op.CMOVEQ, 0, 11, 22) == 11
        assert value(Op.CMOVEQ, 9, 11, 22) == 22
        assert value(Op.CMOVNE, 0, 11, 22) == 22
        assert value(Op.CMOVNE, 9, 11, 22) == 11

    def test_cmov_to_zero_reg_has_no_extra_src(self):
        ins = Instruction(Op.CMOVEQ, rd=31, ra=1, rb=2)
        assert ins.dst is None and len(ins.srcs) == 2


class TestFloatExtended:
    def test_fsqrt(self):
        assert value(Op.FSQRT, 9.0, 0.0) == 3.0
        assert math.isnan(value(Op.FSQRT, -1.0, 0.0))

    def test_fneg_fabs(self):
        assert value(Op.FNEG, 2.5, 0.0) == -2.5
        assert value(Op.FABS, -2.5, 0.0) == 2.5

    def test_latencies(self):
        assert info(Op.DIV).latency == LAT_IDIV == 20
        assert info(Op.FSQRT).latency == LAT_FSQRT == 16


class TestToolchain:
    def test_assembles_with_unary_syntax(self):
        prog = assemble(
            """
            main: movi r1, 200
                  movi r2, 7
                  div  r3, r1, r2
                  rem  r4, r1, r2
                  sextb r5, r1
                  cmoveq r6, r4, r3
                  fsqrt f1, f2
                  fneg  f3, f1
                  halt
            """
        )
        emu = Emulator(prog)
        emu.run_to_halt()
        assert emu.state.regs[3] == 28
        assert emu.state.regs[4] == 4
        assert emu.state.regs[5] == -56  # 200 & 0xff = 0xc8 → -56

    def test_encoding_roundtrip(self):
        for op in (Op.DIV, Op.UMULH, Op.CMOVNE, Op.SEXTW, Op.FSQRT, Op.FABS):
            ins = Instruction(op, rd=4, ra=5, rb=6)
            assert decode(encode(ins, 0x1000), 0x1000) == ins

    def test_pipeline_golden_clean_with_extended_ops(self):
        src = """
        main:  movi r1, 31415
               movi r2, 150
        loop:  slli r3, r1, 13
               xor  r1, r1, r3
               srli r3, r1, 7
               xor  r1, r1, r3
               andi r4, r1, 255
               movi r5, 7
               div  r6, r4, r5
               rem  r7, r4, r5
               umulh r8, r1, r4
               cmoveq r9, r7, r6
               sextb r10, r1
               cvtif f1, r4, zero
               fsqrt f2, f1
               fabs  f3, f2
               beq   r7, skip
               addi  r11, r11, 1
        skip:  subi r2, r2, 1
               bgt  r2, loop
               halt
        """
        core = Core(MachineConfig(features=Features.rec_rs_ru()))
        core.load([assemble(src, name="ext")])
        stats = core.run(max_cycles=400_000)
        assert core.instances[0].halted
        assert stats.committed > 1000
