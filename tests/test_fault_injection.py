"""Failure injection: the co-simulation checker must catch corruption.

These tests deliberately break one invariant at a time inside a running
core and assert the commit-time golden check (or an internal assertion)
fires.  If any of these pass silently, the "all runs are golden-clean"
guarantee the reproduction rests on would be meaningless.
"""

import pytest

from repro.isa import assemble
from repro.pipeline import Core, Features, MachineConfig, SimulationError
from repro.pipeline.uop import UopState

SRC = """
main:  movi r1, 777
       movi r2, 200
loop:  slli r3, r1, 13
       xor  r1, r1, r3
       srli r3, r1, 7
       xor  r1, r1, r3
       andi r4, r1, 1
       beq  r4, skip
       addi r5, r5, 1
skip:  st   r5, 0(r6)
       ld   r7, 0(r6)
       subi r2, r2, 1
       bgt  r2, loop
       halt
"""


def fresh_core(features=Features.rec_rs_ru()):
    core = Core(MachineConfig(features=features))
    core.load([assemble(SRC, name="victim")])
    return core


class TestValueCorruption:
    def test_wrong_alu_value_detected(self):
        core = fresh_core()
        original = core._execute

        state = {"armed": 200}

        def corrupt(uop):
            original(uop)
            state["armed"] -= 1
            if state["armed"] <= 0 and uop.value is not None and uop.instr.dst is not None:
                uop.value = (uop.value or 0) + 1
                core.regfile.values[uop.phys_dst] = uop.value

        core._execute = corrupt
        with pytest.raises(SimulationError, match="mismatch"):
            core.run(max_cycles=300_000)

    def test_wrong_store_value_detected(self):
        core = fresh_core()
        original = core._execute

        def corrupt(uop):
            original(uop)
            if uop.instr.is_store and uop.store_bits is not None:
                uop.store_bits ^= 0xFF

        core._execute = corrupt
        with pytest.raises(SimulationError, match="store mismatch|mismatch"):
            core.run(max_cycles=300_000)

    def test_wrong_store_address_detected(self):
        core = fresh_core()
        original = core._execute

        def corrupt(uop):
            original(uop)
            if uop.instr.is_store and uop.eff_addr is not None:
                uop.eff_addr += 8

        core._execute = corrupt
        with pytest.raises(SimulationError):
            core.run(max_cycles=300_000)


class TestControlFlowCorruption:
    def test_skipped_commit_detected(self):
        """Dropping an instruction from the committed stream is caught
        immediately by the PC cross-check."""
        core = fresh_core(Features.smt())
        original = core._retire
        state = {"skip": 150}

        def skipping(instance, ctx, uop):
            state["skip"] -= 1
            if state["skip"] == 0:
                # Silently drop the uop without stepping the golden model.
                ctx.active_list.advance_commit()
                uop.state = UopState.COMMITTED
                return
            original(instance, ctx, uop)

        core._retire = skipping
        with pytest.raises(SimulationError, match="commit PC"):
            core.run(max_cycles=300_000)

    def test_bogus_branch_outcome_detected(self):
        core = fresh_core(Features.smt())
        original = core._execute
        state = {"armed": 120}

        def corrupt(uop):
            original(uop)
            if uop.instr.is_cond_branch:
                state["armed"] -= 1
                if state["armed"] <= 0:
                    uop.taken = not uop.taken
                    uop.target = (
                        uop.instr.target if uop.taken else uop.pc + 4
                    )

        core._execute = corrupt
        with pytest.raises(SimulationError):
            core.run(max_cycles=300_000)


class TestReuseCorruption:
    def test_unsound_reuse_detected(self):
        """Force reuse decisions to ignore the written-bit test; the
        golden check must flag the first stale value that commits."""
        core = fresh_core()
        original = core._reuse_candidate

        def always(dst, src, entry, stream):
            result = original(dst, src, entry, stream)
            if result is not None:
                return result
            # Bypass the safety checks: reuse whatever is there.
            if entry.src_pos is None:
                return None
            uop = src.active_list.try_entry(entry.src_pos)
            if (
                uop is not None
                and not uop.squashed
                and uop.executed_on_path
                and uop.phys_dst is not None
                and uop.instr.dst is not None
                and not uop.instr.is_store
                and not uop.instr.is_branch
            ):
                return uop
            return None

        core._reuse_candidate = always
        with pytest.raises(SimulationError):
            core.run(max_cycles=300_000)


class TestRegfileInvariants:
    def test_double_free_asserts(self):
        core = fresh_core(Features.smt())
        core.run(max_cycles=2000)
        # Grab any live register and free it behind the core's back.
        reg = core.contexts[0].map.lookup(1)
        with pytest.raises(AssertionError):
            for _ in range(64):
                core.regfile.decref(reg)

    def test_deadlock_detector_fires(self):
        core = fresh_core(Features.smt())
        # Stop the commit stage entirely: the watchdog must trip.
        core._commit_stage = lambda: None
        with pytest.raises(SimulationError, match="no commits"):
            core.run(max_cycles=100_000, deadlock_limit=2_000)


class TestSquashCorruption:
    def test_unsquashed_wrong_path_detected(self):
        """An off-by-one squash that always retains the oldest wrong-path
        uop must be caught (a single skipped squash can be masked by an
        older branch's own recovery, so the fault is persistent)."""
        core = fresh_core(Features.smt())
        original = core._squash_suffix

        def off_by_one(ctx, branch_pos):
            if ctx.active_list.tail_pos > branch_pos + 1:
                return original(ctx, branch_pos + 1)
            return original(ctx, branch_pos)

        core._squash_suffix = off_by_one
        with pytest.raises(SimulationError):
            core.run(max_cycles=300_000)

    def test_skipped_prev_map_free_leaks_registers(self):
        """Never freeing displaced mappings exhausts the file; with
        reclaim exhausted the machine deadlocks and the watchdog fires,
        or an assertion trips — either way the run cannot pass."""
        core = fresh_core(Features.smt())
        original = core._retire

        def leaky(instance, ctx, uop):
            saved = uop.prev_map
            if uop.phys_dst is not None:
                uop.prev_map = None  # drop the reference on the floor
                try:
                    original(instance, ctx, uop)
                finally:
                    uop.prev_map = saved
                core.regfile.incref(saved) if False else None
            else:
                original(instance, ctx, uop)

        core._retire = leaky
        with pytest.raises((SimulationError, AssertionError)):
            core.run(max_cycles=300_000, deadlock_limit=3_000)
