"""Tests for the timing cache and hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import Cache, CacheConfig, HierarchyConfig, MemoryHierarchy


def tiny_cache(assoc=2, sets=4, banks=2):
    cfg = CacheConfig("T", size=64 * assoc * sets, assoc=assoc, banks=banks)
    return Cache(cfg)


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig("L1", 64 * 1024, 1)
        assert cfg.num_sets == 1024

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", size=100, assoc=1)

    def test_bad_banks_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", size=1024, assoc=1, banks=3)

    def test_paper_geometries(self):
        big = HierarchyConfig.big()
        assert big.icache.size == 64 * 1024 and big.icache.assoc == 1
        assert big.l2.size == 256 * 1024 and big.l2.assoc == 4
        assert big.l3.size == 4 * 1024 * 1024
        assert (big.l2_penalty, big.l3_penalty, big.memory_penalty) == (6, 12, 62)

    def test_small_is_half(self):
        small = HierarchyConfig.small()
        big = HierarchyConfig.big()
        assert small.icache.size * 2 == big.icache.size
        assert small.l2.size * 2 == big.l2.size


class TestCacheBehaviour:
    def test_miss_then_hit_after_fill(self):
        c = tiny_cache()
        assert not c.lookup(0x1000)
        c.fill(0x1000)
        assert c.lookup(0x1000)

    def test_same_line_hits(self):
        c = tiny_cache()
        c.fill(0x1000)
        assert c.lookup(0x1000 + 63)
        assert not c.lookup(0x1000 + 64)

    def test_lru_eviction(self):
        c = tiny_cache(assoc=2, sets=1)
        c.fill(0x0)
        c.fill(0x40)
        c.lookup(0x0)  # make 0x0 MRU
        c.fill(0x80)  # evicts 0x40
        assert c.probe(0x0)
        assert not c.probe(0x40)
        assert c.probe(0x80)

    def test_direct_mapped_conflict(self):
        c = tiny_cache(assoc=1, sets=4)
        c.fill(0x0)
        c.fill(0x100)  # same set (4 sets * 64B line = 256B stride)
        assert not c.probe(0x0)

    def test_spaces_do_not_alias(self):
        c = tiny_cache()
        c.fill(0x1000, space=0)
        assert not c.lookup(0x1000, space=1)
        assert c.lookup(0x1000, space=0)

    def test_stats(self):
        c = tiny_cache()
        c.lookup(0x0)
        c.fill(0x0)
        c.lookup(0x0)
        assert (c.hits, c.misses) == (1, 1)
        assert c.miss_rate == 0.5
        c.reset_stats()
        assert c.accesses == 0

    def test_bank_conflict_delay(self):
        c = tiny_cache(banks=2)
        assert c.bank_delay(0x0, cycle=10) == 0
        assert c.bank_delay(0x0, cycle=10) == 1  # same bank, same cycle
        assert c.bank_delay(0x40, cycle=10) == 0  # other bank

    def test_bank_frees_up(self):
        c = tiny_cache(banks=2)
        c.bank_delay(0x0, cycle=10)
        assert c.bank_delay(0x0, cycle=12) == 0

    @given(addrs=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200))
    @settings(max_examples=30)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        c = tiny_cache(assoc=2, sets=4)
        for a in addrs:
            if not c.lookup(a):
                c.fill(a)
        assert all(len(ways) <= 2 for ways in c._sets.values())

    @given(addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=100))
    @settings(max_examples=30)
    def test_fill_then_immediate_probe_hits(self, addrs):
        c = tiny_cache(assoc=4, sets=8)
        for a in addrs:
            c.fill(a)
            assert c.probe(a)


class TestHierarchy:
    def test_l1_hit_latency(self):
        h = MemoryHierarchy()
        h.dcache.fill(0x1000)
        assert h.data_latency(0x1000, cycle=0) == 2

    def test_icache_hit_is_free(self):
        h = MemoryHierarchy()
        h.icache.fill(0x1000)
        assert h.fetch_latency(0x1000, cycle=0) == 0

    def test_miss_latencies_stack(self):
        h = MemoryHierarchy()
        # Cold access goes all the way to memory.
        cold = h.data_latency(0x10000, cycle=0)
        assert cold >= 2 + 6 + 12 + 62

    def test_l2_hit_after_l1_evict(self):
        h = MemoryHierarchy()
        h.l2.fill(0x2000)
        lat = h.data_latency(0x2000, cycle=0)
        assert lat == 2 + 6

    def test_fill_propagates(self):
        h = MemoryHierarchy()
        h.data_latency(0x3000, cycle=0)
        assert h.dcache.probe(0x3000)
        assert h.l2.probe(0x3000)
        assert h.l3.probe(0x3000)

    def test_second_access_hits(self):
        h = MemoryHierarchy()
        h.data_latency(0x4000, cycle=0)
        assert h.data_latency(0x4000, cycle=200) == 2

    def test_mshr_merging(self):
        h = MemoryHierarchy()
        first = h.fetch_latency(0x5000, cycle=0)
        # A second request for the same line two cycles later completes
        # with the first fill, not with a fresh full miss.
        second = h.fetch_latency(0x5000, cycle=2)
        assert second <= first
        assert 2 + second <= 0 + first + 1

    def test_memory_bus_serialises(self):
        h = MemoryHierarchy()
        a = h.data_latency(0x10000, cycle=0)
        b = h.data_latency(0x20000, cycle=0)
        assert b > a  # second miss waits on the channel

    def test_stats_dict(self):
        h = MemoryHierarchy()
        h.data_latency(0x1000, 0)
        s = h.stats()
        assert s["dcache_accesses"] == 1
        assert 0 <= s["dcache_miss_rate"] <= 1
