"""Tests for ``tools/bench_compare.py`` (the perf no-regression gate)."""

import importlib.util
import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_compare", REPO / "tools" / "bench_compare.py"
)
bench_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_compare)


def payload(**overrides):
    base = {
        "kernel": "compress",
        "machine": "big.2.16",
        "features": "REC/RS/RU",
        "commit_target": 3000,
        "cycles": 2818,
        "cycles_per_second": 5000.0,
    }
    base.update(overrides)
    return base


def write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


class TestCompare:
    def test_equal_payloads_pass(self, capsys):
        assert bench_compare.compare(payload(), payload(), 0.15) == 0
        assert "OK" in capsys.readouterr().out

    def test_improvement_passes(self):
        fresh = payload(cycles_per_second=9000.0)
        assert bench_compare.compare(payload(), fresh, 0.15) == 0

    def test_small_regression_within_threshold_passes(self):
        fresh = payload(cycles_per_second=5000.0 * 0.90)  # -10%
        assert bench_compare.compare(payload(), fresh, 0.15) == 0

    def test_large_regression_fails(self, capsys):
        fresh = payload(cycles_per_second=5000.0 * 0.80)  # -20%
        assert bench_compare.compare(payload(), fresh, 0.15) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_threshold_is_configurable(self):
        fresh = payload(cycles_per_second=5000.0 * 0.90)  # -10%
        assert bench_compare.compare(payload(), fresh, 0.05) == 1

    def test_spec_mismatch_refuses(self, capsys):
        fresh = payload(kernel="li")
        assert bench_compare.compare(payload(), fresh, 0.15) == 2
        assert "different specs" in capsys.readouterr().out

    def test_missing_throughput_refuses(self):
        fresh = payload()
        del fresh["cycles_per_second"]
        assert bench_compare.compare(payload(), fresh, 0.15) == 2


class TestMain:
    def test_cli_pass(self, tmp_path):
        base = write(tmp_path, "base.json", payload())
        fresh = write(tmp_path, "fresh.json", payload(cycles_per_second=5100.0))
        assert bench_compare.main(["--baseline", base, "--fresh", fresh]) == 0

    def test_cli_regression(self, tmp_path):
        base = write(tmp_path, "base.json", payload())
        fresh = write(tmp_path, "fresh.json", payload(cycles_per_second=1000.0))
        assert bench_compare.main(["--baseline", base, "--fresh", fresh]) == 1

    def test_cli_missing_baseline_exits_3(self, tmp_path):
        # A missing payload is "nothing to compare", not a crash: exit 3
        # so CI can distinguish it from a regression (1) or mismatch (2).
        fresh = write(tmp_path, "fresh.json", payload())
        code = bench_compare.main(
            ["--baseline", str(tmp_path / "nope.json"), "--fresh", fresh]
        )
        assert code == 3

    def test_cli_corrupt_baseline_refuses(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        fresh = write(tmp_path, "fresh.json", payload())
        with pytest.raises(SystemExit):
            bench_compare.main(["--baseline", str(bad), "--fresh", fresh])

    def test_cli_against_committed_baseline(self, tmp_path):
        """The committed BENCH_core.json is a valid baseline input."""
        committed = REPO / "BENCH_core.json"
        data = json.loads(committed.read_text())
        fresh = write(
            tmp_path,
            "fresh.json",
            {**data, "cycles_per_second": data["cycles_per_second"] * 2},
        )
        assert bench_compare.main(["--baseline", str(committed), "--fresh", fresh]) == 0


class TestRatchet:
    def test_improvement_bumps_the_baseline_file(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", payload())
        fresh = write(tmp_path, "fresh.json", payload(cycles_per_second=6000.0))
        code = bench_compare.main(
            ["--baseline", base, "--fresh", fresh, "--ratchet"]
        )
        assert code == 0
        assert "ratcheted" in capsys.readouterr().out
        bumped = json.loads(Path(base).read_text())
        assert bumped["cycles_per_second"] == 6000.0

    def test_regression_leaves_baseline_untouched(self, tmp_path):
        base = write(tmp_path, "base.json", payload())
        fresh = write(tmp_path, "fresh.json", payload(cycles_per_second=4900.0))
        code = bench_compare.main(
            ["--baseline", base, "--fresh", fresh, "--ratchet"]
        )
        assert code == 0  # -2%: inside even the tightened threshold
        untouched = json.loads(Path(base).read_text())
        assert untouched["cycles_per_second"] == 5000.0

    def test_ratchet_tightens_default_threshold_to_5pct(self, tmp_path):
        base = write(tmp_path, "base.json", payload())
        fresh = write(tmp_path, "fresh.json", payload(cycles_per_second=4500.0))
        args = ["--baseline", base, "--fresh", fresh]
        # -10%: passes the plain 15% gate, fails the ratchet's 5% gate.
        assert bench_compare.main(args) == 0
        assert bench_compare.main(args + ["--ratchet"]) == 1

    def test_explicit_threshold_overrides_ratchet_default(self, tmp_path):
        base = write(tmp_path, "base.json", payload())
        fresh = write(tmp_path, "fresh.json", payload(cycles_per_second=4500.0))
        code = bench_compare.main(
            ["--baseline", base, "--fresh", fresh, "--ratchet",
             "--threshold", "0.2"]
        )
        assert code == 0

    def test_equal_throughput_does_not_rewrite(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", payload())
        fresh = write(tmp_path, "fresh.json", payload())
        assert bench_compare.main(
            ["--baseline", base, "--fresh", fresh, "--ratchet"]
        ) == 0
        assert "ratcheted" not in capsys.readouterr().out


class TestServiceLatencyWarnOnly:
    def test_latency_regression_warns_but_passes(self, capsys):
        base = payload(service_warm_submit_seconds=0.005)
        fresh = payload(service_warm_submit_seconds=0.050)  # 10x slower
        assert bench_compare.compare(base, fresh, 0.15) == 0
        out = capsys.readouterr().out
        assert "WARN" in out and "service latency" in out
        assert "FAIL" not in out

    def test_latency_improvement_is_quiet(self, capsys):
        base = payload(service_warm_submit_seconds=0.050)
        fresh = payload(service_warm_submit_seconds=0.005)
        assert bench_compare.compare(base, fresh, 0.15) == 0
        assert "WARN" not in capsys.readouterr().out

    def test_untracked_latency_is_skipped(self, capsys):
        assert bench_compare.compare(payload(), payload(), 0.15) == 0
        assert "service latency not tracked" in capsys.readouterr().out

    def test_throughput_gate_still_fails_independently(self, capsys):
        base = payload(service_warm_submit_seconds=0.005)
        fresh = payload(
            cycles_per_second=5000.0 * 0.5, service_warm_submit_seconds=0.005
        )
        assert bench_compare.compare(base, fresh, 0.15) == 1

    def test_committed_baseline_tracks_the_metric(self):
        data = json.loads((REPO / "BENCH_core.json").read_text())
        assert data["service_warm_submit_seconds"] > 0
