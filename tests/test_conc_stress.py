"""Concurrency stress tests, run under the TSan-lite sanitizer.

Two pressure points from the service layer's concurrency model:

* the **journal**: many threads *and* separate processes appending to one
  ``ArtifactStore`` journal through the advisory :class:`FileLock` — every
  append must survive intact (no torn/interleaved lines, no lost keys);
* **lease expiry**: a scheduler with a tiny ``lease_ttl`` whose leases are
  deliberately dropped by some workers and completed by others — expired
  leases must re-queue and the campaign must still converge to ``done``.

Both run inside ``sanitized(...)`` with the statically inferred guard map
installed, so any lock-order inversion or unguarded shared-state access
the stress shakes loose fails the test.
"""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.analysis.conc import service_facts
from repro.analysis.conc.sanitizer import install_guards, sanitized
from repro.exec.cache import Journal
from repro.service.scheduler import Scheduler
from repro.service.spec import sweep_spec
from repro.service.store import ArtifactStore

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

# Appends `count` records tagged `tag` to the shared store root.
_APPEND_SCRIPT = """
import sys
from repro.service.store import ArtifactStore
root, tag, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
store = ArtifactStore(root, compact_on_start=False)
for i in range(count):
    store.record(f"{tag}-{i:03d}", {"tag": tag, "seq": i})
"""


def _spawn_appender(root: Path, tag: str, count: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", _APPEND_SCRIPT, str(root), tag, str(count)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def test_journal_survives_thread_and_process_hammering(tmp_path):
    threads_n, procs_n, per_writer = 3, 2, 20
    with sanitized() as s:
        # One store instance per thread — exactly how independent writers
        # (a second server, a restarted one) share the directory tree.
        stores = [
            ArtifactStore(tmp_path, compact_on_start=False)
            for _ in range(threads_n)
        ]
        errors = []

        def hammer(store, tag):
            try:
                for i in range(per_writer):
                    store.record(f"{tag}-{i:03d}", {"tag": tag, "seq": i})
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        procs = [
            _spawn_appender(tmp_path, f"proc{p}", per_writer)
            for p in range(procs_n)
        ]
        threads = [
            threading.Thread(target=hammer, args=(store, f"thread{t}"))
            for t, store in enumerate(stores)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        for proc in procs:
            _, err = proc.communicate(timeout=60.0)
            assert proc.returncode == 0, err.decode()
        assert errors == []

        # Every line parses (the file lock prevented interleaved partial
        # writes) and every writer's every key survived.
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        parsed = [json.loads(line) for line in lines]
        expected = (threads_n + procs_n) * per_writer
        assert len(parsed) == expected
        replayed = Journal(tmp_path / "journal.jsonl").load()
        assert len(replayed) == expected
        for tag in [f"thread{t}" for t in range(threads_n)] + [
            f"proc{p}" for p in range(procs_n)
        ]:
            for i in range(per_writer):
                assert replayed[f"{tag}-{i:03d}"] == {"tag": tag, "seq": i}

    assert s.counts()["acquires"] >= threads_n * per_writer
    s.assert_quiet()


def test_lease_expiry_under_contention(tmp_path):
    """Dropped leases expire, re-queue and are completed by healthier
    workers; the campaign converges and the sanitizer stays quiet."""
    facts = service_facts()
    guard_map = facts.guard_attrs("Scheduler")
    with sanitized(static_edges=facts.order_edges()) as s:
        uninstall = install_guards(Scheduler, guard_map)
        try:
            store = ArtifactStore(tmp_path)
            scheduler = Scheduler(store, lease_ttl=0.05)
            status = scheduler.submit(
                sweep_spec(
                    ["compress"],
                    grid={"active_list_size": [8, 16, 24, 32, 40, 48]},
                    commit_target=100,
                    label="lease-stress",
                )
            )
            campaign_id = status["id"]

            # Lease-and-abandon up front so expiry provably happens even
            # if the racing droppers below never win a lease.
            abandoned = scheduler.lease(max_tasks=2, worker="doomed")
            assert abandoned
            time.sleep(0.06)  # let those leases expire

            stop = threading.Event()

            def dropper():
                # Grabs leases and walks away; each one must expire and
                # re-queue rather than wedging the campaign.
                while not stop.is_set():
                    scheduler.lease(max_tasks=1, worker="dropper")
                    time.sleep(0.02)

            def worker():
                while not stop.is_set():
                    tasks = scheduler.lease(max_tasks=1, worker="worker")
                    if not tasks:
                        time.sleep(0.005)
                        continue
                    for task in tasks:
                        # Completing a lease that expired under us is
                        # tolerated (complete returns False) — exactly
                        # the race this stress is about.
                        scheduler.complete(
                            task["key"],
                            {"ipc": 1.0, "stress": True},
                            worker="worker",
                        )

            threads = [threading.Thread(target=dropper) for _ in range(2)]
            threads += [threading.Thread(target=worker) for _ in range(3)]
            for t in threads:
                t.start()
            try:
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if scheduler.campaign_status(campaign_id)["state"] == "done":
                        break
                    time.sleep(0.02)
                else:
                    pytest.fail("campaign never converged under lease churn")
            finally:
                stop.set()
                for t in threads:
                    t.join(timeout=10.0)

            counters = scheduler.metrics()["jobs"]
            assert counters["leases_expired"] >= 2  # the abandoned pair
            assert counters["jobs_done"] == 6
        finally:
            uninstall()
    counts = s.counts()
    assert counts["acquires"] > 0
    assert counts["guard_checks"] > 0
    s.assert_quiet()
