"""Tests for Program image helpers."""

import pytest

from repro.isa import assemble
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.program import Program, TEXT_BASE


def prog():
    return assemble("main: movi r1, 1\naddi r1, r1, 2\nhalt", name="p")


class TestAddressing:
    def test_text_end(self):
        p = prog()
        assert p.text_end == TEXT_BASE + 3 * INSTRUCTION_BYTES

    def test_instr_index_aligned(self):
        p = prog()
        assert p.instr_index(TEXT_BASE) == 0
        assert p.instr_index(TEXT_BASE + 8) == 2

    def test_instr_index_unaligned_is_none(self):
        assert prog().instr_index(TEXT_BASE + 2) is None

    def test_instr_index_out_of_range(self):
        p = prog()
        assert p.instr_index(TEXT_BASE - 4) is None
        assert p.instr_index(p.text_end) is None

    def test_instr_at(self):
        p = prog()
        assert p.instr_at(TEXT_BASE) is p.instructions[0]
        assert p.instr_at(0) is None

    def test_addr_of(self):
        p = prog()
        assert p.addr_of("main") == TEXT_BASE
        with pytest.raises(KeyError):
            p.addr_of("nowhere")

    def test_len(self):
        assert len(prog()) == 3


class TestEntry:
    def test_entry_defaults_to_main(self):
        assert prog().entry == TEXT_BASE

    def test_entry_defaults_to_text_base_without_main(self):
        p = assemble("start: halt")
        assert p.entry == TEXT_BASE

    def test_explicit_entry_kept(self):
        p = Program(name="x", instructions=prog().instructions, entry=0x1004)
        assert p.entry == 0x1004


class TestListing:
    def test_listing_one_line_per_instruction(self):
        p = prog()
        assert len(p.listing().splitlines()) == len(p)
