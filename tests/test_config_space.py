"""Configuration-space robustness: random machine shapes stay golden-clean.

Recycling interacts with every width and size in the machine; these
tests drive a fixed hard-branch kernel through randomly drawn machine
configurations (and the full machine × variant matrix) to guarantee no
configuration corner breaks the architectural contract.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.isa import assemble
from repro.pipeline import Core, Features, MachineConfig
from repro.sim import MACHINES, VARIANTS
from repro.workloads import WorkloadSuite

KERNEL = """
main:  movi r1, 777
       movi r2, 150
loop:  slli r3, r1, 13
       xor  r1, r1, r3
       srli r3, r1, 7
       xor  r1, r1, r3
       andi r4, r1, 1
       beq  r4, skip
       addi r5, r5, 1
skip:  st   r5, 0(r6)
       ld   r7, 0(r6)
       subi r2, r2, 1
       bgt  r2, loop
       halt
"""

machine_configs = st.builds(
    dict,
    fetch_threads=st.integers(1, 3),
    fetch_block=st.sampled_from([4, 8]),
    fetch_total=st.sampled_from([4, 8, 16]),
    rename_width=st.sampled_from([4, 8, 16]),
    commit_width=st.sampled_from([4, 8, 16]),
    int_queue_size=st.sampled_from([8, 16, 64]),
    int_units=st.integers(2, 12),
    fp_units=st.integers(1, 6),
    ldst_ports=st.integers(1, 8),
    active_list_size=st.sampled_from([16, 32, 64]),
    extra_phys_regs=st.sampled_from([16, 50, 100]),
    num_contexts=st.sampled_from([2, 4, 8]),
    confidence_threshold=st.integers(1, 15),
)


class TestRandomConfigurations:
    @given(overrides=machine_configs)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_rec_rs_ru_golden_clean_on_random_machines(self, overrides):
        cfg = MachineConfig(features=Features.rec_rs_ru(), **overrides)
        core = Core(cfg)
        core.load([assemble(KERNEL, name="k")])
        core.run(max_cycles=500_000)
        assert core.instances[0].halted
        core.regfile.check_consistency()

    @given(overrides=machine_configs)
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_tme_golden_clean_on_random_machines(self, overrides):
        cfg = MachineConfig(features=Features.tme_only(), **overrides)
        core = Core(cfg)
        core.load([assemble(KERNEL, name="k")])
        core.run(max_cycles=500_000)
        assert core.instances[0].halted


class TestFullMatrix:
    @pytest.mark.parametrize("machine", MACHINES)
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_every_machine_variant_pair(self, machine, variant):
        suite = WorkloadSuite()
        features = Features.all_variants()[variant]
        cfg = MachineConfig.by_name(machine, features=features)
        core = Core(cfg)
        core.load(suite.single("compress"), commit_target=400)
        stats = core.run(max_cycles=500_000)
        assert stats.committed >= 400
        core.regfile.check_consistency()
