"""Tests for the two-pass assembler."""

import struct

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import Op
from repro.isa.program import DATA_BASE, TEXT_BASE


class TestBasics:
    def test_single_instruction(self):
        prog = assemble("add r1, r2, r3")
        assert len(prog) == 1
        assert prog.instructions[0].op is Op.ADD

    def test_comments_and_blank_lines(self):
        prog = assemble(
            """
            # leading comment
            movi r1, 5   # trailing comment

            halt
            """
        )
        assert [i.op for i in prog.instructions] == [Op.MOVI, Op.HALT]

    def test_label_addresses(self):
        prog = assemble(
            """
            main:  movi r1, 0
            loop:  addi r1, r1, 1
                   bne  r1, loop
            """
        )
        assert prog.labels["main"] == TEXT_BASE
        assert prog.labels["loop"] == TEXT_BASE + INSTRUCTION_BYTES
        assert prog.entry == TEXT_BASE

    def test_branch_target_resolution(self):
        prog = assemble(
            """
            loop: addi r1, r1, 1
                  bne  r1, loop
            """
        )
        assert prog.instructions[1].target == TEXT_BASE

    def test_forward_reference(self):
        prog = assemble(
            """
            br done
            addi r1, r1, 1
            done: halt
            """
        )
        assert prog.instructions[0].target == TEXT_BASE + 2 * INSTRUCTION_BYTES

    def test_memory_operands(self):
        prog = assemble("ld r1, -8(r2)\nst r3, 16(sp)")
        ld, st_ = prog.instructions
        assert (ld.ra, ld.imm) == (2, -8)
        assert (st_.rb, st_.ra, st_.imm) == (3, 30, 16)

    def test_movi_label_immediate(self):
        prog = assemble(
            """
            .data
            tab: .word 1, 2
            .text
            movi r1, tab
            """
        )
        assert prog.instructions[0].imm == DATA_BASE

    def test_jsr_and_ret(self):
        prog = assemble(
            """
            main: jsr ra, fn
                  halt
            fn:   ret (ra)
            """
        )
        jsr, _, ret = prog.instructions
        assert jsr.op is Op.JSR and jsr.rd == 26
        assert jsr.target == prog.labels["fn"]
        assert ret.op is Op.RET and ret.ra == 26


class TestDataSection:
    def test_word_values(self):
        prog = assemble(
            """
            .data
            vals: .word 10, -3, 0x20
            """
        )
        assert len(prog.data) == 24
        assert struct.unpack("<3q", prog.data) == (10, -3, 0x20)

    def test_double_values(self):
        prog = assemble(".data\npi: .double 3.5")
        assert struct.unpack("<d", prog.data)[0] == 3.5

    def test_space_zero_filled(self):
        prog = assemble(".data\nbuf: .space 32")
        assert prog.data == b"\x00" * 32

    def test_align(self):
        prog = assemble(
            """
            .data
            a: .space 3
            .align 8
            b: .word 7
            """
        )
        assert prog.labels["b"] == DATA_BASE + 8
        assert len(prog.data) == 16

    def test_word_label_value(self):
        prog = assemble(
            """
            .data
            ptr: .word tgt
            tgt: .word 0
            """
        )
        assert struct.unpack("<q", prog.data[:8])[0] == DATA_BASE + 8

    def test_data_label_layout(self):
        prog = assemble(
            """
            .data
            a: .word 1
            b: .space 16
            c: .word 2
            """
        )
        assert prog.labels["a"] == DATA_BASE
        assert prog.labels["b"] == DATA_BASE + 8
        assert prog.labels["c"] == DATA_BASE + 24


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate r1, r2")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("a: nop\na: nop")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r2")

    def test_fp_int_mismatch(self):
        with pytest.raises(AssemblerError):
            assemble("fadd f1, r2, f3")
        with pytest.raises(AssemblerError):
            assemble("add r1, f2, r3")

    def test_instruction_in_data_section(self):
        with pytest.raises(AssemblerError):
            assemble(".data\nadd r1, r2, r3")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError):
            assemble("ld r1, r2")

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError):
            assemble(".data\n.quad 3")

    def test_error_reports_line(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("nop\nbogus r1")

    def test_undefined_label_is_error(self):
        with pytest.raises(AssemblerError):
            assemble("br nowhere")


class TestListing:
    def test_listing_contains_labels(self):
        prog = assemble("main: movi r1, 1\nhalt")
        text = prog.listing()
        assert "main:" in text and "movi" in text and "halt" in text
