"""Timing-property tests: latencies and policies observable per-uop.

Uses the tracer's committed-uop timeline to verify the machine honours
the paper's latency assumptions (Section 4) rather than just "runs".
"""

from repro.debug import CoreTracer
from repro.isa import assemble
from repro.isa.opcodes import Op
from repro.pipeline import Core, Features, MachineConfig


def committed_uops(src, features=Features.smt(), **config_kwargs):
    core = Core(MachineConfig(features=features, **config_kwargs))
    core.load([assemble(src, name="timing")])
    tracer = CoreTracer(core)
    core.run(max_cycles=300_000)
    assert core.instances[0].halted
    return core, tracer.committed_uops


def latency_of(uops, op):
    """Observed issue→complete latencies for one opcode, regread excluded."""
    out = []
    for u in uops:
        if u.instr.op is op and u.issue_cycle >= 0 and u.complete_cycle >= 0:
            out.append(u.complete_cycle - u.issue_cycle - 2)  # minus regread
    return out


WARM_LOOP = """
main: movi r2, 60
      movi r9, 0x5000
loop: add  r1, r1, r2
      mul  r3, r1, r2
      fadd f1, f1, f2
      fdiv f3, f1, f2
      ld   r4, 0(r9)
      st   r4, 8(r9)
      subi r2, r2, 1
      bgt  r2, loop
      halt
"""


class TestLatencies:
    def test_alu_single_cycle(self):
        _, uops = committed_uops(WARM_LOOP)
        lats = latency_of(uops, Op.ADD)
        assert lats and min(lats) == 1

    def test_multiply_seven_cycles(self):
        _, uops = committed_uops(WARM_LOOP)
        lats = latency_of(uops, Op.MUL)
        assert lats and min(lats) == 7

    def test_fadd_four_cycles(self):
        _, uops = committed_uops(WARM_LOOP)
        lats = latency_of(uops, Op.FADD)
        assert lats and min(lats) == 4

    def test_fdiv_twelve_cycles(self):
        _, uops = committed_uops(WARM_LOOP)
        lats = latency_of(uops, Op.FDIV)
        assert lats and min(lats) == 12

    def test_load_hit_latency(self):
        """Warm loads: 1 (agen) + 2 (L1D hit) = 3 cycles past regread."""
        _, uops = committed_uops(WARM_LOOP)
        lats = latency_of(uops, Op.LD)
        assert lats and min(lats) == 3

    def test_forwarded_load_is_faster(self):
        src = """
        main: movi r9, 0x5000
              movi r2, 40
        loop: st   r1, 0(r9)
              ld   r3, 0(r9)
              addi r1, r1, 1
              subi r2, r2, 1
              bgt  r2, loop
              halt
        """
        _, uops = committed_uops(src)
        lats = latency_of(uops, Op.LD)
        # Store-to-load forwarding completes in 1 cycle past regread.
        assert lats and min(lats) == 1


class TestPipelineDepth:
    def test_rename_to_issue_at_least_one_cycle(self):
        _, uops = committed_uops(WARM_LOOP)
        for u in uops:
            if u.issue_cycle >= 0:
                assert u.issue_cycle >= u.rename_cycle + 1

    def test_commit_in_order_per_context(self):
        core, uops = committed_uops(WARM_LOOP)
        per_ctx = {}
        for u in uops:
            per_ctx.setdefault(u.ctx, []).append(u.seq)
        # Commit order within one program follows the golden stream
        # (already enforced); seqs within one context rise except across
        # recycling (none here: SMT).
        for seqs in per_ctx.values():
            assert seqs == sorted(seqs)

    def test_reused_uops_never_issue(self):
        src = """
        main:  movi r1, 98765
               movi r2, 200
        loop:  slli r3, r1, 13
               xor  r1, r1, r3
               srli r3, r1, 7
               xor  r1, r1, r3
               andi r4, r1, 3
               beq  r4, odd
               addi r6, r31, 3
               br   join
        odd:   addi r7, r31, 7
        join:  subi r2, r2, 1
               bgt  r2, loop
               halt
        """
        _, uops = committed_uops(src, features=Features.rec_ru())
        reused = [u for u in uops if u.reused]
        assert reused, "expected reuse on the disjoint diamond"
        assert all(u.issue_cycle == -1 for u in reused)


class TestFetchPolicies:
    def test_round_robin_runs_golden_clean(self):
        core, _ = committed_uops(WARM_LOOP, fetch_policy="round_robin")
        assert core.stats.committed > 0

    def test_icount_is_default(self):
        assert MachineConfig().fetch_policy == "icount"
