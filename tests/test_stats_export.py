"""Tests for the structured stats export."""

import json

from repro.isa import assemble
from repro.pipeline import Core, Features, MachineConfig
from repro.stats import SimStats, stats_to_dict

SRC = """
main:  movi r1, 4242
       movi r2, 120
loop:  slli r3, r1, 13
       xor  r1, r1, r3
       srli r3, r1, 7
       xor  r1, r1, r3
       andi r4, r1, 1
       beq  r4, skip
       addi r5, r5, 1
skip:  subi r2, r2, 1
       bgt  r2, loop
       halt
"""


class TestStatsToDict:
    def test_empty_stats_serialisable(self):
        payload = stats_to_dict(SimStats())
        json.dumps(payload)
        assert payload["ipc"] == 0.0

    def test_real_run_round_numbers(self):
        core = Core(MachineConfig(features=Features.rec_rs_ru()))
        core.load([assemble(SRC, name="x")])
        stats = core.run(max_cycles=300_000)
        payload = stats_to_dict(stats)
        json.dumps(payload)  # fully serialisable
        assert payload["committed"] == stats.committed
        assert payload["recycled"]["pct_recycled"] == stats.pct_recycled
        assert payload["branches"]["mispredicts"] == stats.mispredicts
        assert payload["forks"]["total"] == stats.forks

    def test_per_instance_section(self):
        core = Core(MachineConfig(features=Features.smt()))
        core.load([assemble(SRC, name="x")])
        stats = core.run(max_cycles=300_000)
        payload = stats_to_dict(stats)
        assert "0" in payload["per_instance"]
        inst = payload["per_instance"]["0"]
        assert inst["committed"] == stats.per_instance_committed[0]
        assert inst["ipc"] > 0

    def test_stream_end_counters_partition(self):
        core = Core(MachineConfig(features=Features.rec_rs_ru()))
        core.load([assemble(SRC, name="x")])
        stats = core.run(max_cycles=300_000)
        payload = stats_to_dict(stats)
        ends = payload["recycled"]["streams_ended"]
        assert set(ends) == {"branch_mismatch", "exhausted", "squashed"}
