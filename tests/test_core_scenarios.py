"""Surgical scenario tests of TME/recycling mechanics.

Each test builds a small program whose control structure provokes one
specific mechanism, runs it with a tracer attached, and asserts on the
observable event sequence — complementing the statistical behaviour
tests with causal ones.
"""

from repro.debug import CoreTracer
from repro.isa import assemble
from repro.pipeline import Core, Features, MachineConfig
from repro.pipeline.config import PolicyKind, RecyclePolicy


def run_traced(src, features, kinds=None, config_kwargs=None, commit_target=None):
    cfg = MachineConfig(features=features, **(config_kwargs or {}))
    core = Core(cfg)
    core.load([assemble(src, name="scn")], commit_target=commit_target)
    tracer = CoreTracer(core, kinds=kinds)
    core.run(max_cycles=400_000)
    return core, tracer


# A loop whose only branch is perfectly predictable after warmup.
PREDICTABLE = """
main: movi r2, 300
loop: addi r1, r1, 1
      add  r3, r1, r1
      xor  r4, r3, r1
      subi r2, r2, 1
      bgt  r2, loop
      halt
"""

# A 50/50 data-dependent branch inside a loop.
COINFLIP = """
main:  movi r1, 31415
       movi r2, 300
loop:  slli r3, r1, 13
       xor  r1, r1, r3
       srli r3, r1, 7
       xor  r1, r1, r3
       andi r4, r1, 1
       beq  r4, odd
       addi r5, r5, 3
       br   join
odd:   addi r5, r5, 7
join:  subi r2, r2, 1
       bgt  r2, loop
       halt
"""


class TestForkGating:
    def test_predictable_loop_forks_rarely(self):
        core, tracer = run_traced(PREDICTABLE, Features.tme_only(), kinds={"fork"})
        # After the confidence warms up, the loop branch is high
        # confidence: forks happen only during warmup.
        assert len(tracer.filter("fork")) < 30

    def test_coinflip_forks_throughout(self):
        core, tracer = run_traced(COINFLIP, Features.tme_only(), kinds={"fork"})
        forks = tracer.filter("fork")
        assert len(forks) > 50
        # Forks target the data-dependent branch region.
        branch_pcs = {e.info["branch"] for e in forks}
        assert len(branch_pcs) >= 1

    def test_forks_always_into_spare_contexts(self):
        core, tracer = run_traced(COINFLIP, Features.tme_only(), kinds={"fork"})
        for event in tracer.filter("fork"):
            assert event.info["spare"] != event.info["parent"]


class TestSwapMechanics:
    def test_swaps_follow_forks(self):
        core, tracer = run_traced(COINFLIP, Features.tme_only(), kinds={"fork", "swap"})
        swaps = tracer.filter("swap")
        assert swaps, "a coin-flip branch must mispredict and swap"
        forked = {(e.info["parent"], e.info["spare"]) for e in tracer.filter("fork")}
        for swap in swaps:
            assert (swap.info["old"], swap.info["new"]) in forked

    def test_commit_stream_unbroken_across_swaps(self):
        """PCs of committed instructions must follow architectural
        semantics across any number of primaryship migrations — enforced
        per commit by the golden check, asserted here end-to-end."""
        core, tracer = run_traced(COINFLIP, Features.tme_only(), kinds={"commit", "swap"})
        assert core.instances[0].halted
        assert tracer.filter("swap")

    def test_primary_follows_swap(self):
        core, tracer = run_traced(COINFLIP, Features.tme_only(), kinds={"swap"})
        last = tracer.filter("swap")[-1]
        # After the last swap the instance's primary should have been
        # updated to the promoted context at that time.
        assert last.info["new"] != last.info["old"]


class TestRecyclingScenarios:
    def test_self_back_merge_on_plain_loop(self):
        """A predictable loop recycles itself through the backward-branch
        merge point without any forking at all."""
        core, tracer = run_traced(
            PREDICTABLE, Features.rec(), kinds={"stream_open", "fork"}
        )
        opens = tracer.filter("stream_open")
        back = [e for e in opens if e.info["kind"] == "back"]
        assert back, "expected backward-branch self-recycling"
        assert all(e.info["src"] == e.info["dst"] for e in back)

    def test_alternate_merge_after_coinflip(self):
        core, tracer = run_traced(
            COINFLIP, Features.rec(), kinds={"stream_open"}
        )
        kinds = {e.info["kind"] for e in tracer.filter("stream_open")}
        assert "alternate" in kinds

    def test_respawn_reuses_context(self):
        core, tracer = run_traced(
            COINFLIP, Features.rec_rs(), kinds={"respawn", "fork"}
        )
        respawns = tracer.filter("respawn")
        assert respawns
        # A respawn re-activates an existing context id.
        assert all(0 <= e.info["ctx"] < 8 for e in respawns)

    def test_stream_end_reasons_observed(self):
        core, tracer = run_traced(COINFLIP, Features.rec_rs_ru(), kinds={"stream_end"})
        reasons = {e.info["reason"] for e in tracer.filter("stream_end")}
        assert "exhausted" in reasons or "branch_mismatch" in reasons

    def test_stop_policy_quiesces_inactive_contexts(self):
        core, tracer = run_traced(
            COINFLIP,
            Features.rec(),
            config_kwargs={"policy": RecyclePolicy(PolicyKind.STOP, 8)},
            kinds={"fork"},
        )
        assert core.instances[0].halted
        # Under stop-8 no alternate path may ever exceed 8 instructions.
        for ctx in core.contexts:
            assert ctx.alt_fetched <= 8 or ctx.is_primary


class TestResourceScenarios:
    def test_tiny_active_list_limits_recycling(self):
        _, tracer_small = run_traced(
            COINFLIP, Features.rec(), config_kwargs={"active_list_size": 8},
            kinds={"stream_open"},
        )
        _, tracer_big = run_traced(
            COINFLIP, Features.rec(), config_kwargs={"active_list_size": 128},
            kinds={"stream_open"},
        )
        small_lens = [e.info["len"] for e in tracer_small.filter("stream_open")]
        big_lens = [e.info["len"] for e in tracer_big.filter("stream_open")]
        if small_lens and big_lens:
            assert max(big_lens) >= max(small_lens)

    def test_scarce_registers_still_golden_clean(self):
        core, _ = run_traced(
            COINFLIP, Features.rec_rs_ru(), config_kwargs={"extra_phys_regs": 8}
        )
        assert core.instances[0].halted

    def test_one_wide_machine_still_golden_clean(self):
        cfg = dict(
            fetch_threads=1, fetch_block=4, fetch_total=4, rename_width=4,
            commit_width=4, int_queue_size=8, fp_queue_size=8,
            int_units=2, fp_units=1, ldst_ports=1, active_list_size=16,
        )
        core, _ = run_traced(COINFLIP, Features.rec_rs_ru(), config_kwargs=cfg)
        assert core.instances[0].halted

    def test_two_contexts_only(self):
        core, tracer = run_traced(
            COINFLIP, Features.rec_rs_ru(), config_kwargs={"num_contexts": 2},
            kinds={"fork"},
        )
        assert core.instances[0].halted
        assert tracer.filter("fork")  # one spare is enough to fork


class TestRecoveryModel:
    def test_checkpoint_recovery_is_default(self):
        assert MachineConfig().squash_penalty_per_uop == 0.0

    def test_walkback_penalty_costs_cycles(self):
        base, _ = run_traced(COINFLIP, Features.smt())
        slow, _ = run_traced(
            COINFLIP, Features.smt(), config_kwargs={"squash_penalty_per_uop": 1.0}
        )
        assert slow.stats.cycles > base.stats.cycles

    def test_walkback_still_golden_clean_with_recycling(self):
        core, _ = run_traced(
            COINFLIP, Features.rec_rs_ru(),
            config_kwargs={"squash_penalty_per_uop": 0.5},
        )
        assert core.instances[0].halted
