"""ArtifactStore + FileLock: the concurrency-safe layer under the server."""

import json
import os
import threading

import pytest

from repro.service.store import ArtifactStore, FileLock, LockTimeout

KEY_A = "aa" * 32
KEY_B = "bb" * 32


class TestFileLock:
    def test_mutual_exclusion_across_threads(self, tmp_path):
        # Each FileLock instance carries its own fd, so two instances on
        # one path behave exactly like two processes would.
        lock_path = tmp_path / "x.lock"
        counter = {"value": 0}

        def bump():
            for _ in range(50):
                with FileLock(lock_path, timeout=10.0):
                    current = counter["value"]
                    counter["value"] = current + 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter["value"] == 200

    def test_timeout_raises(self, tmp_path):
        lock_path = tmp_path / "x.lock"
        holder = FileLock(lock_path)
        holder.acquire()
        try:
            with pytest.raises(LockTimeout):
                FileLock(lock_path, timeout=0.05).acquire()
        finally:
            holder.release()

    def test_release_lets_next_waiter_in(self, tmp_path):
        lock_path = tmp_path / "x.lock"
        first = FileLock(lock_path)
        first.acquire()
        first.release()
        with FileLock(lock_path, timeout=0.5):
            pass

    def test_lease_fallback_mutual_exclusion(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.service.store.fcntl", None)
        lock_path = tmp_path / "x.lock"
        with FileLock(lock_path, timeout=1.0):
            assert lock_path.exists()
            assert lock_path.read_text().strip() == str(os.getpid())
            with pytest.raises(LockTimeout):
                FileLock(lock_path, timeout=0.05).acquire()
        assert not lock_path.exists(), "lease file must vanish on release"

    def test_stale_lease_is_broken(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.service.store.fcntl", None)
        lock_path = tmp_path / "x.lock"
        lock_path.write_text("99999\n")  # owner long dead
        os.utime(lock_path, (0, 0))  # epoch mtime: ancient by any clock
        with FileLock(lock_path, timeout=1.0, stale=60.0):
            assert lock_path.read_text().strip() == str(os.getpid())


class TestFileLockBackoff:
    def test_timeout_names_holder_pid_and_age(self, tmp_path):
        lock_path = tmp_path / "x.lock"
        holder = FileLock(lock_path)
        holder.acquire()
        try:
            with pytest.raises(LockTimeout) as excinfo:
                FileLock(lock_path, timeout=0.05).acquire()
        finally:
            holder.release()
        message = str(excinfo.value)
        assert f"held by pid {os.getpid()}" in message
        assert message.rstrip().endswith("s)")  # ... for X.Ys)

    def test_holder_pid_written_on_fcntl_path(self, tmp_path):
        lock_path = tmp_path / "x.lock"
        with FileLock(lock_path):
            assert lock_path.read_text().strip() == str(os.getpid())

    def test_backoff_grows_and_respects_max_poll(self, tmp_path, monkeypatch):
        """Under contention the retry delay doubles (with jitter) up to
        ``max_poll`` — far fewer wakeups than fixed-interval polling."""
        import repro.service.store as store_mod

        fake_now = [0.0]
        sleeps = []

        def fake_clock():
            return fake_now[0]

        def fake_sleep(seconds):
            sleeps.append(seconds)
            fake_now[0] += seconds

        monkeypatch.setattr(store_mod, "_clock", fake_clock)
        monkeypatch.setattr(store_mod.time, "sleep", fake_sleep)

        lock_path = tmp_path / "x.lock"
        holder = FileLock(lock_path)
        holder.acquire()
        try:
            waiter = FileLock(
                lock_path, timeout=10.0, poll=0.01, max_poll=0.5
            )
            with pytest.raises(LockTimeout):
                waiter.acquire()
        finally:
            holder.release()

        assert sleeps, "a contended acquire must back off, not spin"
        assert all(s <= 0.5 + 1e-9 for s in sleeps)
        assert sum(sleeps) <= 10.0 + 1e-9  # never sleeps past the deadline
        # Exponential backoff: covering 10s takes far fewer than the
        # 1000 wakeups a fixed 10ms poll would need.
        assert len(sleeps) < 500
        assert max(sleeps) > 0.01  # the delay actually grew past `poll`

    def test_jitter_decorrelates_but_stays_in_range(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock", poll=0.01, max_poll=0.5)
        import random

        lock._jitter = random.Random(1234)
        samples = [lock._jitter.uniform(lock.poll, 0.5) for _ in range(100)]
        assert all(0.01 <= s <= 0.5 for s in samples)
        assert len(set(samples)) > 1

    def test_contended_acquire_succeeds_after_release(self, tmp_path):
        lock_path = tmp_path / "x.lock"
        holder = FileLock(lock_path)
        holder.acquire()
        released = threading.Event()

        def let_go():
            released.wait()
            holder.release()

        thread = threading.Thread(target=let_go)
        thread.start()
        released.set()
        with FileLock(lock_path, timeout=5.0):
            pass  # backoff retried until the holder let go
        thread.join()


class TestArtifactStore:
    def test_record_then_lookup(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.lookup(KEY_A) is None
        store.record(KEY_A, {"ipc": 1.5})
        assert store.lookup(KEY_A) == {"ipc": 1.5}

    def test_record_reaches_cache_and_journal(self, tmp_path):
        ArtifactStore(tmp_path).record(KEY_A, {"ipc": 1.5})
        # A fresh store resolves the key from either half of the layout.
        fresh = ArtifactStore(tmp_path)
        assert fresh.lookup(KEY_A) == {"ipc": 1.5}
        assert fresh.journaled_keys() == [KEY_A]
        assert fresh.get(KEY_A) == {"ipc": 1.5}  # plain ResultCache read

    def test_plain_executor_cache_layout(self, tmp_path):
        """An ArtifactStore root's cache/ is a valid ResultCache dir."""
        from repro.exec import ResultCache

        ArtifactStore(tmp_path).record(KEY_A, {"ipc": 1.5})
        assert ResultCache(tmp_path / "cache").get(KEY_A) == {"ipc": 1.5}

    def test_concurrent_writers_never_tear_the_journal(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys = [f"{i:02d}" * 32 for i in range(16)]

        def write(key):
            store.record(key, {"key": key})

        threads = [threading.Thread(target=write, args=(key,)) for key in keys]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every line parses and every key survives a reload.
        lines = (tmp_path / "journal.jsonl").read_text().strip().splitlines()
        assert len(lines) == 16
        for line in lines:
            json.loads(line)
        assert ArtifactStore(tmp_path).journaled_keys() == sorted(keys)

    def test_startup_compaction_shrinks_journal(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for round_ in range(5):
            store.record(KEY_A, {"round": round_})
        assert len((tmp_path / "journal.jsonl").read_text().splitlines()) == 5
        ArtifactStore(tmp_path)  # clean startup compacts
        lines = (tmp_path / "journal.jsonl").read_text().strip().splitlines()
        assert len(lines) == 1
        assert ArtifactStore(tmp_path).lookup(KEY_A) == {"round": 4}

    def test_compaction_can_be_disabled(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.record(KEY_A, {"round": 0})
        store.record(KEY_A, {"round": 1})
        ArtifactStore(tmp_path, compact_on_start=False)
        assert len((tmp_path / "journal.jsonl").read_text().splitlines()) == 2


class TestCampaignPersistence:
    def test_ids_are_sequential_and_unique_under_contention(self, tmp_path):
        store = ArtifactStore(tmp_path)
        minted = []
        minted_lock = threading.Lock()

        def mint():
            for _ in range(10):
                campaign_id = store.next_campaign_id()
                with minted_lock:
                    minted.append(campaign_id)

        threads = [threading.Thread(target=mint) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(minted) == [f"c{i:06d}" for i in range(1, 41)]

    def test_ids_survive_restart(self, tmp_path):
        assert ArtifactStore(tmp_path).next_campaign_id() == "c000001"
        assert ArtifactStore(tmp_path).next_campaign_id() == "c000002"

    def test_save_and_load_campaigns(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save_campaign({"id": "c000002", "state": "running"})
        store.save_campaign({"id": "c000001", "state": "done"})
        store.save_campaign({"id": "c000002", "state": "done"})  # overwrite
        assert store.load_campaigns() == [
            {"id": "c000001", "state": "done"},
            {"id": "c000002", "state": "done"},
        ]

    def test_load_campaigns_empty_store(self, tmp_path):
        assert ArtifactStore(tmp_path).load_campaigns() == []
