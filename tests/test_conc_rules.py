"""Injection tests: every CONC rule must fire on deliberately broken
code, stay quiet on the fixed variant, and respect ``# conc-ok``.

Each case lints a synthetic file through the *real* engine path
(``lint_program``), so registration, scope dispatch and suppression are
all exercised — a rule that silently stopped firing fails here.
"""

import textwrap

import pytest

from repro.analysis.lint import run_lint, CONC_PROFILE, LintTarget
from repro.analysis.lint.engine import lint_program
from repro.analysis.lint.rules_concurrency import CONC_RULE_CODES


def lint(tmp_path, source, codes=CONC_RULE_CODES, name="inj.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_program([path], codes=tuple(codes))


def codes_of(findings):
    return sorted({f.code for f in findings})


# ----------------------------------------------------------------------
# CONC001 — unguarded access
# ----------------------------------------------------------------------
BROKEN_001 = """
    import threading
    class S:
        def __init__(self):
            self._lock = threading.Lock()
            self.items = {}
        def a(self):
            with self._lock:
                self.items["a"] = 1
        def b(self):
            with self._lock:
                return self.items.get("b")
        def c(self):
            with self._lock:
                del self.items["c"]
        def racy(self):
            return len(self.items)
"""


def test_conc001_fires_on_unguarded_access(tmp_path):
    findings = lint(tmp_path, BROKEN_001)
    assert codes_of(findings) == ["CONC001"]
    assert "racy" in findings[0].message


def test_conc001_quiet_when_guarded(tmp_path):
    fixed = BROKEN_001.replace(
        "def racy(self):\n            return len(self.items)",
        "def racy(self):\n            with self._lock:\n"
        "                return len(self.items)",
    )
    assert lint(tmp_path, fixed) == []


def test_conc001_conc_ok_suppresses(tmp_path):
    suppressed = BROKEN_001.replace(
        "return len(self.items)",
        "return len(self.items)  # conc-ok: startup only",
    )
    assert lint(tmp_path, suppressed) == []


def test_det_ok_does_not_suppress_conc(tmp_path):
    wrong_marker = BROKEN_001.replace(
        "return len(self.items)",
        "return len(self.items)  # det-ok: wrong family",
    )
    assert codes_of(lint(tmp_path, wrong_marker)) == ["CONC001"]


# ----------------------------------------------------------------------
# CONC002 — lock-order inversion
# ----------------------------------------------------------------------
BROKEN_002 = """
    import threading
    class S:
        def __init__(self):
            self.a = threading.Lock()
            self.b = threading.Lock()
        def f(self):
            with self.a:
                with self.b:
                    pass
        def g(self):
            with self.b:
                with self.a:
                    pass
"""


def test_conc002_fires_on_inversion(tmp_path):
    findings = lint(tmp_path, BROKEN_002)
    assert codes_of(findings) == ["CONC002"]
    assert "S.a -> S.b -> S.a" in findings[0].message


def test_conc002_quiet_on_consistent_order(tmp_path):
    fixed = BROKEN_002.replace(
        "with self.b:\n                with self.a:",
        "with self.a:\n                with self.b:",
    )
    assert lint(tmp_path, fixed) == []


def test_conc002_cross_class_inversion(tmp_path):
    findings = lint(
        tmp_path,
        """
        import threading
        class Store:
            def __init__(self, sched: "Sched"):
                self.journal_lock = threading.Lock()
                self.sched = sched
            def record(self):
                with self.journal_lock:
                    self.sched.poke()
        class Sched:
            def __init__(self, store: Store):
                self._lock = threading.Lock()
                self.store = store
            def poke(self):
                with self._lock:
                    pass
            def f(self):
                with self._lock:
                    self.store.record()
        """,
    )
    assert "CONC002" in codes_of(findings)


# ----------------------------------------------------------------------
# CONC003 — blocking while holding an in-memory lock
# ----------------------------------------------------------------------
BROKEN_003 = """
    import threading, time
    class S:
        def __init__(self):
            self._lock = threading.Lock()
        def f(self):
            with self._lock:
                time.sleep(5)
"""


def test_conc003_fires_on_sleep_under_lock(tmp_path):
    findings = lint(tmp_path, BROKEN_003)
    assert codes_of(findings) == ["CONC003"]
    assert "time.sleep" in findings[0].message


def test_conc003_fires_on_transitive_io(tmp_path):
    findings = lint(
        tmp_path,
        """
        import threading
        def persist(path, data):
            path.write_text(data)
        class S:
            def __init__(self):
                self._lock = threading.Lock()
            def f(self, path):
                with self._lock:
                    persist(path, "x")
        """,
    )
    assert codes_of(findings) == ["CONC003"]
    assert "persist" in findings[0].message


def test_conc003_quiet_outside_lock(tmp_path):
    fixed = """
        import threading, time
        class S:
            def __init__(self):
                self._lock = threading.Lock()
            def f(self):
                time.sleep(5)
                with self._lock:
                    pass
    """
    assert lint(tmp_path, fixed) == []


def test_conc003_file_lock_exempt(tmp_path):
    # Blocking I/O under a *file* lock is the point of a file lock.
    source = """
        class S:
            def __init__(self):
                self.flock = FileLock("x")
            def f(self, path):
                with self.flock:
                    path.write_text("x")
    """
    assert lint(tmp_path, source) == []


# ----------------------------------------------------------------------
# CONC004 — acquire without guaranteed release
# ----------------------------------------------------------------------
BROKEN_004 = """
    import threading
    class S:
        def __init__(self):
            self._lock = threading.Lock()
        def f(self, risky):
            self._lock.acquire()
            risky()
            self._lock.release()
"""


def test_conc004_fires_on_unprotected_acquire(tmp_path):
    findings = lint(tmp_path, BROKEN_004)
    assert codes_of(findings) == ["CONC004"]


def test_conc004_quiet_with_try_finally(tmp_path):
    fixed = """
        import threading
        class S:
            def __init__(self):
                self._lock = threading.Lock()
            def f(self, risky):
                self._lock.acquire()
                try:
                    risky()
                finally:
                    self._lock.release()
    """
    assert lint(tmp_path, fixed) == []


def test_conc004_quiet_with_with(tmp_path):
    fixed = """
        import threading
        class S:
            def __init__(self):
                self._lock = threading.Lock()
            def f(self, risky):
                with self._lock:
                    risky()
    """
    assert lint(tmp_path, fixed) == []


# ----------------------------------------------------------------------
# CONC005 — unsynchronized publication
# ----------------------------------------------------------------------
BROKEN_005 = """
    import threading
    class S:
        def __init__(self):
            self._lock = threading.Lock()
            self.snapshot = {}
        def refresh(self):
            self.snapshot = {}
"""


def test_conc005_fires_on_unlocked_rebind(tmp_path):
    findings = lint(tmp_path, BROKEN_005)
    assert "CONC005" in codes_of(findings)


def test_conc005_quiet_under_lock(tmp_path):
    fixed = """
        import threading
        class S:
            def __init__(self):
                self._lock = threading.Lock()
                self.snapshot = {}
            def refresh(self):
                with self._lock:
                    self.snapshot = {}
    """
    assert lint(tmp_path, fixed) == []


# ----------------------------------------------------------------------
# CONC006 — TOCTOU
# ----------------------------------------------------------------------
BROKEN_006 = """
    class S:
        def load(self, path):
            if path.exists():
                return path.read_text()
            return None
"""


def test_conc006_fires_on_check_then_use(tmp_path):
    findings = lint(tmp_path, BROKEN_006)
    assert codes_of(findings) == ["CONC006"]


def test_conc006_quiet_with_eafp(tmp_path):
    fixed = """
        class S:
            def load(self, path):
                try:
                    return path.read_text()
                except OSError:
                    return None
    """
    assert lint(tmp_path, fixed) == []


def test_conc006_quiet_under_file_lock(tmp_path):
    fixed = """
        class S:
            def __init__(self):
                self.flock = FileLock("x")
            def load(self, path):
                with self.flock:
                    if path.exists():
                        return path.read_text()
                    return None
    """
    assert lint(tmp_path, fixed) == []


# ----------------------------------------------------------------------
# The real tree
# ----------------------------------------------------------------------
def test_conc_profile_clean_on_real_tree():
    """The committed service/exec layers pass the CONC profile (their
    deliberate exceptions carry ``# conc-ok`` annotations)."""
    result = run_lint(CONC_PROFILE)
    assert result.findings == [], [f.render() for f in result.findings]


def test_real_tree_inferred_guards_are_the_documented_ones():
    from repro.analysis.conc import service_facts

    facts = service_facts()
    assert facts.guard_attrs("Scheduler") == {
        "_queue": "_lock",
        "campaigns": "_lock",
        "counters": "_lock",
        "jobs": "_lock",
        "tasks": "_lock",
    }


def test_every_conc_rule_has_an_injection_proof():
    """Meta: the six registered CONC codes are exactly the ones the
    injection cases above cover."""
    from repro.analysis.lint import all_rules

    registered = {r.code for r in all_rules() if r.code.startswith("CONC")}
    assert registered == set(CONC_RULE_CODES)
