"""Tests for the determinism lint (tools/lint_determinism.py).

The lint is CI-enforced; these tests pin down its rules so a refactor
of the tool can't silently stop catching what it is there to catch —
and prove the shipped simulator core currently lints clean.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
TOOL = REPO / "tools" / "lint_determinism.py"


def run_lint(*paths):
    return subprocess.run(
        [sys.executable, str(TOOL), *map(str, paths)],
        capture_output=True, text=True, cwd=REPO,
    )


def test_default_targets_are_clean():
    proc = run_lint()
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_wall_clock_flagged(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nstart = time.time()\n")
    proc = run_lint(bad)
    assert proc.returncode == 1
    assert "DET001" in proc.stdout and "time.time" in proc.stdout


def test_module_global_random_flagged(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import random\n"
        "x = random.random()\n"
        "rng = random.Random()\n"
        "ok = random.Random(42)\n"
    )
    proc = run_lint(bad)
    assert proc.returncode == 1
    flagged = [line for line in proc.stdout.splitlines() if "DET002" in line]
    assert len(flagged) == 2  # the seeded Random(42) is fine


def test_dict_view_iteration_flagged(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "d = {1: 2}\n"
        "for k in d.keys():\n"
        "    pass\n"
        "xs = [v for v in d.values()]\n"
        "ys = list({1, 2, 3})\n"
        "for y in ys:\n"  # iterating a materialized list variable is fine
        "    pass\n"
        "for k in sorted(d.keys()):\n"  # sorted() launders the order
        "    pass\n"
    )
    proc = run_lint(bad)
    assert proc.returncode == 1
    flagged = [line for line in proc.stdout.splitlines() if "DET003" in line]
    assert len(flagged) == 2


def test_list_wrapper_does_not_launder(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("d = {}\nfor k in list(d.keys()):\n    pass\n")
    proc = run_lint(bad)
    assert proc.returncode == 1 and "DET003" in proc.stdout


def test_det_ok_suppression_requires_reason(tmp_path):
    src = tmp_path / "mixed.py"
    src.write_text(
        "import time\n"
        "a = time.time()  # det-ok: informational only\n"
        "b = time.time()  # det-ok:\n"
    )
    proc = run_lint(src)
    # the justified line is exempt, the empty-reason one is not
    assert proc.returncode == 1
    assert proc.stdout.count("DET001") == 1
    assert ":3:" in proc.stdout


def test_setattr_on_core_flagged(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def instrument(core, fn):\n"
        "    setattr(core, '_execute', fn)\n"
        "    setattr(core.rename, '_rename_one', fn)\n"
        "    setattr(self.core, '_retire', fn)\n"
        "    setattr(other, '_execute', fn)\n"  # not a core reference
    )
    proc = run_lint(bad)
    assert proc.returncode == 1
    flagged = [line for line in proc.stdout.splitlines() if "DET004" in line]
    assert len(flagged) == 3
    assert "event bus" in proc.stdout


def test_private_core_assignment_flagged(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "core._execute = fn\n"
        "self.core.resolve._squash_uop = fn\n"
        "core.tracer = t\n"  # public attribute: allowed
        "self._handler = fn\n"  # private on self: allowed
        "object.__setattr__(uop, 'pc', 4)\n"  # dotted call, not bare setattr
    )
    proc = run_lint(bad)
    assert proc.returncode == 1
    flagged = [line for line in proc.stdout.splitlines() if "DET004" in line]
    assert len(flagged) == 2


def test_src_tree_clean_under_det004():
    # The default run sweeps all of src/repro with DET004 — the shipped
    # package must contain no core monkey-patching.
    proc = run_lint()
    assert proc.returncode == 0
    assert "DET004" not in proc.stdout


def test_missing_path_is_an_error(tmp_path):
    proc = run_lint(tmp_path / "no_such_dir")
    assert proc.returncode == 2


@pytest.mark.parametrize("target", ["src/repro/pipeline", "src/repro/recycle"])
def test_individual_targets_clean(target):
    proc = run_lint(REPO / target)
    assert proc.returncode == 0, proc.stdout
