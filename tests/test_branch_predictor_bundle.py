"""Tests for the integrated BranchPredictor (fetch-side bundle)."""

from repro.branch import BranchPredictor
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Op


def cond(target=0x2000):
    return Instruction(Op.BNE, ra=1, target=target)


class TestConditionalPrediction:
    def test_prediction_trains(self):
        bp = BranchPredictor()
        for _ in range(6):
            pred = bp.predict(0, 0x1000, cond())
            bp.resolve(0x1000, cond(), pred, taken=True, target=0x2000)
            bp.recover(0, pred, cond(), True, 0x1000) if False else None
        pred = bp.predict(0, 0x1000, cond())
        assert pred.taken

    def test_btb_supplies_target_after_training(self):
        bp = BranchPredictor()
        pred = bp.predict(0, 0x1000, cond())
        bp.resolve(0x1000, cond(), pred, taken=True, target=0x2000)
        # Force the direction counters up.
        for _ in range(4):
            p = bp.predict(0, 0x1000, cond())
            bp.resolve(0x1000, cond(), p, taken=True, target=0x2000)
        pred = bp.predict(0, 0x1000, cond())
        if pred.taken:
            assert pred.from_btb
            assert pred.target == 0x2000
            assert not pred.needs_decode_redirect

    def test_untrained_taken_needs_decode_redirect(self):
        bp = BranchPredictor()
        pred = bp.predict(0, 0x1000, cond())
        if pred.taken:
            assert not pred.from_btb
            assert pred.needs_decode_redirect
            assert pred.target == 0x2000  # decode supplies the target

    def test_resolve_reports_mispredict(self):
        bp = BranchPredictor()
        pred = bp.predict(0, 0x1000, cond())
        wrong = not pred.taken
        target = 0x2000 if wrong else 0x1000 + INSTRUCTION_BYTES
        assert bp.resolve(0x1000, cond(), pred, taken=wrong, target=0x2000)

    def test_ghr_speculatively_updated(self):
        bp = BranchPredictor()
        before = bp.ghr[0]
        pred = bp.predict(0, 0x1000, cond())
        assert bp.ghr[0] == ((before << 1) | int(pred.taken)) & 2047

    def test_recover_repairs_ghr(self):
        bp = BranchPredictor()
        pred = bp.predict(0, 0x1000, cond())
        bp.predict(0, 0x1010, cond())  # younger speculation
        bp.recover(0, pred, cond(), taken=not pred.taken, pc=0x1000)
        expected = ((pred.ghr_before << 1) | int(not pred.taken)) & 2047
        assert bp.ghr[0] == expected

    def test_contexts_have_independent_history(self):
        bp = BranchPredictor()
        bp.predict(0, 0x1000, cond())
        assert bp.ghr[1] == 0


class TestCallsAndReturns:
    def test_call_pushes_return_address(self):
        bp = BranchPredictor()
        call = Instruction(Op.JSR, rd=26, target=0x3000)
        bp.predict(0, 0x1000, call)
        ret = Instruction(Op.RET, ra=26)
        pred = bp.predict(0, 0x3010, ret)
        assert pred.taken and pred.target == 0x1004
        assert pred.from_btb  # RAS counts as a resolved target

    def test_return_with_empty_ras_falls_back_to_btb(self):
        bp = BranchPredictor()
        ret = Instruction(Op.RET, ra=26)
        pred = bp.predict(0, 0x3010, ret)
        assert pred.target is None  # nothing known yet
        bp.resolve(0x3010, ret, pred, taken=True, target=0x1004)
        pred2 = bp.predict(0, 0x3010, ret)
        assert pred2.target == 0x1004

    def test_recover_reapplies_call_push(self):
        bp = BranchPredictor()
        call = Instruction(Op.JSR, rd=26, target=0x3000)
        pred = bp.predict(0, 0x1000, call)
        # Squash and recover (e.g. an older branch mispredicted is not
        # the case here — recovering the call itself re-pushes).
        bp.recover(0, pred, call, taken=True, pc=0x1000)
        assert bp.ras[0].peek() == 0x1004


class TestTmeHistoryForking:
    def test_fork_flips_last_direction(self):
        bp = BranchPredictor()
        pred = bp.predict(0, 0x1000, cond())
        bp.fork_context(0, 3, cond_branch=True, alt_taken=not pred.taken)
        assert bp.ghr[3] & 1 == int(not pred.taken)
        assert bp.ghr[0] & 1 == int(pred.taken)
        assert (bp.ghr[3] >> 1) == (bp.ghr[0] >> 1)

    def test_fork_copies_ras(self):
        bp = BranchPredictor()
        bp.push_return(0, 0xAA)
        bp.fork_context(0, 5, cond_branch=True, alt_taken=True)
        assert bp.ras[5].peek() == 0xAA
        bp.ras[5].pop()
        assert bp.ras[0].peek() == 0xAA  # independent copies

    def test_sync_context_mirrors(self):
        bp = BranchPredictor()
        bp.predict(0, 0x1000, cond())
        bp.push_return(0, 0xBB)
        bp.sync_context(0, 7)
        assert bp.ghr[7] == bp.ghr[0]
        assert bp.ras[7].peek() == 0xBB


class TestIndirect:
    def test_jmp_unknown_until_trained(self):
        bp = BranchPredictor()
        jmp = Instruction(Op.JMP, ra=3)
        pred = bp.predict(0, 0x1000, jmp)
        assert pred.taken and pred.target is None
        bp.resolve(0x1000, jmp, pred, taken=True, target=0x4000)
        pred2 = bp.predict(0, 0x1000, jmp)
        assert pred2.target == 0x4000
