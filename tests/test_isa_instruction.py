"""Tests for decoded-instruction operand derivation."""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.registers import FP_BASE, FP_ZERO_REG, ZERO_REG, fp_reg


class TestOperandRoles:
    def test_r3_int(self):
        ins = Instruction(Op.ADD, rd=1, ra=2, rb=3)
        assert ins.srcs == (2, 3)
        assert ins.dst == 1

    def test_r3_fp(self):
        ins = Instruction(Op.FADD, rd=1, ra=2, rb=3)
        assert ins.srcs == (fp_reg(2), fp_reg(3))
        assert ins.dst == fp_reg(1)

    def test_fcmp_writes_int(self):
        ins = Instruction(Op.FCMPLT, rd=4, ra=1, rb=2)
        assert ins.dst == 4  # integer register
        assert ins.srcs == (fp_reg(1), fp_reg(2))

    def test_cvtif_reads_int_writes_fp(self):
        ins = Instruction(Op.CVTIF, rd=5, ra=6, rb=31)
        assert ins.dst == fp_reg(5)
        assert ins.srcs[0] == 6

    def test_load_int(self):
        ins = Instruction(Op.LD, rd=7, ra=8, imm=16)
        assert ins.dst == 7
        assert ins.srcs == (8,)

    def test_store_sources(self):
        ins = Instruction(Op.ST, rb=9, ra=10, imm=-8)
        assert ins.dst is None
        assert ins.srcs == (10, 9)

    def test_fst_data_is_fp(self):
        ins = Instruction(Op.FST, rb=2, ra=3, imm=0)
        assert ins.srcs == (3, fp_reg(2))

    def test_branch_reads_one(self):
        ins = Instruction(Op.BNE, ra=4, target=0x1000)
        assert ins.dst is None
        assert ins.srcs == (4,)

    def test_jsr_writes_link(self):
        ins = Instruction(Op.JSR, rd=26, target=0x2000)
        assert ins.dst == 26
        assert ins.srcs == ()

    def test_ret_reads_link(self):
        ins = Instruction(Op.RET, ra=26)
        assert ins.srcs == (26,)
        assert ins.dst is None

    def test_nop_no_operands(self):
        ins = Instruction(Op.NOP)
        assert ins.srcs == () and ins.dst is None


class TestZeroRegister:
    def test_write_to_r31_dropped(self):
        ins = Instruction(Op.ADD, rd=31, ra=1, rb=2)
        assert ins.dst is None

    def test_write_to_f31_dropped(self):
        ins = Instruction(Op.FADD, rd=31, ra=1, rb=2)
        assert ins.dst is None

    def test_zero_still_a_source(self):
        ins = Instruction(Op.ADD, rd=1, ra=31, rb=2)
        assert ZERO_REG in ins.srcs

    def test_fp_zero_index(self):
        assert FP_ZERO_REG == FP_BASE + 31


class TestRendering:
    def test_str_contains_mnemonic(self):
        assert "add" in str(Instruction(Op.ADD, rd=1, ra=2, rb=3))
        assert "fmul" in str(Instruction(Op.FMUL, rd=1, ra=2, rb=3))
        assert "halt" in str(Instruction(Op.HALT))

    def test_branch_renders_target(self):
        s = str(Instruction(Op.BEQ, ra=1, target=0x1040))
        assert "0x1040" in s

    def test_operand_names(self):
        names = Instruction(Op.ADD, rd=1, ra=2, rb=3).operand_names()
        assert "dst=r1" in names and "r2" in names
