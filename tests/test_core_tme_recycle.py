"""Behavioural tests of TME forking, recycling, reuse and re-spawning.

All runs are golden-checked at commit inside the core, so these tests
assert both that the mechanisms *fire* (stats) and that they never
corrupt architectural state (the run finishing is the proof).
"""

import pytest

from repro.isa import Assembler, assemble
from repro.pipeline import Core, Features, MachineConfig
from repro.pipeline.config import PolicyKind, RecyclePolicy
from repro.pipeline.context import CtxState

# Hard-to-predict data-dependent branches (xorshift PRNG).
RNG_KERNEL = """
main:  movi r1, 12345
       movi r2, 250
       movi r5, 0
loop:  slli r3, r1, 13
       xor  r1, r1, r3
       srli r3, r1, 7
       xor  r1, r1, r3
       slli r3, r1, 17
       xor  r1, r1, r3
       andi r4, r1, 1
       beq  r4, odd
       addi r5, r5, 3
       br   join
odd:   addi r5, r5, 7
join:  subi r2, r2, 1
       bgt  r2, loop
       halt
"""

# Register-disjoint diamond: each arm defines registers from the zero
# register only, so the other arm's results stay reusable.
DIAMOND_KERNEL = """
main:  movi r1, 98765
       movi r2, 250
loop:  slli r3, r1, 13
       xor  r1, r1, r3
       srli r3, r1, 7
       xor  r1, r1, r3
       andi r4, r1, 3
       beq  r4, odd
       addi r6, r31, 3
       addi r8, r31, 11
       br   join
odd:   addi r7, r31, 7
       addi r9, r31, 13
join:  add  r5, r5, r6
       add  r5, r5, r7
       subi r2, r2, 1
       bgt  r2, loop
       halt
"""


def run(src, features, name="kern", config_kwargs=None, max_cycles=400_000):
    cfg = MachineConfig(features=features, **(config_kwargs or {}))
    core = Core(cfg)
    core.load([assemble(src, name=name)])
    stats = core.run(max_cycles=max_cycles)
    assert core.instances[0].halted
    return core, stats


class TestTme:
    def test_forks_happen_on_low_confidence(self):
        _, stats = run(RNG_KERNEL, Features.tme_only())
        assert stats.forks > 0

    def test_branch_miss_coverage(self):
        _, stats = run(RNG_KERNEL, Features.tme_only())
        assert stats.branch_miss_coverage > 30.0

    def test_tme_beats_smt_on_unpredictable_code(self):
        _, smt = run(RNG_KERNEL, Features.smt())
        _, tme = run(RNG_KERNEL, Features.tme_only())
        assert tme.ipc > smt.ipc

    def test_tme_does_not_hurt_predictable_code(self):
        src = """
        main: movi r2, 300
        loop: addi r1, r1, 1
              subi r2, r2, 1
              bgt  r2, loop
              halt
        """
        _, smt = run(src, Features.smt())
        _, tme = run(src, Features.tme_only())
        assert tme.ipc >= smt.ipc * 0.95

    def test_forks_used_counted(self):
        _, stats = run(RNG_KERNEL, Features.tme_only())
        assert stats.forks_used_tme > 0
        assert stats.pct_forks_used_tme <= 100.0

    def test_no_forks_without_spare_contexts(self):
        """Eight programs leave no spare contexts: TME can never fork."""
        progs = []
        for i in range(8):
            asm = Assembler(text_base=0x1000 + i * 0x21040, data_base=0x9000 + i * 0x21040)
            progs.append(asm.assemble(RNG_KERNEL, name=f"p{i}"))
        core = Core(MachineConfig(features=Features.tme_only()))
        core.load(progs, commit_target=800)
        stats = core.run(max_cycles=400_000)
        assert stats.forks == 0

    def test_contexts_return_to_idle_eventually(self):
        core, _ = run(RNG_KERNEL, Features.tme_only())
        # After halt everything but bookkeeping should be quiescent; no
        # context may still think it is an active alternate.
        assert all(not c.is_alternate for c in core.contexts)


class TestRecycling:
    def test_merges_happen(self):
        _, stats = run(RNG_KERNEL, Features.rec())
        assert stats.merges + stats.back_merges > 0
        assert stats.renamed_recycled > 0

    def test_recycled_fraction_substantial(self):
        _, stats = run(RNG_KERNEL, Features.rec())
        assert stats.pct_recycled > 10.0

    def test_duplicate_forks_suppressed(self):
        _, stats = run(RNG_KERNEL, Features.rec())
        assert stats.fork_suppressed_duplicate > 0

    def test_back_merges_on_tight_fp_loop(self):
        """A predictable loop recycles through its own backward branch."""
        src = """
        main: movi r2, 300
        loop: fadd f1, f1, f2
              fmul f3, f1, f2
              addi r1, r1, 3
              subi r2, r2, 1
              bgt  r2, loop
              halt
        """
        _, stats = run(src, Features.rec())
        assert stats.back_merges > 0

    def test_inactive_paths_accounted(self):
        core, stats = run(RNG_KERNEL, Features.rec())
        # Fork paths were deactivated, retained, and eventually deleted.
        assert stats.alt_paths_deleted > 0
        # After HALT cleanup, nothing is left mid-flight.
        assert all(not c.is_alternate for c in core.contexts)

    def test_golden_clean_under_all_policies(self):
        for kind in PolicyKind:
            for limit in (8, 16, 32):
                cfg = {"policy": RecyclePolicy(kind, limit)}
                _, stats = run(RNG_KERNEL, Features.rec_rs_ru(), config_kwargs=cfg)
                assert stats.committed > 0, f"{kind}-{limit}"

    def test_stream_end_reasons_accounted(self):
        _, stats = run(RNG_KERNEL, Features.rec())
        total_streams = stats.merges + stats.back_merges
        ended = (
            stats.streams_ended_branch_mismatch
            + stats.streams_ended_exhausted
            + stats.streams_ended_squashed
        )
        # Every stream ends exactly once (those alive at halt excepted).
        assert ended <= total_streams
        assert ended >= total_streams - 8


class TestReuse:
    def test_reuse_fires_on_disjoint_diamond(self):
        _, stats = run(DIAMOND_KERNEL, Features.rec_ru())
        assert stats.renamed_reused > 0

    def test_reuse_never_fires_when_disabled(self):
        _, stats = run(DIAMOND_KERNEL, Features.rec())
        assert stats.renamed_reused == 0

    def test_reuse_subset_of_recycled(self):
        _, stats = run(DIAMOND_KERNEL, Features.rec_ru())
        assert stats.renamed_reused <= stats.renamed_recycled

    def test_reuse_blocked_when_registers_overwritten(self):
        """Both arms write the same accumulator: nothing is reusable."""
        src = """
        main:  movi r1, 5555
               movi r2, 250
        loop:  slli r3, r1, 13
               xor  r1, r1, r3
               srli r3, r1, 7
               xor  r1, r1, r3
               andi r4, r1, 1
               beq  r4, odd
               addi r5, r5, 3
               br   join
        odd:   addi r5, r5, 7
        join:  subi r2, r2, 1
               bgt  r2, loop
               halt
        """
        _, stats = run(src, Features.rec_ru())
        # r5/r2 are redefined by the primary every iteration; the only
        # reusable results would read unchanged registers.  Expect a
        # dramatically lower reuse rate than the disjoint diamond.
        _, diamond = run(DIAMOND_KERNEL, Features.rec_ru())
        assert stats.pct_reused <= diamond.pct_reused

    def test_pending_reuse_drains(self):
        core, _ = run(DIAMOND_KERNEL, Features.rec_ru())
        assert all(c.pending_reuse == 0 for c in core.contexts)


class TestRespawn:
    def test_respawns_fire(self):
        _, stats = run(RNG_KERNEL, Features.rec_rs())
        assert stats.respawns > 0

    def test_respawn_reduces_suppression(self):
        _, rec = run(RNG_KERNEL, Features.rec())
        _, rs = run(RNG_KERNEL, Features.rec_rs())
        assert rs.fork_suppressed_duplicate < rec.fork_suppressed_duplicate

    def test_respawn_improves_coverage_over_rec(self):
        _, rec = run(RNG_KERNEL, Features.rec())
        _, rs = run(RNG_KERNEL, Features.rec_rs())
        assert rs.branch_miss_coverage > rec.branch_miss_coverage


class TestTable1Shape:
    def test_counters_present_and_bounded(self):
        _, stats = run(RNG_KERNEL, Features.rec_rs_ru())
        row = stats.table1_row()
        for key, value in row.items():
            assert value >= 0, key
        assert row["pct_recycled"] <= 100
        assert row["pct_reused"] <= row["pct_recycled"]
        assert row["pct_back_merges"] <= 100

    def test_multiprogram_recycling_golden_clean(self):
        progs = []
        for i in range(4):
            asm = Assembler(text_base=0x1000 + i * 0x21040, data_base=0x9000 + i * 0x21040)
            progs.append(asm.assemble(RNG_KERNEL, name=f"p{i}"))
        core = Core(MachineConfig(features=Features.rec_rs_ru()))
        core.load(progs, commit_target=1200)
        stats = core.run(max_cycles=400_000)
        assert stats.committed >= 4 * 1200
        assert stats.pct_recycled > 0
