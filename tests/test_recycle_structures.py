"""Tests for the written-bit array, MDB, and recycle streams."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.recycle.mdb import MemoryDisambiguationBuffer
from repro.recycle.stream import RecycleStream, StreamKind, TraceEntry
from repro.recycle.written_bits import WrittenBitArray


class TestWrittenBits:
    def test_initially_unchanged(self):
        w = WrittenBitArray()
        assert w.unchanged_for(5, ctx=3)

    def test_primary_define_marks_spares(self):
        w = WrittenBitArray()
        w.primary_defined(5, spare_mask=0b0110)
        assert not w.unchanged_for(5, 1)
        assert not w.unchanged_for(5, 2)
        assert w.unchanged_for(5, 0)  # primary's own column untouched
        assert w.unchanged_for(5, 3)

    def test_start_path_clears_column(self):
        w = WrittenBitArray()
        w.primary_defined(5, spare_mask=0b0110)
        w.primary_defined(9, spare_mask=0b0110)
        w.start_path(1)
        assert w.unchanged_for(5, 1)
        assert w.unchanged_for(9, 1)
        assert not w.unchanged_for(5, 2)  # other columns untouched

    def test_sources_unchanged(self):
        w = WrittenBitArray()
        w.primary_defined(3, spare_mask=0b10)
        assert not w.sources_unchanged((3, 4), ctx=1)
        assert w.sources_unchanged((4, 5), ctx=1)
        assert w.sources_unchanged((3, 4), ctx=2)

    @given(
        writes=st.lists(st.integers(0, 63), max_size=30),
        ctx=st.integers(0, 7),
    )
    @settings(max_examples=40)
    def test_start_path_resets_everything_for_ctx(self, writes, ctx):
        w = WrittenBitArray()
        for logical in writes:
            w.primary_defined(logical, spare_mask=0xFF)
        w.start_path(ctx)
        assert all(w.unchanged_for(logical, ctx) for logical in range(64))


class TestMdb:
    def test_load_then_reuse(self):
        mdb = MemoryDisambiguationBuffer()
        mdb.record_load(0x1000, 0x8000)
        assert mdb.can_reuse(0x1000, 0x8000)

    def test_different_address_blocks_reuse(self):
        mdb = MemoryDisambiguationBuffer()
        mdb.record_load(0x1000, 0x8000)
        assert not mdb.can_reuse(0x1000, 0x8008)

    def test_store_invalidates_matching_loads(self):
        mdb = MemoryDisambiguationBuffer()
        mdb.record_load(0x1000, 0x8000)
        mdb.record_load(0x1004, 0x8000)
        mdb.record_load(0x1008, 0x9000)
        mdb.record_store(0x8000)
        assert not mdb.can_reuse(0x1000, 0x8000)
        assert not mdb.can_reuse(0x1004, 0x8000)
        assert mdb.can_reuse(0x1008, 0x9000)

    def test_store_to_other_address_harmless(self):
        mdb = MemoryDisambiguationBuffer()
        mdb.record_load(0x1000, 0x8000)
        mdb.record_store(0x9000)
        assert mdb.can_reuse(0x1000, 0x8000)

    def test_reexecuted_load_updates_address(self):
        mdb = MemoryDisambiguationBuffer()
        mdb.record_load(0x1000, 0x8000)
        mdb.record_load(0x1000, 0x8008)
        assert not mdb.can_reuse(0x1000, 0x8000)
        assert mdb.can_reuse(0x1000, 0x8008)

    def test_capacity_fifo_eviction(self):
        mdb = MemoryDisambiguationBuffer(entries=2)
        mdb.record_load(0x1000, 0xA)
        mdb.record_load(0x1004, 0xB)
        mdb.record_load(0x1008, 0xC)
        assert not mdb.can_reuse(0x1000, 0xA)  # evicted
        assert mdb.can_reuse(0x1008, 0xC)

    def test_stats(self):
        mdb = MemoryDisambiguationBuffer()
        mdb.record_load(0x1000, 0xA)
        mdb.can_reuse(0x1000, 0xA)
        mdb.can_reuse(0x1000, 0xB)
        assert mdb.reuse_hits == 1 and mdb.reuse_misses == 1


def entries(*pcs):
    out = []
    for i, pc in enumerate(pcs):
        out.append(TraceEntry(Instruction(Op.NOP), pc, pc + 4, src_pos=i))
    return out


class TestStream:
    def test_drain_order(self):
        s = RecycleStream(StreamKind.ALTERNATE, 0, 1, entries(0x10, 0x14, 0x18))
        assert s.peek().pc == 0x10
        s.advance()
        assert s.peek().pc == 0x14
        assert s.remaining == 2

    def test_resume_pc_after_partial_drain(self):
        s = RecycleStream(StreamKind.BACK, 0, 0, entries(0x10, 0x14, 0x18))
        s.advance()
        s.advance()
        assert s.resume_pc() == 0x18  # successor of the last delivered entry

    def test_resume_pc_fresh_stream(self):
        s = RecycleStream(StreamKind.BACK, 0, 0, entries(0x10, 0x14))
        assert s.resume_pc() == 0x10

    def test_stop_sets_reason(self):
        s = RecycleStream(StreamKind.ALTERNATE, 0, 1, entries(0x10))
        s.stop("branch_mismatch")
        assert s.ended and s.end_reason == "branch_mismatch"
        assert s.remaining == 0

    def test_exhausted(self):
        s = RecycleStream(StreamKind.RESPAWN, 0, None, entries(0x10))
        assert not s.exhausted()
        s.advance()
        assert s.exhausted()
