"""Tests for the disassembler."""

from repro.isa import assemble, encode
from repro.isa.disassembler import disassemble, disassemble_word, format_instruction
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op


class TestDisassembler:
    def test_single_word(self):
        ins = Instruction(Op.ADD, rd=1, ra=2, rb=3)
        text = disassemble_word(encode(ins, 0x1000), 0x1000)
        assert text == "add r1, r2, r3"

    def test_branch_target_reconstructed(self):
        ins = Instruction(Op.BNE, ra=4, target=0x1000)
        text = disassemble_word(encode(ins, 0x1010), 0x1010)
        assert "0x1000" in text

    def test_sequence_with_addresses(self):
        prog = assemble("main: movi r1, 5\naddi r1, r1, 2\nhalt")
        words = [encode(ins, prog.text_base + 4 * i) for i, ins in enumerate(prog.instructions)]
        lines = disassemble(words, base=prog.text_base)
        assert len(lines) == 3
        assert lines[0].startswith(f"{prog.text_base:#8x}")
        assert "movi" in lines[0] and "halt" in lines[2]

    def test_round_trip_every_opcode_class(self):
        src = """
        main: add r1, r2, r3
              addi r4, r5, -9
              movi r6, 100
              ld  r7, 8(r1)
              st  r7, 16(r1)
              fadd f1, f2, f3
              beq r1, main
              jsr ra, main
              ret (ra)
              div r8, r1, r2
              fsqrt f4, f1
              nop
              halt
        """
        prog = assemble(src)
        for i, ins in enumerate(prog.instructions):
            pc = prog.text_base + 4 * i
            assert disassemble_word(encode(ins, pc), pc) == str(ins)

    def test_format_instruction(self):
        text = format_instruction(Instruction(Op.NOP), 0x2000)
        assert "0x2000" in text and "nop" in text
