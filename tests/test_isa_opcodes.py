"""Tests for opcode metadata consistency."""

from repro.isa.opcodes import (
    Format,
    FuClass,
    LAT_ALU,
    LAT_FDIV,
    LAT_FP,
    LAT_MUL,
    MNEMONICS,
    OP_INFO,
    Op,
    info,
)


class TestTableCompleteness:
    def test_every_opcode_has_info(self):
        for op in Op:
            assert op in OP_INFO

    def test_mnemonics_unique_and_complete(self):
        assert len(MNEMONICS) == len(Op)
        for name, op in MNEMONICS.items():
            assert info(op).name == name


class TestClassification:
    def test_branch_predicates(self):
        assert info(Op.BEQ).is_cond_branch and info(Op.BEQ).is_branch
        assert info(Op.BR).is_uncond_branch and not info(Op.BR).is_cond_branch
        assert info(Op.JSR).is_call
        assert info(Op.RET).is_return and info(Op.RET).is_indirect
        assert not info(Op.ADD).is_branch

    def test_memory_predicates(self):
        assert info(Op.LD).is_load and not info(Op.LD).is_store
        assert info(Op.ST).is_store and info(Op.ST).is_mem
        assert info(Op.FLD).dst_fp
        assert info(Op.FST).src_fp

    def test_mem_ops_use_ldst_units(self):
        for op in (Op.LD, Op.ST, Op.FLD, Op.FST):
            assert info(op).fu is FuClass.LDST

    def test_fp_ops_use_fp_units(self):
        for op in (Op.FADD, Op.FMUL, Op.FDIV, Op.FCMPEQ, Op.CVTIF):
            assert info(op).fu is FuClass.FP

    def test_has_dst(self):
        assert info(Op.ADD).has_dst
        assert info(Op.LD).has_dst
        assert info(Op.JSR).has_dst
        assert not info(Op.ST).has_dst
        assert not info(Op.BEQ).has_dst
        assert not info(Op.BR).has_dst


class TestLatencies:
    def test_alpha_21264_latencies(self):
        assert info(Op.ADD).latency == LAT_ALU == 1
        assert info(Op.MUL).latency == LAT_MUL == 7
        assert info(Op.FADD).latency == LAT_FP == 4
        assert info(Op.FMUL).latency == LAT_FP == 4
        assert info(Op.FDIV).latency == LAT_FDIV == 12

    def test_all_latencies_positive(self):
        for op in Op:
            assert info(op).latency >= 1

    def test_formats_assigned(self):
        for op in Op:
            assert isinstance(info(op).fmt, Format)
