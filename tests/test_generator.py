"""Property-based tests: generated programs must run golden-clean.

The generator produces arbitrary-but-valid programs; the pipeline's
commit-time golden check turns every run into a full architectural
equivalence test.  This is the broadest correctness net in the suite —
random control flow, random memory traffic, random ILP, through every
architecture variant.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.emulator import Emulator
from repro.pipeline import Core, Features, MachineConfig
from repro.workloads import GeneratorConfig, generate_program, generate_source

FAST = dict(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow],
)

configs = st.builds(
    GeneratorConfig,
    seed=st.integers(0, 10_000),
    iterations=st.just(60),
    body_size=st.integers(4, 32),
    branch_entropy=st.floats(0, 1),
    ilp=st.integers(1, 8),
    mem_fraction=st.floats(0, 0.4),
    fp_fraction=st.floats(0, 0.3),
)


class TestGeneratorValidity:
    @given(config=configs)
    @settings(**FAST)
    def test_generated_program_halts_architecturally(self, config):
        emu = Emulator(generate_program(config))
        emu.run_to_halt(limit=500_000)

    @given(config=configs)
    @settings(**FAST)
    def test_generated_source_is_deterministic(self, config):
        assert generate_source(config) == generate_source(config)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(branch_entropy=1.5)
        with pytest.raises(ValueError):
            GeneratorConfig(ilp=0)
        with pytest.raises(ValueError):
            GeneratorConfig(mem_fraction=-0.1)


class TestPipelineGoldenCleanOnRandomPrograms:
    """The heavyweight property: any generated program, any variant,
    the pipeline commits exactly the architectural instruction stream."""

    @given(seed=st.integers(0, 10_000), entropy=st.floats(0, 1))
    @settings(**FAST)
    def test_smt_golden_clean(self, seed, entropy):
        config = GeneratorConfig(seed=seed, iterations=40, branch_entropy=entropy)
        core = Core(MachineConfig(features=Features.smt()))
        core.load([generate_program(config)])
        core.run(max_cycles=300_000)
        assert core.instances[0].halted

    @given(seed=st.integers(0, 10_000), entropy=st.floats(0, 1))
    @settings(**FAST)
    def test_rec_rs_ru_golden_clean(self, seed, entropy):
        config = GeneratorConfig(
            seed=seed, iterations=40, branch_entropy=entropy, mem_fraction=0.2
        )
        core = Core(MachineConfig(features=Features.rec_rs_ru()))
        core.load([generate_program(config)])
        core.run(max_cycles=300_000)
        assert core.instances[0].halted

    @given(seed=st.integers(0, 5_000))
    @settings(deadline=None, max_examples=6, suppress_health_check=[HealthCheck.too_slow])
    def test_tme_golden_clean_high_entropy(self, seed):
        config = GeneratorConfig(seed=seed, iterations=50, branch_entropy=1.0, body_size=16)
        core = Core(MachineConfig(features=Features.tme_only()))
        core.load([generate_program(config)])
        core.run(max_cycles=300_000)
        assert core.instances[0].halted

    @given(seed=st.integers(0, 5_000))
    @settings(deadline=None, max_examples=6, suppress_health_check=[HealthCheck.too_slow])
    def test_multiprogram_golden_clean(self, seed):
        programs = []
        for i in range(2):
            config = GeneratorConfig(seed=seed + i, iterations=40, branch_entropy=0.7)
            programs.append(
                generate_program(
                    config,
                    text_base=0x1000 + i * 0x21040,
                    data_base=0x9000 + i * 0x21040,
                )
            )
        core = Core(MachineConfig(features=Features.rec_rs_ru()))
        core.load(programs)
        core.run(max_cycles=400_000)
        assert all(inst.halted for inst in core.instances)


class TestGeneratedCalls:
    @given(seed=st.integers(0, 5000), calls=st.floats(0.05, 0.4))
    @settings(deadline=None, max_examples=8, suppress_health_check=[HealthCheck.too_slow])
    def test_call_heavy_programs_golden_clean_under_recycling(self, seed, calls):
        config = GeneratorConfig(
            seed=seed, iterations=40, branch_entropy=0.8,
            call_fraction=calls, body_size=16,
        )
        core = Core(MachineConfig(features=Features.rec_rs_ru()))
        core.load([generate_program(config)])
        core.run(max_cycles=400_000)
        assert core.instances[0].halted

    def test_helpers_emitted(self):
        config = GeneratorConfig(seed=3, call_fraction=0.3, num_helpers=3)
        source = generate_source(config)
        assert "helper0:" in source and "helper2:" in source
        assert "jsr  ra, helper" in source

    def test_call_fraction_validated(self):
        import pytest
        with pytest.raises(ValueError):
            GeneratorConfig(call_fraction=1.5)
