"""Decoded-uop cache: capacity, invalidation, and counter semantics."""

import pytest

from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.pipeline.uopcache import (
    DecodedUop,
    DecodedUopCache,
    decode_standalone,
    loop_pcs_of,
)


def make_program(name="p", n_body=6):
    """A tiny loop kernel: ``n_body`` ALU ops, a backward branch over
    the last four of them, then a halt."""
    instrs = [Instruction(Op.ADDI, rd=1, ra=1, imm=1) for _ in range(n_body)]
    # Backward branch to the third body instruction.
    instrs.append(Instruction(Op.BNE, ra=1, rb=2, target=None))
    instrs.append(Instruction(Op.HALT))
    program = Program(name=name, instructions=instrs)
    branch_pc = program.text_base + n_body * INSTRUCTION_BYTES
    instrs[n_body] = Instruction(
        Op.BNE, ra=1, rb=2, target=program.text_base + 2 * INSTRUCTION_BYTES
    )
    return program, branch_pc


class TestDecodedUop:
    def test_standalone_decode_precomputes_static_facts(self):
        program, branch_pc = make_program()
        dec = decode_standalone(program.instr_at(branch_pc), branch_pc)
        assert dec.is_branch and dec.is_cond_branch
        assert dec.backward  # target <= pc
        assert dec.seq_next == branch_pc + INSTRUCTION_BYTES
        assert dec.decant_key.startswith(dec.fu.value)

    def test_loop_pcs_cover_backward_branch_body(self):
        program, branch_pc = make_program()
        member = loop_pcs_of(program)
        body_start = program.text_base + 2 * INSTRUCTION_BYTES
        assert body_start in member
        assert branch_pc in member
        assert program.text_base not in member  # before the loop

    def test_loop_member_decant_key(self):
        program, branch_pc = make_program()
        cache = DecodedUopCache()
        dec = cache.lookup(program, branch_pc)
        assert dec.loop_member
        assert dec.decant_key.endswith(".loop")


class TestCacheCounters:
    def test_miss_then_hit(self):
        program, branch_pc = make_program()
        cache = DecodedUopCache(capacity=16)
        first = cache.lookup(program, branch_pc)
        again = cache.lookup(program, branch_pc)
        assert again is first  # memoised record, not a re-decode
        assert cache.misses == 1 and cache.hits == 1
        assert cache.decode_counts == {"p": 1}
        assert cache.hits_by_class == {first.decant_key: 1}

    def test_off_text_lookup_is_a_miss_with_no_entry(self):
        program, _ = make_program()
        cache = DecodedUopCache(capacity=16)
        assert cache.lookup(program, program.text_base - INSTRUCTION_BYTES) is None
        assert cache.misses == 1 and len(cache) == 0

    def test_snapshot_shape(self):
        program, branch_pc = make_program()
        cache = DecodedUopCache(capacity=16)
        cache.lookup(program, branch_pc)
        cache.lookup(program, branch_pc)
        snap = cache.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["hit_rate"] == 0.5
        assert snap["entries"] == 1 and snap["capacity"] == 16
        assert snap["decode_counts"] == {"p": 1}


class TestCapacity:
    def test_fifo_eviction_at_capacity(self):
        program, _ = make_program(n_body=6)
        cache = DecodedUopCache(capacity=2)
        base = program.text_base
        pcs = [base + i * INSTRUCTION_BYTES for i in range(3)]
        for pc in pcs:
            cache.lookup(program, pc)
        assert len(cache) == 2
        assert cache.evictions == 1
        view = cache.program_view(program)
        assert pcs[0] not in view  # FIFO-oldest evicted
        assert pcs[1] in view and pcs[2] in view

    def test_zero_capacity_disables_caching(self):
        program, branch_pc = make_program()
        cache = DecodedUopCache(capacity=0)
        a = cache.lookup(program, branch_pc)
        b = cache.lookup(program, branch_pc)
        assert isinstance(a, DecodedUop) and isinstance(b, DecodedUop)
        assert a is not b  # every lookup decodes
        assert cache.hits == 0 and cache.misses == 2
        assert len(cache) == 0 and cache.evictions == 0


class TestInvalidation:
    def test_invalidate_single_pc(self):
        program, branch_pc = make_program()
        cache = DecodedUopCache(capacity=16)
        cache.lookup(program, branch_pc)
        assert cache.invalidate(program, branch_pc)
        assert len(cache) == 0
        # Next lookup re-decodes (a fresh miss, not a stale hit).
        cache.lookup(program, branch_pc)
        assert cache.misses == 2 and cache.hits == 0

    def test_invalidate_empty_slot_is_false(self):
        program, branch_pc = make_program()
        cache = DecodedUopCache(capacity=16)
        assert not cache.invalidate(program, branch_pc)
        other, _ = make_program(name="q")
        assert not cache.invalidate(other, other.text_base)

    def test_invalidate_program_drops_all_entries(self):
        program, _ = make_program()
        other, _ = make_program(name="q")
        cache = DecodedUopCache(capacity=16)
        base = program.text_base
        for i in range(3):
            cache.lookup(program, base + i * INSTRUCTION_BYTES)
        cache.lookup(other, other.text_base)
        dropped = cache.invalidate_program(program)
        assert dropped == 3
        assert len(cache) == 1  # the other program's entry survives
        assert cache.lookup(other, other.text_base) is not None
        assert cache.hits == 1

    def test_invalidated_view_stays_coherent_for_hot_loop_holders(self):
        # The fetch hot loop caches ``program_view`` across cycles; an
        # invalidation must make that held dict miss, not serve stale
        # records.
        program, branch_pc = make_program()
        cache = DecodedUopCache(capacity=16)
        view = cache.program_view(program)
        cache.lookup(program, branch_pc)
        assert branch_pc in view
        cache.invalidate_program(program)
        assert branch_pc not in view

    def test_stale_fifo_entries_skipped_at_eviction(self):
        program, _ = make_program(n_body=6)
        cache = DecodedUopCache(capacity=2)
        base = program.text_base
        cache.lookup(program, base)
        cache.invalidate(program, base)  # FIFO still holds (view, base)
        cache.lookup(program, base + INSTRUCTION_BYTES)
        cache.lookup(program, base + 2 * INSTRUCTION_BYTES)
        cache.lookup(program, base + 3 * INSTRUCTION_BYTES)  # forces evict
        assert len(cache) == 2
        cache2 = cache  # the stale (already-invalidated) entry must not
        assert cache2.evictions == 1  # have been double-counted

    def test_clear_resets_structure_but_keeps_counters(self):
        program, branch_pc = make_program()
        cache = DecodedUopCache(capacity=16)
        cache.lookup(program, branch_pc)
        cache.lookup(program, branch_pc)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1 and cache.misses == 1  # history preserved


class TestCoreIntegration:
    def test_run_populates_uop_cache_stats(self):
        from repro.sim.runner import RunSpec, run_spec

        spec = RunSpec(workload=["compress"], commit_target=300)
        stats = run_spec(spec).stats
        assert stats.uop_cache_hits > 0
        assert stats.uop_cache_misses > 0
        assert 0.0 < stats.uop_cache_hit_rate < 1.0 or stats.uop_cache_hit_rate > 0
        assert stats.decode_counts.get("compress", 0) > 0
        assert stats.uop_cache_hits_by_class
        # Decanting keys are "<fuclass>[.loop]" strings.
        for key in stats.uop_cache_hits_by_class:
            assert key.split(".")[0] in {"int", "fp", "ldst", "none"}


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
