"""Exhaustive opcode coverage: every opcode executes through the whole
stack (assembler → encoding round-trip → emulator → pipeline).

Guards future ISA additions: a new opcode missing semantics, an
encoding case, or pipeline handling fails here immediately.
"""

import pytest

from repro.emulator import Emulator
from repro.isa import assemble
from repro.isa.encoding import decode, encode
from repro.isa.opcodes import Format, Op, info
from repro.pipeline import Core, Features, MachineConfig

# One assembly statement exercising each opcode (operands chosen so the
# program below stays architecturally meaningful).
OPCODE_STATEMENTS = {
    Op.ADD: "add r1, r2, r3",
    Op.SUB: "sub r1, r2, r3",
    Op.MUL: "mul r1, r2, r3",
    Op.AND: "and r1, r2, r3",
    Op.OR: "or r1, r2, r3",
    Op.XOR: "xor r1, r2, r3",
    Op.SLL: "sll r1, r2, r3",
    Op.SRL: "srl r1, r2, r3",
    Op.SRA: "sra r1, r2, r3",
    Op.CMPEQ: "cmpeq r1, r2, r3",
    Op.CMPLT: "cmplt r1, r2, r3",
    Op.CMPLE: "cmple r1, r2, r3",
    Op.CMPULT: "cmpult r1, r2, r3",
    Op.ADDI: "addi r1, r2, 5",
    Op.SUBI: "subi r1, r2, 5",
    Op.MULI: "muli r1, r2, 5",
    Op.ANDI: "andi r1, r2, 5",
    Op.ORI: "ori r1, r2, 5",
    Op.XORI: "xori r1, r2, 5",
    Op.SLLI: "slli r1, r2, 5",
    Op.SRLI: "srli r1, r2, 5",
    Op.SRAI: "srai r1, r2, 5",
    Op.CMPEQI: "cmpeqi r1, r2, 5",
    Op.CMPLTI: "cmplti r1, r2, 5",
    Op.MOVI: "movi r1, 5",
    Op.FADD: "fadd f1, f2, f3",
    Op.FSUB: "fsub f1, f2, f3",
    Op.FMUL: "fmul f1, f2, f3",
    Op.FDIV: "fdiv f1, f2, f3",
    Op.FCMPEQ: "fcmpeq r1, f2, f3",
    Op.FCMPLT: "fcmplt r1, f2, f3",
    Op.FCMPLE: "fcmple r1, f2, f3",
    Op.CVTIF: "cvtif f1, r2, zero",
    Op.CVTFI: "cvtfi r1, f2, fzero",
    Op.LD: "ld r1, 0(r2)",
    Op.ST: "st r1, 0(r2)",
    Op.FLD: "fld f1, 0(r2)",
    Op.FST: "fst f1, 0(r2)",
    Op.BEQ: "beq r1, next",
    Op.BNE: "bne r1, next",
    Op.BLT: "blt r1, next",
    Op.BLE: "ble r1, next",
    Op.BGT: "bgt r1, next",
    Op.BGE: "bge r1, next",
    Op.BR: "br next",
    Op.JSR: "jsr ra, next",
    Op.JMP: "jmp (r1)",
    Op.RET: "ret (ra)",
    Op.NOP: "nop",
    Op.HALT: "halt",
    Op.DIV: "div r1, r2, r3",
    Op.REM: "rem r1, r2, r3",
    Op.UMULH: "umulh r1, r2, r3",
    Op.CMOVEQ: "cmoveq r1, r2, r3",
    Op.CMOVNE: "cmovne r1, r2, r3",
    Op.SEXTB: "sextb r1, r2",
    Op.SEXTW: "sextw r1, r2",
    Op.FSQRT: "fsqrt f1, f2",
    Op.FNEG: "fneg f1, f2",
    Op.FABS: "fabs f1, f2",
}


class TestInventoryCoverage:
    def test_statement_table_covers_every_opcode(self):
        assert set(OPCODE_STATEMENTS) == set(Op)

    @pytest.mark.parametrize("op", sorted(Op, key=int))
    def test_assembles_and_encodes(self, op):
        source = f"main: {OPCODE_STATEMENTS[op]}\nnext: halt"
        prog = assemble(source)
        ins = prog.instructions[0]
        assert ins.op is op
        pc = prog.text_base
        assert decode(encode(ins, pc), pc) == ins

    def test_every_opcode_has_positive_latency_and_fu(self):
        for op in Op:
            oi = info(op)
            assert oi.latency >= 1
            assert isinstance(oi.fmt, Format)


# A single program touching every opcode, run through emulator and
# pipeline (golden-checked), proving semantics exist and agree.
ALL_OPS_PROGRAM = """
        .data
buf:    .word 12, -7, 0
vals:   .double 2.25, -3.5
        .text
main:   movi r2, 12
        movi r3, 5
        movi r9, buf
        add  r1, r2, r3
        sub  r1, r1, r3
        mul  r1, r1, r3
        and  r4, r1, r2
        or   r4, r4, r3
        xor  r4, r4, r2
        sll  r5, r2, r3
        srl  r5, r5, r3
        sra  r5, r5, r3
        cmpeq r6, r2, r3
        cmplt r6, r3, r2
        cmple r6, r2, r2
        cmpult r6, r3, r2
        addi r7, r2, 100
        subi r7, r7, 1
        muli r7, r7, 2
        andi r7, r7, 255
        ori  r7, r7, 1
        xori r7, r7, 3
        slli r8, r2, 2
        srli r8, r8, 1
        srai r8, r8, 1
        cmpeqi r8, r8, 6
        cmplti r8, r8, 10
        div  r10, r2, r3
        rem  r11, r2, r3
        umulh r12, r2, r3
        cmoveq r13, r10, r2
        cmovne r13, r10, r3
        sextb r14, r7
        sextw r15, r7
        ld   r16, 0(r9)
        st   r16, 16(r9)
        fld  f1, 0(r9)      # reinterpret: still well-defined
        movi r17, vals
        fld  f2, 0(r17)
        fld  f3, 8(r17)
        fadd f4, f2, f3
        fsub f4, f4, f2
        fmul f5, f2, f2
        fdiv f6, f5, f2
        fsqrt f7, f5
        fneg f8, f7
        fabs f8, f8
        fcmpeq r18, f2, f3
        fcmplt r18, f3, f2
        fcmple r18, f2, f2
        cvtif f9, r2, zero
        cvtfi r19, f9, fzero
        fst  f4, 16(r9)
        beq  r6, skip1
        nop
skip1:  bne  r31, skip2
        nop
skip2:  blt  r3, skip3
skip3:  ble  r31, skip4
skip4:  bgt  r2, skip5
skip5:  bge  r2, skip6
skip6:  br   direct
        nop
direct: jsr  ra, callee
        movi r20, done_tgt
        jmp  (r20)
        nop
done_tgt: halt
callee: ret  (ra)
"""


class TestAllOpsProgram:
    def test_emulates(self):
        emu = Emulator(assemble(ALL_OPS_PROGRAM, name="allops"))
        emu.run_to_halt(limit=10_000)

    def test_pipeline_golden_clean(self):
        core = Core(MachineConfig(features=Features.rec_rs_ru()))
        core.load([assemble(ALL_OPS_PROGRAM, name="allops")])
        core.run(max_cycles=100_000)
        assert core.instances[0].halted
