"""Tests for the Jacobsen confidence-estimator variants and the
recycled-branch prediction policy ("former" vs "latter" method)."""

import pytest

from repro.branch import (
    CONFIDENCE_KINDS,
    OnesConfidenceEstimator,
    SaturatingConfidenceEstimator,
    make_confidence,
)
from repro.isa import assemble
from repro.pipeline import Core, Features, MachineConfig

RNG = """
main:  movi r1, 4242
       movi r2, 200
loop:  slli r3, r1, 13
       xor  r1, r1, r3
       srli r3, r1, 7
       xor  r1, r1, r3
       andi r4, r1, 1
       beq  r4, skip
       addi r5, r5, 1
skip:  subi r2, r2, 1
       bgt  r2, loop
       halt
"""


class TestSaturating:
    def test_decrements_instead_of_reset(self):
        conf = SaturatingConfidenceEstimator(threshold=4)
        for _ in range(6):
            conf.update(0x1000, 0, correct=True)
        conf.update(0x1000, 0, correct=False)
        assert conf.counter(0x1000, 0) == 5  # one step down, not zero
        assert not conf.is_low_confidence(0x1000, 0)

    def test_eventually_loses_confidence(self):
        conf = SaturatingConfidenceEstimator(threshold=4)
        for _ in range(6):
            conf.update(0x1000, 0, correct=True)
        for _ in range(10):
            conf.update(0x1000, 0, correct=False)
        assert conf.is_low_confidence(0x1000, 0)


class TestOnes:
    def test_counts_recent_correctness(self):
        conf = OnesConfidenceEstimator(history_bits=4, threshold=3)
        for correct in (True, True, True, True):
            conf.update(0x1000, 0, correct)
        assert not conf.is_low_confidence(0x1000, 0)
        conf.update(0x1000, 0, False)
        conf.update(0x1000, 0, False)
        assert conf.is_low_confidence(0x1000, 0)

    def test_window_slides(self):
        conf = OnesConfidenceEstimator(history_bits=4, threshold=4)
        conf.update(0x1000, 0, False)
        for _ in range(4):
            conf.update(0x1000, 0, True)
        # The old miss has slid out of the 4-bit window.
        assert not conf.is_low_confidence(0x1000, 0)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            OnesConfidenceEstimator(history_bits=4, threshold=9)


class TestFactory:
    def test_all_kinds_constructible(self):
        for kind in CONFIDENCE_KINDS:
            est = make_confidence(kind)
            assert est.kind == kind

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_confidence("psychic")

    @pytest.mark.parametrize("kind", sorted(CONFIDENCE_KINDS))
    def test_full_run_golden_clean(self, kind):
        cfg = MachineConfig(features=Features.rec_rs_ru(), confidence_kind=kind)
        core = Core(cfg)
        core.load([assemble(RNG, name="rng")])
        stats = core.run(max_cycles=300_000)
        assert core.instances[0].halted
        assert stats.forks > 0, kind


class TestRecycleBranchPolicy:
    def test_former_method_golden_clean(self):
        cfg = MachineConfig(features=Features.rec_rs_ru(), recycle_repredict=False)
        core = Core(cfg)
        core.load([assemble(RNG, name="rng")])
        stats = core.run(max_cycles=300_000)
        assert core.instances[0].halted
        assert stats.pct_recycled > 0

    def test_former_method_never_stops_on_mismatch(self):
        cfg = MachineConfig(features=Features.rec_rs_ru(), recycle_repredict=False)
        core = Core(cfg)
        core.load([assemble(RNG, name="rng")])
        stats = core.run(max_cycles=300_000)
        assert stats.streams_ended_branch_mismatch == 0

    def test_latter_method_stops_on_mismatch(self):
        cfg = MachineConfig(features=Features.rec_rs_ru(), recycle_repredict=True)
        core = Core(cfg)
        core.load([assemble(RNG, name="rng")])
        stats = core.run(max_cycles=300_000)
        # The rng kernel's data-dependent branch guarantees disagreements.
        assert stats.streams_ended_branch_mismatch > 0
