"""Content-addressed result cache: keys, hits, misses, invalidation."""

import dataclasses
import json

import pytest

from repro.exec import Executor, Job, ResultCache, cache_key
from repro.exec.cache import Journal
from repro.exec.jobs import result_to_payload, stats_to_payload
from repro.sim.runner import RunSpec
from repro.workloads import WorkloadSuite

SUITE = WorkloadSuite()
FP = SUITE.fingerprint()


def tiny_spec(**kwargs):
    defaults = dict(workload=("compress",), commit_target=250)
    defaults.update(kwargs)
    return RunSpec(**defaults)


class TestCacheKey:
    def test_stable_for_identical_specs(self):
        a = cache_key(Job(spec=tiny_spec()), FP, "1.0.0")
        b = cache_key(Job(spec=tiny_spec()), FP, "1.0.0")
        assert a == b

    @pytest.mark.parametrize(
        "change",
        [
            dict(machine="small.1.8"),
            dict(features="TME"),
            dict(policy="stop-8"),
            dict(workload=("vortex",)),
            dict(workload=("compress", "gcc")),
            dict(commit_target=500),
            dict(max_cycles=1_000_000),
            dict(confidence_threshold=4),
        ],
    )
    def test_any_spec_field_changes_key(self, change):
        base = cache_key(Job(spec=tiny_spec()), FP, "1.0.0")
        other = cache_key(Job(spec=tiny_spec(**change)), FP, "1.0.0")
        assert base != other, change

    def test_overrides_change_key(self):
        base = cache_key(Job(spec=tiny_spec()), FP, "1.0.0")
        sized = cache_key(
            Job(spec=tiny_spec(), overrides=(("active_list_size", 32),)), FP, "1.0.0"
        )
        assert base != sized

    def test_suite_fingerprint_changes_key(self):
        base = cache_key(Job(spec=tiny_spec()), FP, "1.0.0")
        other = cache_key(Job(spec=tiny_spec()), "other-suite", "1.0.0")
        assert base != other

    def test_sim_version_changes_key(self):
        base = cache_key(Job(spec=tiny_spec()), FP, "1.0.0")
        bumped = cache_key(Job(spec=tiny_spec()), FP, "1.0.1")
        assert base != bumped

    def test_chaos_never_in_key(self):
        from repro.exec import Chaos

        plain = cache_key(Job(spec=tiny_spec()), FP, "1.0.0")
        chaotic = cache_key(
            Job(spec=tiny_spec(), chaos=Chaos(fail_first_attempts=9)), FP, "1.0.0"
        )
        assert plain == chaotic

    def test_suite_fingerprint_tracks_iters(self):
        assert WorkloadSuite(iters=100).fingerprint() != WorkloadSuite(iters=200).fingerprint()
        assert WorkloadSuite(iters=100).fingerprint() == WorkloadSuite(iters=100).fingerprint()


class TestResultCacheStore:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        from repro.exec import run_job

        payload = result_to_payload(run_job(Job(spec=tiny_spec()), SUITE))
        cache.put("ab" * 32, payload)
        assert cache.get("ab" * 32) == payload
        assert len(cache) == 1

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("cd" * 32) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for("ef" * 32)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get("ef" * 32) is None


class TestExecutorCaching:
    def test_hit_on_identical_spec(self, tmp_path):
        spec = tiny_spec()
        first = Executor(cache=tmp_path).run([spec], suite=SUITE)[0]
        second = Executor(cache=tmp_path).run([spec], suite=SUITE)[0]
        assert not first.cached and second.cached
        assert stats_to_payload(first.result.stats) == stats_to_payload(second.result.stats)

    @pytest.mark.parametrize(
        "change",
        [
            dict(machine="small.1.8"),
            dict(features="TME"),
            dict(commit_target=300),
            dict(workload=("vortex",)),
        ],
    )
    def test_miss_when_spec_changes(self, tmp_path, change):
        Executor(cache=tmp_path).run([tiny_spec()], suite=SUITE)
        outcome = Executor(cache=tmp_path).run([tiny_spec(**change)], suite=SUITE)[0]
        assert not outcome.cached

    def test_invalidated_by_sim_version_bump(self, tmp_path):
        spec = tiny_spec()
        Executor(cache=ResultCache(tmp_path, sim_version="1.0.0")).run([spec], suite=SUITE)
        warm = Executor(cache=ResultCache(tmp_path, sim_version="1.0.0")).run(
            [spec], suite=SUITE
        )[0]
        bumped = Executor(cache=ResultCache(tmp_path, sim_version="2.0.0")).run(
            [spec], suite=SUITE
        )[0]
        assert warm.cached and not bumped.cached

    def test_cached_result_matches_fresh_numerically(self, tmp_path):
        spec = tiny_spec(workload=("gcc", "go"))
        fresh = Executor(cache=tmp_path).run([spec], suite=SUITE)[0]
        cached = Executor(cache=tmp_path).run([spec], suite=SUITE)[0]
        assert cached.result.per_program_ipc == fresh.result.per_program_ipc
        assert dataclasses.asdict(cached.result.stats) == dataclasses.asdict(fresh.result.stats)


class TestJournal:
    def test_resume_skips_completed_jobs(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        spec = tiny_spec()
        first = Executor(journal=journal).run([spec], suite=SUITE)[0]
        assert not first.cached
        # Same spec but rigged to fail if it actually executed: the journal
        # hit must short-circuit execution entirely.
        from repro.exec import Chaos

        rigged = Job(spec=spec, chaos=Chaos(fail_first_attempts=99))
        resumed = Executor(journal=journal, retries=0).run([rigged], suite=SUITE)[0]
        assert resumed.cached and resumed.ok
        assert stats_to_payload(resumed.result.stats) == stats_to_payload(first.result.stats)

    def test_torn_tail_is_ignored(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append("k1", {"x": 1})
        with open(journal.path, "a") as handle:
            handle.write('{"key": "k2", "payl')  # interrupted write
        assert journal.load() == {"k1": {"x": 1}}

    def test_journal_entries_are_json_lines(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        Executor(journal=journal).run([tiny_spec()], suite=SUITE)
        lines = journal.read_text().strip().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert set(record) == {"key", "payload"}


class TestCorruptEntryRecovery:
    """A truncated/torn cache entry must never poison its key (satellite:
    crash-safe writes + self-healing reads)."""

    def test_corrupt_entry_is_evicted_on_read(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text('{"schema": 1, "payload": {"x"')  # killed mid-write
        assert cache.get(key) is None
        assert not path.exists(), "corrupt entry must be deleted, not kept"

    def test_key_recovers_after_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {"ipc": 1.0})
        # Simulate a pre-atomic-write simulator truncating the entry.
        cache.path_for(key).write_text('{"schema"')
        assert cache.get(key) is None
        cache.put(key, {"ipc": 1.0})
        assert cache.get(key) == {"ipc": 1.0}

    def test_wrong_schema_entry_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"schema": 999, "payload": {"x": 1}}))
        assert cache.get(key) is None
        assert not path.exists()

    def test_put_leaves_no_tmp_droppings(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("12" * 32, {"x": 1})
        leftovers = [p for p in sorted(tmp_path.rglob("*")) if p.suffix == ".tmp"]
        assert leftovers == []

    def test_executor_reruns_after_corruption(self, tmp_path):
        spec = tiny_spec()
        cache = ResultCache(tmp_path)
        executor = Executor(cache=cache)
        first = executor.run([spec], suite=SUITE)[0]
        key = cache.key_for(Job(spec=spec), SUITE)
        cache.path_for(key).write_text("garbage")
        again = Executor(cache=ResultCache(tmp_path)).run([spec], suite=SUITE)[0]
        assert not again.cached  # corrupt entry -> a real re-run, not a crash
        assert stats_to_payload(again.result.stats) == stats_to_payload(first.result.stats)


class TestJournalCompaction:
    """Resume journals grow without bound across resumed campaigns; clean
    startup compacts them down to live entries (satellite)."""

    def test_compaction_pins_size_to_live_entries(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        for round_ in range(3):  # three resumed campaigns, same two keys
            journal.append("k1", {"round": round_})
            journal.append("k2", {"round": round_})
        with open(journal.path, "a") as handle:
            handle.write('{"key": "k3", "pay')  # torn tail rides along
        assert len(journal.path.read_text().splitlines()) == 7
        survivors = journal.compact()
        assert survivors == 2
        lines = journal.path.read_text().strip().splitlines()
        assert len(lines) == 2, "compacted journal must hold one line per key"
        # Last write wins, and the result still loads.
        assert journal.load() == {"k1": {"round": 2}, "k2": {"round": 2}}

    def test_compaction_filters_dead_keys(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append("live", {"x": 1})
        journal.append("dead", {"x": 2})
        assert journal.compact(live_keys=["live"]) == 1
        assert journal.load() == {"live": {"x": 1}}

    def test_compacting_missing_journal_is_a_noop(self, tmp_path):
        journal = Journal(tmp_path / "never-written.jsonl")
        assert journal.compact() == 0
        assert not journal.path.exists()

    def test_resume_still_works_after_compaction(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        spec = tiny_spec()
        Executor(journal=journal).run([spec], suite=SUITE)
        Executor(journal=journal).run([spec], suite=SUITE)  # journal hit
        Journal(journal).compact()
        from repro.exec import Chaos

        rigged = Job(spec=spec, chaos=Chaos(fail_first_attempts=99))
        resumed = Executor(journal=journal, retries=0).run([rigged], suite=SUITE)[0]
        assert resumed.cached and resumed.ok
