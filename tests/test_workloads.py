"""Tests for the SPEC95-analog kernel suite."""

import pytest

from repro.emulator import Emulator, branch_trace
from repro.workloads import (
    FP_KERNELS,
    INTEGER_KERNELS,
    KERNELS,
    RELOCATION_STRIDE,
    WorkloadSuite,
)

SHORT = WorkloadSuite(iters=40)


class TestKernelValidity:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_assembles_and_halts(self, name):
        program = SHORT.program(name)
        emu = Emulator(program)
        executed = emu.run_to_halt(limit=1_000_000)
        assert executed > 40  # at least one instruction per iteration

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_deterministic(self, name):
        a = Emulator(SHORT.program(name))
        b = Emulator(SHORT.program(name))
        a.run_to_halt(limit=1_000_000)
        b.run_to_halt(limit=1_000_000)
        assert a.state.regs == b.state.regs
        assert a.state.memory == b.state.memory

    def test_integer_fp_split_matches_paper(self):
        assert set(INTEGER_KERNELS) == {"compress", "gcc", "go", "li", "perl", "vortex"}
        assert set(FP_KERNELS) == {"su2cor", "tomcatv"}
        assert set(INTEGER_KERNELS) | set(FP_KERNELS) == set(KERNELS)

    def test_eight_kernels(self):
        assert len(KERNELS) == 8


class TestBehaviouralProfiles:
    """The suite must reproduce the *relative* branch behaviour the
    paper's benchmarks exhibit (tomcatv/vortex predictable, go hard)."""

    @staticmethod
    def gshare_accuracy(name, window=8000):
        """Offline gshare accuracy proxy over a branch trace."""
        trace = branch_trace(WorkloadSuite(iters=4000).program(name), window)
        table = {}
        history = 0
        correct = 0
        for pc, taken in trace:
            idx = (pc >> 2 ^ history) & 2047
            counter = table.get(idx, 2)
            correct += (counter >= 2) == taken
            table[idx] = min(3, counter + 1) if taken else max(0, counter - 1)
            history = ((history << 1) | taken) & 2047
        return correct / max(1, len(trace))

    def test_go_is_hardest(self):
        accs = {n: self.gshare_accuracy(n) for n in ("go", "tomcatv", "vortex")}
        assert accs["go"] < accs["tomcatv"]
        assert accs["go"] < accs["vortex"]

    def test_vortex_highly_predictable(self):
        assert self.gshare_accuracy("vortex") > 0.95

    def test_compress_has_data_dependent_branches(self):
        assert self.gshare_accuracy("compress") < 0.93


class TestSuite:
    def test_program_caching(self):
        suite = WorkloadSuite(iters=10)
        assert suite.program("gcc") is suite.program("gcc")

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            WorkloadSuite().program("spice")

    def test_relocation_slots_distinct(self):
        suite = WorkloadSuite(iters=10)
        p0 = suite.program("gcc", 0)
        p1 = suite.program("gcc", 1)
        assert p1.text_base - p0.text_base == RELOCATION_STRIDE
        assert p1.data_base - p0.data_base == RELOCATION_STRIDE

    def test_relocated_kernel_still_runs(self):
        program = SHORT.program("li", slot=3)
        Emulator(program).run_to_halt(limit=1_000_000)

    def test_mix_assigns_slots(self):
        suite = WorkloadSuite(iters=10)
        mix = suite.mix(["gcc", "go", "gcc"])
        bases = [p.text_base for p in mix]
        assert len(set(bases)) == 3
        assert mix[0].name == "gcc" and mix[2].name == "gcc.2"

    def test_mixes_weight_benchmarks_evenly(self):
        suite = WorkloadSuite()
        mixes = suite.mixes(4, count=8)
        assert len(mixes) == 8
        assert all(len(m) == 4 for m in mixes)
        from collections import Counter
        counts = Counter(name for mix in mixes for name in mix)
        assert len(counts) == 8  # every benchmark appears
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_mixes_width_one(self):
        mixes = WorkloadSuite().mixes(1, count=8)
        assert sorted(m[0] for m in mixes) == sorted(WorkloadSuite().names)


class TestExtendedSuite:
    def test_extended_kernels_not_in_default_suite(self):
        assert "ijpeg" not in WorkloadSuite().names
        assert "m88ksim" not in WorkloadSuite().names

    def test_extended_suite_includes_them(self):
        suite = WorkloadSuite(extended=True)
        assert "ijpeg" in suite.names and "m88ksim" in suite.names
        assert len(suite.names) == 10

    @pytest.mark.parametrize("name", ["ijpeg", "m88ksim"])
    def test_extended_kernels_run(self, name):
        suite = WorkloadSuite(iters=30, extended=True)
        Emulator(suite.program(name)).run_to_halt(limit=1_000_000)

    def test_extended_golden_clean_under_recycling(self):
        from repro.pipeline import Core, Features, MachineConfig

        suite = WorkloadSuite(extended=True)
        for name in ("ijpeg", "m88ksim"):
            core = Core(MachineConfig(features=Features.rec_rs_ru()))
            core.load(suite.single(name), commit_target=600)
            stats = core.run(max_cycles=500_000)
            assert stats.committed >= 600, name
