"""Tests for the unified logical register space."""

import pytest

from repro.isa import registers as R


class TestIndexing:
    def test_int_reg_range(self):
        assert R.int_reg(0) == 0
        assert R.int_reg(31) == 31

    def test_fp_reg_offset(self):
        assert R.fp_reg(0) == 32
        assert R.fp_reg(31) == 63

    def test_int_reg_out_of_range(self):
        with pytest.raises(ValueError):
            R.int_reg(32)

    def test_fp_reg_out_of_range(self):
        with pytest.raises(ValueError):
            R.fp_reg(-1)

    def test_is_fp(self):
        assert not R.is_fp(31)
        assert R.is_fp(32)

    def test_zero_registers(self):
        assert R.is_zero(R.ZERO_REG)
        assert R.is_zero(R.FP_ZERO_REG)
        assert not R.is_zero(0)
        assert not R.is_zero(R.fp_reg(0))


class TestNames:
    def test_round_trip_all(self):
        for idx in range(R.NUM_LOGICAL_REGS):
            assert R.parse_reg(R.reg_name(idx)) == idx

    def test_aliases(self):
        assert R.parse_reg("ra") == R.RETURN_ADDRESS_REG
        assert R.parse_reg("sp") == R.STACK_POINTER_REG
        assert R.parse_reg("zero") == R.ZERO_REG

    def test_case_insensitive(self):
        assert R.parse_reg("R5") == 5
        assert R.parse_reg("F3") == R.fp_reg(3)

    def test_bad_names(self):
        for bad in ("x1", "r", "r99", "f32", "", "rfoo"):
            with pytest.raises(ValueError):
                R.parse_reg(bad)

    def test_reg_name_out_of_range(self):
        with pytest.raises(ValueError):
            R.reg_name(64)
