"""Tests for per-stage bandwidth utilization tracking."""

from repro.isa import assemble
from repro.pipeline import Core, Features, MachineConfig
from repro.stats import StageUtilization, UtilizationStats

SRC = """
main:  movi r1, 777
       movi r2, 150
loop:  slli r3, r1, 13
       xor  r1, r1, r3
       srli r3, r1, 7
       xor  r1, r1, r3
       andi r4, r1, 1
       beq  r4, skip
       addi r5, r5, 1
skip:  subi r2, r2, 1
       bgt  r2, loop
       halt
"""


class TestStageUtilization:
    def test_averages(self):
        s = StageUtilization(width=8)
        for used in (0, 4, 8):
            s.record(used)
        assert s.average == 4.0
        assert s.utilization == 0.5
        assert s.idle_fraction == 1 / 3

    def test_histogram(self):
        s = StageUtilization(width=4)
        s.record(2)
        s.record(2)
        s.record(0)
        assert s.histogram[2] == 2 and s.histogram[0] == 1

    def test_empty_guards(self):
        s = StageUtilization(width=4)
        assert s.average == 0.0 and s.utilization == 0.0 and s.idle_fraction == 0.0

    def test_summary_text(self):
        s = StageUtilization(width=4)
        s.record(2)
        assert "avg" in s.summary("fetch") and "idle" in s.summary("fetch")


class TestUtilizationStats:
    def test_for_machine_widths(self):
        u = UtilizationStats.for_machine(16, 16, 18, 16)
        assert u.fetch.width == 16 and u.issue.width == 18

    def test_recycle_fill_fraction(self):
        u = UtilizationStats.for_machine(16, 16, 18, 16)
        u.record_cycle(fetched=4, renamed=8, recycled=6, issued=5, committed=5)
        assert u.rename_fill_from_recycling == 0.75

    def test_to_dict_serialisable(self):
        import json
        u = UtilizationStats.for_machine(16, 16, 18, 16)
        u.record_cycle(1, 1, 0, 1, 1)
        json.dumps(u.to_dict())


class TestCoreIntegration:
    def test_slot_conservation(self):
        """Total slots recorded must equal the aggregate stat counters."""
        core = Core(MachineConfig(features=Features.rec_rs_ru()))
        core.load([assemble(SRC, name="u")])
        stats = core.run(max_cycles=300_000)
        assert core.util.fetch.slots_used == stats.fetched
        assert core.util.rename.slots_used == stats.renamed
        assert core.util.recycled_rename.slots_used == stats.renamed_recycled
        assert core.util.commit.slots_used == stats.committed
        assert core.util.fetch.cycles == stats.cycles

    def test_recycling_supplies_rename_slots(self):
        smt = Core(MachineConfig(features=Features.smt()))
        smt.load([assemble(SRC, name="u")])
        smt.run(max_cycles=300_000)
        rec = Core(MachineConfig(features=Features.rec_rs_ru()))
        rec.load([assemble(SRC, name="u")])
        rec.run(max_cycles=300_000)
        assert smt.util.rename_fill_from_recycling == 0.0
        assert rec.util.rename_fill_from_recycling > 0.1
        # The paper's bandwidth claim: rename throughput rises.
        assert rec.util.rename.average > smt.util.rename.average

    def test_widths_respected(self):
        core = Core(MachineConfig(features=Features.rec_rs_ru()))
        core.load([assemble(SRC, name="u")])
        core.run(max_cycles=300_000)
        for stage in (core.util.fetch, core.util.rename, core.util.commit):
            assert max(stage.histogram) <= stage.width
