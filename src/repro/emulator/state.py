"""Architectural state for the functional emulator."""

from __future__ import annotations

from typing import List, Optional

from ..isa.program import Program, STACK_TOP
from ..isa.registers import (
    FP_BASE,
    NUM_LOGICAL_REGS,
    STACK_POINTER_REG,
    is_zero,
)
from .memory import SparseMemory


class ArchState:
    """Registers + memory + PC of one running program instance.

    Registers live in the unified logical space: indices below
    ``FP_BASE`` are integers (Python ints), the rest are floats.  The
    two hardwired-zero registers are enforced on write.
    """

    __slots__ = ("regs", "memory", "pc", "halted", "program")

    def __init__(self, program: Program, memory: Optional[SparseMemory] = None):
        self.program = program
        self.regs: List = [0] * FP_BASE + [0.0] * (NUM_LOGICAL_REGS - FP_BASE)
        self.regs[STACK_POINTER_REG] = STACK_TOP
        self.memory = memory if memory is not None else SparseMemory()
        if memory is None and program.data:
            self.memory.load_image(program.data_base, program.data)
        self.pc = program.entry
        self.halted = False

    def read_reg(self, index: int):
        return self.regs[index]

    def write_reg(self, index: int, value) -> None:
        if is_zero(index):
            return
        self.regs[index] = value

    def initial_reg_value(self, index: int):
        """Reset value of a logical register (what a fresh context holds)."""
        if index == STACK_POINTER_REG:
            return STACK_TOP
        return 0.0 if index >= FP_BASE else 0

    def snapshot_regs(self) -> List:
        return list(self.regs)
