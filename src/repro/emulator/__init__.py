"""Golden functional emulator for RRISC programs."""

from .emulator import EmulationError, Emulator, StepRecord, branch_trace
from .memory import SparseMemory
from .state import ArchState

__all__ = [
    "EmulationError",
    "Emulator",
    "StepRecord",
    "branch_trace",
    "SparseMemory",
    "ArchState",
]
