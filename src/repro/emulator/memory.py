"""Sparse 64-bit-word memory contents.

This is the *data* half of the memory system: a dictionary of aligned
byte address → raw unsigned 64-bit word.  The timing half (caches,
banks, latencies) lives in :mod:`repro.memory` and never holds data —
the classic timing/functional split used by execution-driven
simulators.

Unwritten locations read as zero, which also makes wrong-path wild
loads harmless (they return 0 and fault nothing), matching how the
paper's simulator must behave when executing down incorrect paths.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple


class SparseMemory:
    """Byte-addressed, word-grained sparse memory."""

    __slots__ = ("_words",)

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    def load_image(self, base: int, image: bytes) -> None:
        """Copy ``image`` into memory starting at byte address ``base``."""
        if base & 0x7:
            raise ValueError("image base must be 8-byte aligned")
        padded = image + b"\x00" * ((-len(image)) % 8)
        for off in range(0, len(padded), 8):
            word = int.from_bytes(padded[off : off + 8], "little")
            if word:
                self._words[base + off] = word

    def read64(self, addr: int) -> int:
        """Raw unsigned word at (aligned-down) byte address ``addr``."""
        return self._words.get(addr & ~0x7, 0)

    def write64(self, addr: int, bits: int) -> None:
        addr &= ~0x7
        bits &= (1 << 64) - 1
        if bits:
            self._words[addr] = bits
        else:
            # Keep the store sparse: zero is the default.
            self._words.pop(addr, None)

    def copy(self) -> "SparseMemory":
        clone = SparseMemory()
        clone._words = dict(self._words)
        return clone

    def nonzero_words(self) -> Iterable[Tuple[int, int]]:
        """(address, bits) pairs of all nonzero words, unsorted."""
        return self._words.items()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseMemory):
            return NotImplemented
        return self._words == other._words

    def __len__(self) -> int:
        return len(self._words)
