"""Golden functional emulator.

Executes a :class:`~repro.isa.program.Program` one instruction at a
time, architecturally.  The out-of-order pipeline co-simulates against
this model: at every commit it steps the emulator once and compares PC,
destination value and memory effects.  The emulator is also used by the
workload suite to characterise kernels (dynamic instruction mix, branch
behaviour) without any timing machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..isa import semantics
from ..isa.instruction import INSTRUCTION_BYTES, Instruction
from ..isa.opcodes import Op
from ..isa.program import Program
from .memory import SparseMemory
from .state import ArchState


class EmulationError(RuntimeError):
    """PC left the text segment, or an instruction was malformed."""


@dataclass
class StepRecord:
    """Architectural effects of one retired instruction."""

    pc: int
    instr: Instruction
    next_pc: int
    dst: Optional[int] = None
    value: object = None
    taken: Optional[bool] = None
    target: Optional[int] = None
    eff_addr: Optional[int] = None
    store_bits: Optional[int] = None

    @property
    def is_branch(self) -> bool:
        return self.taken is not None


class Emulator:
    """In-order architectural interpreter for one program instance."""

    def __init__(self, program: Program, memory: Optional[SparseMemory] = None):
        self.state = ArchState(program, memory)
        self.program = program
        self.instret = 0

    @property
    def halted(self) -> bool:
        return self.state.halted

    def step(self) -> StepRecord:
        """Execute one instruction; raises on a bad PC, no-ops when halted."""
        st = self.state
        if st.halted:
            return StepRecord(pc=st.pc, instr=Instruction(Op.HALT), next_pc=st.pc)
        pc = st.pc
        ins = self.program.instr_at(pc)
        if ins is None:
            raise EmulationError(
                f"{self.program.name}: pc {pc:#x} outside text segment"
            )
        rec = self._execute(ins, pc)
        st.pc = rec.next_pc
        self.instret += 1
        return rec

    def _execute(self, ins: Instruction, pc: int) -> StepRecord:
        st = self.state
        oi = ins.info
        srcs = tuple(st.read_reg(s) for s in ins.srcs)
        rec = StepRecord(pc=pc, instr=ins, next_pc=pc + INSTRUCTION_BYTES)
        if oi.is_halt:
            st.halted = True
            rec.next_pc = pc
            return rec
        if oi.is_load:
            addr = semantics.effective_address(ins, srcs[0])
            value = semantics.load_value(st.memory.read64(addr), oi.dst_fp)
            rec.eff_addr = addr
            rec.dst, rec.value = ins.dst, value
            if ins.dst is not None:
                st.write_reg(ins.dst, value)
            return rec
        if oi.is_store:
            addr = semantics.effective_address(ins, srcs[0])
            bits = semantics.store_bits(srcs[1], oi.src_fp)
            st.memory.write64(addr, bits)
            rec.eff_addr, rec.store_bits = addr, bits
            return rec
        if oi.is_branch:
            taken, target = semantics.branch_outcome(ins, srcs, pc)
            rec.taken, rec.target = taken, target
            rec.next_pc = target if taken else pc + INSTRUCTION_BYTES
            if oi.is_call and ins.dst is not None:
                value = semantics.compute_value(ins, srcs, pc)
                rec.dst, rec.value = ins.dst, value
                st.write_reg(ins.dst, value)
            return rec
        value = semantics.compute_value(ins, srcs, pc)
        if ins.dst is not None:
            rec.dst, rec.value = ins.dst, value
            st.write_reg(ins.dst, value)
        return rec

    def run(
        self,
        max_instructions: int,
        on_step: Optional[Callable[[StepRecord], None]] = None,
    ) -> int:
        """Run up to ``max_instructions``; returns instructions retired."""
        executed = 0
        while executed < max_instructions and not self.state.halted:
            rec = self.step()
            executed += 1
            if on_step is not None:
                on_step(rec)
        return executed

    def run_to_halt(self, limit: int = 10_000_000) -> int:
        """Run until HALT; raises if ``limit`` is exceeded (runaway guard)."""
        executed = self.run(limit)
        if not self.state.halted:
            raise EmulationError(
                f"{self.program.name}: no HALT within {limit} instructions"
            )
        return executed


def branch_trace(program: Program, max_instructions: int) -> List[Tuple[int, bool]]:
    """(pc, taken) for every conditional branch executed — workload analysis."""
    trace: List[Tuple[int, bool]] = []

    def record(rec: StepRecord) -> None:
        if rec.instr.is_cond_branch:
            trace.append((rec.pc, bool(rec.taken)))

    Emulator(program).run(max_instructions, on_step=record)
    return trace
