"""Command-line interface.

Examples::

    repro-sim list
    repro-sim run --workload compress --features REC/RS/RU
    repro-sim run --workload gcc go li perl --machine big.2.16
    repro-sim experiment fig3 --commit-target 2000
    repro-sim experiment table1
    repro-sim asm path/to/program.s --run
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .emulator import Emulator
from .isa.assembler import assemble
from .sim.experiments import EXPERIMENTS, MACHINES, POLICIES, VARIANTS
from .sim.runner import RunSpec, run_spec
from .workloads.suite import WorkloadSuite


def _cmd_list(_args) -> int:
    suite = WorkloadSuite()
    print("kernels:   ", ", ".join(suite.names))
    print("variants:  ", ", ".join(VARIANTS))
    print("machines:  ", ", ".join(MACHINES))
    print("policies:  ", ", ".join(POLICIES))
    print("experiments:", ", ".join(EXPERIMENTS))
    return 0


def _cmd_run(args) -> int:
    spec = RunSpec(
        workload=tuple(args.workload),
        machine=args.machine,
        features=args.features,
        policy=args.policy,
        commit_target=args.commit_target,
    )
    started = time.time()
    result = run_spec(spec)
    elapsed = time.time() - started
    if args.json:
        import json

        from .stats import stats_to_dict

        payload = {
            "spec": {
                "workload": list(spec.workload),
                "machine": spec.machine,
                "features": spec.features,
                "policy": spec.policy,
                "commit_target": spec.commit_target,
            },
            "stats": stats_to_dict(result.stats),
            "per_program_ipc": result.per_program_ipc,
            "wall_seconds": elapsed,
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(result.summary_line())
    for name, ipc in result.per_program_ipc.items():
        print(f"  {name:<12s} per-program IPC = {ipc:.3f}")
    print(result.stats.summary())
    print(f"[{elapsed:.1f}s wall, {result.stats.cycles / max(elapsed, 1e-9):,.0f} cycles/s]")
    return 0


def _cmd_experiment(args) -> int:
    try:
        runner, formatter = EXPERIMENTS[args.name]
    except KeyError:
        print(f"unknown experiment {args.name!r}; know {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    kwargs = {}
    if args.commit_target is not None:
        kwargs["commit_target"] = args.commit_target
    if args.num_mixes is not None and args.name in ("fig4", "fig5", "fig6", "table1"):
        kwargs["num_mixes"] = args.num_mixes
    started = time.time()
    data = runner(**kwargs)
    print(formatter(data))
    print(f"[{time.time() - started:.1f}s wall]")
    return 0


def _cmd_profile(args) -> int:
    from .branch.analysis import profile_branches

    suite = WorkloadSuite(iters=args.iters)
    names = args.workload or suite.names
    for name in names:
        profile = profile_branches(suite.program(name), args.max_instructions)
        print(profile.summary())
    return 0


def _cmd_report(args) -> int:
    from .sim.report import ReportConfig, generate_report

    config = ReportConfig(
        commit_target=args.commit_target,
        num_mixes=args.num_mixes,
        sections=tuple(args.sections) if args.sections else ReportConfig().sections,
    )
    text = generate_report(config)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_trace(args) -> int:
    from .debug import CoreTracer, pipeview
    from .pipeline.core import Core

    spec = RunSpec(
        workload=tuple(args.workload),
        machine=args.machine,
        features=args.features,
        commit_target=args.commit_target,
    )
    suite = WorkloadSuite()
    core = Core(spec.build_config())
    core.load(suite.mix(spec.workload), commit_target=spec.commit_target)
    kinds = set(args.kinds) if args.kinds else None
    tracer = CoreTracer(core, kinds=kinds)
    core.run(max_cycles=spec.max_cycles)
    print(tracer.format(limit=args.events))
    if args.pipeview:
        print()
        print(pipeview(tracer.committed_uops, max_rows=args.pipeview))
    counts = tracer.counts()
    print("\nevent totals:", ", ".join(f"{k}={v}" for k, v in sorted(counts.items())))
    return 0


def _cmd_asm(args) -> int:
    with open(args.path) as handle:
        source = handle.read()
    program = assemble(source, name=args.path)
    print(program.listing())
    if args.run:
        emulator = Emulator(program)
        if args.trace:
            for _ in range(min(args.trace, args.limit)):
                if emulator.halted:
                    break
                rec = emulator.step()
                print(f"  {rec.pc:#08x}  {rec.instr}")
        executed = emulator.run_to_halt(limit=args.limit)
        print(f"\nexecuted {executed} instructions")
        for i in range(8):
            print(f"  r{i} = {emulator.state.regs[i]}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="SMT/TME instruction-recycling simulator (HPCA 1999 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show kernels, variants, machines, experiments")

    run_parser = sub.add_parser("run", help="run one simulation")
    run_parser.add_argument(
        "--workload", nargs="+", required=True, help="kernel name(s); >1 = multiprogrammed"
    )
    run_parser.add_argument("--machine", default="big.2.16", choices=MACHINES)
    run_parser.add_argument("--features", default="REC/RS/RU", choices=VARIANTS)
    run_parser.add_argument("--policy", default=None, help="e.g. stop-8 / fetch-16 / nostop-32")
    run_parser.add_argument("--commit-target", type=int, default=3000)
    run_parser.add_argument("--json", action="store_true", help="machine-readable output")

    exp_parser = sub.add_parser("experiment", help="reproduce a paper table/figure")
    exp_parser.add_argument("name", help="fig3 | fig4 | fig5 | fig6 | table1 | ...")
    exp_parser.add_argument("--commit-target", type=int, default=None)
    exp_parser.add_argument("--num-mixes", type=int, default=None)

    profile_parser = sub.add_parser("profile", help="offline branch-behaviour profile")
    profile_parser.add_argument("--workload", nargs="*", default=None)
    profile_parser.add_argument("--iters", type=int, default=5000)
    profile_parser.add_argument("--max-instructions", type=int, default=25_000)

    report_parser = sub.add_parser("report", help="generate a markdown results report")
    report_parser.add_argument("--commit-target", type=int, default=1500)
    report_parser.add_argument("--num-mixes", type=int, default=3)
    report_parser.add_argument("--sections", nargs="*", default=None,
                               help="subset of: fig3 fig4 fig5 fig6 table1")
    report_parser.add_argument("--output", "-o", default=None)

    trace_parser = sub.add_parser("trace", help="trace a run (events + pipeline view)")
    trace_parser.add_argument("--workload", nargs="+", required=True)
    trace_parser.add_argument("--machine", default="big.2.16", choices=MACHINES)
    trace_parser.add_argument("--features", default="REC/RS/RU", choices=VARIANTS)
    trace_parser.add_argument("--commit-target", type=int, default=600)
    trace_parser.add_argument("--events", type=int, default=40)
    trace_parser.add_argument("--kinds", nargs="*", default=["fork", "swap", "respawn", "stream_open", "stream_end"])
    trace_parser.add_argument("--pipeview", type=int, default=0, help="render N committed uops")

    asm_parser = sub.add_parser("asm", help="assemble (and optionally emulate) a file")
    asm_parser.add_argument("path")
    asm_parser.add_argument("--run", action="store_true")
    asm_parser.add_argument("--limit", type=int, default=1_000_000)
    asm_parser.add_argument("--trace", type=int, default=0, help="print the first N executed instructions")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "experiment": _cmd_experiment,
        "profile": _cmd_profile,
        "trace": _cmd_trace,
        "report": _cmd_report,
        "asm": _cmd_asm,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
