"""Command-line interface.

Examples::

    repro-sim list
    repro-sim run --workload compress --features REC/RS/RU
    repro-sim run --workload gcc go li perl --machine big.2.16
    repro-sim experiment fig3 --commit-target 2000
    repro-sim experiment table1 --jobs 4 --cache-dir .repro-cache
    repro-sim campaign paper --jobs 8
    repro-sim serve --store .repro-service --port 8752
    repro-sim serve --worker http://head:8752
    repro-sim submit --workload compress go --grid active_list_size=32,64
    repro-sim status c000001 --follow
    repro-sim fetch c000001
    repro-sim analyze --workload compress --check
    repro-sim profile --workload compress -o BENCH_core.json
    repro-sim asm path/to/program.s --run
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from .emulator import Emulator
from .exec import ExecutionError, Executor, ProgressReporter, format_line
from .isa.assembler import assemble
from .sim.experiments import CAMPAIGNS, EXPERIMENTS, MACHINES, POLICIES, VARIANTS
from .sim.runner import RunSpec, run_spec
from .stats import run_result_to_dict
from .workloads.suite import WorkloadSuite

#: Experiments that take a ``num_mixes`` argument.
_MIXED_EXPERIMENTS = ("fig4", "fig5", "fig6", "table1")


def _make_executor(args, progress: Optional[ProgressReporter] = None) -> Optional[Executor]:
    """Build an executor from ``--jobs`` / ``--cache-dir`` / ``--no-cache``;
    None when neither parallelism nor caching was requested (pure serial
    path, exactly the historical behaviour)."""
    jobs = getattr(args, "jobs", 1) or 1
    cache_dir = None if getattr(args, "no_cache", False) else getattr(args, "cache_dir", None)
    if jobs <= 1 and cache_dir is None and progress is None:
        return None
    return Executor(jobs=jobs, cache=cache_dir, progress=progress)


class _ProgressLine:
    """Renders engine progress as a single ``\\r``-refreshed stderr line."""

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr
        self._dirty = False

    def __call__(self, event) -> None:
        self.stream.write("\r" + format_line(event) + " ")
        self.stream.flush()
        self._dirty = True

    def clear(self) -> None:
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False


def _cmd_list(_args) -> int:
    suite = WorkloadSuite()
    print("kernels:   ", ", ".join(suite.names))
    print("variants:  ", ", ".join(VARIANTS))
    print("machines:  ", ", ".join(MACHINES))
    print("policies:  ", ", ".join(POLICIES))
    print("experiments:", ", ".join(EXPERIMENTS))
    print("campaigns: ", ", ".join(CAMPAIGNS))
    return 0


def _cmd_run(args) -> int:
    spec = RunSpec(
        workload=tuple(args.workload),
        machine=args.machine,
        features=args.features,
        policy=args.policy,
        commit_target=args.commit_target,
        max_cycles=args.max_cycles,
        confidence_threshold=args.confidence_threshold,
    )
    executor = _make_executor(args)
    started = time.time()
    cached = False
    if executor is None:
        result = run_spec(spec)
    else:
        outcome = executor.run([spec])[0]
        if not outcome.ok:
            print(
                f"run failed: {outcome.failure.kind} after {outcome.failure.attempts} "
                f"attempt(s): {outcome.failure.message}",
                file=sys.stderr,
            )
            return 1
        result, cached = outcome.result, outcome.cached
    elapsed = time.time() - started
    if args.json:
        payload = run_result_to_dict(result)
        payload["wall_seconds"] = elapsed
        payload["cached"] = cached
        print(json.dumps(payload, indent=2))
        return 0
    print(result.summary_line() + ("  [cached]" if cached else ""))
    for name, ipc in result.per_program_ipc.items():
        print(f"  {name:<12s} per-program IPC = {ipc:.3f}")
    print(result.stats.summary())
    print(f"[{elapsed:.1f}s wall, {result.stats.cycles / max(elapsed, 1e-9):,.0f} cycles/s]")
    return 0


def _cmd_experiment(args) -> int:
    try:
        runner, formatter = EXPERIMENTS[args.name]
    except KeyError:
        print(f"unknown experiment {args.name!r}; know {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    kwargs = {}
    if args.commit_target is not None:
        kwargs["commit_target"] = args.commit_target
    if args.num_mixes is not None and args.name in _MIXED_EXPERIMENTS:
        kwargs["num_mixes"] = args.num_mixes
    executor = _make_executor(args)
    started = time.time()
    try:
        data = runner(executor=executor, **kwargs)
    except ExecutionError as exc:
        print(f"experiment failed: {exc}", file=sys.stderr)
        return 1
    print(formatter(data))
    print(f"[{time.time() - started:.1f}s wall]")
    return 0


def _cmd_campaign(args) -> int:
    """Run a named experiment set through one shared executor."""
    names: List[str] = []
    for name in args.names or ["paper"]:
        if name in CAMPAIGNS:
            names.extend(n for n in CAMPAIGNS[name] if n not in names)
        elif name in EXPERIMENTS:
            if name not in names:
                names.append(name)
        else:
            known = sorted(set(EXPERIMENTS) | set(CAMPAIGNS))
            print(f"unknown experiment/set {name!r}; know {known}", file=sys.stderr)
            return 2
    line = _ProgressLine()
    progress = ProgressReporter(callback=line)
    if args.journal:
        # Clean startup: rewrite the resume journal down to live entries
        # (repeated resumed campaigns otherwise grow it without bound).
        from .exec import Journal

        Journal(args.journal).compact()
    executor = Executor(
        jobs=args.jobs,
        cache=None if args.no_cache else args.cache_dir,
        journal=args.journal,
        timeout=args.timeout,
        progress=progress,
        batch_size=args.batch_size,
    )
    started = time.time()
    for name in names:
        runner, formatter = EXPERIMENTS[name]
        kwargs = {}
        if args.commit_target is not None:
            kwargs["commit_target"] = args.commit_target
        if args.num_mixes is not None and name in _MIXED_EXPERIMENTS:
            kwargs["num_mixes"] = args.num_mixes
        try:
            data = runner(executor=executor, **kwargs)
        except ExecutionError as exc:
            line.clear()
            print(f"campaign failed in {name}: {exc}", file=sys.stderr)
            return 1
        line.clear()
        print(f"=== {name} ===")
        print(formatter(data))
        print()
    event = progress.event()
    cache_note = f", {event.cache_hits} cached" if event.cache_hits else ""
    print(
        f"[campaign: {event.done} jobs{cache_note}, "
        f"{time.time() - started:.1f}s wall, jobs={executor.jobs}]"
    )
    return 0


#: Default head URL the client subcommands talk to.
_DEFAULT_SERVER = "http://127.0.0.1:8752"


def _cmd_serve(args) -> int:
    """Run the campaign server — or, with ``--worker URL``, a remote
    worker leasing job shards from that head."""
    if args.worker:
        from .service.worker import run_worker

        worker_id = args.worker_id or f"{os.uname().nodename}-{os.getpid()}"
        print(f"worker {worker_id} leasing from {args.worker}", file=sys.stderr)
        executed = run_worker(
            args.worker,
            worker_id=worker_id,
            lease_size=args.lease_size,
            poll=args.poll,
            max_idle=args.max_idle,
            batch_size=args.batch_size,
        )
        print(f"worker {worker_id} exiting after {executed} task(s)", file=sys.stderr)
        return 0

    from .service.server import CampaignServer

    server = CampaignServer(
        args.store,
        host=args.host,
        port=args.port,
        local_workers=args.local_workers,
        lease_ttl=args.lease_ttl,
        max_attempts=args.max_attempts,
        resume=not args.no_resume,
        verbose=args.verbose,
    )
    print(
        f"campaign server on {server.url} "
        f"(store {args.store}, {server.pool.workers} local worker(s))",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _grid_from_args(pairs) -> dict:
    """Parse repeated ``field=v1,v2,...`` flags into a sweep grid."""
    def coerce(text: str):
        for cast in (int, float):
            try:
                return cast(text)
            except ValueError:
                continue
        if text in ("true", "false"):
            return text == "true"
        return text

    grid = {}
    for pair in pairs or []:
        name, _, values = pair.partition("=")
        if not values:
            raise SystemExit(f"--grid wants field=v1,v2,...; got {pair!r}")
        grid[name] = [coerce(v) for v in values.split(",")]
    return grid


def _follow_events(client, campaign_id: str) -> None:
    from .exec.progress import ProgressEvent

    for event in client.events(campaign_id):
        if event.get("type") == "campaign":
            print(f"campaign {campaign_id}: {event['state']} "
                  f"in {event['wall_seconds']:.1f}s")
        else:
            fields = {f: event[f] for f in
                      ("done", "total", "cache_hits", "failures", "elapsed", "eta", "label")}
            print(format_line(ProgressEvent(**fields)))


def _cmd_submit(args) -> int:
    from .service.client import ServiceClient, ServiceError
    from .service.spec import sweep_spec

    if args.spec:
        handle = sys.stdin if args.spec == "-" else open(args.spec)
        with handle:
            spec = json.load(handle)
    else:
        if not args.workload:
            print("submit wants a spec file or --workload", file=sys.stderr)
            return 2
        spec = sweep_spec(
            workloads=[[w] for w in args.workload],
            grid=_grid_from_args(args.grid),
            machine=args.machine,
            features=args.features,
            commit_target=args.commit_target,
            max_cycles=args.max_cycles,
            label=args.label,
        )
    client = ServiceClient(args.server)
    try:
        status = client.submit(spec)
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(f"campaign {status['id']}: {len(status['jobs'])} job(s) "
              f"[{status['state']}]")
        for job in status["jobs"]:
            print(f"  {job['id']}  {job['state']:<8s} {job['label']}")
    if args.follow:
        _follow_events(client, status["id"])
    return 0


def _cmd_status(args) -> int:
    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(args.server)
    try:
        if args.campaign is None:
            print(json.dumps(client.metrics(), indent=2, sort_keys=True))
            return 0
        if args.follow:
            _follow_events(client, args.campaign)
        status = client.status(args.campaign)
    except ServiceError as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        progress = status["progress"]
        print(f"campaign {status['id']} [{status['state']}] "
              f"{progress['done']}/{progress['total']} jobs, "
              f"wall {status['wall_seconds']:.1f}s")
        for job in status["jobs"]:
            note = f"  ({job['error']})" if job.get("error") else ""
            print(f"  {job['id']}  {job['state']:<9s} {job['resolution']:<6s} "
                  f"{job['label']}{note}")
    return 1 if status["state"] == "failed" else 0


def _cmd_fetch(args) -> int:
    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(args.server)
    try:
        if "." in args.id:  # job ids are campaign-scoped: c000001.0003
            documents = [client.result(args.id)]
        else:
            documents = client.fetch_results(args.id)
    except ServiceError as exc:
        print(f"fetch failed: {exc}", file=sys.stderr)
        return 1
    text = json.dumps(documents, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output} ({len(documents)} result(s))")
    else:
        print(text)
    return 0


def _cmd_analyze(args) -> int:
    """Static analysis report, optionally cross-checked against a run."""
    if args.ownership:
        return _analyze_ownership(args)

    from .analysis.program import ProgramAnalysis

    suite = WorkloadSuite()
    names = args.workload or list(suite.names)
    unknown = [n for n in names if n not in suite.names]
    if unknown:
        print(f"unknown workload(s) {unknown}; know {list(suite.names)}", file=sys.stderr)
        return 2

    analyses = {
        name: ProgramAnalysis(suite.program(name), name=name) for name in names
    }
    reports = {}
    results = {}
    if args.check:
        from .analysis.checker import check_spec

        for name in names:
            spec = RunSpec(
                workload=(name,),
                features=args.features,
                commit_target=args.commit_target,
            )
            results[name], reports[name] = check_spec(
                spec, suite, memory=args.memory
            )

    total_violations = sum(len(r.violations) for r in reports.values())

    if args.json:
        payload = {}
        for name in names:
            summary = analyses[name].summary(window=args.window)
            entry = {
                "static": {
                    "instructions": summary.instructions,
                    "blocks": summary.blocks,
                    "edges": summary.edges,
                    "loops": summary.loops,
                    "branch_sites": summary.branch_sites,
                    "cond_sites": summary.cond_sites,
                    "classes": {
                        cls.value: n for cls, n in summary.class_counts.items()
                    },
                    "merge_coverage_pct": round(summary.merge_coverage_pct, 2),
                    "avg_kill_set_size": round(summary.avg_kill_set_size, 2),
                    "reuse_ceiling_pct": round(summary.reuse_ceiling_pct, 2),
                    "reuse_window": summary.reuse_window,
                },
            }
            if args.memory:
                mem = analyses[name].memory_summary()
                entry["memory"] = {
                    "loads": mem.loads,
                    "stores": mem.stores,
                    "known_address_pct": round(mem.known_address_pct, 2),
                    "alias_pairs": mem.alias_pairs,
                    "no_alias_pairs": mem.no_alias_pairs,
                    "must_alias_pairs": mem.must_alias_pairs,
                    "loops_with_carried_deps": mem.loops_with_carried_deps,
                    "loop_carried_deps": mem.loop_carried_deps,
                    "reusable_load_sites": mem.reusable_load_sites,
                    "always_clean_load_sites": mem.always_clean_load_sites,
                    "unknown_address_load_sites": mem.unknown_address_load_sites,
                }
            if name in reports:
                entry["check"] = reports[name].to_dict()
            payload[name] = entry
        print(json.dumps(payload, indent=2))
        return 1 if total_violations else 0

    for name in names:
        pa = analyses[name]
        summary = pa.summary(window=args.window)
        classes = ", ".join(
            f"{cls.value}={n}" for cls, n in summary.class_counts.items() if n
        )
        print(
            f"{name:<10s} blocks={summary.blocks:<3d} loops={summary.loops:<2d} "
            f"cond={summary.cond_sites:<2d} merge-cov={summary.merge_coverage_pct:5.1f}% "
            f"reuse-ceiling={summary.reuse_ceiling_pct:5.1f}% "
            f"kill-size={summary.avg_kill_set_size:4.1f}  [{classes}]"
        )
        if args.memory:
            mem = pa.memory_summary()
            print(
                f"           memory: loads={mem.loads} stores={mem.stores} "
                f"known-addr={mem.known_address_pct:5.1f}% "
                f"no-alias={mem.no_alias_pairs}/{mem.alias_pairs} "
                f"loop-deps={mem.loop_carried_deps} "
                f"reuse-sites={mem.reusable_load_sites} "
                f"(clean={mem.always_clean_load_sites} "
                f"unknown={mem.unknown_address_load_sites})"
            )
        if args.detail:
            print(pa.describe())
        if name in reports:
            report = reports[name]
            result = results[name]
            mem_note = (
                f"fwd={report.forwards_checked} "
                f"reuse-loads={report.reuse_loads_checked} "
                if args.memory else ""
            )
            print(
                f"           check: merges={report.merges_checked} "
                f"agree={report.merge_agreement_pct:.1f}% "
                f"reuses={report.reuses_checked} {mem_note}"
                f"dyn-rec={result.stats.pct_recycled:.1f}% "
                f"dyn-reuse={result.stats.pct_reused:.2f}% "
                f"{'OK' if report.ok else 'VIOLATIONS'}"
            )
            for violation in report.violations:
                print(f"           {violation}")
    if args.check:
        print(
            f"cross-check: {total_violations} violation(s) across "
            f"{len(names)} workload(s)"
        )
    return 1 if total_violations else 0


def _analyze_ownership(args) -> int:
    """The batch-sharing ownership map (the SHR facts, as a report)."""
    from .analysis.effects import batch_facts

    facts = batch_facts()
    if args.json:
        print(json.dumps(facts.ownership.to_dict(), indent=2, sort_keys=True))
        return 1 if facts.ownership.violations else 0

    rows = facts.ownership.rows()
    width = max((len(f"{e.cls}.{e.field}") for e in rows), default=10)
    for entry in rows:
        blessing = f"  [{entry.blessing}]" if entry.blessing else ""
        sites = len(set(entry.write_sites))
        writes = f"  writes={sites}" if sites else ""
        print(f"{entry.cls + '.' + entry.field:<{width}s}  "
              f"{entry.classification}{blessing}{writes}")
    findings = facts.findings()
    if findings:
        print()
        for finding in findings:
            print(f"{finding.path}:{finding.line}: {finding.code} "
                  f"{finding.message}")
        print(f"{len(findings)} sharing violation(s)", file=sys.stderr)
        return 1
    return 0


#: Suppression conventions per rule family (``--explain``).
_SUPPRESS_BY_FAMILY = {
    "DET": "# det-ok: <reason>",
    "CONC": "# conc-ok: <reason>",
    "SHR": "# shr-ok: <reason>",
}


def _explain_rules(query: str) -> int:
    """Print one rule (or a family) with scope/severity/suppression."""
    from .analysis.lint import all_rules

    want = query.upper()
    matched = [
        r for r in all_rules() if r.code == want or (
            len(want) < 6 and r.code.startswith(want)
        )
    ]
    if want in ("ALL", "*"):
        matched = all_rules()
    if not matched:
        known = ", ".join(r.code for r in all_rules())
        print(f"lint: unknown rule {query!r}; know {known}", file=sys.stderr)
        return 2
    for rule in matched:
        family = next(
            (f for f in _SUPPRESS_BY_FAMILY if rule.code.startswith(f)), None
        )
        suppression = _SUPPRESS_BY_FAMILY.get(family or "", "(none)")
        severity = "blocking" if rule.blocking else "warn-first (baseline ratchet)"
        print(f"{rule.code}: {rule.summary}")
        print(f"  scope:       {rule.scope}")
        print(f"  severity:    {severity}")
        print(f"  suppression: {suppression}")
    return 0


def _cmd_lint(args) -> int:
    """Whole-repo lint over the pluggable rule engine."""
    from .analysis.lint import (
        CONC_PROFILE,
        DEFAULT_BASELINE_PATH,
        DETERMINISM_PROFILE,
        EFFECTS_PROFILE,
        Baseline,
        LintTarget,
        all_rules,
        render_text,
        run_lint,
        to_json,
        write_sarif,
    )

    if args.list_rules:
        for rule in all_rules():
            kind = "blocking" if rule.blocking else "warn-first"
            print(f"{rule.code}  [{kind:>10s}]  {rule.summary}")
        return 0
    if args.explain:
        return _explain_rules(args.explain)

    codes = tuple(args.rules) if args.rules else None
    if args.paths:
        targets = [LintTarget(paths=tuple(args.paths), codes=codes)]
    elif codes is not None:
        profile_paths = tuple(
            dict.fromkeys(p for t in DETERMINISM_PROFILE for p in t.paths)
        )
        targets = [LintTarget(paths=profile_paths, codes=codes)]
    else:
        targets = list(DETERMINISM_PROFILE)
    if args.conc and not args.paths:
        targets.extend(CONC_PROFILE)
    if args.effects and not args.paths:
        targets.extend(EFFECTS_PROFILE)

    baseline_path = args.baseline or DEFAULT_BASELINE_PATH
    try:
        baseline = Baseline.load(baseline_path)
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    try:
        result = run_lint(targets, jobs=args.jobs, baseline=baseline)
    except (FileNotFoundError, KeyError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        blocking_codes = {r.code for r in all_rules() if r.blocking}
        warn_first = [
            f for f in result.findings
            if f.code not in blocking_codes and f.code != "DET000"
        ]
        Baseline.from_findings(warn_first).save(baseline_path)
        print(f"wrote {baseline_path} ({len(warn_first)} finding(s))")
        return 0

    if args.prune_baseline:
        removed = baseline.prune(result.stale)
        if removed:
            baseline.save(baseline_path)
        print(f"pruned {removed} stale entr{'y' if removed == 1 else 'ies'} "
              f"from {baseline_path} ({len(baseline)} left)")
        return 0

    if args.sarif:
        write_sarif(result, args.sarif)
    if args.json:
        print(json.dumps(to_json(result), indent=2))
    else:
        for line in render_text(result, show_baselined=args.show_baselined):
            print(line)
        if not result.ok:
            print(f"{len(result.blocking)} lint violation(s)", file=sys.stderr)
    if args.fail_stale and result.stale:
        for fingerprint in result.stale:
            print(f"stale baseline entry: {fingerprint}", file=sys.stderr)
        print(
            f"{len(result.stale)} stale baseline entr"
            f"{'y' if len(result.stale) == 1 else 'ies'}; run "
            f"'repro-sim lint --prune-baseline' to remove",
            file=sys.stderr,
        )
        return 1
    return result.exit_code


def _cmd_profile(args) -> int:
    """Per-stage simulator wall-time profile → BENCH_core.json."""
    from .sim.profiler import format_profile, profile_spec, write_bench

    spec = RunSpec(
        workload=tuple(args.workload),
        machine=args.machine,
        features=args.features,
        commit_target=args.commit_target,
        max_cycles=args.max_cycles,
    )
    payload = profile_spec(spec)
    print(format_profile(payload))
    if args.output:
        path = write_bench(payload, args.output)
        print(f"wrote {path}")
    return 0


def _cmd_profile_branches(args) -> int:
    from .branch.analysis import profile_branches

    suite = WorkloadSuite(iters=args.iters)
    names = args.workload or suite.names
    for name in names:
        profile = profile_branches(suite.program(name), args.max_instructions)
        print(profile.summary())
    return 0


def _cmd_report(args) -> int:
    from .sim.report import ReportConfig, generate_report

    config = ReportConfig(
        commit_target=args.commit_target,
        num_mixes=args.num_mixes,
        sections=tuple(args.sections) if args.sections else ReportConfig().sections,
    )
    text = generate_report(config)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_trace(args) -> int:
    from .debug import CoreTracer, pipeview
    from .pipeline.core import Core

    spec = RunSpec(
        workload=tuple(args.workload),
        machine=args.machine,
        features=args.features,
        commit_target=args.commit_target,
    )
    suite = WorkloadSuite()
    core = Core(spec.build_config())
    core.load(suite.mix(spec.workload), commit_target=spec.commit_target)
    kinds = set(args.kinds) if args.kinds else None
    tracer = CoreTracer(core, kinds=kinds)
    core.run(max_cycles=spec.max_cycles)
    print(tracer.format(limit=args.events))
    if args.pipeview:
        print()
        print(pipeview(tracer.committed_uops, max_rows=args.pipeview))
    counts = tracer.counts()
    print("\nevent totals:", ", ".join(f"{k}={v}" for k, v in sorted(counts.items())))
    return 0


def _cmd_asm(args) -> int:
    with open(args.path) as handle:
        source = handle.read()
    program = assemble(source, name=args.path)
    print(program.listing())
    if args.run:
        emulator = Emulator(program)
        if args.trace:
            for _ in range(min(args.trace, args.limit)):
                if emulator.halted:
                    break
                rec = emulator.step()
                print(f"  {rec.pc:#08x}  {rec.instr}")
        executed = emulator.run_to_halt(limit=args.limit)
        print(f"\nexecuted {executed} instructions")
        for i in range(8):
            print(f"  r{i} = {emulator.state.regs[i]}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="SMT/TME instruction-recycling simulator (HPCA 1999 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show kernels, variants, machines, experiments")

    def batch_size_arg(value: str) -> int:
        # Eager validation: a bad batch size should die at parse time,
        # not after the first slice of simulations has already run.
        size = int(value)
        if size < 1:
            raise argparse.ArgumentTypeError(
                f"batch size must be >= 1, got {size}"
            )
        return size

    def add_exec_flags(p, jobs_default: int = 1, cache_default: Optional[str] = None):
        p.add_argument(
            "--jobs", type=int, default=jobs_default,
            help="worker processes (1 = serial in-process)",
        )
        p.add_argument(
            "--cache-dir", default=cache_default, metavar="DIR",
            help="content-addressed result cache directory",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="ignore --cache-dir (always simulate)",
        )

    run_parser = sub.add_parser("run", help="run one simulation")
    run_parser.add_argument(
        "--workload", nargs="+", required=True, help="kernel name(s); >1 = multiprogrammed"
    )
    run_parser.add_argument("--machine", default="big.2.16", choices=MACHINES)
    run_parser.add_argument("--features", default="REC/RS/RU", choices=VARIANTS)
    run_parser.add_argument("--policy", default=None, help="e.g. stop-8 / fetch-16 / nostop-32")
    run_parser.add_argument("--commit-target", type=int, default=3000)
    run_parser.add_argument("--max-cycles", type=int, default=2_000_000,
                            help="simulation cycle budget")
    run_parser.add_argument("--confidence-threshold", type=int, default=None,
                            help="fork-gating confidence threshold override")
    run_parser.add_argument("--json", action="store_true", help="machine-readable output")
    add_exec_flags(run_parser)

    exp_parser = sub.add_parser("experiment", help="reproduce a paper table/figure")
    exp_parser.add_argument("name", help="fig3 | fig4 | fig5 | fig6 | table1 | ...")
    exp_parser.add_argument("--commit-target", type=int, default=None)
    exp_parser.add_argument("--num-mixes", type=int, default=None)
    add_exec_flags(exp_parser)

    campaign_parser = sub.add_parser(
        "campaign",
        help="run a named experiment set on the parallel engine (resumable)",
    )
    campaign_parser.add_argument(
        "names", nargs="*",
        help=f"experiment names or sets {sorted(CAMPAIGNS)}; default: paper",
    )
    campaign_parser.add_argument("--commit-target", type=int, default=None)
    campaign_parser.add_argument("--num-mixes", type=int, default=None)
    campaign_parser.add_argument("--journal", default=None, metavar="PATH",
                                 help="append-only completion journal (resume)")
    campaign_parser.add_argument("--timeout", type=float, default=None,
                                 help="per-job wall-clock budget in seconds "
                                      "(bounds a whole slice when batching)")
    campaign_parser.add_argument("--batch-size", type=batch_size_arg, default=1,
                                 metavar="N",
                                 help="lockstep-simulate up to N compatible "
                                      "jobs per worker attempt (same machine "
                                      "config; incompatible jobs never share "
                                      "a slice); 1 = classic one job per "
                                      "attempt")
    add_exec_flags(
        campaign_parser,
        jobs_default=os.cpu_count() or 1,
        cache_default=".repro-cache",
    )

    serve_parser = sub.add_parser(
        "serve",
        help="run the campaign server (or a remote worker with --worker)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8752)
    serve_parser.add_argument("--store", default=".repro-service", metavar="DIR",
                              help="shared artifact-store root")
    serve_parser.add_argument("--local-workers", type=int, default=None,
                              help="head-local worker threads (default: CPU count; "
                                   "0 = rely on remote workers)")
    serve_parser.add_argument("--lease-ttl", type=float, default=60.0,
                              help="seconds before an unacknowledged lease re-queues")
    serve_parser.add_argument("--max-attempts", type=int, default=3,
                              help="attempts per task before its jobs fail")
    serve_parser.add_argument("--no-resume", action="store_true",
                              help="do not re-admit unfinished campaigns on startup")
    serve_parser.add_argument("--verbose", action="store_true",
                              help="log every HTTP request")
    serve_parser.add_argument("--worker", default=None, metavar="URL",
                              help="worker mode: lease job shards from this head")
    serve_parser.add_argument("--worker-id", default=None,
                              help="worker name reported to the head")
    serve_parser.add_argument("--lease-size", type=int, default=1,
                              help="tasks leased per request (worker mode)")
    serve_parser.add_argument("--poll", type=float, default=0.5,
                              help="idle poll interval in seconds (worker mode)")
    serve_parser.add_argument("--max-idle", type=float, default=None,
                              help="exit after this many idle seconds (worker mode)")
    serve_parser.add_argument("--batch-size", type=batch_size_arg, default=1,
                              metavar="N",
                              help="lockstep-simulate up to N compatible leased "
                                   "tasks at once (worker mode; results still "
                                   "complete per task)")

    submit_parser = sub.add_parser(
        "submit", help="submit a campaign spec to a running server"
    )
    submit_parser.add_argument("spec", nargs="?", default=None,
                               help="campaign spec JSON file ('-' = stdin); "
                                    "omit to build a sweep from flags")
    submit_parser.add_argument("--server", default=_DEFAULT_SERVER, metavar="URL")
    submit_parser.add_argument("--workload", nargs="+", default=None,
                               help="kernel names (one single-program job each)")
    submit_parser.add_argument("--grid", action="append", default=None,
                               metavar="FIELD=V1,V2",
                               help="sweep grid axis (repeatable)")
    submit_parser.add_argument("--machine", default="big.2.16", choices=MACHINES)
    submit_parser.add_argument("--features", default="REC/RS/RU", choices=VARIANTS)
    submit_parser.add_argument("--commit-target", type=int, default=3000)
    submit_parser.add_argument("--max-cycles", type=int, default=2_000_000)
    submit_parser.add_argument("--label", default="")
    submit_parser.add_argument("--follow", action="store_true",
                               help="stream progress events until done")
    submit_parser.add_argument("--json", action="store_true")

    status_parser = sub.add_parser(
        "status", help="campaign status (or server metrics with no id)"
    )
    status_parser.add_argument("campaign", nargs="?", default=None,
                               help="campaign id; omit for server /metrics")
    status_parser.add_argument("--server", default=_DEFAULT_SERVER, metavar="URL")
    status_parser.add_argument("--follow", action="store_true",
                               help="stream progress events until done")
    status_parser.add_argument("--json", action="store_true")

    fetch_parser = sub.add_parser(
        "fetch", help="fetch result documents for a campaign or one job"
    )
    fetch_parser.add_argument("id", help="campaign id (c000001) or job id (c000001.0003)")
    fetch_parser.add_argument("--server", default=_DEFAULT_SERVER, metavar="URL")
    fetch_parser.add_argument("--output", "-o", default=None,
                              help="write JSON here instead of stdout")

    analyze_parser = sub.add_parser(
        "analyze",
        help="static program analysis (CFG/reconvergence/reuse bounds), "
             "optionally cross-checked against an instrumented run",
    )
    analyze_parser.add_argument("--workload", nargs="*", default=None,
                                help="kernel name(s); default: all")
    analyze_parser.add_argument("--window", type=int, default=16,
                                help="reuse-ceiling lookahead (instructions)")
    analyze_parser.add_argument("--detail", action="store_true",
                                help="dump the per-branch site table")
    analyze_parser.add_argument("--check", action="store_true",
                                help="run the dynamic-invariant cross-checker")
    analyze_parser.add_argument("--memory", action="store_true",
                                help="include the memory-dependence analysis "
                                     "(and the R2/M6 rules under --check)")
    analyze_parser.add_argument("--features", default="REC/RS/RU", choices=VARIANTS,
                                help="feature set for --check runs")
    analyze_parser.add_argument("--commit-target", type=int, default=1500,
                                help="measurement window for --check runs")
    analyze_parser.add_argument("--json", action="store_true",
                                help="machine-readable output")
    analyze_parser.add_argument("--ownership", action="store_true",
                                help="print the batch-sharing ownership map "
                                     "(per-core-private / batch-shared-"
                                     "immutable / shared-mutable-guarded) "
                                     "instead of the workload analysis")

    profile_parser = sub.add_parser(
        "profile",
        help="profile the simulator: per-stage wall time and cycles/sec",
    )
    profile_parser.add_argument("--workload", nargs="+", required=True,
                                help="kernel name(s) to simulate under the profiler")
    profile_parser.add_argument("--machine", default="big.2.16", choices=MACHINES)
    profile_parser.add_argument("--features", default="REC/RS/RU", choices=VARIANTS)
    profile_parser.add_argument("--commit-target", type=int, default=3000)
    profile_parser.add_argument("--max-cycles", type=int, default=2_000_000)
    profile_parser.add_argument("--output", "-o", default="BENCH_core.json",
                                help="benchmark JSON path ('' to skip writing)")

    pbranch_parser = sub.add_parser(
        "profile-branches", help="offline branch-behaviour profile"
    )
    pbranch_parser.add_argument("--workload", nargs="*", default=None)
    pbranch_parser.add_argument("--iters", type=int, default=5000)
    pbranch_parser.add_argument("--max-instructions", type=int, default=25_000)

    report_parser = sub.add_parser("report", help="generate a markdown results report")
    report_parser.add_argument("--commit-target", type=int, default=1500)
    report_parser.add_argument("--num-mixes", type=int, default=3)
    report_parser.add_argument("--sections", nargs="*", default=None,
                               help="subset of: fig3 fig4 fig5 fig6 table1")
    report_parser.add_argument("--output", "-o", default=None)

    trace_parser = sub.add_parser("trace", help="trace a run (events + pipeline view)")
    trace_parser.add_argument("--workload", nargs="+", required=True)
    trace_parser.add_argument("--machine", default="big.2.16", choices=MACHINES)
    trace_parser.add_argument("--features", default="REC/RS/RU", choices=VARIANTS)
    trace_parser.add_argument("--commit-target", type=int, default=600)
    trace_parser.add_argument("--events", type=int, default=40)
    trace_parser.add_argument("--kinds", nargs="*", default=["fork", "swap", "respawn", "stream_open", "stream_end"])
    trace_parser.add_argument("--pipeview", type=int, default=0, help="render N committed uops")

    lint_parser = sub.add_parser(
        "lint",
        help="whole-repo lint (determinism DET001-DET005, "
             "concurrency CONC001-CONC006, sharing SHR001-SHR005)",
    )
    lint_parser.add_argument("paths", nargs="*", default=None,
                             help="files/dirs to lint; default: the "
                                  "determinism profile")
    lint_parser.add_argument("--rules", nargs="*", default=None, metavar="CODE",
                             help="restrict to specific rule codes")
    lint_parser.add_argument("--conc", action="store_true",
                             help="also run the whole-program concurrency "
                                  "profile (CONC rules over the service/"
                                  "exec layers)")
    lint_parser.add_argument("--effects", action="store_true",
                             help="also run the whole-program batch-sharing "
                                  "profile (SHR rules over the pipeline/"
                                  "sim/workloads layers)")
    lint_parser.add_argument("--explain", default=None, metavar="RULE",
                             help="explain one rule code or family prefix "
                                  "(summary, scope, severity, suppression "
                                  "convention) and exit")
    lint_parser.add_argument("--jobs", type=int, default=1,
                             help="parallel per-file analysis processes")
    lint_parser.add_argument("--json", action="store_true",
                             help="machine-readable output")
    lint_parser.add_argument("--sarif", default=None, metavar="PATH",
                             help="also write a SARIF 2.1.0 report")
    lint_parser.add_argument("--baseline", default=None, metavar="PATH",
                             help="baseline file for warn-first rules "
                                  "(default: tools/lint_baseline.json)")
    lint_parser.add_argument("--update-baseline", action="store_true",
                             help="rewrite the baseline from this run's "
                                  "warn-first findings and exit 0")
    lint_parser.add_argument("--show-baselined", action="store_true",
                             help="also print baselined warn-first findings")
    lint_parser.add_argument("--prune-baseline", action="store_true",
                             help="drop stale entries (rechecked but no "
                                  "longer firing) from the baseline file")
    lint_parser.add_argument("--fail-stale", action="store_true",
                             help="exit 1 when the baseline has stale "
                                  "entries (CI hygiene)")
    lint_parser.add_argument("--list-rules", action="store_true",
                             help="list registered rules and exit")

    asm_parser = sub.add_parser("asm", help="assemble (and optionally emulate) a file")
    asm_parser.add_argument("path")
    asm_parser.add_argument("--run", action="store_true")
    asm_parser.add_argument("--limit", type=int, default=1_000_000)
    asm_parser.add_argument("--trace", type=int, default=0, help="print the first N executed instructions")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "experiment": _cmd_experiment,
        "campaign": _cmd_campaign,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "fetch": _cmd_fetch,
        "analyze": _cmd_analyze,
        "lint": _cmd_lint,
        "profile": _cmd_profile,
        "profile-branches": _cmd_profile_branches,
        "trace": _cmd_trace,
        "report": _cmd_report,
        "asm": _cmd_asm,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
