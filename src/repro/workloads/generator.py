"""Parametric synthetic program generator.

Used by property-based tests (random-but-valid programs that must run
golden-clean through the pipeline) and by ablation studies that sweep
workload characteristics the eight named kernels fix:

* ``branch_entropy`` — probability a conditional branch direction is
  data-dependent (unpredictable) rather than loop-structured;
* ``ilp`` — width of independent dependence chains in the loop body;
* ``mem_fraction`` — share of body instructions that touch memory;
* ``fp_fraction`` — share of arithmetic that is floating point;
* ``body_size`` — loop body length in instructions.

Programs are always well-formed: a counted outer loop guarantees
termination, all memory accesses stay inside a private data buffer, and
registers are drawn from a fixed working set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..isa.assembler import Assembler
from ..isa.program import Program


@dataclass(frozen=True)
class GeneratorConfig:
    seed: int = 1
    iterations: int = 200
    body_size: int = 24
    branch_entropy: float = 0.5
    ilp: int = 4
    mem_fraction: float = 0.2
    fp_fraction: float = 0.0
    buffer_words: int = 64
    #: Probability a body slot becomes a call to a generated helper
    #: (exercises JSR/RET, the return-address stack, and recycling of
    #: call-containing traces).
    call_fraction: float = 0.0
    num_helpers: int = 2

    def __post_init__(self):
        if not 0 <= self.branch_entropy <= 1:
            raise ValueError("branch_entropy must be in [0, 1]")
        if not 0 <= self.mem_fraction <= 1 or not 0 <= self.fp_fraction <= 1:
            raise ValueError("fractions must be in [0, 1]")
        if not 0 <= self.call_fraction <= 1:
            raise ValueError("call_fraction must be in [0, 1]")
        if self.ilp < 1 or self.body_size < 1 or self.num_helpers < 1:
            raise ValueError("ilp, body_size and num_helpers must be positive")


# Register conventions inside generated programs:
#   r1  — data buffer base        r2 — outer loop counter
#   r3  — PRNG state              r4 — scratch for branch tests
#   r8 + k — chain accumulators   f1 + k — fp chain accumulators
_CHAIN_BASE = 8
_MAX_CHAINS = 12


def generate_source(config: GeneratorConfig) -> str:
    rng = random.Random(config.seed)
    chains = min(config.ilp, _MAX_CHAINS)
    lines = [
        "        .data",
        f"buf:    .space {config.buffer_words * 8}",
        "seedv:  .word %d" % rng.randrange(1, 1 << 20),
        "        .text",
        "main:   movi r1, buf",
        "        movi r5, seedv",
        "        ld   r3, 0(r5)",
        f"        movi r2, {config.iterations}",
        "loop:",
        # Advance the PRNG once per iteration (xorshift).
        "        slli r6, r3, 13",
        "        xor  r3, r3, r6",
        "        srli r6, r3, 7",
        "        xor  r3, r3, r6",
    ]
    label_counter = 0
    for i in range(config.body_size):
        chain = _CHAIN_BASE + (i % chains)
        roll = rng.random()
        if roll < config.call_fraction:
            helper = rng.randrange(config.num_helpers)
            lines.append(f"        jsr  ra, helper{helper}")
        elif roll < config.call_fraction + config.mem_fraction:
            offset = rng.randrange(config.buffer_words) * 8
            if rng.random() < 0.5:
                lines.append(f"        ld   r{chain}, {offset}(r1)")
            else:
                lines.append(f"        st   r{chain}, {offset}(r1)")
        elif roll < config.call_fraction + config.mem_fraction + config.fp_fraction:
            f = 1 + (i % chains)
            op = rng.choice(["fadd", "fmul", "fsub"])
            lines.append(f"        {op} f{f}, f{f}, f{1 + ((i + 1) % chains)}")
        elif rng.random() < 0.25:
            # Occasional short forward branch inside the body.
            label = f"l{label_counter}"
            label_counter += 1
            if rng.random() < config.branch_entropy:
                lines.append(f"        andi r4, r3, {rng.choice([1, 3, 7])}")
                lines.append(f"        beq  r4, {label}")
            else:
                lines.append(f"        bge  r2, {label}")  # counter: predictable
            lines.append(f"        addi r{chain}, r{chain}, {rng.randrange(1, 9)}")
            lines.append(f"{label}: addi r{chain}, r{chain}, 1")
        else:
            op = rng.choice(["add", "sub", "xor", "and", "or"])
            other = _CHAIN_BASE + rng.randrange(chains)
            lines.append(f"        {op}  r{chain}, r{chain}, r{other}")
    lines += [
        "        subi r2, r2, 1",
        "        bgt  r2, loop",
        "        halt",
    ]
    # Generated helpers: short leaf functions, occasionally with an
    # indirect tail through a dispatch register.
    for h in range(config.num_helpers):
        chain = _CHAIN_BASE + rng.randrange(chains)
        lines += [
            f"helper{h}:",
            f"        addi r{chain}, r{chain}, {rng.randrange(1, 9)}",
            f"        xor  r{_CHAIN_BASE + rng.randrange(chains)}, r{chain}, r3",
            "        ret  (ra)",
        ]
    return "\n".join(lines)


def generate_program(
    config: GeneratorConfig, text_base: int = 0x1000, data_base: int = 0x4000
) -> Program:
    asm = Assembler(text_base=text_base, data_base=data_base)
    return asm.assemble(generate_source(config), name=f"gen{config.seed}")
