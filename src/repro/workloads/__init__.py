"""Synthetic SPEC95-analog workloads and the parametric generator."""

from .generator import GeneratorConfig, generate_program, generate_source
from .kernels import (
    DEFAULT_ITERS,
    EXTENDED_KERNELS,
    FP_KERNELS,
    INTEGER_KERNELS,
    KERNELS,
)
from .suite import RELOCATION_STRIDE, WorkloadSuite

__all__ = [
    "GeneratorConfig",
    "generate_program",
    "generate_source",
    "DEFAULT_ITERS",
    "EXTENDED_KERNELS",
    "FP_KERNELS",
    "INTEGER_KERNELS",
    "KERNELS",
    "RELOCATION_STRIDE",
    "WorkloadSuite",
]
