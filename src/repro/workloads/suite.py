"""Workload suite: assembly, relocation, and multiprogram mixes.

Multiprogrammed runs need each program at a distinct address range —
both because that is reality (different processes) and because the
branch predictor and caches would otherwise alias pathologically.  The
relocation stride is deliberately *not* a multiple of any cache's way
period so programs spread across sets.

The paper averages multiprogram results over eight permutations of the
benchmarks that weight each benchmark evenly; :func:`mixes` produces
deterministic rotations with the same property.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence

from ..isa.assembler import Assembler
from ..isa.program import Program
from .kernels import (
    DEFAULT_ITERS,
    EXTENDED_KERNELS,
    FP_KERNELS,
    INTEGER_KERNELS,
    KERNELS,
)

#: Distance between consecutive program images.  0x21040 = 132KB + 64B:
#: not a multiple of the 64KB direct-mapped L1 period nor of the BTB/PHT
#: index periods.
RELOCATION_STRIDE = 0x21040
TEXT_BASE = 0x1000
DATA_OFFSET = 0x8000  # data segment offset within a program's slot


class WorkloadSuite:
    """Builds (and caches) assembled kernels at relocated bases."""

    def __init__(self, iters: int = DEFAULT_ITERS, extended: bool = False):
        self.iters = iters
        self.extended = extended
        self._kernels = dict(KERNELS)
        if extended:
            self._kernels.update(EXTENDED_KERNELS)
        self._cache: Dict[tuple, Program] = {}
        self._fingerprint: Optional[str] = None

    @property
    def names(self) -> List[str]:
        return list(self._kernels)

    def program(self, name: str, slot: int = 0) -> Program:
        """Assemble kernel ``name`` into relocation slot ``slot``."""
        if name not in self._kernels:
            raise KeyError(f"unknown kernel {name!r}; know {sorted(self._kernels)}")
        key = (name, slot, self.iters)
        if key not in self._cache:
            base = TEXT_BASE + slot * RELOCATION_STRIDE
            asm = Assembler(text_base=base, data_base=base + DATA_OFFSET)
            source = self._kernels[name](self.iters)
            self._cache[key] = asm.assemble(source, name=f"{name}.{slot}" if slot else name)
        return self._cache[key]

    def single(self, name: str) -> List[Program]:
        return [self.program(name, 0)]

    def mix(self, names: Sequence[str]) -> List[Program]:
        """Assemble a multiprogram mix, one relocation slot per program."""
        return [self.program(name, slot) for slot, name in enumerate(names)]

    def mixes(self, width: int, count: Optional[int] = None) -> List[List[str]]:
        """Deterministic rotations weighting every benchmark evenly.

        ``width`` programs per mix; ``count`` mixes (default: one per
        benchmark, i.e. eight, like the paper's eight permutations).
        """
        names = self.names
        count = count if count is not None else len(names)
        out = []
        for rotation in range(count):
            start = rotation % len(names)
            stride = 1 + rotation // len(names)
            mix = [names[(start + i * stride) % len(names)] for i in range(width)]
            out.append(mix)
        return out

    def fingerprint(self) -> str:
        """Content hash of the suite: kernel names and generated sources at
        this iteration count.  Part of the orchestration cache key, so any
        change to a kernel's assembly invalidates cached results."""
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(f"iters={self.iters}\n".encode())
            for name in sorted(self._kernels):
                digest.update(f"{name}\n".encode())
                digest.update(self._kernels[name](self.iters).encode())
            self._fingerprint = digest.hexdigest()[:16]
        return self._fingerprint

    def integer_names(self) -> List[str]:
        return list(INTEGER_KERNELS)

    def fp_names(self) -> List[str]:
        return list(FP_KERNELS)
