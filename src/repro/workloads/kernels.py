"""Synthetic SPEC95-analog kernels.

The paper's workload is eight SPEC95 benchmarks compiled for Alpha.
Real SPEC binaries are far outside what a pure-Python cycle simulator
can chew through, so each kernel here is a small RRISC program
engineered to match its namesake's *qualitative* profile as reported in
the paper (Table 1 and the surrounding discussion):

==========  ==========================================================
kernel      profile targeted
==========  ==========================================================
compress    tiny data-dependent loop; lowest branch predictability per
            instruction; register-disjoint diamond arms → the highest
            recycle and reuse rates of the suite
gcc         large branchy body with calls; moderate predictability
go          deeply irregular two-level data-dependent branching; the
            hardest to predict
li          stack-driven recursive list walk; moderate predictability,
            long merges per alternate path
perl        mostly predictable control with rare data-dependent
            branches; lowest recycle rate of the integer codes
su2cor      floating-point vector loops with occasional data-dependent
            branches
tomcatv     pure FP stencil with counted loops only — near-perfect
            prediction, so TME almost never forks and recycling is
            back-merge dominated
vortex      pointer-chasing with calls and highly predictable branches
==========  ==========================================================

Each builder returns RRISC assembly text.  All pseudo-random data is
generated from fixed seeds, so workloads are fully deterministic.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

DEFAULT_ITERS = 1_000_000  # effectively "run forever"; windows end runs


def _rand_words(seed: int, count: int, lo: int = 0, hi: int = 1 << 30) -> List[int]:
    rng = random.Random(seed)
    return [rng.randrange(lo, hi) for _ in range(count)]


def _word_directive(values: List[int], per_line: int = 8) -> str:
    lines = []
    for i in range(0, len(values), per_line):
        chunk = ", ".join(str(v) for v in values[i : i + per_line])
        lines.append(f"        .word {chunk}")
    return "\n".join(lines)


def compress(iters: int = DEFAULT_ITERS) -> str:
    """Hash-table compression inner loop.

    Reads a pseudo-random byte stream, hashes, and branches on a
    data-dependent bit.  The two arms define disjoint registers from
    the zero register, so the not-taken arm's results are reusable when
    a later iteration takes the other direction.
    """
    data = _word_directive(_rand_words(0xC0, 64))
    return f"""
        .data
input:
{data}
htab:   .space 512
        .text
main:   movi r1, input      # stream base
        movi r2, {iters}    # iterations
        movi r10, htab
        movi r11, 0         # stream index
loop:   andi r12, r11, 63
        slli r13, r12, 3
        add  r14, r1, r13
        ld   r3, 0(r14)     # next "byte"
        # hash = (h << 4) ^ x, folded
        slli r4, r5, 4
        xor  r5, r4, r3
        srli r6, r5, 9
        xor  r5, r5, r6
        andi r7, r5, 1      # data-dependent direction
        addi r11, r11, 1
        beq  r7, miss
hit:    addi r16, r31, 1    # disjoint arm: hit bookkeeping
        addi r17, r31, 5
        br   update
miss:   addi r18, r31, 3    # disjoint arm: miss bookkeeping
        addi r19, r31, 7
update: andi r8, r5, 63
        slli r8, r8, 3
        add  r9, r10, r8
        st   r3, 0(r9)      # install in hash table
        subi r2, r2, 1
        bgt  r2, loop
        halt
"""


def gcc(iters: int = DEFAULT_ITERS) -> str:
    """Compiler-like workload: branchy decision chains plus calls."""
    data = _word_directive(_rand_words(0x6CC, 96))
    return f"""
        .data
tokens:
{data}
        .text
main:   movi r1, tokens
        movi r2, {iters}
        movi r11, 0
loop:   andi r12, r11, 95
        slli r13, r12, 3
        add  r14, r1, r13
        ld   r3, 0(r14)     # next token
        addi r11, r11, 1
        # decision chain on token class (data dependent)
        andi r4, r3, 7
        cmplti r5, r4, 3
        bne  r5, classA
        cmplti r5, r4, 6
        bne  r5, classB
classC: jsr  ra, emitC
        br   next
classA: jsr  ra, emitA
        br   next
classB: jsr  ra, emitB
next:   subi r2, r2, 1
        bgt  r2, loop
        halt
emitA:  slli r6, r3, 2
        add  r7, r7, r6
        addi r8, r8, 1
        ret  (ra)
emitB:  srli r6, r3, 3
        xor  r7, r7, r6
        addi r9, r9, 1
        ret  (ra)
emitC:  andi r6, r3, 255
        sub  r7, r7, r6
        addi r10, r10, 1
        ret  (ra)
"""


def go(iters: int = DEFAULT_ITERS) -> str:
    """Game-tree-like workload: nested, irregular, hard branches."""
    data = _word_directive(_rand_words(0x60, 128))
    return f"""
        .data
board:
{data}
        .text
main:   movi r1, board
        movi r2, {iters}
        movi r20, 0
loop:   andi r3, r20, 127
        slli r4, r3, 3
        add  r5, r1, r4
        ld   r6, 0(r5)      # position value
        addi r20, r20, 1
        andi r7, r6, 3      # two-level irregular decision
        beq  r7, deep0
        cmplti r8, r7, 2
        bne  r8, deep1
        andi r9, r6, 12
        beq  r9, deep2
deep3:  addi r12, r12, 3
        xor  r13, r13, r6
        br   merge
deep0:  addi r10, r10, 1
        srli r13, r6, 2
        br   merge
deep1:  addi r11, r11, 1
        slli r13, r6, 1
        br   merge
deep2:  sub  r12, r12, r6
merge:  andi r14, r6, 1
        beq  r14, even
        add  r15, r15, r13
        br   cont
even:   sub  r15, r15, r13
cont:   subi r2, r2, 1
        bgt  r2, loop
        halt
"""


def li(iters: int = DEFAULT_ITERS) -> str:
    """Lisp-interpreter-like workload: stack-driven recursive walking."""
    data = _word_directive(_rand_words(0x11, 64, lo=0, hi=5))
    return f"""
        .data
depths:
{data}
        .text
main:   movi r2, {iters}
        movi r1, depths
        movi r20, 0
loop:   andi r3, r20, 63
        slli r4, r3, 3
        add  r5, r1, r4
        ld   r6, 0(r5)      # recursion depth for this "expression"
        addi r20, r20, 1
        jsr  ra, eval
        subi r2, r2, 1
        bgt  r2, loop
        halt
        # eval(depth in r6): data-dependent recursion via explicit stack
eval:   subi sp, sp, 16
        st   ra, 0(sp)
        st   r6, 8(sp)
        ble  r6, leaf
        subi r6, r6, 1
        jsr  ra, eval       # "car" recursion
        ld   r6, 8(sp)
        andi r7, r6, 1
        beq  r7, nocdr
        subi r6, r6, 2
        bgt  r6, docdr
        br   nocdr
docdr:  jsr  ra, eval       # occasional "cdr" recursion
nocdr:  ld   r6, 8(sp)
        add  r10, r10, r6
leaf:   addi r11, r11, 1
        ld   ra, 0(sp)
        addi sp, sp, 16
        ret  (ra)
"""


def perl(iters: int = DEFAULT_ITERS) -> str:
    """Interpreter dispatch with mostly-predictable control flow."""
    data = _word_directive(_rand_words(0x9E71, 64, lo=0, hi=1 << 16))
    return f"""
        .data
text:
{data}
        .text
main:   movi r1, text
        movi r2, {iters}
        movi r20, 0
loop:   movi r3, 8          # scan 8 "characters", predictable
scan:   andi r4, r20, 63
        slli r5, r4, 3
        add  r6, r1, r5
        ld   r7, 0(r6)
        addi r20, r20, 1
        slli r8, r9, 1
        xor  r9, r8, r7     # rolling match state
        subi r3, r3, 1
        bgt  r3, scan
        # rare data-dependent branch: "pattern matched?"
        andi r10, r9, 15
        beq  r10, matched
        addi r11, r11, 1
        br   cont
matched: addi r12, r12, 1
        xor  r9, r9, r9
cont:   subi r2, r2, 1
        bgt  r2, loop
        halt
"""


def su2cor(iters: int = DEFAULT_ITERS) -> str:
    """Quantum-physics-style FP vector loop with occasional data tests."""
    rng = random.Random(0x5002)
    doubles = ", ".join(f"{rng.uniform(0.1, 2.0):.6f}" for _ in range(32))
    return f"""
        .data
vec:    .double {doubles}
        .text
main:   movi r1, vec
        movi r2, {iters}
        movi r20, 0
loop:   andi r3, r20, 31
        slli r4, r3, 3
        add  r5, r1, r4
        fld  f1, 0(r5)
        addi r20, r20, 1
        fmul f2, f1, f1     # gauge-update-ish arithmetic
        fadd f3, f3, f2
        fmul f4, f3, f1
        fsub f5, f4, f2
        # occasional data-dependent acceptance test
        fcmplt r6, f5, f3
        beq  r6, accept
        fadd f6, f6, f1
        br   cont
accept: fadd f7, f7, f2
cont:   subi r2, r2, 1
        bgt  r2, loop
        halt
"""


def tomcatv(iters: int = DEFAULT_ITERS) -> str:
    """Mesh-generation stencil: counted FP loops, near-perfect prediction."""
    rng = random.Random(0x70C)
    doubles = ", ".join(f"{rng.uniform(0.5, 1.5):.6f}" for _ in range(48))
    return f"""
        .data
mesh:   .double {doubles}
out:    .space 384
        .text
main:   movi r1, mesh
        movi r9, out
        movi r2, {iters}
loop:   movi r3, 16         # inner stencil sweep (counted: predictable)
        movi r4, 0
sweep:  slli r5, r4, 3
        add  r6, r1, r5
        fld  f1, 0(r6)
        fld  f2, 8(r6)
        fld  f3, 16(r6)
        fadd f4, f1, f3
        fmul f5, f4, f2
        fsub f6, f5, f1
        add  r7, r9, r5
        fst  f6, 0(r7)
        addi r4, r4, 1
        subi r3, r3, 1
        bgt  r3, sweep
        subi r2, r2, 1
        bgt  r2, loop
        halt
"""


def vortex(iters: int = DEFAULT_ITERS) -> str:
    """Object-database workload: pointer chasing with calls."""
    # Build a deterministic circular linked list: node = [value, next].
    rng = random.Random(0xB0)
    order = list(range(32))
    rng.shuffle(order)
    words: List[int] = [0] * 64
    node_base = 0  # filled by the suite at assembly time via labels
    for i, this in enumerate(order):
        nxt = order[(i + 1) % len(order)]
        words[2 * this] = rng.randrange(1, 1 << 20)  # value
        words[2 * this + 1] = nxt  # next node index
    data = _word_directive(words)
    return f"""
        .data
nodes:
{data}
        .text
main:   movi r1, nodes
        movi r2, {iters}
        movi r3, 0          # current node index
loop:   slli r4, r3, 4      # node stride = 16 bytes
        add  r5, r1, r4
        jsr  ra, visit
        ld   r3, 8(r5)      # chase the next pointer
        subi r2, r2, 1
        bgt  r2, loop
        halt
visit:  ld   r6, 0(r5)      # node payload
        andi r7, r6, 255
        add  r8, r8, r7
        srli r9, r6, 8
        xor  r10, r10, r9
        addi r11, r11, 1
        ret  (ra)
"""


def ijpeg(iters: int = DEFAULT_ITERS) -> str:
    """Image-compression-like workload (SPECint95 member the paper did
    not select): nested block loops over pixel data with quantisation
    clamps — mostly counted (predictable) control with data-dependent
    saturation branches, heavier on multiply."""
    data = _word_directive(_rand_words(0x1379, 64, lo=0, hi=1 << 10))
    return f"""
        .data
pixels:
{data}
qout:   .space 512
        .text
main:   movi r1, pixels
        movi r9, qout
        movi r2, {iters}
loop:   movi r3, 8          # one 8-sample "block" per iteration
        movi r4, 0
block:  andi r5, r20, 63
        slli r6, r5, 3
        add  r7, r1, r6
        ld   r8, 0(r7)      # sample
        addi r20, r20, 1
        mul  r10, r8, r8    # "DCT-ish" energy term
        srli r10, r10, 6
        subi r11, r10, 255  # clamp to 255 (data-dependent)
        ble  r11, noclamp
        movi r10, 255
noclamp: slli r12, r4, 3
        add  r13, r9, r12
        st   r10, 0(r13)
        addi r4, r4, 1
        subi r3, r3, 1
        bgt  r3, block
        subi r2, r2, 1
        bgt  r2, loop
        halt
"""


def m88ksim(iters: int = DEFAULT_ITERS) -> str:
    """CPU-simulator-like workload (SPECint95 member the paper did not
    select): a decode/dispatch loop driven by a pseudo-random opcode
    stream through an indirect jump table — exercises the BTB's
    indirect prediction and recycling across dispatch targets."""
    data = _word_directive(_rand_words(0x88, 64, lo=0, hi=4))
    return f"""
        .data
opstream:
{data}
        .text
main:   movi r1, opstream
        movi r2, {iters}
        movi r20, 0
loop:   andi r3, r20, 63
        slli r4, r3, 3
        add  r5, r1, r4
        ld   r6, 0(r5)      # next "opcode" (0..3)
        addi r20, r20, 1
        # dispatch: table of handler addresses built inline
        movi r7, do_add
        cmpeqi r8, r6, 1
        movi r9, do_shift
        cmoveq r9, r8, r7   # r9 = handler (branchless select chain)
        cmpeqi r8, r6, 2
        movi r10, do_mem
        bne  r8, dispatch2
        mov  r10, r9
dispatch2: cmpeqi r8, r6, 3
        movi r11, do_mul
        bne  r8, dispatch3
        mov  r11, r10
dispatch3: jmp (r11)
do_add: add r12, r12, r6
        br  next
do_shift: slli r13, r13, 1
        xor r13, r13, r6
        br  next
do_mem: andi r14, r12, 63
        slli r14, r14, 3
        add r15, r1, r14
        ld  r16, 0(r15)
        br  next
do_mul: mul r17, r12, r6
next:   subi r2, r2, 1
        bgt  r2, loop
        halt
"""


#: Benchmark name → source builder, in the paper's Figure 3 order.
KERNELS: Dict[str, Callable[..., str]] = {
    "compress": compress,
    "gcc": gcc,
    "go": go,
    "li": li,
    "perl": perl,
    "su2cor": su2cor,
    "tomcatv": tomcatv,
    "vortex": vortex,
}

#: The paper's integer / floating-point split.
INTEGER_KERNELS = ("compress", "gcc", "go", "li", "perl", "vortex")
FP_KERNELS = ("su2cor", "tomcatv")

#: Extra SPECint95 analogs beyond the paper's eight — available via
#: ``WorkloadSuite(extended=True)`` but excluded from the paper's
#: experiments to keep the reproduction faithful.
EXTENDED_KERNELS: Dict[str, Callable[..., str]] = {
    "ijpeg": ijpeg,
    "m88ksim": m88ksim,
}
