"""The shared artifact store: `exec.cache` promoted to multi-writer safety.

One directory tree serves every campaign, every local worker thread and
every remote worker pushing results over HTTP::

    <root>/
      cache/<aa>/<key>.json   content-addressed results (ResultCache layout)
      journal.jsonl           append-only completion journal (resume)
      journal.lock            advisory lock serialising journal writers
      campaigns/<cid>.json    persisted campaign records (server restart)
      ids                     next campaign ordinal
      ids.lock                advisory lock for id allocation

Concurrency model
-----------------
* **Cache entries** need no lock: keys are content addresses, writes are
  atomic tmp-file + ``os.replace`` (see :func:`repro.exec.cache.write_atomic`),
  and two writers racing on one key carry identical payloads — last
  replace wins with the same bytes.
* **The journal** is a single append-only file shared by concurrent
  writers, so appends go through an advisory :class:`FileLock` — without
  it two processes appending simultaneously can interleave partial
  lines.  (Threads within one server additionally serialise on the
  scheduler lock; the file lock is what protects *cross-process*
  writers: a second server instance or a crashed-and-restarted one.)
* **Campaign ids** are allocated from a locked counter file so two
  submitting requests can never mint the same id.
"""

from __future__ import annotations

import errno
import json
import os
import random
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..analysis.conc.sanitizer import conc_wrap
from ..exec.cache import Journal, ResultCache, write_atomic

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback exercised via flag
    fcntl = None  # type: ignore[assignment]

#: Wall clock for lock deadlines only — never enters results or cache keys.
_clock = time.monotonic  # det-ok: lock timeout bookkeeping, not simulation state


class LockTimeout(RuntimeError):
    """Could not acquire an advisory lock within its timeout."""


class FileLock:
    """Advisory inter-process lock around a small critical section.

    Uses ``fcntl.flock`` where available (POSIX); elsewhere falls back to
    an ``O_CREAT|O_EXCL`` lease file carrying the owner pid, with stale
    leases (older than ``stale`` seconds) broken on the assumption the
    owner died.  Both variants are re-entrant-free and cheap: journal
    appends and id allocation hold the lock for microseconds.

    A contended acquire retries with exponential backoff plus jitter —
    starting at ``poll`` and doubling up to ``max_poll`` — so a herd of
    workers waking on a released lock does not retry in lockstep.  The
    jitter source is seeded from the pid (deterministic per process,
    decorrelated across processes).  Whichever variant holds the lock
    writes its pid into the lock file, so a :class:`LockTimeout` can
    name the holder and how long it has held on.
    """

    def __init__(
        self,
        path: Union[str, Path],
        timeout: float = 30.0,
        poll: float = 0.01,
        stale: float = 120.0,
        max_poll: float = 0.5,
    ):
        self.path = Path(path)
        self.timeout = timeout
        self.poll = poll
        self.stale = stale
        self.max_poll = max_poll
        self._fd: Optional[int] = None
        self._leased = False
        self._jitter: Optional[random.Random] = None

    # ------------------------------------------------------------------
    def acquire(self) -> None:
        deadline = _clock() + self.timeout
        self.path.parent.mkdir(parents=True, exist_ok=True)
        delay = self.poll
        while True:
            if self._try_acquire():
                return
            now = _clock()
            if now >= deadline:
                raise LockTimeout(
                    f"could not lock {self.path} within {self.timeout}s"
                    f"{self._holder_clause()}"
                )
            if self._jitter is None:
                # Lazy and per-instance: a fork after construction still
                # gets a pid-distinct sequence.
                self._jitter = random.Random(os.getpid())
            # Full jitter over [poll, delay], capped by the deadline.
            sleep_for = min(
                self._jitter.uniform(self.poll, delay), deadline - now
            )
            time.sleep(sleep_for)
            delay = min(delay * 2, self.max_poll)

    def _holder_clause(self) -> str:
        """Best-effort `` (held by pid N for X.Ys)`` from the lock file."""
        try:
            raw = self.path.read_text().strip()
            age = time.time() - os.stat(self.path).st_mtime  # det-ok: diagnostic age in an error message
        except OSError:
            return ""
        pid = raw.splitlines()[0].strip() if raw else ""
        if not pid:
            return ""
        return f" (held by pid {pid} for {age:.1f}s)"

    def release(self) -> None:
        if self._fd is not None:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None
        if self._leased:
            try:
                os.unlink(self.path)
            except OSError:  # pragma: no cover - lease broken by another process
                pass
            self._leased = False

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # ------------------------------------------------------------------
    def _try_acquire(self) -> bool:
        if fcntl is not None:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                os.close(fd)
                return False
            try:  # advertise the holder for LockTimeout diagnostics
                os.ftruncate(fd, 0)
                os.write(fd, f"{os.getpid()}\n".encode())
            except OSError:  # pragma: no cover - diagnostics only
                pass
            self._fd = fd
            return True
        return self._try_lease()

    def _try_lease(self) -> bool:
        try:
            fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except OSError as exc:
            if exc.errno != errno.EEXIST:  # pragma: no cover - perms etc.
                raise
            self._break_stale_lease()
            return False
        with os.fdopen(fd, "w") as handle:
            handle.write(f"{os.getpid()}\n")
        self._leased = True
        return True

    def _break_stale_lease(self) -> None:
        try:
            # Lease age is measured against the file's wall-clock mtime.
            age = time.time() - os.stat(self.path).st_mtime  # det-ok: lock bookkeeping, never simulation state
        except OSError:
            return  # released between our open and stat — retry will win
        if age > self.stale:
            try:
                os.unlink(self.path)
            except OSError:  # pragma: no cover - raced another breaker
                pass


class ArtifactStore(ResultCache):
    """Content-addressed result store shared by concurrent campaigns.

    Extends :class:`~repro.exec.cache.ResultCache` (same keys, same
    entry layout — a plain ``Executor`` pointed at ``<root>/cache``
    reads and writes the very same artifacts) with a locked completion
    journal, persisted campaign records, and campaign-id allocation.
    """

    def __init__(
        self,
        root: Union[str, Path],
        sim_version: Optional[str] = None,
        compact_on_start: bool = True,
    ):
        self.root_dir = Path(root)
        super().__init__(self.root_dir / "cache", sim_version=sim_version)
        self.journal = Journal(self.root_dir / "journal.jsonl")
        self.journal_lock = conc_wrap(
            FileLock(self.root_dir / "journal.lock"),
            "ArtifactStore.journal_lock",
        )
        self._ids_path = self.root_dir / "ids"
        self._ids_lock = conc_wrap(
            FileLock(self.root_dir / "ids.lock"), "ArtifactStore._ids_lock"
        )
        self.campaigns_dir = self.root_dir / "campaigns"
        if compact_on_start:
            with self.journal_lock:
                self.journal.compact()
        self._journaled: Dict[str, Dict] = self.journal.load()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[Dict]:
        """Resolve a key from the journal replay or the cache; None if the
        work still has to happen."""
        payload = self._journaled.get(key)
        if payload is not None:
            self.hits += 1
            return payload
        return self.get(key)

    def record(self, key: str, payload: Dict, job=None) -> None:
        """Persist one completed job everywhere resume needs it."""
        self.put(key, payload, job=job)
        with self.journal_lock:
            self.journal.append(key, payload)
        self._journaled[key] = payload

    def journaled_keys(self) -> List[str]:
        return sorted(self._journaled)

    # ------------------------------------------------------------------
    # Campaign records
    # ------------------------------------------------------------------
    def next_campaign_id(self) -> str:
        with self._ids_lock:
            try:
                ordinal = int(self._ids_path.read_text().strip() or "0")
            except (OSError, ValueError):
                ordinal = 0
            ordinal += 1
            write_atomic(self._ids_path, f"{ordinal}\n")
        return f"c{ordinal:06d}"

    def campaign_path(self, campaign_id: str) -> Path:
        return self.campaigns_dir / f"{campaign_id}.json"

    def save_campaign(self, record: Dict) -> None:
        """Persist one campaign record (atomic; called on every state
        transition so a killed server can reconstruct its queue)."""
        write_atomic(
            self.campaign_path(record["id"]), json.dumps(record, sort_keys=True)
        )

    def load_campaigns(self) -> List[Dict]:
        """Every persisted campaign record, in id (submission) order."""
        if not self.campaigns_dir.is_dir():
            return []
        records = []
        for path in sorted(self.campaigns_dir.glob("*.json")):
            try:
                records.append(json.loads(path.read_text()))
            except (OSError, ValueError):  # pragma: no cover - torn write
                continue
        return records
