"""The campaign scheduler: dedupe table, lease queue, campaign lifecycle.

Every submitted job maps to a **task** keyed by its content-addressed
cache key.  Tasks are the unit of execution and of deduplication:

* a job whose key resolves from the :class:`~repro.service.store.ArtifactStore`
  (journal replay or cache) completes instantly (``resolution="store"``);
* a job whose key matches a task already queued/leased *attaches* to it
  (``resolution="dedup"``) — two clients submitting overlapping sweep
  grids simulate every grid point exactly once;
* otherwise a new task enters the queue (``resolution="run"``).

Tasks are handed out as **leases** (to local worker threads and to
remote workers over HTTP) with a TTL; a lease that expires — worker
crashed, host vanished — silently re-queues, so a shard is never lost.
Completions are persisted to the store *before* scheduler state is
updated: a server killed between the two resumes the job as a store hit
instead of re-running it.

Campaign records persist in the store on every state transition;
:meth:`Scheduler.resume` re-admits non-terminal campaigns on startup,
resolving already-journaled keys without re-execution — the
kill-the-server-mid-campaign acceptance path.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..analysis.conc.sanitizer import conc_wrap
from ..exec.cache import cache_key
from ..exec.jobs import Job, job_to_payload, suite_for_args
from ..exec.progress import ProgressReporter
from .spec import CampaignSpec, parse_campaign
from .store import ArtifactStore

#: Service-side wall clock (lease TTLs, campaign wall time, ETA). Never
#: enters simulation state or cache keys.
_monotonic = time.monotonic  # det-ok: service timing, not simulation state

JOB_PENDING = "pending"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"

CAMPAIGN_RUNNING = "running"
CAMPAIGN_DONE = "done"
CAMPAIGN_FAILED = "failed"
CAMPAIGN_CANCELLED = "cancelled"
TERMINAL_CAMPAIGN_STATES = (CAMPAIGN_DONE, CAMPAIGN_FAILED, CAMPAIGN_CANCELLED)


@dataclass
class JobRecord:
    """One client-visible job (campaign-scoped id) bound to a task key."""

    job_id: str
    campaign_id: str
    index: int
    job: Job
    key: str
    state: str = JOB_PENDING
    resolution: str = "run"  # "run" | "store" | "dedup"
    error: Optional[str] = None


@dataclass
class Task:
    """One unit of execution, unique per cache key across all campaigns."""

    key: str
    payload: Dict  # job wire payload (exec.jobs.job_to_payload)
    suite_args: Tuple[int, bool]
    label: str
    state: str = "queued"  # queued | leased | done | failed
    job_ids: List[str] = field(default_factory=list)
    attempts: int = 0
    worker: Optional[str] = None
    lease_deadline: Optional[float] = None


@dataclass
class Campaign:
    """Server-side record of one submitted campaign."""

    campaign_id: str
    spec: CampaignSpec
    state: str = CAMPAIGN_RUNNING
    job_ids: List[str] = field(default_factory=list)
    started: float = 0.0
    wall_seconds: Optional[float] = None
    reporter: Optional[ProgressReporter] = None
    events: List[Dict] = field(default_factory=list)


class Scheduler:
    """Thread-safe campaign/task state machine over an artifact store."""

    def __init__(
        self,
        store: ArtifactStore,
        lease_ttl: float = 60.0,
        max_attempts: int = 3,
        clock: Callable[[], float] = _monotonic,
    ):
        self.store = store
        self.lease_ttl = lease_ttl
        self.max_attempts = max(1, int(max_attempts))
        self._clock = clock
        # conc_wrap must happen before Condition() so the CV and the
        # sanitizer observe the same object.
        self._lock = conc_wrap(threading.Lock(), "Scheduler._lock")
        self._cv = threading.Condition(self._lock)
        self.campaigns: Dict[str, Campaign] = {}
        self.jobs: Dict[str, JobRecord] = {}
        self.tasks: Dict[str, Task] = {}
        self._queue: Deque[str] = deque()  # task keys awaiting a lease
        self.counters: Dict[str, int] = {
            "jobs_submitted": 0,
            "jobs_done": 0,
            "jobs_failed": 0,
            "jobs_cancelled": 0,
            "jobs_from_store": 0,
            "jobs_deduped": 0,
            "jobs_run": 0,
            "tasks_executed": 0,
            "task_attempts": 0,
            "leases_granted": 0,
            "leases_expired": 0,
            "campaigns_submitted": 0,
        }

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, payload: Dict, campaign_id: Optional[str] = None) -> Dict:
        """Validate and admit one campaign; returns its status document.

        Raises :class:`~repro.service.spec.SpecError` on a bad spec (the
        server maps it to HTTP 400).
        """
        spec = parse_campaign(payload)
        if campaign_id is None:
            campaign_id = self.store.next_campaign_id()
        suite = suite_for_args(*spec.suite_args)
        fingerprint = suite.fingerprint()
        keys = [
            cache_key(job, fingerprint, self.store.sim_version) for job in spec.jobs
        ]
        resolved = [(key, self.store.lookup(key)) for key in keys]

        with self._lock:
            campaign = Campaign(
                campaign_id=campaign_id,
                spec=spec,
                started=self._clock(),
                reporter=ProgressReporter(clock=self._clock),
            )
            campaign.reporter.add_total(len(spec.jobs))
            self.campaigns[campaign_id] = campaign
            self.counters["campaigns_submitted"] += 1
            finished: List[Tuple[JobRecord, Dict]] = []
            for index, (job, (key, stored)) in enumerate(zip(spec.jobs, resolved)):
                record = JobRecord(
                    job_id=f"{campaign_id}.{index:04d}",
                    campaign_id=campaign_id,
                    index=index,
                    job=job,
                    key=key,
                )
                self.jobs[record.job_id] = record
                campaign.job_ids.append(record.job_id)
                self.counters["jobs_submitted"] += 1
                task = self.tasks.get(key)
                if stored is None and task is not None and task.state == "done":
                    # The task finished between our (unlocked) store probe
                    # and here — resolve from the store, don't re-queue.
                    stored = self.store.lookup(key)
                if stored is not None:
                    record.resolution = "store"
                    finished.append((record, stored))
                    continue
                if task is not None and task.state in ("queued", "leased"):
                    record.resolution = "dedup"
                    record.state = JOB_RUNNING if task.state == "leased" else JOB_PENDING
                    task.job_ids.append(record.job_id)
                    self.counters["jobs_deduped"] += 1
                    continue
                self.tasks[key] = Task(
                    key=key,
                    payload=job_to_payload(job),
                    suite_args=spec.suite_args,
                    label=job.label(),
                    job_ids=[record.job_id],
                )
                self._queue.append(key)
            for record, stored in finished:
                self._finish_job(record, ok=True)
            self._persist_campaign(campaign)
            self._maybe_finish_campaign(campaign)
            self._cv.notify_all()
            return self._campaign_status_locked(campaign)

    # ------------------------------------------------------------------
    # Leasing (local worker threads and remote workers share this API)
    # ------------------------------------------------------------------
    def lease(self, max_tasks: int = 1, worker: str = "local") -> List[Dict]:
        """Hand out up to ``max_tasks`` queued tasks as wire documents."""
        now = self._clock()
        with self._lock:
            self._reap_expired_locked(now)
            out = []
            while self._queue and len(out) < max(1, max_tasks):
                key = self._queue.popleft()
                task = self.tasks.get(key)
                if task is None or task.state != "queued":
                    continue
                task.state = "leased"
                task.worker = worker
                task.attempts += 1
                task.lease_deadline = now + self.lease_ttl
                self.counters["leases_granted"] += 1
                self.counters["task_attempts"] += 1
                for job_id in task.job_ids:
                    record = self.jobs.get(job_id)
                    if record is not None and record.state == JOB_PENDING:
                        record.state = JOB_RUNNING
                out.append(
                    {
                        "key": task.key,
                        "payload": task.payload,
                        "suite": list(task.suite_args),
                        "label": task.label,
                        "attempt": task.attempts,
                    }
                )
            return out

    def wait_for_work(self, timeout: float) -> bool:
        """Block until the queue is (probably) non-empty; True if it is."""
        with self._lock:
            if self._queue:
                return True
            self._cv.wait(timeout=timeout)
            return bool(self._queue)

    def complete(self, key: str, payload: Dict, worker: str = "local",
                 elapsed: float = 0.0) -> bool:
        """A worker finished ``key``; persist, then settle attached jobs.

        The store write happens *before* scheduler state changes: a crash
        in between resumes as a store hit, never a re-run.  Returns False
        for an unknown/stale key (e.g. a lease that expired and was
        completed elsewhere first — the result is persisted regardless,
        which is harmless: identical key, identical payload).
        """
        self.store.record(key, payload)
        with self._lock:
            task = self.tasks.get(key)
            if task is None or task.state in ("done", "failed"):
                return False
            task.state = "done"
            task.lease_deadline = None
            self.counters["tasks_executed"] += 1
            for job_id in task.job_ids:
                record = self.jobs.get(job_id)
                if record is None or record.state in (JOB_DONE, JOB_FAILED, JOB_CANCELLED):
                    continue
                self._finish_job(record, ok=True, elapsed=elapsed)
            self._cv.notify_all()
            return True

    def fail(self, key: str, message: str, worker: str = "local") -> bool:
        """A worker's attempt on ``key`` failed; retry or fail the jobs."""
        with self._lock:
            task = self.tasks.get(key)
            if task is None or task.state in ("done", "failed"):
                return False
            if task.attempts < self.max_attempts:
                task.state = "queued"
                task.worker = None
                task.lease_deadline = None
                self._queue.append(key)
                self._cv.notify_all()
                return True
            task.state = "failed"
            task.lease_deadline = None
            for job_id in task.job_ids:
                record = self.jobs.get(job_id)
                if record is None or record.state in (JOB_DONE, JOB_FAILED, JOB_CANCELLED):
                    continue
                record.error = message
                self._finish_job(record, ok=False)
            self._cv.notify_all()
            return True

    def _reap_expired_locked(self, now: float) -> None:
        for key in sorted(self.tasks):
            task = self.tasks[key]
            if (
                task.state == "leased"
                and task.lease_deadline is not None
                and now > task.lease_deadline
            ):
                task.state = "queued"
                task.worker = None
                task.lease_deadline = None
                self.counters["leases_expired"] += 1
                self._queue.append(key)

    # ------------------------------------------------------------------
    # Job / campaign settlement (callers hold the lock)
    # ------------------------------------------------------------------
    def _finish_job(self, record: JobRecord, ok: bool, elapsed: float = 0.0) -> None:
        record.state = JOB_DONE if ok else JOB_FAILED
        cached = record.resolution != "run"
        if ok:
            self.counters["jobs_done"] += 1
            if record.resolution == "store":
                self.counters["jobs_from_store"] += 1
            elif record.resolution == "run":
                self.counters["jobs_run"] += 1
        else:
            self.counters["jobs_failed"] += 1
        campaign = self.campaigns.get(record.campaign_id)
        if campaign is None:  # pragma: no cover - job outlived its campaign
            return
        event = campaign.reporter.record(
            cached=cached, failed=not ok, elapsed=elapsed, label=record.job.label()
        )
        entry = event.to_payload()
        entry.update({"type": "job", "job_id": record.job_id, "state": record.state,
                      "resolution": record.resolution})
        campaign.events.append(entry)
        self._maybe_finish_campaign(campaign)

    def _maybe_finish_campaign(self, campaign: Campaign) -> None:
        if campaign.state != CAMPAIGN_RUNNING:
            return
        states = [self.jobs[job_id].state for job_id in campaign.job_ids]
        if any(state in (JOB_PENDING, JOB_RUNNING) for state in states):
            return
        if any(state == JOB_FAILED for state in states):
            campaign.state = CAMPAIGN_FAILED
        elif any(state == JOB_CANCELLED for state in states):
            campaign.state = CAMPAIGN_CANCELLED
        else:
            campaign.state = CAMPAIGN_DONE
        campaign.wall_seconds = self._clock() - campaign.started
        campaign.events.append(
            {
                "type": "campaign",
                "campaign_id": campaign.campaign_id,
                "state": campaign.state,
                "wall_seconds": campaign.wall_seconds,
            }
        )
        self._persist_campaign(campaign)

    def _persist_campaign(self, campaign: Campaign) -> None:
        # Crash-consistency contract: the campaign record must hit disk
        # before the state transition is observable, so this atomic write
        # deliberately happens under _lock (docs/CONCURRENCY.md).
        self.store.save_campaign(  # conc-ok: persistence-before-visibility contract
            {
                "id": campaign.campaign_id,
                "label": campaign.spec.label,
                "state": campaign.state,
                "spec": campaign.spec.raw,
                "wall_seconds": campaign.wall_seconds,
            }
        )

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, campaign_id: str) -> bool:
        with self._lock:
            campaign = self.campaigns.get(campaign_id)
            if campaign is None:
                return False
            if campaign.state in TERMINAL_CAMPAIGN_STATES:
                return True
            for job_id in campaign.job_ids:
                record = self.jobs[job_id]
                if record.state in (JOB_DONE, JOB_FAILED, JOB_CANCELLED):
                    continue
                record.state = JOB_CANCELLED
                self.counters["jobs_cancelled"] += 1
                task = self.tasks.get(record.key)
                if task is not None and job_id in task.job_ids:
                    task.job_ids.remove(job_id)
                    # A queued task nobody wants any more is dropped; a
                    # leased one finishes (its result is still cached for
                    # the next campaign) but settles no jobs.
                    if not task.job_ids and task.state == "queued":
                        task.state = "failed"
                        try:
                            self._queue.remove(record.key)
                        except ValueError:  # pragma: no cover - already popped
                            pass
            campaign.state = CAMPAIGN_CANCELLED
            campaign.wall_seconds = self._clock() - campaign.started
            campaign.events.append(
                {
                    "type": "campaign",
                    "campaign_id": campaign_id,
                    "state": campaign.state,
                    "wall_seconds": campaign.wall_seconds,
                }
            )
            self._persist_campaign(campaign)
            self._cv.notify_all()
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def campaign_status(self, campaign_id: str) -> Optional[Dict]:
        with self._lock:
            campaign = self.campaigns.get(campaign_id)
            if campaign is None:
                return None
            return self._campaign_status_locked(campaign)

    def _campaign_status_locked(self, campaign: Campaign) -> Dict:
        jobs = []
        state_counts: Dict[str, int] = {}
        for job_id in campaign.job_ids:
            record = self.jobs[job_id]
            state_counts[record.state] = state_counts.get(record.state, 0) + 1
            jobs.append(
                {
                    "id": record.job_id,
                    "label": record.job.label(),
                    "key": record.key,
                    "state": record.state,
                    "resolution": record.resolution,
                    "error": record.error,
                }
            )
        wall = campaign.wall_seconds
        if wall is None:
            wall = self._clock() - campaign.started
        return {
            "id": campaign.campaign_id,
            "label": campaign.spec.label,
            "state": campaign.state,
            "wall_seconds": wall,
            "job_states": state_counts,
            "progress": campaign.reporter.event().to_payload(),
            "jobs": jobs,
        }

    def job_result(self, job_id: str) -> Tuple[Optional[JobRecord], Optional[Dict]]:
        """The record and (if done) stored result payload for one job."""
        with self._lock:
            record = self.jobs.get(job_id)
        if record is None:
            return None, None
        if record.state != JOB_DONE:
            return record, None
        return record, self.store.lookup(record.key)

    def events_since(self, campaign_id: str, index: int,
                     timeout: float = 10.0) -> Tuple[List[Dict], int, bool]:
        """Events after ``index``; blocks up to ``timeout`` for fresh ones.

        Returns ``(new_events, next_index, terminal)`` — the NDJSON
        streaming loop calls this until ``terminal``.
        """
        deadline = self._clock() + timeout
        with self._lock:
            campaign = self.campaigns.get(campaign_id)
            if campaign is None:
                return [], index, True
            while len(campaign.events) <= index:
                if campaign.state in TERMINAL_CAMPAIGN_STATES:
                    return [], index, True
                remaining = deadline - self._clock()
                if remaining <= 0 or not self._cv.wait(timeout=remaining):
                    break
            fresh = campaign.events[index:]
            return (
                list(fresh),
                index + len(fresh),
                campaign.state in TERMINAL_CAMPAIGN_STATES
                and index + len(fresh) == len(campaign.events),
            )

    def metrics(self) -> Dict:
        with self._lock:
            queue_depth = len(self._queue)
            leased = sum(1 for t in self.tasks.values() if t.state == "leased")  # det-ok: order-independent count
            campaign_states: Dict[str, int] = {}
            walls = {}
            for campaign_id in sorted(self.campaigns):
                campaign = self.campaigns[campaign_id]
                campaign_states[campaign.state] = campaign_states.get(campaign.state, 0) + 1
                walls[campaign_id] = (
                    campaign.wall_seconds
                    if campaign.wall_seconds is not None
                    else self._clock() - campaign.started
                )
            done = self.counters["jobs_done"]
            cached = self.counters["jobs_from_store"] + self.counters["jobs_deduped"]
            counters = dict(sorted(self.counters.items()))
        return {
            "jobs": counters,
            "queue_depth": queue_depth,
            "leased_tasks": leased,
            "cache_hit_rate": (cached / done) if done else 0.0,
            "store": {"hits": self.store.hits, "misses": self.store.misses},
            "campaigns": {
                "states": dict(sorted(campaign_states.items())),
                "wall_seconds": walls,
            },
        }

    # ------------------------------------------------------------------
    # Restart / resume
    # ------------------------------------------------------------------
    def resume(self) -> List[str]:
        """Re-admit campaigns a previous server life left unfinished.

        Completed jobs resolve from the journal/cache (``resolution ==
        "store"``) without re-running; only the remainder re-enters the
        queue.  Returns the resumed campaign ids.
        """
        resumed = []
        for record in self.store.load_campaigns():
            if record.get("state") in TERMINAL_CAMPAIGN_STATES:
                continue
            campaign_id = record.get("id")
            if not campaign_id or campaign_id in self.campaigns:  # conc-ok: resume() runs before worker threads start
                continue
            self.submit(record["spec"], campaign_id=campaign_id)
            resumed.append(campaign_id)
        return resumed
