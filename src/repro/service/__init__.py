"""Simulation-as-a-service: the campaign server subsystem.

Lifts the :mod:`repro.exec` execution substrate (content-addressed
cache, resume journal, progress events) behind a long-running,
stdlib-only HTTP service:

* :mod:`~repro.service.store` — the shared, concurrency-safe artifact
  store (same keys and layout as :class:`repro.exec.cache.ResultCache`);
* :mod:`~repro.service.spec` — campaign spec validation/expansion;
* :mod:`~repro.service.scheduler` — dedupe table, lease queue,
  campaign lifecycle, restart resume;
* :mod:`~repro.service.server` — the JSON API (``repro-sim serve``);
* :mod:`~repro.service.worker` — local worker threads and the remote
  worker loop (``repro-sim serve --worker http://head:PORT``);
* :mod:`~repro.service.client` — the urllib client the CLI and remote
  workers share (``repro-sim submit/status/fetch``).

See ``docs/SERVICE.md`` for the API reference and topology.
"""

from .client import ServiceClient, ServiceError
from .scheduler import Scheduler
from .server import DEFAULT_PORT, CampaignServer
from .spec import CampaignSpec, SpecError, parse_campaign, sweep_spec
from .store import ArtifactStore, FileLock, LockTimeout
from .worker import LocalWorkerPool, run_worker

__all__ = [
    "ArtifactStore",
    "CampaignServer",
    "CampaignSpec",
    "DEFAULT_PORT",
    "FileLock",
    "LocalWorkerPool",
    "LockTimeout",
    "Scheduler",
    "ServiceClient",
    "ServiceError",
    "SpecError",
    "parse_campaign",
    "run_worker",
    "sweep_spec",
]
