"""Campaign specifications: the JSON documents clients POST to the server.

Two kinds::

    {"kind": "sweep",                       # a Sweep grid (the common case)
     "workloads": [["compress"], ["go"]],
     "grid": {"active_list_size": [32, 64]},
     "machine": "big.2.16",
     "features": "REC/RS/RU",
     "commit_target": 1500,
     "max_cycles": 2000000,
     "label": "alist-ablation"}

    {"kind": "jobs",                        # explicit job list
     "jobs": [{"workload": ["compress"],
               "machine": "big.2.16",
               "features": "REC",
               "overrides": {"active_list_size": 32}}],
     "label": "one-off"}

Both expand to the *same* :class:`~repro.exec.jobs.Job` objects the
in-process engine runs, in the same deterministic order ``Sweep.jobs()``
produces (point-major, workload-minor) — which is what makes server
results bit-identical to a serial ``Sweep.run`` and lets concurrent
clients dedupe on content-addressed cache keys.

An optional ``"suite": {"iters": N, "extended": bool}`` selects the
workload suite; it participates in every job's cache key via the suite
fingerprint, so campaigns against different suites never collide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..exec.jobs import Job
from ..sim.runner import DEFAULT_COMMIT_TARGET, DEFAULT_MAX_CYCLES, RunSpec
from ..sim.sweep import Sweep

#: Suite defaults mirror :class:`repro.workloads.suite.WorkloadSuite`.
DEFAULT_SUITE_ITERS = 5000

_SWEEP_KEYS = {
    "kind", "label", "suite", "workloads", "grid", "machine", "features",
    "policy", "commit_target", "max_cycles",
}
_JOBS_KEYS = {"kind", "label", "suite", "jobs"}
_JOB_ENTRY_KEYS = {
    "workload", "machine", "features", "policy", "commit_target",
    "max_cycles", "confidence_threshold", "overrides",
}


class SpecError(ValueError):
    """A campaign spec failed validation; ``str(exc)`` is client-facing."""


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign: jobs + the suite they run against."""

    jobs: Tuple[Job, ...]
    suite_iters: int = DEFAULT_SUITE_ITERS
    suite_extended: bool = False
    label: str = ""
    raw: Dict = field(default_factory=dict, compare=False)

    @property
    def suite_args(self) -> Tuple[int, bool]:
        return (self.suite_iters, self.suite_extended)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _reject_unknown(payload: Dict, allowed, where: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    _require(not unknown, f"unknown {where} field(s): {unknown}")


def _parse_suite(payload: Dict) -> Tuple[int, bool]:
    suite = payload.get("suite", {})
    _require(isinstance(suite, dict), '"suite" must be an object')
    _reject_unknown(suite, {"iters", "extended"}, "suite")
    iters = suite.get("iters", DEFAULT_SUITE_ITERS)
    extended = suite.get("extended", False)
    _require(isinstance(iters, int) and iters > 0, '"suite.iters" must be a positive integer')
    _require(isinstance(extended, bool), '"suite.extended" must be a boolean')
    return iters, bool(extended)


def _parse_workloads(raw) -> List[Tuple[str, ...]]:
    _require(isinstance(raw, list) and raw, '"workloads" must be a non-empty list')
    out = []
    for entry in raw:
        if isinstance(entry, str):
            entry = [entry]
        _require(
            isinstance(entry, list) and entry and all(isinstance(n, str) for n in entry),
            f"workload entry {entry!r} must be a kernel name or list of names",
        )
        out.append(tuple(entry))
    return out


def _sweep_jobs(payload: Dict) -> List[Job]:
    _reject_unknown(payload, _SWEEP_KEYS, "sweep campaign")
    workloads = _parse_workloads(payload.get("workloads"))
    grid = payload.get("grid", {})
    _require(isinstance(grid, dict), '"grid" must map MachineConfig fields to value lists')
    for name, values in sorted(grid.items()):
        _require(
            isinstance(values, list) and values,
            f'grid field "{name}" must map to a non-empty list of values',
        )
    try:
        sweep = Sweep(
            workloads=workloads,
            grid={name: list(values) for name, values in sorted(grid.items())},
            machine=payload.get("machine", "big.2.16"),
            features=payload.get("features", "REC/RS/RU"),
            commit_target=payload.get("commit_target", DEFAULT_COMMIT_TARGET),
            max_cycles=payload.get("max_cycles", DEFAULT_MAX_CYCLES),
        )
    except ValueError as exc:
        raise SpecError(str(exc)) from exc
    jobs = sweep.jobs()
    policy = payload.get("policy")
    if policy is not None:
        jobs = [
            Job(
                spec=RunSpec(
                    workload=job.spec.workload,
                    machine=job.spec.machine,
                    features=job.spec.features,
                    policy=policy,
                    commit_target=job.spec.commit_target,
                    max_cycles=job.spec.max_cycles,
                ),
                overrides=job.overrides,
            )
            for job in jobs
        ]
    return jobs


def _job_entry(entry: Dict, index: int) -> Job:
    _require(isinstance(entry, dict), f"jobs[{index}] must be an object")
    _reject_unknown(entry, _JOB_ENTRY_KEYS, f"jobs[{index}]")
    workload = entry.get("workload")
    _require(
        isinstance(workload, list) and workload and all(isinstance(n, str) for n in workload),
        f'jobs[{index}].workload must be a non-empty list of kernel names',
    )
    overrides = entry.get("overrides", {})
    _require(isinstance(overrides, dict), f"jobs[{index}].overrides must be an object")
    spec = RunSpec(
        workload=tuple(workload),
        machine=entry.get("machine", "big.2.16"),
        features=entry.get("features", "REC/RS/RU"),
        policy=entry.get("policy"),
        commit_target=entry.get("commit_target", DEFAULT_COMMIT_TARGET),
        max_cycles=entry.get("max_cycles", DEFAULT_MAX_CYCLES),
        confidence_threshold=entry.get("confidence_threshold"),
    )
    try:
        job = Job(spec=spec, overrides=tuple(sorted(overrides.items())))
        job.resolved_config()  # validates machine/features/policy/override values
    except (TypeError, ValueError) as exc:
        raise SpecError(f"jobs[{index}]: {exc}") from exc
    return job


def parse_campaign(payload: Dict) -> CampaignSpec:
    """Validate a raw JSON campaign document; raises :class:`SpecError`."""
    _require(isinstance(payload, dict), "campaign spec must be a JSON object")
    kind = payload.get("kind", "sweep")
    label = payload.get("label", "")
    _require(isinstance(label, str), '"label" must be a string')
    suite_iters, suite_extended = _parse_suite(payload)
    if kind == "sweep":
        jobs = _sweep_jobs(payload)
        # A grid-less sweep is one job per workload; validate eagerly so a
        # bad machine/policy 400s at submit, not at execution.
        for index, job in enumerate(jobs):
            try:
                job.resolved_config()
            except ValueError as exc:
                raise SpecError(f"jobs[{index}]: {exc}") from exc
    elif kind == "jobs":
        _reject_unknown(payload, _JOBS_KEYS, "jobs campaign")
        entries = payload.get("jobs")
        _require(isinstance(entries, list) and entries, '"jobs" must be a non-empty list')
        jobs = [_job_entry(entry, i) for i, entry in enumerate(entries)]
    else:
        raise SpecError(f'unknown campaign kind {kind!r}; know ["sweep", "jobs"]')
    return CampaignSpec(
        jobs=tuple(jobs),
        suite_iters=suite_iters,
        suite_extended=suite_extended,
        label=label,
        raw=dict(payload),
    )


def sweep_spec(
    workloads,
    grid=None,
    machine: str = "big.2.16",
    features: str = "REC/RS/RU",
    commit_target: int = DEFAULT_COMMIT_TARGET,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    label: str = "",
) -> Dict:
    """Convenience builder for the sweep JSON document (client side)."""
    payload = {
        "kind": "sweep",
        "workloads": [list(w) if not isinstance(w, str) else [w] for w in workloads],
        "machine": machine,
        "features": features,
        "commit_target": commit_target,
        "max_cycles": max_cycles,
    }
    if grid:
        payload["grid"] = {name: list(values) for name, values in sorted(grid.items())}
    if label:
        payload["label"] = label
    return payload
