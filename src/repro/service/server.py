"""The campaign server: a stdlib-only JSON API over the scheduler.

``http.server.ThreadingHTTPServer`` + one handler — no frameworks, no
new dependencies.  One thread per request; long-lived requests (the
NDJSON event stream) coexist with submissions because every handler only
takes the scheduler lock for short critical sections.

API (see ``docs/SERVICE.md`` for the full reference):

===========  =============================  =====================================
``POST``     ``/campaigns``                 submit a campaign spec → ids
``GET``      ``/campaigns/{id}``            status document
``DELETE``   ``/campaigns/{id}``            cancel
``GET``      ``/campaigns/{id}/events``     NDJSON progress stream
``GET``      ``/jobs/{id}/result``          one job's result document
``GET``      ``/healthz``                   liveness + version
``GET``      ``/metrics``                   JSON counters
``POST``     ``/lease`` ``/complete`` ``/fail``  worker protocol
===========  =============================  =====================================
"""

from __future__ import annotations

import json
import os
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Union

from .. import __version__
from ..analysis.conc.sanitizer import current_sanitizer, enable_from_env
from ..stats.export import stats_to_dict
from ..exec.jobs import result_from_payload, spec_from_payload
from .scheduler import JOB_FAILED, Scheduler
from .spec import SpecError
from .store import ArtifactStore
from .worker import LocalWorkerPool

DEFAULT_PORT = 8752

_CAMPAIGN_RE = re.compile(r"^/campaigns/([A-Za-z0-9_.-]+)$")
_EVENTS_RE = re.compile(r"^/campaigns/([A-Za-z0-9_.-]+)/events$")
_RESULT_RE = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)/result$")

#: How long one blocking poll of the event stream waits before emitting
#: nothing and re-checking the client is still connected.
_EVENT_POLL_SECONDS = 5.0


def job_result_document(record, payload: Dict) -> Dict:
    """The canonical result document for ``GET /jobs/{id}/result`` —
    the stored payload re-serialised through :func:`stats_to_dict` so it
    matches ``repro-sim run --json`` field-for-field."""
    result = result_from_payload(payload)
    spec = spec_from_payload(payload["spec"])
    return {
        "job_id": record.job_id,
        "campaign_id": record.campaign_id,
        "key": record.key,
        "label": record.job.label(),
        "resolution": record.resolution,
        "spec": payload["spec"],
        "overrides": {name: value for name, value in record.job.overrides},
        "ipc": result.stats.ipc,
        "stats": stats_to_dict(result.stats),
        "per_program_ipc": dict(result.per_program_ipc),
        "machine": spec.machine,
    }


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the owning :class:`CampaignServer`."""

    server_version = f"repro-sim/{__version__}"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def scheduler(self) -> Scheduler:
        return self.server.campaign_server.scheduler  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.campaign_server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _send_json(self, status: int, document: Dict) -> None:
        body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_json(self) -> Optional[Dict]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/healthz":
                self._send_json(200, {"ok": True, "version": __version__})
            elif self.path == "/metrics":
                document = self.scheduler.metrics()
                sanitizer = self.server.campaign_server.sanitizer  # type: ignore[attr-defined]
                if sanitizer is not None:
                    document["conc_sanitizer"] = sanitizer.counts()
                self._send_json(200, document)
            elif match := _CAMPAIGN_RE.match(self.path):
                self._get_campaign(match.group(1))
            elif match := _EVENTS_RE.match(self.path):
                self._stream_events(match.group(1))
            elif match := _RESULT_RE.match(self.path):
                self._get_result(match.group(1))
            else:
                self._error(404, f"no such endpoint {self.path!r}")
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            body = self._read_json()
            if body is None:
                self._error(400, "request body is not valid JSON")
            elif self.path == "/campaigns":
                self._submit(body)
            elif self.path == "/lease":
                self._lease(body)
            elif self.path == "/complete":
                self._complete(body)
            elif self.path == "/fail":
                self._fail(body)
            else:
                self._error(404, f"no such endpoint {self.path!r}")
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        match = _CAMPAIGN_RE.match(self.path)
        if not match:
            self._error(404, f"no such endpoint {self.path!r}")
            return
        if self.scheduler.cancel(match.group(1)):
            self._send_json(200, self.scheduler.campaign_status(match.group(1)))
        else:
            self._error(404, f"no such campaign {match.group(1)!r}")

    # ------------------------------------------------------------------
    # Endpoint bodies
    # ------------------------------------------------------------------
    def _submit(self, body: Dict) -> None:
        try:
            status = self.scheduler.submit(body)
        except SpecError as exc:
            self._error(400, str(exc))
            return
        self._send_json(201, status)

    def _get_campaign(self, campaign_id: str) -> None:
        status = self.scheduler.campaign_status(campaign_id)
        if status is None:
            self._error(404, f"no such campaign {campaign_id!r}")
        else:
            self._send_json(200, status)

    def _get_result(self, job_id: str) -> None:
        record, payload = self.scheduler.job_result(job_id)
        if record is None:
            self._error(404, f"no such job {job_id!r}")
        elif payload is None:
            if record.state == JOB_FAILED:
                self._error(410, f"job {job_id} failed: {record.error}")
            else:
                self._error(409, f"job {job_id} is {record.state}")
        else:
            self._send_json(200, job_result_document(record, payload))

    def _stream_events(self, campaign_id: str) -> None:
        if self.scheduler.campaign_status(campaign_id) is None:
            self._error(404, f"no such campaign {campaign_id!r}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        index = 0
        while True:
            events, index, terminal = self.scheduler.events_since(
                campaign_id, index, timeout=_EVENT_POLL_SECONDS
            )
            for event in events:
                self.wfile.write((json.dumps(event, sort_keys=True) + "\n").encode("utf-8"))
            self.wfile.flush()
            if terminal:
                return

    def _lease(self, body: Dict) -> None:
        tasks = self.scheduler.lease(
            max_tasks=int(body.get("max_tasks", 1)),
            worker=str(body.get("worker", "remote")),
        )
        self._send_json(200, {"tasks": tasks})

    def _complete(self, body: Dict) -> None:
        for field in ("key", "payload"):
            if field not in body:
                self._error(400, f'missing "{field}"')
                return
        accepted = self.scheduler.complete(
            body["key"], body["payload"],
            worker=str(body.get("worker", "remote")),
            elapsed=float(body.get("elapsed", 0.0)),
        )
        self._send_json(200, {"accepted": accepted})

    def _fail(self, body: Dict) -> None:
        if "key" not in body:
            self._error(400, 'missing "key"')
            return
        accepted = self.scheduler.fail(
            body["key"], str(body.get("message", "worker reported failure")),
            worker=str(body.get("worker", "remote")),
        )
        self._send_json(200, {"accepted": accepted})


class CampaignServer:
    """Owns the store, the scheduler, local workers and the HTTP loop."""

    def __init__(
        self,
        store: Union[ArtifactStore, str, "os.PathLike"],
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        local_workers: Optional[int] = None,
        lease_ttl: float = 60.0,
        max_attempts: int = 3,
        resume: bool = True,
        verbose: bool = False,
    ):
        # The TSan-lite sanitizer must activate before any locks are
        # constructed (REPRO_CONC_SANITIZE=1; see docs/CONCURRENCY.md).
        enable_from_env()
        self.sanitizer = current_sanitizer()
        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store = store
        self.verbose = verbose
        self.scheduler = Scheduler(
            store, lease_ttl=lease_ttl, max_attempts=max_attempts
        )
        if local_workers is None:
            local_workers = os.cpu_count() or 1
        self.pool = LocalWorkerPool(self.scheduler, workers=local_workers, poll=0.2)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.campaign_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._resume = resume
        self.resumed: list = []

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def start(self) -> "CampaignServer":
        """Start workers + HTTP loop on a background thread (tests, CLI)."""
        if self._resume:
            self.resumed = self.scheduler.resume()
        self.pool.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self.pool.stop()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def serve_forever(self) -> None:
        """Foreground mode (the ``repro-sim serve`` entry point)."""
        if self._resume:
            self.resumed = self.scheduler.resume()
        self.pool.start()
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()
            self.pool.stop()
