"""Workers: turn leased tasks into results, locally or across hosts.

Local and remote workers share one execution path and one protocol —
lease → execute → complete/fail — differing only in transport:

* :class:`LocalWorkerPool` threads call the :class:`~repro.service.scheduler.Scheduler`
  directly (the head node's built-in capacity);
* :func:`run_worker` speaks the same three endpoints over HTTP
  (``repro-sim serve --worker http://head:PORT``), so a sweep grid
  shards across as many hosts as are pointed at the head.  Workers are
  stateless: results are pushed back into the head's artifact store and
  a worker that dies simply lets its lease expire and re-queue.

Execution itself is :func:`repro.exec.jobs.execute_payload` — the exact
function the multiprocessing pool's workers run, so service results are
bit-identical to ``Executor``/serial ones by construction.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from ..exec.jobs import execute_payload
from .client import ServiceClient

#: Worker-side wall clock (elapsed reporting, idle timeouts only).
_monotonic = time.monotonic  # det-ok: service timing, not simulation state


def execute_task(task: Dict) -> Dict:
    """Run one leased task document; returns the result payload."""
    return execute_payload(task["payload"], tuple(task["suite"]))


class LocalWorkerPool:
    """Daemon threads executing the head's own queue (no HTTP hop)."""

    def __init__(self, scheduler, workers: int = 1, poll: float = 0.5,
                 name: str = "local"):
        self.scheduler = scheduler
        self.workers = max(0, int(workers))
        self.poll = poll
        self.name = name
        self._stop = threading.Event()
        self._threads: list = []

    def start(self) -> None:
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._loop, args=(f"{self.name}-{index}",),
                name=f"repro-worker-{index}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()

    def _loop(self, worker_id: str) -> None:
        while not self._stop.is_set():
            leases = self.scheduler.lease(1, worker=worker_id)
            if not leases:
                self.scheduler.wait_for_work(timeout=self.poll)
                continue
            self._run_one(leases[0], worker_id)

    def _run_one(self, task: Dict, worker_id: str) -> None:
        started = _monotonic()
        try:
            payload = execute_task(task)
        except Exception as exc:  # noqa: BLE001 - reported as a task failure
            self.scheduler.fail(task["key"], f"{type(exc).__name__}: {exc}",
                                worker=worker_id)
            return
        self.scheduler.complete(
            task["key"], payload, worker=worker_id,
            elapsed=_monotonic() - started,
        )


def run_worker(
    head_url: str,
    worker_id: str,
    lease_size: int = 1,
    poll: float = 0.5,
    max_idle: Optional[float] = None,
    stop: Optional[threading.Event] = None,
) -> int:
    """Remote worker main loop: lease shards from ``head_url``, execute,
    push results back.  Returns the number of tasks executed.  Exits when
    ``stop`` is set or nothing has been leased for ``max_idle`` seconds
    (None = run forever, the daemon deployment mode)."""
    client = ServiceClient(head_url)
    executed = 0
    idle_since = _monotonic()
    while stop is None or not stop.is_set():
        tasks = client.lease(max_tasks=lease_size, worker=worker_id)
        if not tasks:
            if max_idle is not None and _monotonic() - idle_since > max_idle:
                break
            time.sleep(poll)
            continue
        idle_since = _monotonic()
        for task in tasks:
            started = _monotonic()
            try:
                payload = execute_task(task)
            except Exception as exc:  # noqa: BLE001 - reported to the head
                client.fail_task(task["key"], f"{type(exc).__name__}: {exc}",
                                 worker=worker_id)
                continue
            client.complete_task(
                task["key"], payload, worker=worker_id,
                elapsed=_monotonic() - started,
            )
            executed += 1
    return executed
