"""Workers: turn leased tasks into results, locally or across hosts.

Local and remote workers share one execution path and one protocol —
lease → execute → complete/fail — differing only in transport:

* :class:`LocalWorkerPool` threads call the :class:`~repro.service.scheduler.Scheduler`
  directly (the head node's built-in capacity);
* :func:`run_worker` speaks the same three endpoints over HTTP
  (``repro-sim serve --worker http://head:PORT``), so a sweep grid
  shards across as many hosts as are pointed at the head.  Workers are
  stateless: results are pushed back into the head's artifact store and
  a worker that dies simply lets its lease expire and re-queue.

Execution itself is :func:`repro.exec.jobs.execute_payload` — the exact
function the multiprocessing pool's workers run, so service results are
bit-identical to ``Executor``/serial ones by construction.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from ..exec.jobs import execute_payload, execute_payload_batch
from .client import ServiceClient

#: Worker-side wall clock (elapsed reporting, idle timeouts only).
_monotonic = time.monotonic  # det-ok: service timing, not simulation state


def execute_task(task: Dict) -> Dict:
    """Run one leased task document; returns the result payload."""
    return execute_payload(task["payload"], tuple(task["suite"]))


def execute_task_batch(tasks) -> Dict[str, tuple]:
    """Run a slice of leased tasks, lockstep-batching compatible ones.

    Tasks group by (suite args, machine); each multi-task group runs as
    one :class:`~repro.sim.batch.BatchRunner` batch, singletons take the
    classic path.  Returns ``{task key: ("ok", result_payload) |
    ("error", message)}`` — per-task, so the caller still completes or
    fails each lease individually and resume/dedup semantics are
    unchanged.
    """
    groups: Dict[tuple, list] = {}
    ordered: list = []  # (suite_args, group) in first-appearance order
    for task in tasks:
        group_key = (tuple(task["suite"]), task["payload"]["spec"]["machine"])
        group = groups.get(group_key)
        if group is None:
            group = groups[group_key] = []
            ordered.append((group_key[0], group))
        group.append(task)
    results: Dict[str, tuple] = {}
    for suite_args, group in ordered:
        if len(group) == 1:
            task = group[0]
            try:
                results[task["key"]] = ("ok", execute_payload(task["payload"], suite_args))
            except Exception as exc:  # noqa: BLE001 - reported per task
                results[task["key"]] = ("error", f"{type(exc).__name__}: {exc}")
            continue
        try:
            batch = execute_payload_batch([t["payload"] for t in group], suite_args)
        except Exception as exc:  # noqa: BLE001 - whole-batch failure
            message = f"{type(exc).__name__}: {exc}"
            batch = [("error", message)] * len(group)
        for task, (status, body) in zip(group, batch):
            results[task["key"]] = (status, body)
    return results


class LocalWorkerPool:
    """Daemon threads executing the head's own queue (no HTTP hop)."""

    def __init__(self, scheduler, workers: int = 1, poll: float = 0.5,
                 name: str = "local", batch_size: int = 1):
        self.scheduler = scheduler
        self.workers = max(0, int(workers))
        self.poll = poll
        self.name = name
        self.batch_size = max(1, int(batch_size))
        self._stop = threading.Event()
        self._threads: list = []

    def start(self) -> None:
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._loop, args=(f"{self.name}-{index}",),
                name=f"repro-worker-{index}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()

    def _loop(self, worker_id: str) -> None:
        while not self._stop.is_set():
            leases = self.scheduler.lease(self.batch_size, worker=worker_id)
            if not leases:
                self.scheduler.wait_for_work(timeout=self.poll)
                continue
            if len(leases) == 1:
                self._run_one(leases[0], worker_id)
            else:
                self._run_batch(leases, worker_id)

    def _run_one(self, task: Dict, worker_id: str) -> None:
        started = _monotonic()
        try:
            payload = execute_task(task)
        except Exception as exc:  # noqa: BLE001 - reported as a task failure
            self.scheduler.fail(task["key"], f"{type(exc).__name__}: {exc}",
                                worker=worker_id)
            return
        self.scheduler.complete(
            task["key"], payload, worker=worker_id,
            elapsed=_monotonic() - started,
        )

    def _run_batch(self, tasks, worker_id: str) -> None:
        started = _monotonic()
        results = execute_task_batch(tasks)
        elapsed = _monotonic() - started
        for task in tasks:
            status, body = results[task["key"]]
            if status == "ok":
                self.scheduler.complete(task["key"], body, worker=worker_id,
                                        elapsed=elapsed)
            else:
                self.scheduler.fail(task["key"], str(body), worker=worker_id)


def run_worker(
    head_url: str,
    worker_id: str,
    lease_size: int = 1,
    poll: float = 0.5,
    max_idle: Optional[float] = None,
    stop: Optional[threading.Event] = None,
    batch_size: int = 1,
) -> int:
    """Remote worker main loop: lease shards from ``head_url``, execute,
    push results back.  Returns the number of tasks executed.  Exits when
    ``stop`` is set or nothing has been leased for ``max_idle`` seconds
    (None = run forever, the daemon deployment mode).  With
    ``batch_size > 1`` each lease cycle asks for up to that many tasks
    and lockstep-batches the compatible ones; completion and failure are
    still reported per task key, so the head's artifact store, dedup and
    resume behaviour are unchanged."""
    client = ServiceClient(head_url)
    batch_size = max(1, int(batch_size))
    executed = 0
    idle_since = _monotonic()
    while stop is None or not stop.is_set():
        tasks = client.lease(
            max_tasks=max(lease_size, batch_size), worker=worker_id
        )
        if not tasks:
            if max_idle is not None and _monotonic() - idle_since > max_idle:
                break
            time.sleep(poll)
            continue
        idle_since = _monotonic()
        if batch_size > 1 and len(tasks) > 1:
            started = _monotonic()
            results = execute_task_batch(tasks)
            elapsed = _monotonic() - started
            for task in tasks:
                status, body = results[task["key"]]
                if status == "ok":
                    client.complete_task(task["key"], body, worker=worker_id,
                                         elapsed=elapsed)
                    executed += 1
                else:
                    client.fail_task(task["key"], str(body), worker=worker_id)
            continue
        for task in tasks:
            started = _monotonic()
            try:
                payload = execute_task(task)
            except Exception as exc:  # noqa: BLE001 - reported to the head
                client.fail_task(task["key"], f"{type(exc).__name__}: {exc}",
                                 worker=worker_id)
                continue
            client.complete_task(
                task["key"], payload, worker=worker_id,
                elapsed=_monotonic() - started,
            )
            executed += 1
    return executed
