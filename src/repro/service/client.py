"""Stdlib HTTP client for the campaign service (urllib only).

Used by the ``repro-sim submit/status/fetch`` subcommands, by remote
workers (the lease/complete/fail trio), and by tests.  Every method maps
one-to-one onto an endpoint documented in ``docs/SERVICE.md``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional

#: Client-side wall clock (poll deadlines only).
_monotonic = time.monotonic  # det-ok: client-side timeouts, not simulation state


class ServiceError(RuntimeError):
    """An HTTP error with the server's JSON error body attached."""

    def __init__(self, status: int, message: str):
        self.status = status
        # status 0 = transport failure (refused/unreachable), no HTTP reply.
        super().__init__(message if status == 0 else f"HTTP {status}: {message}")


class ServiceClient:
    """Thin JSON-over-HTTP wrapper around one campaign server."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: Optional[Dict] = None) -> Dict:
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise ServiceError(exc.code, detail) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.base_url}: {exc.reason}") from exc

    # ------------------------------------------------------------------
    # Campaign API
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict:
        return self._request("GET", "/metrics")

    def submit(self, spec: Dict) -> Dict:
        return self._request("POST", "/campaigns", spec)

    def status(self, campaign_id: str) -> Dict:
        return self._request("GET", f"/campaigns/{campaign_id}")

    def cancel(self, campaign_id: str) -> Dict:
        return self._request("DELETE", f"/campaigns/{campaign_id}")

    def result(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{job_id}/result")

    def events(self, campaign_id: str) -> Iterator[Dict]:
        """Stream the campaign's NDJSON progress events until terminal."""
        request = urllib.request.Request(
            f"{self.base_url}/campaigns/{campaign_id}/events"
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, exc.read().decode("utf-8", "replace")) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.base_url}: {exc.reason}") from exc

    def wait(self, campaign_id: str, poll: float = 0.2,
             timeout: Optional[float] = None) -> Dict:
        """Poll until the campaign reaches a terminal state."""
        deadline = None if timeout is None else _monotonic() + timeout
        while True:
            status = self.status(campaign_id)
            if status["state"] != "running":
                return status
            if deadline is not None and _monotonic() > deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll)

    def fetch_results(self, campaign_id: str) -> List[Dict]:
        """Every finished job's result document, in job order."""
        status = self.status(campaign_id)
        out = []
        for job in status["jobs"]:
            if job["state"] == "done":
                out.append(self.result(job["id"]))
        return out

    # ------------------------------------------------------------------
    # Worker API
    # ------------------------------------------------------------------
    def lease(self, max_tasks: int = 1, worker: str = "worker") -> List[Dict]:
        reply = self._request(
            "POST", "/lease", {"max_tasks": max_tasks, "worker": worker}
        )
        return reply["tasks"]

    def complete_task(self, key: str, payload: Dict, worker: str = "worker",
                      elapsed: float = 0.0) -> Dict:
        return self._request(
            "POST", "/complete",
            {"key": key, "payload": payload, "worker": worker, "elapsed": elapsed},
        )

    def fail_task(self, key: str, message: str, worker: str = "worker") -> Dict:
        return self._request(
            "POST", "/fail", {"key": key, "message": message, "worker": worker}
        )
