"""The RRISC instruction-set architecture.

Public surface:

* :mod:`repro.isa.registers` — logical register space
* :mod:`repro.isa.opcodes` — opcode inventory, formats, latencies
* :mod:`repro.isa.instruction` — decoded instruction objects
* :mod:`repro.isa.encoding` — 32-bit binary encode/decode
* :mod:`repro.isa.assembler` — two-pass assembler
* :mod:`repro.isa.program` — assembled program images
"""

from .assembler import Assembler, AssemblerError, assemble
from .encoding import EncodingError, decode, encode
from .instruction import INSTRUCTION_BYTES, Instruction
from .loader import LoaderError, load_program, save_program
from .opcodes import Format, FuClass, Op, OpInfo, info
from .program import DATA_BASE, Program, STACK_TOP, TEXT_BASE
from . import registers

__all__ = [
    "Assembler",
    "AssemblerError",
    "assemble",
    "EncodingError",
    "decode",
    "encode",
    "INSTRUCTION_BYTES",
    "Instruction",
    "LoaderError",
    "load_program",
    "save_program",
    "Format",
    "FuClass",
    "Op",
    "OpInfo",
    "info",
    "DATA_BASE",
    "Program",
    "STACK_TOP",
    "TEXT_BASE",
    "registers",
]
