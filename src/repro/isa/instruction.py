"""Decoded-instruction representation.

An :class:`Instruction` is the *static* form of one RRISC instruction:
opcode plus register/immediate operands, with the operand roles already
resolved into the unified logical register space (see
:mod:`repro.isa.registers`).  The pipeline stores these directly in its
active lists — which is exactly the paper's point: the active list
already holds "the decoded opcode and physical and logical register
operands", making recycling cheap.

Direct control transfers carry an absolute byte ``target`` (the
assembler resolves labels); the binary encoding converts to PC-relative
form and back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .opcodes import Format, Op, OpInfo, info
from .registers import FP_BASE, FP_ZERO_REG, ZERO_REG, reg_name

INSTRUCTION_BYTES = 4


@dataclass(frozen=True)
class Instruction:
    """One decoded static instruction.

    ``rd``/``ra``/``rb`` are raw 5-bit register numbers in their own
    class's namespace (the opcode determines int vs. fp); ``srcs`` and
    ``dst`` are the derived unified logical indices the renamer uses.
    Writes to a hardwired-zero register yield ``dst is None``.
    """

    op: Op
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0
    target: Optional[int] = None  # absolute byte address for direct branches
    srcs: Tuple[int, ...] = field(init=False)
    dst: Optional[int] = field(init=False)
    #: Cached OpInfo — a plain attribute, not a property: ``instr.info``
    #: is on every pipeline fast path (>100k reads per profile run) and
    #: a descriptor dispatch there is measurable.
    info: OpInfo = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        oi = info(self.op)
        srcs, dst = _operand_roles(self, oi)
        object.__setattr__(self, "srcs", srcs)
        object.__setattr__(self, "dst", dst)
        object.__setattr__(self, "info", oi)

    # Convenience predicates, forwarded from OpInfo ----------------------
    @property
    def is_branch(self) -> bool:
        return self.info.is_branch

    @property
    def is_cond_branch(self) -> bool:
        return self.info.is_cond_branch

    @property
    def is_load(self) -> bool:
        return self.info.is_load

    @property
    def is_store(self) -> bool:
        return self.info.is_store

    def __str__(self) -> str:  # assembly-ish rendering
        oi = self.info
        f = oi.fmt
        if f is Format.R3:
            c = "f" if oi.src_fp else "r"
            d = "f" if oi.dst_fp else "r"
            return f"{oi.name} {d}{self.rd}, {c}{self.ra}, {c}{self.rb}"
        if f is Format.R2I:
            return f"{oi.name} r{self.rd}, r{self.ra}, {self.imm}"
        if f is Format.RI:
            return f"{oi.name} r{self.rd}, {self.imm}"
        if f is Format.LOAD:
            d = "f" if oi.dst_fp else "r"
            return f"{oi.name} {d}{self.rd}, {self.imm}({'r'}{self.ra})"
        if f is Format.STORE:
            c = "f" if oi.src_fp else "r"
            return f"{oi.name} {c}{self.rb}, {self.imm}(r{self.ra})"
        if f is Format.BRANCH:
            return f"{oi.name} r{self.ra}, {self.target:#x}"
        if f is Format.JUMP:
            if oi.is_call:
                return f"{oi.name} r{self.rd}, {self.target:#x}"
            return f"{oi.name} {self.target:#x}"
        if f is Format.JUMP_REG:
            return f"{oi.name} (r{self.ra})"
        return oi.name

    def operand_names(self) -> str:
        """Unified-space operand summary, for debugging."""
        parts = []
        if self.dst is not None:
            parts.append(f"dst={reg_name(self.dst)}")
        if self.srcs:
            parts.append("srcs=" + ",".join(reg_name(s) for s in self.srcs))
        return " ".join(parts)


def _unified(raw: int, fp: bool) -> int:
    return raw + FP_BASE if fp else raw


def _drop_zero_dst(idx: int) -> Optional[int]:
    if idx == ZERO_REG or idx == FP_ZERO_REG:
        return None
    return idx


def _operand_roles(ins: Instruction, oi: OpInfo) -> Tuple[Tuple[int, ...], Optional[int]]:
    """Compute (unified source indices, unified dst index or None)."""
    f = oi.fmt
    if f is Format.R3:
        srcs = (_unified(ins.ra, oi.src_fp), _unified(ins.rb, oi.src_fp))
        dst = _drop_zero_dst(_unified(ins.rd, oi.dst_fp))
        if ins.op in (Op.CMOVEQ, Op.CMOVNE) and dst is not None:
            # Conditional moves merge with the old destination value.
            srcs = srcs + (dst,)
        return srcs, dst
    if f is Format.R2I:
        return (_unified(ins.ra, False),), _drop_zero_dst(_unified(ins.rd, False))
    if f is Format.RI:
        return (), _drop_zero_dst(_unified(ins.rd, False))
    if f is Format.LOAD:
        return (_unified(ins.ra, False),), _drop_zero_dst(_unified(ins.rd, oi.dst_fp))
    if f is Format.STORE:
        return (_unified(ins.ra, False), _unified(ins.rb, oi.src_fp)), None
    if f is Format.BRANCH:
        return (_unified(ins.ra, False),), None
    if f is Format.JUMP:
        if oi.is_call:
            return (), _drop_zero_dst(_unified(ins.rd, False))
        return (), None
    if f is Format.JUMP_REG:
        return (_unified(ins.ra, False),), None
    return (), None
