"""Binary program images: save/load assembled programs.

A simple container format ("RRX") holding the encoded text segment, the
data image, segment bases, the entry point and the label table — enough
to assemble once and reload later, and a genuine end-to-end exercise of
the 32-bit instruction encoding (every instruction round-trips through
:mod:`repro.isa.encoding` on save/load).

Layout (all little-endian):

====================  =================================================
field                 size
====================  =================================================
magic ``b"RRX1"``     4
text_base             8
data_base             8
entry                 8
text word count       4
data byte count       4
label count           4
text words            4 × count
data bytes            count
labels                per label: u16 name length, name utf-8, u64 addr
====================  =================================================
"""

from __future__ import annotations

import struct
from typing import Dict

from .encoding import decode, encode
from .instruction import INSTRUCTION_BYTES
from .program import Program

MAGIC = b"RRX1"


class LoaderError(ValueError):
    """Malformed image or unencodable program."""


def save_program(program: Program) -> bytes:
    """Serialise ``program`` into an RRX image."""
    words = []
    for i, ins in enumerate(program.instructions):
        pc = program.text_base + i * INSTRUCTION_BYTES
        try:
            words.append(encode(ins, pc))
        except ValueError as exc:
            raise LoaderError(f"instruction at {pc:#x} not encodable: {ins}") from exc
    out = bytearray()
    out += MAGIC
    out += struct.pack(
        "<QQQIII",
        program.text_base,
        program.data_base,
        program.entry,
        len(words),
        len(program.data),
        len(program.labels),
    )
    for word in words:
        out += struct.pack("<I", word)
    out += program.data
    for name, addr in sorted(program.labels.items()):
        encoded = name.encode("utf-8")
        out += struct.pack("<H", len(encoded))
        out += encoded
        out += struct.pack("<Q", addr)
    return bytes(out)


def load_program(image: bytes, name: str = "loaded") -> Program:
    """Reconstruct a :class:`Program` from an RRX image."""
    if image[:4] != MAGIC:
        raise LoaderError("bad magic: not an RRX image")
    header = struct.unpack_from("<QQQIII", image, 4)
    text_base, data_base, entry, n_words, n_data, n_labels = header
    offset = 4 + struct.calcsize("<QQQIII")
    instructions = []
    for i in range(n_words):
        (word,) = struct.unpack_from("<I", image, offset)
        offset += 4
        pc = text_base + i * INSTRUCTION_BYTES
        instructions.append(decode(word, pc))
    data = bytes(image[offset : offset + n_data])
    offset += n_data
    labels: Dict[str, int] = {}
    for _ in range(n_labels):
        (length,) = struct.unpack_from("<H", image, offset)
        offset += 2
        label = image[offset : offset + length].decode("utf-8")
        offset += length
        (addr,) = struct.unpack_from("<Q", image, offset)
        offset += 8
        labels[label] = addr
    if offset != len(image):
        raise LoaderError(f"trailing bytes in image ({len(image) - offset})")
    return Program(
        name=name,
        instructions=instructions,
        text_base=text_base,
        data=data,
        data_base=data_base,
        entry=entry,
        labels=labels,
    )
