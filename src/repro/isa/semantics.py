"""Architectural semantics of RRISC instructions.

Both the golden functional emulator and the pipeline's execute stage
call into this module, so the out-of-order core and the reference model
agree by construction — the commit-time co-simulation check in the
pipeline then verifies *ordering*, not arithmetic.

Value conventions:

* integer registers hold Python ints in signed 64-bit range,
* fp registers hold Python floats,
* memory holds raw unsigned 64-bit words; loads/stores convert.
"""

from __future__ import annotations

import math
import struct
from typing import Tuple

from .instruction import INSTRUCTION_BYTES, Instruction
from .opcodes import Op

_U64 = (1 << 64) - 1
_S64_SIGN = 1 << 63


def to_signed(u: int) -> int:
    """Reinterpret an unsigned 64-bit pattern as signed."""
    u &= _U64
    return u - (1 << 64) if u & _S64_SIGN else u


def to_unsigned(s: int) -> int:
    """Truncate a Python int to an unsigned 64-bit pattern."""
    return s & _U64


def wrap(s: int) -> int:
    """Wrap a Python int into signed 64-bit range."""
    return to_signed(to_unsigned(s))


def float_to_bits(f: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", f))[0]


def bits_to_float(u: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", u & _U64))[0]


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        return math.inf if (a > 0) == (math.copysign(1.0, b) > 0) else -math.inf
    try:
        return a / b
    except OverflowError:
        return math.inf if (a > 0) == (b > 0) else -math.inf


def _cvtfi(f: float) -> int:
    if math.isnan(f):
        return 0
    if f >= 2.0**63:
        return (1 << 63) - 1
    if f <= -(2.0**63):
        return -(1 << 63)
    return int(f)


_INT_ALU = {
    Op.ADD: lambda a, b: wrap(a + b),
    Op.SUB: lambda a, b: wrap(a - b),
    Op.MUL: lambda a, b: wrap(a * b),
    Op.AND: lambda a, b: to_signed(to_unsigned(a) & to_unsigned(b)),
    Op.OR: lambda a, b: to_signed(to_unsigned(a) | to_unsigned(b)),
    Op.XOR: lambda a, b: to_signed(to_unsigned(a) ^ to_unsigned(b)),
    Op.SLL: lambda a, b: to_signed(to_unsigned(a) << (b & 63)),
    Op.SRL: lambda a, b: to_signed(to_unsigned(a) >> (b & 63)),
    Op.SRA: lambda a, b: wrap(a >> (b & 63)),
    Op.CMPEQ: lambda a, b: 1 if a == b else 0,
    Op.CMPLT: lambda a, b: 1 if a < b else 0,
    Op.CMPLE: lambda a, b: 1 if a <= b else 0,
    Op.CMPULT: lambda a, b: 1 if to_unsigned(a) < to_unsigned(b) else 0,
}

_IMM_ALU = {
    Op.ADDI: Op.ADD,
    Op.SUBI: Op.SUB,
    Op.MULI: Op.MUL,
    Op.ANDI: Op.AND,
    Op.ORI: Op.OR,
    Op.XORI: Op.XOR,
    Op.SLLI: Op.SLL,
    Op.SRLI: Op.SRL,
    Op.SRAI: Op.SRA,
    Op.CMPEQI: Op.CMPEQ,
    Op.CMPLTI: Op.CMPLT,
}

_FP_ALU = {
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
    Op.FDIV: _fdiv,
    Op.FCMPEQ: lambda a, b: 1 if a == b else 0,
    Op.FCMPLT: lambda a, b: 1 if a < b else 0,
    Op.FCMPLE: lambda a, b: 1 if a <= b else 0,
}

def _idiv(a: int, b: int) -> int:
    """Truncating signed division; division by zero yields 0 (no traps)."""
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return wrap(-q if (a < 0) != (b < 0) else q)


def _irem(a: int, b: int) -> int:
    """Remainder consistent with _idiv; rem by zero yields the dividend."""
    if b == 0:
        return a
    return wrap(a - _idiv(a, b) * b)


def _fsqrt(a: float) -> float:
    if a < 0 or math.isnan(a):
        return math.nan
    return math.sqrt(a)


_EXTENDED = {
    Op.DIV: _idiv,
    Op.REM: _irem,
    Op.UMULH: lambda a, b: to_signed((to_unsigned(a) * to_unsigned(b)) >> 64),
    Op.SEXTB: lambda a, b: wrap((to_unsigned(a) & 0xFF) - ((to_unsigned(a) & 0x80) << 1)),
    Op.SEXTW: lambda a, b: wrap(
        (to_unsigned(a) & 0xFFFFFFFF) - ((to_unsigned(a) & 0x80000000) << 1)
    ),
    Op.FSQRT: lambda a, b: _fsqrt(a),
    Op.FNEG: lambda a, b: -a,
    Op.FABS: lambda a, b: abs(a),
}


_BRANCH_COND = {
    Op.BEQ: lambda a: a == 0,
    Op.BNE: lambda a: a != 0,
    Op.BLT: lambda a: a < 0,
    Op.BLE: lambda a: a <= 0,
    Op.BGT: lambda a: a > 0,
    Op.BGE: lambda a: a >= 0,
}


def compute_value(ins: Instruction, src_values: Tuple, pc: int):
    """Result value of a non-memory, value-producing instruction.

    ``src_values`` are the operand values in :attr:`Instruction.srcs`
    order.  Returns None for instructions with no destination.
    """
    op = ins.op
    if op in _INT_ALU:
        return _INT_ALU[op](src_values[0], src_values[1])
    if op in _IMM_ALU:
        return _INT_ALU[_IMM_ALU[op]](src_values[0], ins.imm)
    if op in _FP_ALU:
        return _FP_ALU[op](src_values[0], src_values[1])
    if op is Op.MOVI:
        return wrap(ins.imm)
    if op is Op.CVTIF:
        # CVTIF rd, ra, rb uses only ra (rb conventionally the zero reg).
        return float(src_values[0])
    if op is Op.CVTFI:
        return _cvtfi(src_values[0])
    if op in _EXTENDED:
        return _EXTENDED[op](src_values[0], src_values[1])
    if op in (Op.CMOVEQ, Op.CMOVNE):
        a, b, old_dst = src_values
        condition = (a == 0) if op is Op.CMOVEQ else (a != 0)
        return b if condition else old_dst
    if op is Op.JSR:
        return pc + INSTRUCTION_BYTES
    return None


def effective_address(ins: Instruction, base_value: int) -> int:
    """Byte address of a load/store, 8-byte aligned."""
    return to_unsigned(base_value + ins.imm) & ~0x7


def branch_outcome(ins: Instruction, src_values: Tuple, pc: int) -> Tuple[bool, int]:
    """(taken, target) of any control-transfer instruction."""
    op = ins.op
    if op in _BRANCH_COND:
        taken = _BRANCH_COND[op](src_values[0])
        target = ins.target if taken else pc + INSTRUCTION_BYTES
        return taken, target
    if op in (Op.BR, Op.JSR):
        return True, ins.target
    if op in (Op.JMP, Op.RET):
        return True, to_unsigned(src_values[0]) & ~0x3
    raise ValueError(f"not a branch: {ins}")


def load_value(word_bits: int, fp: bool):
    """Convert a raw memory word into a register value."""
    return bits_to_float(word_bits) if fp else to_signed(word_bits)


def store_bits(value, fp: bool) -> int:
    """Convert a register value into a raw memory word."""
    return float_to_bits(value) if fp else to_unsigned(value)
