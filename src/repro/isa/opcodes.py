"""Opcode definitions, instruction formats and latency classes.

The RRISC ISA is a small 64-bit load/store architecture whose opcode
inventory is just large enough to express the synthetic SPEC95-analog
workloads: integer ALU and multiply, IEEE-ish floating point, 64-bit
loads/stores, compare-against-zero conditional branches (Alpha style)
and direct/indirect jumps with call/return hints for the return-address
stack.

Execution latencies follow the DEC Alpha 21264 values the paper assumes
(Section 4): single-cycle integer ALU, 7-cycle integer multiply,
4-cycle FP add/multiply/compare/convert, 12-cycle FP divide.  Load
latency is *not* fixed here — the data-cache model supplies it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Format(enum.Enum):
    """Assembly/encoding format of an opcode."""

    R3 = "r3"  # op rd, ra, rb
    R2I = "r2i"  # op rd, ra, imm
    RI = "ri"  # op rd, imm
    LOAD = "load"  # op rd, imm(ra)
    STORE = "store"  # op rb, imm(ra)
    BRANCH = "branch"  # op ra, label        (conditional, vs. zero)
    JUMP = "jump"  # op label             (BR) / op rd, label (JSR)
    JUMP_REG = "jump_reg"  # op (ra)              (JMP / RET)
    NONE = "none"  # op                   (NOP / HALT)


class FuClass(enum.Enum):
    """Functional-unit class an opcode issues to.

    The paper's machine has 12 integer units (8 of which can also
    perform load/store) and 6 floating-point units.  ``LDST`` ops
    require one of the load/store-capable integer units.
    """

    INT = "int"
    FP = "fp"
    LDST = "ldst"
    NONE = "none"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    name: str
    fmt: Format
    fu: FuClass
    latency: int
    dst_fp: bool = False
    src_fp: bool = False
    is_load: bool = False
    is_store: bool = False
    is_cond_branch: bool = False
    is_uncond_branch: bool = False
    is_indirect: bool = False
    is_call: bool = False
    is_return: bool = False
    is_halt: bool = False

    @property
    def is_branch(self) -> bool:
        """True for any control-transfer instruction."""
        return self.is_cond_branch or self.is_uncond_branch

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    @property
    def has_dst(self) -> bool:
        return self.fmt in (Format.R3, Format.R2I, Format.RI, Format.LOAD) or (
            self.fmt is Format.JUMP and self.is_call
        )


# Latencies (cycles in execute).  Loads take ``LAT_ALU`` plus whatever the
# data cache reports.
LAT_ALU = 1
LAT_MUL = 7
LAT_FP = 4
LAT_FDIV = 12
LAT_IDIV = 20
LAT_FSQRT = 16


def _build_table() -> "dict[Op, OpInfo]":
    spec = {
        # --- integer ALU -------------------------------------------------
        Op.ADD: OpInfo("add", Format.R3, FuClass.INT, LAT_ALU),
        Op.SUB: OpInfo("sub", Format.R3, FuClass.INT, LAT_ALU),
        Op.MUL: OpInfo("mul", Format.R3, FuClass.INT, LAT_MUL),
        Op.AND: OpInfo("and", Format.R3, FuClass.INT, LAT_ALU),
        Op.OR: OpInfo("or", Format.R3, FuClass.INT, LAT_ALU),
        Op.XOR: OpInfo("xor", Format.R3, FuClass.INT, LAT_ALU),
        Op.SLL: OpInfo("sll", Format.R3, FuClass.INT, LAT_ALU),
        Op.SRL: OpInfo("srl", Format.R3, FuClass.INT, LAT_ALU),
        Op.SRA: OpInfo("sra", Format.R3, FuClass.INT, LAT_ALU),
        Op.CMPEQ: OpInfo("cmpeq", Format.R3, FuClass.INT, LAT_ALU),
        Op.CMPLT: OpInfo("cmplt", Format.R3, FuClass.INT, LAT_ALU),
        Op.CMPLE: OpInfo("cmple", Format.R3, FuClass.INT, LAT_ALU),
        Op.CMPULT: OpInfo("cmpult", Format.R3, FuClass.INT, LAT_ALU),
        # --- integer ALU, immediate forms --------------------------------
        Op.ADDI: OpInfo("addi", Format.R2I, FuClass.INT, LAT_ALU),
        Op.SUBI: OpInfo("subi", Format.R2I, FuClass.INT, LAT_ALU),
        Op.MULI: OpInfo("muli", Format.R2I, FuClass.INT, LAT_MUL),
        Op.ANDI: OpInfo("andi", Format.R2I, FuClass.INT, LAT_ALU),
        Op.ORI: OpInfo("ori", Format.R2I, FuClass.INT, LAT_ALU),
        Op.XORI: OpInfo("xori", Format.R2I, FuClass.INT, LAT_ALU),
        Op.SLLI: OpInfo("slli", Format.R2I, FuClass.INT, LAT_ALU),
        Op.SRLI: OpInfo("srli", Format.R2I, FuClass.INT, LAT_ALU),
        Op.SRAI: OpInfo("srai", Format.R2I, FuClass.INT, LAT_ALU),
        Op.CMPEQI: OpInfo("cmpeqi", Format.R2I, FuClass.INT, LAT_ALU),
        Op.CMPLTI: OpInfo("cmplti", Format.R2I, FuClass.INT, LAT_ALU),
        Op.MOVI: OpInfo("movi", Format.RI, FuClass.INT, LAT_ALU),
        # --- floating point ----------------------------------------------
        Op.FADD: OpInfo("fadd", Format.R3, FuClass.FP, LAT_FP, dst_fp=True, src_fp=True),
        Op.FSUB: OpInfo("fsub", Format.R3, FuClass.FP, LAT_FP, dst_fp=True, src_fp=True),
        Op.FMUL: OpInfo("fmul", Format.R3, FuClass.FP, LAT_FP, dst_fp=True, src_fp=True),
        Op.FDIV: OpInfo("fdiv", Format.R3, FuClass.FP, LAT_FDIV, dst_fp=True, src_fp=True),
        Op.FCMPEQ: OpInfo("fcmpeq", Format.R3, FuClass.FP, LAT_FP, src_fp=True),
        Op.FCMPLT: OpInfo("fcmplt", Format.R3, FuClass.FP, LAT_FP, src_fp=True),
        Op.FCMPLE: OpInfo("fcmple", Format.R3, FuClass.FP, LAT_FP, src_fp=True),
        Op.CVTIF: OpInfo("cvtif", Format.R3, FuClass.FP, LAT_FP, dst_fp=True),
        Op.CVTFI: OpInfo("cvtfi", Format.R3, FuClass.FP, LAT_FP, src_fp=True),
        # --- memory -------------------------------------------------------
        Op.LD: OpInfo("ld", Format.LOAD, FuClass.LDST, LAT_ALU, is_load=True),
        Op.ST: OpInfo("st", Format.STORE, FuClass.LDST, LAT_ALU, is_store=True),
        Op.FLD: OpInfo("fld", Format.LOAD, FuClass.LDST, LAT_ALU, dst_fp=True, is_load=True),
        Op.FST: OpInfo(
            "fst", Format.STORE, FuClass.LDST, LAT_ALU, src_fp=True, is_store=True
        ),
        # --- control ------------------------------------------------------
        Op.BEQ: OpInfo("beq", Format.BRANCH, FuClass.INT, LAT_ALU, is_cond_branch=True),
        Op.BNE: OpInfo("bne", Format.BRANCH, FuClass.INT, LAT_ALU, is_cond_branch=True),
        Op.BLT: OpInfo("blt", Format.BRANCH, FuClass.INT, LAT_ALU, is_cond_branch=True),
        Op.BLE: OpInfo("ble", Format.BRANCH, FuClass.INT, LAT_ALU, is_cond_branch=True),
        Op.BGT: OpInfo("bgt", Format.BRANCH, FuClass.INT, LAT_ALU, is_cond_branch=True),
        Op.BGE: OpInfo("bge", Format.BRANCH, FuClass.INT, LAT_ALU, is_cond_branch=True),
        Op.BR: OpInfo("br", Format.JUMP, FuClass.INT, LAT_ALU, is_uncond_branch=True),
        Op.JSR: OpInfo(
            "jsr", Format.JUMP, FuClass.INT, LAT_ALU, is_uncond_branch=True, is_call=True
        ),
        Op.JMP: OpInfo(
            "jmp",
            Format.JUMP_REG,
            FuClass.INT,
            LAT_ALU,
            is_uncond_branch=True,
            is_indirect=True,
        ),
        Op.RET: OpInfo(
            "ret",
            Format.JUMP_REG,
            FuClass.INT,
            LAT_ALU,
            is_uncond_branch=True,
            is_indirect=True,
            is_return=True,
        ),
        # --- misc ----------------------------------------------------------
        Op.NOP: OpInfo("nop", Format.NONE, FuClass.INT, LAT_ALU),
        Op.HALT: OpInfo("halt", Format.NONE, FuClass.INT, LAT_ALU, is_halt=True),
        # --- extended compute ops -------------------------------------------
        Op.DIV: OpInfo("div", Format.R3, FuClass.INT, LAT_IDIV),
        Op.REM: OpInfo("rem", Format.R3, FuClass.INT, LAT_IDIV),
        Op.UMULH: OpInfo("umulh", Format.R3, FuClass.INT, LAT_MUL),
        # Conditional moves read their destination too (handled in
        # instruction.py's operand derivation).
        Op.CMOVEQ: OpInfo("cmoveq", Format.R3, FuClass.INT, LAT_ALU),
        Op.CMOVNE: OpInfo("cmovne", Format.R3, FuClass.INT, LAT_ALU),
        Op.SEXTB: OpInfo("sextb", Format.R3, FuClass.INT, LAT_ALU),
        Op.SEXTW: OpInfo("sextw", Format.R3, FuClass.INT, LAT_ALU),
        Op.FSQRT: OpInfo("fsqrt", Format.R3, FuClass.FP, LAT_FSQRT, dst_fp=True, src_fp=True),
        Op.FNEG: OpInfo("fneg", Format.R3, FuClass.FP, LAT_FP, dst_fp=True, src_fp=True),
        Op.FABS: OpInfo("fabs", Format.R3, FuClass.FP, LAT_FP, dst_fp=True, src_fp=True),
    }
    return spec


class Op(enum.IntEnum):
    """Opcode numbering (stable: used by the binary encoding)."""

    ADD = 0
    SUB = 1
    MUL = 2
    AND = 3
    OR = 4
    XOR = 5
    SLL = 6
    SRL = 7
    SRA = 8
    CMPEQ = 9
    CMPLT = 10
    CMPLE = 11
    CMPULT = 12
    ADDI = 13
    SUBI = 14
    MULI = 15
    ANDI = 16
    ORI = 17
    XORI = 18
    SLLI = 19
    SRLI = 20
    SRAI = 21
    CMPEQI = 22
    CMPLTI = 23
    MOVI = 24
    FADD = 25
    FSUB = 26
    FMUL = 27
    FDIV = 28
    FCMPEQ = 29
    FCMPLT = 30
    FCMPLE = 31
    CVTIF = 32
    CVTFI = 33
    LD = 34
    ST = 35
    FLD = 36
    FST = 37
    BEQ = 38
    BNE = 39
    BLT = 40
    BLE = 41
    BGT = 42
    BGE = 43
    BR = 44
    JSR = 45
    JMP = 46
    RET = 47
    NOP = 48
    HALT = 49
    # --- extended compute ops (appended; values are part of the encoding)
    DIV = 50
    REM = 51
    UMULH = 52
    CMOVEQ = 53
    CMOVNE = 54
    SEXTB = 55
    SEXTW = 56
    FSQRT = 57
    FNEG = 58
    FABS = 59


#: Opcode → :class:`OpInfo` lookup table.
OP_INFO = _build_table()

#: Mnemonic → :class:`Op` lookup used by the assembler.
MNEMONICS = {info.name: op for op, info in OP_INFO.items()}


def info(op: "Op") -> OpInfo:
    """Return the :class:`OpInfo` record for ``op``."""
    return OP_INFO[op]
