"""Logical register definitions for the RRISC ISA.

The simulated ISA has 32 integer registers (``r0`` .. ``r31``) and 32
floating-point registers (``f0`` .. ``f31``).  Following the Alpha
convention used by the paper's compiler toolchain, the highest-numbered
register of each file reads as zero and ignores writes.

Internally the simulator uses a *unified* logical register index space:
integer register ``rN`` is index ``N`` and floating-point register
``fN`` is index ``32 + N``.  The unified space keeps the rename map a
single flat array per hardware context while the physical register
files (and free lists) remain split per class, matching the paper's
"each register file (fp and integer)" sizing.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_LOGICAL_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Index of the hardwired-zero integer register (``r31``).
ZERO_REG = 31
#: Unified index of the hardwired-zero floating-point register (``f31``).
FP_ZERO_REG = NUM_INT_REGS + 31

#: Conventional role assignments (mirrors the Alpha calling convention
#: closely enough for the synthetic workloads).
RETURN_ADDRESS_REG = 26  # ra
STACK_POINTER_REG = 30  # sp

FP_BASE = NUM_INT_REGS


def is_fp(index: int) -> bool:
    """Return True when a unified logical register index names an FP register."""
    return index >= FP_BASE


def is_zero(index: int) -> bool:
    """Return True for either hardwired-zero register."""
    return index == ZERO_REG or index == FP_ZERO_REG


def int_reg(n: int) -> int:
    """Unified index of integer register ``rN``."""
    if not 0 <= n < NUM_INT_REGS:
        raise ValueError(f"integer register out of range: r{n}")
    return n


def fp_reg(n: int) -> int:
    """Unified index of floating-point register ``fN``."""
    if not 0 <= n < NUM_FP_REGS:
        raise ValueError(f"fp register out of range: f{n}")
    return FP_BASE + n


def reg_name(index: int) -> str:
    """Human-readable name for a unified logical register index."""
    if not 0 <= index < NUM_LOGICAL_REGS:
        raise ValueError(f"logical register out of range: {index}")
    if index < FP_BASE:
        return f"r{index}"
    return f"f{index - FP_BASE}"


def parse_reg(name: str) -> int:
    """Parse ``rN`` / ``fN`` (case-insensitive) into a unified index.

    Also accepts the conventional aliases ``ra`` (return address),
    ``sp`` (stack pointer) and ``zero``.
    """
    text = name.strip().lower()
    if text == "ra":
        return RETURN_ADDRESS_REG
    if text == "sp":
        return STACK_POINTER_REG
    if text == "zero":
        return ZERO_REG
    if text == "fzero":
        return FP_ZERO_REG
    if len(text) < 2 or text[0] not in "rf":
        raise ValueError(f"bad register name: {name!r}")
    try:
        n = int(text[1:])
    except ValueError as exc:
        raise ValueError(f"bad register name: {name!r}") from exc
    if text[0] == "r":
        return int_reg(n)
    return fp_reg(n)
