"""A small two-pass assembler for the RRISC ISA.

Syntax, one statement per line::

    # comment
            .data
    table:  .word 1, 2, 3          # 64-bit words
    buf:    .space 256             # zero-filled bytes
    pi:     .double 3.14159        # 64-bit IEEE double
            .text
    main:   movi  r1, 0
    loop:   ld    r2, 0(r3)
            add   r1, r1, r2
            addi  r3, r3, 8
            bne   r2, loop
            halt

Labels resolve to byte addresses; an immediate operand may be a label
(it assembles to the label's address, handy for ``movi rX, table``).
Branch and jump targets may be labels or absolute integers.
"""

from __future__ import annotations

import re
import struct
from typing import Dict, List, Optional, Tuple

from .instruction import INSTRUCTION_BYTES, Instruction
from .opcodes import Format, MNEMONICS, info
from .program import DATA_BASE, Program, TEXT_BASE
from .registers import parse_reg, FP_BASE

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")

#: Pseudo-instructions: each expands to exactly one real instruction,
#: so the first pass's size accounting is unaffected.  Operand
#: placeholders {0}, {1}, ... are substituted textually.
#: R3 opcodes that are semantically unary; the assembler lets them take
#: two operands and fills the unused rb slot with the zero register.
UNARY_R3 = {"sextb", "sextw", "fsqrt", "fneg", "fabs"}

PSEUDO_OPS = {
    "mov": (2, "or {0}, {1}, zero"),
    "fmov": (2, "fadd {0}, {1}, fzero"),
    "neg": (2, "sub {0}, zero, {1}"),
    "not": (2, "xori {0}, {1}, -1"),
    "clr": (1, "movi {0}, 0"),
    "inc": (1, "addi {0}, {0}, 1"),
    "dec": (1, "subi {0}, {0}, 1"),
    "bz": (2, "beq {0}, {1}"),
    "bnz": (2, "bne {0}, {1}"),
    "j": (1, "br {0}"),
}


class AssemblerError(ValueError):
    """Raised for any syntax or resolution error, with line context."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _split_statement(line: str) -> Tuple[Optional[str], str]:
    """Strip comments and split an optional leading ``label:``."""
    code = line.split("#", 1)[0].strip()
    if not code:
        return None, ""
    label = None
    if ":" in code:
        head, rest = code.split(":", 1)
        head = head.strip()
        if _LABEL_RE.match(head):
            label = head
            code = rest.strip()
    return label, code


def _parse_int(token: str, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblerError(lineno, f"bad integer {token!r}") from exc


class Assembler:
    """Two-pass assembler producing a :class:`~repro.isa.program.Program`."""

    def __init__(self, text_base: int = TEXT_BASE, data_base: int = DATA_BASE):
        self.text_base = text_base
        self.data_base = data_base

    def assemble(self, source: str, name: str = "program") -> Program:
        labels = self._first_pass(source)
        instructions, data = self._second_pass(source, labels)
        return Program(
            name=name,
            instructions=instructions,
            text_base=self.text_base,
            data=bytes(data),
            data_base=self.data_base,
            labels=labels,
        )

    # ------------------------------------------------------------------
    def _first_pass(self, source: str) -> Dict[str, int]:
        labels: Dict[str, int] = {}
        text_off = 0
        data_off = 0
        section = "text"
        for lineno, line in enumerate(source.splitlines(), start=1):
            label, code = _split_statement(line)
            if label is not None:
                if label in labels:
                    raise AssemblerError(lineno, f"duplicate label {label!r}")
                base = self.text_base if section == "text" else self.data_base
                off = text_off if section == "text" else data_off
                labels[label] = base + off
            if not code:
                continue
            if code.startswith("."):
                section, text_off, data_off = self._directive_size(
                    code, lineno, section, text_off, data_off, labels, label
                )
            else:
                if section != "text":
                    raise AssemblerError(lineno, "instruction outside .text")
                text_off += INSTRUCTION_BYTES
        return labels

    def _directive_size(
        self,
        code: str,
        lineno: int,
        section: str,
        text_off: int,
        data_off: int,
        labels: Dict[str, int],
        label: Optional[str],
    ) -> Tuple[str, int, int]:
        parts = code.split(None, 1)
        directive = parts[0]
        arg = parts[1] if len(parts) > 1 else ""
        if directive == ".text":
            return "text", text_off, data_off
        if directive == ".data":
            return "data", text_off, data_off
        if section != "data":
            raise AssemblerError(lineno, f"{directive} outside .data")
        if directive == ".word":
            count = len([a for a in arg.split(",") if a.strip()])
            if count == 0:
                raise AssemblerError(lineno, ".word needs at least one value")
            data_off += 8 * count
        elif directive == ".double":
            count = len([a for a in arg.split(",") if a.strip()])
            if count == 0:
                raise AssemblerError(lineno, ".double needs at least one value")
            data_off += 8 * count
        elif directive == ".space":
            n = _parse_int(arg.strip(), lineno)
            if n < 0:
                raise AssemblerError(lineno, ".space size must be non-negative")
            data_off += n
        elif directive == ".align":
            n = _parse_int(arg.strip(), lineno)
            if n <= 0 or n & (n - 1):
                raise AssemblerError(lineno, ".align needs a power of two")
            pad = (-data_off) % n
            data_off += pad
            if label is not None:
                labels[label] = self.data_base + data_off
        else:
            raise AssemblerError(lineno, f"unknown directive {directive!r}")
        return section, text_off, data_off

    # ------------------------------------------------------------------
    def _second_pass(
        self, source: str, labels: Dict[str, int]
    ) -> Tuple[List[Instruction], bytearray]:
        instructions: List[Instruction] = []
        data = bytearray()
        section = "text"
        for lineno, line in enumerate(source.splitlines(), start=1):
            _, code = _split_statement(line)
            if not code:
                continue
            if code.startswith("."):
                section = self._emit_directive(code, lineno, section, data, labels)
                continue
            pc = self.text_base + len(instructions) * INSTRUCTION_BYTES
            instructions.append(self._emit_instruction(code, lineno, pc, labels))
        return instructions, data

    def _emit_directive(
        self,
        code: str,
        lineno: int,
        section: str,
        data: bytearray,
        labels: Dict[str, int],
    ) -> str:
        parts = code.split(None, 1)
        directive = parts[0]
        arg = parts[1] if len(parts) > 1 else ""
        if directive == ".text":
            return "text"
        if directive == ".data":
            return "data"
        if directive == ".word":
            for token in arg.split(","):
                token = token.strip()
                if not token:
                    continue
                value = labels.get(token)
                if value is None:
                    value = _parse_int(token, lineno)
                value &= (1 << 64) - 1
                if value >= 1 << 63:
                    value -= 1 << 64
                data.extend(struct.pack("<q", value))
        elif directive == ".double":
            for token in arg.split(","):
                token = token.strip()
                if not token:
                    continue
                try:
                    value = float(token)
                except ValueError as exc:
                    raise AssemblerError(lineno, f"bad float {token!r}") from exc
                data.extend(struct.pack("<d", value))
        elif directive == ".space":
            data.extend(b"\x00" * _parse_int(arg.strip(), lineno))
        elif directive == ".align":
            n = _parse_int(arg.strip(), lineno)
            data.extend(b"\x00" * ((-len(data)) % n))
        return section

    def _resolve(self, token: str, labels: Dict[str, int], lineno: int) -> int:
        token = token.strip()
        if token in labels:
            return labels[token]
        return _parse_int(token, lineno)

    def _emit_instruction(
        self, code: str, lineno: int, pc: int, labels: Dict[str, int]
    ) -> Instruction:
        parts = code.split(None, 1)
        mnem = parts[0].lower()
        if mnem in PSEUDO_OPS:
            arity, template = PSEUDO_OPS[mnem]
            operands = [t.strip() for t in parts[1].split(",")] if len(parts) > 1 else []
            if len(operands) != arity:
                raise AssemblerError(
                    lineno, f"{mnem} takes {arity} operands, got {len(operands)}"
                )
            code = template.format(*operands)
            parts = code.split(None, 1)
            mnem = parts[0].lower()
        op = MNEMONICS.get(mnem)
        if op is None:
            raise AssemblerError(lineno, f"unknown mnemonic {mnem!r}")
        oi = info(op)
        raw_ops = [t.strip() for t in parts[1].split(",")] if len(parts) > 1 else []

        def reg(i: int, want_fp: bool) -> int:
            try:
                unified = parse_reg(raw_ops[i])
            except (ValueError, IndexError) as exc:
                raise AssemblerError(lineno, f"bad operand {i} in {code!r}") from exc
            fp = unified >= FP_BASE
            if fp != want_fp:
                kind = "fp" if want_fp else "integer"
                raise AssemblerError(lineno, f"operand {i} of {mnem} must be {kind}")
            return unified - FP_BASE if fp else unified

        def need(n: int) -> None:
            if len(raw_ops) != n:
                raise AssemblerError(lineno, f"{mnem} takes {n} operands, got {len(raw_ops)}")

        f = oi.fmt
        if f is Format.R3:
            if mnem in UNARY_R3 and len(raw_ops) == 2:
                return Instruction(op, rd=reg(0, oi.dst_fp), ra=reg(1, oi.src_fp), rb=31)
            need(3)
            return Instruction(
                op, rd=reg(0, oi.dst_fp), ra=reg(1, oi.src_fp), rb=reg(2, oi.src_fp)
            )
        if f is Format.R2I:
            need(3)
            return Instruction(
                op, rd=reg(0, False), ra=reg(1, False),
                imm=self._resolve(raw_ops[2], labels, lineno),
            )
        if f is Format.RI:
            need(2)
            return Instruction(op, rd=reg(0, False), imm=self._resolve(raw_ops[1], labels, lineno))
        if f in (Format.LOAD, Format.STORE):
            need(2)
            m = _MEM_RE.match(raw_ops[1].replace(" ", ""))
            if not m:
                raise AssemblerError(lineno, f"bad memory operand {raw_ops[1]!r}")
            imm_tok, base_tok = m.groups()
            imm = self._resolve(imm_tok, labels, lineno)
            try:
                base = parse_reg(base_tok)
            except ValueError as exc:
                raise AssemblerError(lineno, f"bad base register {base_tok!r}") from exc
            if base >= FP_BASE:
                raise AssemblerError(lineno, "base register must be integer")
            if f is Format.LOAD:
                return Instruction(op, rd=reg(0, oi.dst_fp), ra=base, imm=imm)
            return Instruction(op, rb=reg(0, oi.src_fp), ra=base, imm=imm)
        if f is Format.BRANCH:
            need(2)
            return Instruction(
                op, ra=reg(0, False), target=self._resolve(raw_ops[1], labels, lineno)
            )
        if f is Format.JUMP:
            if oi.is_call:
                need(2)
                return Instruction(
                    op, rd=reg(0, False), target=self._resolve(raw_ops[1], labels, lineno)
                )
            need(1)
            return Instruction(op, target=self._resolve(raw_ops[0], labels, lineno))
        if f is Format.JUMP_REG:
            need(1)
            token = raw_ops[0].strip("() ")
            try:
                base = parse_reg(token)
            except ValueError as exc:
                raise AssemblerError(lineno, f"bad register {token!r}") from exc
            return Instruction(op, ra=base)
        need(0)
        return Instruction(op)


def assemble(source: str, name: str = "program", **kwargs) -> Program:
    """Convenience wrapper: assemble ``source`` into a Program."""
    return Assembler(**kwargs).assemble(source, name=name)
