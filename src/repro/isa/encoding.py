"""Binary encoding and decoding of RRISC instructions.

Instructions are fixed 32-bit words:

====================  =============================================
bits                  meaning
====================  =============================================
``[31:26]``           opcode (6 bits)
``[25:21]``           ``rd`` (or the data register of a store)
``[20:16]``           ``ra``
``[15:11]``           ``rb`` (register formats)
``[15:0]``            signed 16-bit immediate (immediate formats)
``[15:0]``            signed word offset from PC+4 (conditional branch)
``[20:0]``            signed word offset from PC+4 (BR/JSR)
====================  =============================================

Decoding a direct branch needs the instruction's own address to
reconstruct the absolute target, so :func:`decode` takes ``pc``.
"""

from __future__ import annotations

from .instruction import INSTRUCTION_BYTES, Instruction
from .opcodes import Format, Op, info

_OPC_SHIFT = 26
_RD_SHIFT = 21
_RA_SHIFT = 16
_RB_SHIFT = 11
_IMM16_MASK = 0xFFFF
_OFF21_MASK = 0x1FFFFF

IMM16_MIN = -(1 << 15)
IMM16_MAX = (1 << 15) - 1
OFF21_MIN = -(1 << 20)
OFF21_MAX = (1 << 20) - 1


class EncodingError(ValueError):
    """Raised when an instruction cannot be represented in 32 bits."""


def _check_imm16(value: int) -> int:
    if not IMM16_MIN <= value <= IMM16_MAX:
        raise EncodingError(f"immediate out of 16-bit range: {value}")
    return value & _IMM16_MASK


def _word_offset(target: int, pc: int, lo: int, hi: int) -> int:
    delta = target - (pc + INSTRUCTION_BYTES)
    if delta % INSTRUCTION_BYTES:
        raise EncodingError(f"branch target {target:#x} not word aligned vs pc {pc:#x}")
    words = delta // INSTRUCTION_BYTES
    if not lo <= words <= hi:
        raise EncodingError(f"branch offset out of range: {words} words")
    return words


def _sext(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def encode(ins: Instruction, pc: int) -> int:
    """Encode ``ins`` (located at byte address ``pc``) into a 32-bit word."""
    oi = info(ins.op)
    word = int(ins.op) << _OPC_SHIFT
    f = oi.fmt
    if f is Format.R3:
        word |= (ins.rd << _RD_SHIFT) | (ins.ra << _RA_SHIFT) | (ins.rb << _RB_SHIFT)
    elif f in (Format.R2I, Format.LOAD):
        word |= (ins.rd << _RD_SHIFT) | (ins.ra << _RA_SHIFT) | _check_imm16(ins.imm)
    elif f is Format.RI:
        word |= (ins.rd << _RD_SHIFT) | _check_imm16(ins.imm)
    elif f is Format.STORE:
        word |= (ins.rb << _RD_SHIFT) | (ins.ra << _RA_SHIFT) | _check_imm16(ins.imm)
    elif f is Format.BRANCH:
        off = _word_offset(ins.target, pc, IMM16_MIN, IMM16_MAX)
        word |= (ins.ra << _RA_SHIFT) | (off & _IMM16_MASK)
    elif f is Format.JUMP:
        off = _word_offset(ins.target, pc, OFF21_MIN, OFF21_MAX)
        word |= off & _OFF21_MASK
        if oi.is_call:
            word |= ins.rd << _RD_SHIFT
    elif f is Format.JUMP_REG:
        word |= ins.ra << _RA_SHIFT
    # Format.NONE encodes as the bare opcode.
    return word


def decode(word: int, pc: int) -> Instruction:
    """Decode a 32-bit ``word`` fetched from byte address ``pc``."""
    opc = (word >> _OPC_SHIFT) & 0x3F
    try:
        op = Op(opc)
    except ValueError as exc:
        raise EncodingError(f"unknown opcode {opc} in word {word:#010x}") from exc
    oi = info(op)
    rd = (word >> _RD_SHIFT) & 0x1F
    ra = (word >> _RA_SHIFT) & 0x1F
    rb = (word >> _RB_SHIFT) & 0x1F
    f = oi.fmt
    if f is Format.R3:
        return Instruction(op, rd=rd, ra=ra, rb=rb)
    if f in (Format.R2I, Format.LOAD):
        return Instruction(op, rd=rd, ra=ra, imm=_sext(word, 16))
    if f is Format.RI:
        return Instruction(op, rd=rd, imm=_sext(word, 16))
    if f is Format.STORE:
        return Instruction(op, rb=rd, ra=ra, imm=_sext(word, 16))
    if f is Format.BRANCH:
        target = pc + INSTRUCTION_BYTES + _sext(word, 16) * INSTRUCTION_BYTES
        return Instruction(op, ra=ra, target=target)
    if f is Format.JUMP:
        target = pc + INSTRUCTION_BYTES + _sext(word, 21) * INSTRUCTION_BYTES
        if oi.is_call:
            return Instruction(op, rd=rd, target=target)
        return Instruction(op, target=target)
    if f is Format.JUMP_REG:
        return Instruction(op, ra=ra)
    return Instruction(op)
