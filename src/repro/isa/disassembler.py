"""Disassembler: 32-bit words back to assembly text.

Primarily a debugging and round-trip-testing aid for the binary
encoding; the simulator itself operates on decoded
:class:`~repro.isa.instruction.Instruction` objects.
"""

from __future__ import annotations

from typing import Iterable, List

from .encoding import decode
from .instruction import INSTRUCTION_BYTES, Instruction


def disassemble_word(word: int, pc: int) -> str:
    """Disassemble one encoded instruction word at byte address ``pc``."""
    return str(decode(word, pc))


def disassemble(words: Iterable[int], base: int = 0) -> List[str]:
    """Disassemble a sequence of words starting at byte address ``base``."""
    out = []
    pc = base
    for word in words:
        out.append(f"{pc:#8x}  {disassemble_word(word, pc)}")
        pc += INSTRUCTION_BYTES
    return out


def format_instruction(ins: Instruction, pc: int) -> str:
    """Render a decoded instruction with its address."""
    return f"{pc:#8x}  {ins}"
