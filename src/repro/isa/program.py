"""Program images: assembled text + initialised data.

A :class:`Program` is what the workload suite hands to either the
functional emulator or the pipeline simulator.  The text segment is a
list of decoded :class:`~repro.isa.instruction.Instruction` objects
addressed from ``text_base``; the data segment is a byte image copied
into fresh memory whenever a program instance starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .instruction import INSTRUCTION_BYTES, Instruction

TEXT_BASE = 0x1000
DATA_BASE = 0x4000
#: Default top-of-stack for program instances (grows down).
STACK_TOP = 0x3F_F000


@dataclass
class Program:
    """An assembled program image."""

    name: str
    instructions: List[Instruction]
    text_base: int = TEXT_BASE
    data: bytes = b""
    data_base: int = DATA_BASE
    entry: Optional[int] = None
    labels: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.entry is None:
            self.entry = self.labels.get("main", self.text_base)

    @property
    def text_end(self) -> int:
        """First byte address past the text segment."""
        return self.text_base + len(self.instructions) * INSTRUCTION_BYTES

    def instr_index(self, pc: int) -> Optional[int]:
        """Index into :attr:`instructions` for byte address ``pc``."""
        off = pc - self.text_base
        if off < 0 or off % INSTRUCTION_BYTES:
            return None
        idx = off // INSTRUCTION_BYTES
        if idx >= len(self.instructions):
            return None
        return idx

    def instr_at(self, pc: int) -> Optional[Instruction]:
        """Instruction at byte address ``pc`` or None when out of text."""
        idx = self.instr_index(pc)
        if idx is None:
            return None
        return self.instructions[idx]

    def addr_of(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError as exc:
            raise KeyError(f"program {self.name!r} has no label {label!r}") from exc

    def __len__(self) -> int:
        return len(self.instructions)

    def listing(self) -> str:
        """Disassembly-style listing of the text segment (debug aid)."""
        by_addr = {addr: name for name, addr in self.labels.items()}
        lines = []
        for i, ins in enumerate(self.instructions):
            pc = self.text_base + i * INSTRUCTION_BYTES
            label = by_addr.get(pc)
            prefix = f"{label}:" if label else ""
            lines.append(f"{pc:#8x}  {prefix:<12s} {ins}")
        return "\n".join(lines)
