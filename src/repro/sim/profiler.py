"""Per-stage wall-time profiling for the simulator itself.

The stage decomposition makes the natural profiling boundary the stage
call: :meth:`Core.step` routes each stage through
:meth:`StageProfiler.timed` when a profiler is attached via
``core.set_profiler(...)``.  This measures the *simulator's* speed
(host seconds per stage, simulated cycles per host second), not the
modelled machine — it lives under :mod:`repro.sim` because the
pipeline packages are wall-clock-free by lint rule (DET001).

``profile_spec`` runs one kernel with profiling attached and returns a
JSON-ready payload; the CLI writes it to ``BENCH_core.json`` so the
perf trajectory of future refactors has a baseline to diff against.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

#: Stage keys in the order Core.step() evaluates them.
STAGE_ORDER = ("commit", "complete", "issue", "rename", "fetch")


class StageProfiler:
    """Accumulates wall seconds and call counts per pipeline stage."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {name: 0.0 for name in STAGE_ORDER}
        self.calls: Dict[str, int] = {name: 0 for name in STAGE_ORDER}

    def timed(self, name: str, fn: Callable[[], None]) -> None:
        # Every stage key is preinitialised in __init__, so plain
        # indexed += keeps this wrapper (5 calls/cycle) cheap.
        start = time.perf_counter()
        fn()
        self.seconds[name] += time.perf_counter() - start
        self.calls[name] += 1

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-stage seconds and share of total stage time."""
        total = self.total_seconds
        return {
            name: {
                "seconds": round(self.seconds[name], 6),
                "pct": round(100.0 * self.seconds[name] / total, 2) if total else 0.0,
            }
            for name in STAGE_ORDER
        }


def profile_spec(spec, suite=None) -> Dict:
    """Run ``spec`` twice: a clean pass and an instrumented pass.

    The headline wall time and cycles/sec come from a run *without* the
    per-stage timer attached — ``timed`` wraps five stage calls per
    cycle, and at current simulator speeds those ~10 extra
    ``perf_counter`` reads per cycle are a measurable observer effect
    (several percent of the whole run).  A second, fresh run with the
    profiler attached supplies the per-stage breakdown; the simulator
    is deterministic, so both passes execute the identical cycle
    sequence.  Returns the ``BENCH_core.json`` payload.  Always
    in-process serial runs.
    """
    from ..pipeline.core import Core
    from ..workloads.suite import WorkloadSuite

    suite = suite or WorkloadSuite()
    programs = suite.mix(spec.workload)

    # Pass 1 — per-stage breakdown with timed stages.  Running it first
    # also serves as warm-up, so the headline pass below measures a
    # steady-state interpreter rather than cold code paths.
    instrumented = Core(spec.build_config())
    instrumented.load(programs, commit_target=spec.commit_target)
    profiler = StageProfiler()
    instrumented.set_profiler(profiler)
    istarted = time.perf_counter()
    istats = instrumented.run(max_cycles=spec.max_cycles)
    iwall = time.perf_counter() - istarted

    # Pass 2 — headline throughput, no instrumentation attached.
    core = Core(spec.build_config())
    core.load(programs, commit_target=spec.commit_target)
    started = time.perf_counter()
    stats = core.run(max_cycles=spec.max_cycles)
    wall = time.perf_counter() - started
    state = core.state
    assert istats.cycles == stats.cycles, "profiled pass diverged"
    uop_cache = state.uop_cache.snapshot()
    wakeups = state.int_queue.wakeups + state.fp_queue.wakeups
    polls = state.int_queue.ready_polls + state.fp_queue.ready_polls
    returned = state.int_queue.ready_returned + state.fp_queue.ready_returned
    fwd_lookups = state.store_fwd_hits + state.store_fwd_misses
    scheduler = {
        "wakeups": wakeups,
        "ready_polls": polls,
        "ready_returned": returned,
        "ready_per_poll": round(returned / polls, 3) if polls else 0.0,
        "store_fwd_hits": state.store_fwd_hits,
        "store_fwd_misses": state.store_fwd_misses,
        "store_fwd_hit_rate": (
            round(state.store_fwd_hits / fwd_lookups, 4) if fwd_lookups else 0.0
        ),
    }
    return {
        "kernel": "+".join(spec.workload),
        "machine": spec.machine,
        "features": spec.features,
        "commit_target": spec.commit_target,
        "cycles": stats.cycles,
        "committed": stats.committed,
        "ipc": round(stats.ipc, 4),
        "wall_seconds": round(wall, 4),
        "cycles_per_second": round(stats.cycles / wall, 1) if wall else 0.0,
        "committed_per_second": round(stats.committed / wall, 1) if wall else 0.0,
        "instrumented_wall_seconds": round(iwall, 4),
        "stage_seconds_total": round(profiler.total_seconds, 4),
        "stages": profiler.breakdown(),
        "scheduler": scheduler,
        "uop_cache": uop_cache,
    }


def format_profile(payload: Dict) -> str:
    lines = [
        f"{payload['kernel']} [{payload['features']}] on {payload['machine']}: "
        f"{payload['cycles']} cycles, {payload['committed']} committed, "
        f"IPC {payload['ipc']:.3f}",
        f"  wall {payload['wall_seconds']:.2f}s — "
        f"{payload['cycles_per_second']:,.0f} cycles/s, "
        f"{payload['committed_per_second']:,.0f} commits/s",
        "  per-stage wall time:",
    ]
    for name in STAGE_ORDER:
        stage = payload["stages"][name]
        bar = "#" * int(round(stage["pct"] / 2))
        lines.append(
            f"    {name:<9s} {stage['seconds']:8.3f}s  {stage['pct']:5.1f}%  {bar}"
        )
    sched = payload.get("scheduler")
    if sched:
        lines.append(
            "  scheduler: "
            f"{sched['wakeups']:,} wakeups, "
            f"{sched['ready_returned']:,} ready over {sched['ready_polls']:,} polls "
            f"({sched['ready_per_poll']:.2f}/poll), "
            f"store-fwd hit rate {sched['store_fwd_hit_rate']:.1%} "
            f"({sched['store_fwd_hits']:,}/{sched['store_fwd_hits'] + sched['store_fwd_misses']:,})"
        )
    ucache = payload.get("uop_cache")
    if ucache:
        lines.append(
            "  uop cache: "
            f"{ucache['hits']:,} hits / {ucache['misses']:,} misses "
            f"({ucache['hit_rate']:.1%}), "
            f"{ucache['evictions']:,} evictions, "
            f"{ucache['entries']:,}/{ucache['capacity']:,} entries"
        )
        decodes = ucache.get("decode_counts") or {}
        if decodes:
            per_kernel = ", ".join(f"{k}: {v:,}" for k, v in decodes.items())
            lines.append(f"  decodes by kernel: {per_kernel}")
    return "\n".join(lines)


def write_bench(payload: Dict, path: str = "BENCH_core.json") -> Optional[str]:
    import json

    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
