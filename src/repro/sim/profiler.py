"""Per-stage wall-time profiling for the simulator itself.

The stage decomposition makes the natural profiling boundary the stage
call: :meth:`Core.step` routes each stage through
:meth:`StageProfiler.timed` when a profiler is attached via
``core.set_profiler(...)``.  This measures the *simulator's* speed
(host seconds per stage, simulated cycles per host second), not the
modelled machine — it lives under :mod:`repro.sim` because the
pipeline packages are wall-clock-free by lint rule (DET001).

``profile_spec`` runs one kernel with profiling attached and returns a
JSON-ready payload; the CLI writes it to ``BENCH_core.json`` so the
perf trajectory of future refactors has a baseline to diff against.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

#: Stage keys in the order Core.step() evaluates them.
STAGE_ORDER = ("commit", "complete", "issue", "rename", "fetch")


class StageProfiler:
    """Accumulates wall seconds and call counts per pipeline stage."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {name: 0.0 for name in STAGE_ORDER}
        self.calls: Dict[str, int] = {name: 0 for name in STAGE_ORDER}

    def timed(self, name: str, fn: Callable[[], None]) -> None:
        start = time.perf_counter()
        fn()
        self.seconds[name] = self.seconds.get(name, 0.0) + time.perf_counter() - start
        self.calls[name] = self.calls.get(name, 0) + 1

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-stage seconds and share of total stage time."""
        total = self.total_seconds
        return {
            name: {
                "seconds": round(self.seconds[name], 6),
                "pct": round(100.0 * self.seconds[name] / total, 2) if total else 0.0,
            }
            for name in STAGE_ORDER
        }


def profile_spec(spec, suite=None) -> Dict:
    """Run ``spec`` once with per-stage profiling attached.

    Returns the ``BENCH_core.json`` payload: headline simulation
    results, end-to-end wall time, simulated-cycles/sec, and the
    per-stage breakdown.  Always an in-process serial run.
    """
    from ..pipeline.core import Core
    from ..workloads.suite import WorkloadSuite

    suite = suite or WorkloadSuite()
    core = Core(spec.build_config())
    core.load(suite.mix(spec.workload), commit_target=spec.commit_target)
    profiler = StageProfiler()
    core.set_profiler(profiler)
    started = time.perf_counter()
    stats = core.run(max_cycles=spec.max_cycles)
    wall = time.perf_counter() - started
    return {
        "kernel": "+".join(spec.workload),
        "machine": spec.machine,
        "features": spec.features,
        "commit_target": spec.commit_target,
        "cycles": stats.cycles,
        "committed": stats.committed,
        "ipc": round(stats.ipc, 4),
        "wall_seconds": round(wall, 4),
        "cycles_per_second": round(stats.cycles / wall, 1) if wall else 0.0,
        "committed_per_second": round(stats.committed / wall, 1) if wall else 0.0,
        "stage_seconds_total": round(profiler.total_seconds, 4),
        "stages": profiler.breakdown(),
    }


def format_profile(payload: Dict) -> str:
    lines = [
        f"{payload['kernel']} [{payload['features']}] on {payload['machine']}: "
        f"{payload['cycles']} cycles, {payload['committed']} committed, "
        f"IPC {payload['ipc']:.3f}",
        f"  wall {payload['wall_seconds']:.2f}s — "
        f"{payload['cycles_per_second']:,.0f} cycles/s, "
        f"{payload['committed_per_second']:,.0f} commits/s",
        "  per-stage wall time:",
    ]
    for name in STAGE_ORDER:
        stage = payload["stages"][name]
        bar = "#" * int(round(stage["pct"] / 2))
        lines.append(
            f"    {name:<9s} {stage['seconds']:8.3f}s  {stage['pct']:5.1f}%  {bar}"
        )
    return "\n".join(lines)


def write_bench(payload: Dict, path: str = "BENCH_core.json") -> Optional[str]:
    import json

    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
