"""The paper's experiments, one function per table/figure.

Every function returns plain data structures (dicts keyed by the
paper's own axis labels) plus has a companion ``format_*`` renderer
that prints the same rows/series the paper reports.  The benchmark
harness under ``benchmarks/``, the CLI and the ``campaign`` subcommand
all call these.

Each experiment builds its full batch of :class:`RunSpec` jobs up front
and hands them to :func:`_run_all`: with no ``executor`` the batch runs
strictly serially in-process (the historical behaviour, and the default
everywhere, including tests); with an :class:`repro.exec.Executor` the
same batch is executed on the orchestration engine — worker pool,
content-addressed result cache, retries — producing numerically
identical tables because the per-spec simulations are deterministic.

Scaling: the ``commit_target`` (per-program measurement window) and
``num_mixes`` arguments trade fidelity against wall-clock; defaults are
sized for a laptop-minutes run, not paper-scale days.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..pipeline.config import PolicyKind
from ..workloads.suite import WorkloadSuite
from .runner import RunResult, RunSpec, run_spec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..exec.pool import Executor

#: Figure 3/4 variant order, exactly as plotted in the paper.
VARIANTS = ["SMT", "TME", "REC", "REC/RU", "REC/RS", "REC/RS/RU"]
#: Figure 5 policies.
POLICIES = [f"{kind.value}-{limit}" for kind in PolicyKind for limit in (8, 16, 32)]
#: Figure 6 machines.
MACHINES = ["small.1.8", "small.2.8", "big.1.8", "big.2.16"]
#: Program counts for the multiprogram figures.
WIDTHS = (1, 2, 4)


def _run_all(
    specs: Sequence[RunSpec],
    suite: WorkloadSuite,
    executor: Optional["Executor"],
) -> List[RunResult]:
    """Execute an experiment's batch serially or on the engine."""
    if executor is None:
        return [run_spec(spec, suite) for spec in specs]
    return executor.map(specs, suite=suite)


def _mixes_for(suite: WorkloadSuite, width: int, num_mixes: int) -> List[List[str]]:
    """Single-program figures use the first kernels; wider ones rotate."""
    if width == 1:
        return [[k] for k in suite.names[:num_mixes]]
    return suite.mixes(width, num_mixes)


# ======================================================================
# Figure 3 — per-program IPC, single program, six variants
# ======================================================================
def figure3(
    commit_target: int = 3000,
    variants: Sequence[str] = VARIANTS,
    kernels: Optional[Sequence[str]] = None,
    suite: Optional[WorkloadSuite] = None,
    executor: Optional["Executor"] = None,
) -> Dict[str, Dict[str, float]]:
    suite = suite or WorkloadSuite()
    kernels = list(kernels or suite.names)
    specs = [
        RunSpec((kernel,), features=variant, commit_target=commit_target)
        for kernel in kernels
        for variant in variants
    ]
    results = iter(_run_all(specs, suite, executor))
    out: Dict[str, Dict[str, float]] = {}
    for kernel in kernels:
        out[kernel] = {variant: next(results).ipc for variant in variants}
    return out


def format_figure3(data: Dict[str, Dict[str, float]]) -> str:
    variants = list(next(iter(data.values())))
    header = f"{'program':<10s}" + "".join(f"{v:>11s}" for v in variants)
    lines = [header]
    for kernel, row in data.items():
        lines.append(f"{kernel:<10s}" + "".join(f"{row[v]:11.3f}" for v in variants))
    return "\n".join(lines)


# ======================================================================
# Figure 4 — average IPC at 1, 2 and 4 programs, six variants
# ======================================================================
def figure4(
    commit_target: int = 2000,
    num_mixes: int = 8,
    variants: Sequence[str] = VARIANTS,
    widths: Sequence[int] = WIDTHS,
    suite: Optional[WorkloadSuite] = None,
    executor: Optional["Executor"] = None,
) -> Dict[int, Dict[str, float]]:
    suite = suite or WorkloadSuite()
    specs: List[RunSpec] = []
    for width in widths:
        mixes = _mixes_for(suite, width, num_mixes)
        for variant in variants:
            for mix in mixes:
                specs.append(
                    RunSpec(tuple(mix), features=variant, commit_target=commit_target)
                )
    results = iter(_run_all(specs, suite, executor))
    out: Dict[int, Dict[str, float]] = {}
    for width in widths:
        mixes = _mixes_for(suite, width, num_mixes)
        out[width] = {}
        for variant in variants:
            total = sum(next(results).ipc for _ in mixes)
            out[width][variant] = total / len(mixes)
    return out


def format_figure4(data: Dict[int, Dict[str, float]]) -> str:
    variants = list(next(iter(data.values())))
    header = f"{'programs':<10s}" + "".join(f"{v:>11s}" for v in variants)
    lines = [header]
    for width, row in data.items():
        lines.append(f"{width:<10d}" + "".join(f"{row[v]:11.3f}" for v in variants))
    return "\n".join(lines)


# ======================================================================
# Figure 5 — recycling fetch limits (stop/fetch/nostop × 8/16/32)
# ======================================================================
def figure5(
    commit_target: int = 2000,
    num_mixes: int = 4,
    widths: Sequence[int] = WIDTHS,
    policies: Sequence[str] = POLICIES,
    suite: Optional[WorkloadSuite] = None,
    executor: Optional["Executor"] = None,
) -> Dict[str, Dict[int, float]]:
    suite = suite or WorkloadSuite()
    specs: List[RunSpec] = []
    for width in widths:
        mixes = _mixes_for(suite, width, num_mixes)
        for policy in policies:
            for mix in mixes:
                specs.append(
                    RunSpec(
                        tuple(mix),
                        features="REC/RS/RU",
                        policy=policy,
                        commit_target=commit_target,
                    )
                )
    results = iter(_run_all(specs, suite, executor))
    out: Dict[str, Dict[int, float]] = {policy: {} for policy in policies}
    for width in widths:
        mixes = _mixes_for(suite, width, num_mixes)
        for policy in policies:
            total = sum(next(results).ipc for _ in mixes)
            out[policy][width] = total / len(mixes)
    return out


def format_figure5(data: Dict[str, Dict[int, float]]) -> str:
    widths = list(next(iter(data.values())))
    header = f"{'policy':<12s}" + "".join(f"{w:>10d}p" for w in widths)
    lines = [header]
    for policy, row in data.items():
        lines.append(f"{policy:<12s}" + "".join(f"{row[w]:11.3f}" for w in widths))
    return "\n".join(lines)


# ======================================================================
# Figure 6 — four machines × {SMT, TME, REC/RS/RU} × {1, 2, 4} programs
# ======================================================================
def figure6(
    commit_target: int = 2000,
    num_mixes: int = 4,
    machines: Sequence[str] = MACHINES,
    widths: Sequence[int] = WIDTHS,
    suite: Optional[WorkloadSuite] = None,
    executor: Optional["Executor"] = None,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    suite = suite or WorkloadSuite()
    variants = ["SMT", "TME", "REC/RS/RU"]
    specs: List[RunSpec] = []
    for machine in machines:
        for width in widths:
            mixes = _mixes_for(suite, width, num_mixes)
            for variant in variants:
                for mix in mixes:
                    specs.append(
                        RunSpec(
                            tuple(mix),
                            machine=machine,
                            features=variant,
                            commit_target=commit_target,
                        )
                    )
    results = iter(_run_all(specs, suite, executor))
    out: Dict[str, Dict[str, Dict[int, float]]] = {}
    for machine in machines:
        out[machine] = {v: {} for v in variants}
        for width in widths:
            mixes = _mixes_for(suite, width, num_mixes)
            for variant in variants:
                total = sum(next(results).ipc for _ in mixes)
                out[machine][variant][width] = total / len(mixes)
    return out


def format_figure6(data: Dict[str, Dict[str, Dict[int, float]]]) -> str:
    lines = []
    for machine, variants in data.items():
        for variant, by_width in variants.items():
            row = "".join(f"{ipc:10.3f}" for ipc in by_width.values())
            lines.append(f"{machine:<11s} {variant:<10s}{row}")
    widths = list(next(iter(next(iter(data.values())).values())))
    header = f"{'machine':<11s} {'variant':<10s}" + "".join(f"{w:>9d}p" for w in widths)
    return "\n".join([header] + lines)


# ======================================================================
# Table 1 — recycling statistics
# ======================================================================
TABLE1_COLUMNS = [
    ("pct_recycled", "%Recyc"),
    ("pct_reused", "%Reuse"),
    ("branch_miss_cov", "MissCov"),
    ("pct_forks_tme", "%FkTME"),
    ("pct_forks_recycled", "%FkRec"),
    ("pct_forks_respawned", "%FkResp"),
    ("merges_per_alt_path", "Mrg/Alt"),
    ("pct_back_merges", "%BackM"),
]


def table1(
    commit_target: int = 3000,
    num_mixes: int = 4,
    widths: Sequence[int] = (2, 4),
    suite: Optional[WorkloadSuite] = None,
    executor: Optional["Executor"] = None,
) -> Dict[str, Dict[str, float]]:
    """Per-kernel rows plus 1/2/4-program averages, REC/RS/RU."""
    suite = suite or WorkloadSuite()
    specs = [
        RunSpec((kernel,), features="REC/RS/RU", commit_target=commit_target)
        for kernel in suite.names
    ]
    for width in widths:
        for mix in suite.mixes(width, num_mixes):
            specs.append(
                RunSpec(tuple(mix), features="REC/RS/RU", commit_target=commit_target)
            )
    results = iter(_run_all(specs, suite, executor))
    rows: Dict[str, Dict[str, float]] = {}
    singles: List[Dict[str, float]] = []
    for kernel in suite.names:
        row = next(results).stats.table1_row()
        rows[kernel] = row
        singles.append(row)
    rows["1 prog avg"] = _avg_rows(singles)
    for width in widths:
        width_rows = [
            next(results).stats.table1_row()
            for _ in suite.mixes(width, num_mixes)
        ]
        rows[f"{width} progs avg"] = _avg_rows(width_rows)
    return rows


def _avg_rows(rows: List[Dict[str, float]]) -> Dict[str, float]:
    keys = rows[0].keys()
    return {k: sum(r[k] for r in rows) / len(rows) for k in keys}


def format_table1(rows: Dict[str, Dict[str, float]]) -> str:
    header = f"{'Program':<12s}" + "".join(f"{label:>9s}" for _, label in TABLE1_COLUMNS)
    lines = [header]
    for name, row in rows.items():
        cells = "".join(f"{row[key]:9.1f}" for key, _ in TABLE1_COLUMNS)
        lines.append(f"{name:<12s}{cells}")
    return "\n".join(lines)


# ======================================================================
# Static ceilings — analysis upper bounds vs. Table-1 dynamic stats
# ======================================================================
STATIC_COLUMNS = [
    ("blocks", "Blks"),
    ("loops", "Loops"),
    ("cond_sites", "Cond"),
    ("merge_cov", "MrgCov%"),
    ("reuse_ceiling", "RuCeil%"),
    ("merge_agree", "Agree%"),
    ("dyn_recycled", "%Recyc"),
    ("dyn_reused", "%Reuse"),
    ("violations", "Viol"),
]


def static_ceilings(
    commit_target: int = 1500,
    window: int = 16,
    kernels: Optional[Sequence[str]] = None,
    suite: Optional[WorkloadSuite] = None,
    executor: Optional["Executor"] = None,
) -> Dict[str, Dict[str, float]]:
    """Static analysis ceilings next to dynamic REC/RS/RU statistics.

    Per kernel: static merge coverage (conditional branches with a real
    immediate post-dominator), the kill-set reuse ceiling over a
    ``window``-instruction lookahead, dynamic recycle/reuse percentages
    from an instrumented run, the dynamic-vs-static merge agreement,
    and the cross-checker's violation count (must be zero).

    The instrumented simulation is inherently in-process, so
    ``executor`` is accepted for registry uniformity but unused.
    """
    del executor  # instrumentation cannot cross a worker-pool boundary
    from ..analysis.checker import check_spec
    from ..analysis.program import ProgramAnalysis

    suite = suite or WorkloadSuite()
    kernels = list(kernels or suite.names)
    out: Dict[str, Dict[str, float]] = {}
    for kernel in kernels:
        summary = ProgramAnalysis(
            suite.program(kernel), name=kernel
        ).summary(window=window)
        spec = RunSpec(
            (kernel,), features="REC/RS/RU", commit_target=commit_target
        )
        result, report = check_spec(spec, suite)
        out[kernel] = {
            "blocks": float(summary.blocks),
            "loops": float(summary.loops),
            "cond_sites": float(summary.cond_sites),
            "merge_cov": summary.merge_coverage_pct,
            "reuse_ceiling": summary.reuse_ceiling_pct,
            "merge_agree": report.merge_agreement_pct,
            "dyn_recycled": result.stats.pct_recycled,
            "dyn_reused": result.stats.pct_reused,
            "violations": float(len(report.violations)),
        }
    return out


def format_static_ceilings(data: Dict[str, Dict[str, float]]) -> str:
    header = f"{'program':<10s}" + "".join(
        f"{label:>9s}" for _, label in STATIC_COLUMNS
    )
    lines = [header]
    for kernel, row in data.items():
        cells = "".join(f"{row[key]:9.1f}" for key, _ in STATIC_COLUMNS)
        lines.append(f"{kernel:<10s}{cells}")
    lines.append(
        "(static: MrgCov = cond branches with an ipostdom reconvergence; "
        "RuCeil = kill-set reuse upper bound. dynamic: %Recyc/%Reuse as "
        "Table 1; Agree = dyn merge == static reconvergence; Viol must be 0.)"
    )
    return "\n".join(lines)


# ======================================================================
# Ablations (beyond the paper; design-choice sensitivity)
# ======================================================================
def ablation_confidence(
    thresholds: Sequence[int] = (1, 4, 8, 12, 15),
    commit_target: int = 2000,
    kernels: Optional[Sequence[str]] = None,
    suite: Optional[WorkloadSuite] = None,
    executor: Optional["Executor"] = None,
) -> Dict[int, float]:
    """Sweep the fork-gating confidence threshold (REC/RS/RU average)."""
    suite = suite or WorkloadSuite()
    kernels = list(kernels or suite.names)
    specs = [
        RunSpec(
            (kernel,),
            features="REC/RS/RU",
            commit_target=commit_target,
            confidence_threshold=threshold,
        )
        for threshold in thresholds
        for kernel in kernels
    ]
    results = iter(_run_all(specs, suite, executor))
    out: Dict[int, float] = {}
    for threshold in thresholds:
        total = sum(next(results).ipc for _ in kernels)
        out[threshold] = total / len(kernels)
    return out


def format_ablation_confidence(data: Dict[int, float]) -> str:
    lines = [f"{'threshold':<11s}{'avg IPC':>9s}"]
    for threshold, ipc in data.items():
        lines.append(f"{threshold:<11d}{ipc:9.3f}")
    return "\n".join(lines)


#: Experiment registry used by the CLI.
EXPERIMENTS = {
    "fig3": (figure3, format_figure3),
    "fig4": (figure4, format_figure4),
    "fig5": (figure5, format_figure5),
    "fig6": (figure6, format_figure6),
    "table1": (table1, format_table1),
    "static-ceilings": (static_ceilings, format_static_ceilings),
    "ablation-confidence": (ablation_confidence, format_ablation_confidence),
}

#: Named experiment sets for ``repro-sim campaign``.
CAMPAIGNS = {
    "paper": ["fig3", "fig4", "fig5", "fig6", "table1"],
    "figures": ["fig3", "fig4", "fig5", "fig6"],
    "all": list(EXPERIMENTS),
}
