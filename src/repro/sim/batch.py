"""Lockstep batch simulation: many sweep points, one process.

A :class:`BatchRunner` builds one :class:`~repro.pipeline.core.Core`
per sweep point and steps them in lockstep rounds.  What the batch
shares — and what it never shares — is the whole design:

* **Shared, immutable**: the :class:`~repro.workloads.suite.WorkloadSuite`
  (programs are assembled once per ``(kernel, slot, iters)`` and the
  same ``Program`` objects load into every core) and one
  :class:`~repro.pipeline.uopcache.DecodeStore` per configured cache
  capacity, so every point running the same kernel hits the same warm
  decoded-uop cache and static facts (loop membership, FU classes) are
  derived once per process.
* **Per-core, mutable**: everything else — register files, contexts,
  queues, predictors, hierarchies, stats, and the per-core
  :class:`~repro.pipeline.uopcache.DecodedUopCache` counter views, so
  hit/miss/decant counters attribute to the point that looked up.

Each round, every live core advances up to ``quantum`` simulated
cycles.  Cores whose pipelines are provably idle (queues drained, no
completions due, fetch stalled — see
:meth:`~repro.pipeline.core.Core.next_activity_cycle`) fast-forward to
their next wakeup instead of stepping no-op cycles, bulk-recording the
gap as idle utilization so averages and histograms stay bit-identical
to a serial run.  Progress is aggregated once per round, not per core.

Correctness discipline (same as the PR 4/8 optimisations): every point
simulated in a batch is bit-identical — golden stats, utilization,
error cycle stamps — to the same point run serially, regardless of
batch composition or size.  The only fields that may differ are the
decoded-uop-cache counters themselves (a sibling may have warmed the
shared store first); cache state never feeds back into the simulated
machine, which is what makes the sharing sound.

Failure isolation matches the executor's: a point that raises records a
structured error on its :class:`BatchPoint` and the rest of the batch
runs to completion.
"""

from __future__ import annotations

import gc
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..pipeline.core import Core, SimulationError
from ..pipeline.uopcache import DecodedUopCache, DecodeStore
from ..workloads.suite import WorkloadSuite
from .runner import RunResult

#: Cycles each live core advances per lockstep round.  Large enough to
#: amortise the round-robin overhead, small enough that progress events
#: and point completions interleave usefully.
DEFAULT_QUANTUM = 1024

#: Mirrors the ``deadlock_limit`` default of :meth:`Core.run`.
DEFAULT_DEADLOCK_LIMIT = 20_000


def batch_compatibility_key(job) -> tuple:
    """Jobs may share a lockstep batch iff this key matches.

    Machine configuration families must agree (the shared decode store
    is bounded per capacity, and mixing machine models in one batch is
    almost always a spec error); workloads, features, targets and field
    overrides may vary freely.
    """
    return (job.spec.machine,)


def validate_batch(jobs: Sequence) -> None:
    """Eager validation: reject batches mixing incompatible machines."""
    if not jobs:
        raise ValueError("empty batch")
    keys = {batch_compatibility_key(job) for job in jobs}
    if len(keys) > 1:
        machines = sorted(key[0] for key in keys)
        raise ValueError(
            f"batch mixes incompatible machine configs: {machines}; "
            f"group jobs by machine (see repro.sim.batch.group_batches)"
        )


def group_batches(jobs: Sequence, batch_size: int) -> List[List[int]]:
    """Partition job *indices* into compatible batches of ``batch_size``.

    Grouping is by :func:`batch_compatibility_key`, preserving input
    order within each group.  Jobs carrying chaos fault-injection run as
    singletons (chaos is an engine-test hook applied per attempt, which
    only makes sense for one-job attempts).  ``batch_size <= 1`` yields
    all singletons — the classic one-point-per-attempt behaviour.
    """
    batches: List[List[int]] = []
    if batch_size <= 1:
        return [[index] for index in range(len(jobs))]
    open_batches: Dict[tuple, List[int]] = {}
    for index, job in enumerate(jobs):
        if getattr(job, "chaos", None) is not None:
            batches.append([index])
            continue
        key = batch_compatibility_key(job)
        batch = open_batches.get(key)
        if batch is None:
            batch = open_batches[key] = []
            batches.append(batch)
        batch.append(index)
        if len(batch) >= batch_size:
            del open_batches[key]
    return batches


@dataclass
class BatchPoint:
    """Outcome of one sweep point in a batch: result xor error."""

    job: object
    result: Optional[RunResult] = None
    error: Optional[str] = None  # "ExcType: message", executor-style

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass
class BatchProgress:
    """Aggregate progress emitted once per lockstep round."""

    rounds: int
    points_total: int
    points_done: int
    points_failed: int
    cycles: int  # simulated cycles summed over all points
    committed: int  # committed instructions summed over all points


class _PointDriver:
    """One core's run loop, sliced into quanta for the lockstep round.

    Replicates :meth:`Core.run` exactly — same done checks, same
    deadlock stamp, same ``max_cycles`` cutoff — plus the next-activity
    fast-forward, which only ever replaces cycles that a serial run
    would have stepped as provable no-ops.
    """

    __slots__ = ("job", "core", "max_cycles", "deadlock_limit", "done", "error")

    def __init__(self, job, core: Core, max_cycles: int, deadlock_limit: int):
        self.job = job
        self.core = core
        self.max_cycles = max_cycles
        self.deadlock_limit = deadlock_limit
        self.done = False
        self.error: Optional[str] = None

    def _skip_to(self, target: int) -> None:
        state = self.core.state
        state.util.record_idle(target - state.cycle)
        state.cycle = target
        state.stats.cycles = target

    def advance(self, quantum: int) -> None:
        core = self.core
        state = core.state
        instances = state.instances
        step = core.step
        deadlock_limit = self.deadlock_limit
        max_cycles = self.max_cycles
        end = state.cycle + quantum
        while state.cycle < max_cycles:
            for inst in instances:
                if not (inst.halted or inst.reached_target()):
                    break
            else:  # every instance done
                self.done = True
                return
            wake = core.next_activity_cycle()
            now = state.cycle
            if wake is not None and wake <= now:
                step()
                if state.cycle - state.last_commit_cycle > deadlock_limit:
                    raise SimulationError(
                        f"no commits for {deadlock_limit} cycles at cycle "
                        f"{state.cycle}; contexts: {core.contexts}"
                    )
                if state.cycle >= end:
                    return
                continue
            # Idle until ``wake`` (or forever, when None).  A serial run
            # would step no-op cycles up to the first of: the wakeup, the
            # deadlock trip-wire, or the max_cycles cutoff — land on the
            # same cycle it would.
            raise_cycle = state.last_commit_cycle + deadlock_limit + 1
            target = max_cycles if wake is None else min(wake, max_cycles)
            if raise_cycle <= target:
                self._skip_to(raise_cycle)
                raise SimulationError(
                    f"no commits for {deadlock_limit} cycles at cycle "
                    f"{state.cycle}; contexts: {core.contexts}"
                )
            self._skip_to(target)
            if state.cycle >= end:
                return
        self.done = True  # max_cycles cutoff, exactly like Core.run

    def finish(self) -> RunResult:
        core = self.core
        core._finalize_stats()
        stats = core.stats
        result = RunResult(spec=self.job.spec, stats=stats)
        for instance in core.instances:
            result.per_program_ipc[instance.name] = stats.instance_ipc(instance.id)
        return result


class BatchRunner:
    """Run N compatible sweep points in lockstep in this process.

    Parameters
    ----------
    jobs:
        Job-like objects (``job.spec`` RunSpec + ``job.resolved_config()``),
        e.g. :class:`repro.exec.jobs.Job`.  Validated eagerly: mixing
        machine configs raises ``ValueError`` before any core is built.
    suite:
        Shared workload suite; programs assemble once for the whole batch.
    quantum:
        Cycles per core per lockstep round.
    progress:
        Optional callable receiving one :class:`BatchProgress` per round.
    """

    def __init__(
        self,
        jobs: Sequence,
        suite: Optional[WorkloadSuite] = None,
        quantum: int = DEFAULT_QUANTUM,
        deadlock_limit: int = DEFAULT_DEADLOCK_LIMIT,
        progress: Optional[Callable[[BatchProgress], None]] = None,
    ):
        jobs = list(jobs)
        validate_batch(jobs)
        self.jobs = jobs
        self.suite = suite or WorkloadSuite()
        self.quantum = max(1, int(quantum))
        self.deadlock_limit = deadlock_limit
        self.progress = progress

    # ------------------------------------------------------------------
    def _build_drivers(self) -> List[_PointDriver]:
        #: One shared decode store per distinct cache capacity: every
        #: sibling core with the same bound shares records; capacity 0
        #: (cache disabled) shares an always-empty store, which keeps the
        #: disable semantics per point.
        stores: Dict[int, DecodeStore] = {}
        #: capacity -> shared store; kept for introspection and for the
        #: share sanitizer's watch installation.
        self.stores = stores
        drivers = []
        for job in self.jobs:
            config = job.resolved_config()
            capacity = config.uop_cache_entries
            store = stores.get(capacity)
            if store is None:
                store = stores[capacity] = DecodeStore(capacity)
            core = Core(config, uop_cache=DecodedUopCache(capacity, store=store))
            programs = self.suite.mix(job.spec.workload)
            core.load(programs, commit_target=job.spec.commit_target)
            drivers.append(
                _PointDriver(job, core, job.spec.max_cycles, self.deadlock_limit)
            )
        return drivers

    def run(self) -> List[BatchPoint]:
        """Execute the batch; one :class:`BatchPoint` per job, input order.

        With ``REPRO_SHARE_SANITIZE=1`` the shared decode stores and the
        workload suite are wrapped in mutation-recording containers and
        sealed for the lockstep phase; any steady-state mutation the
        static ownership map does not bless fails the run *after* the
        batch completes (never mid-flight, so the observed interleaving
        is the real one).
        """
        # Lazy import: the sanitizer pulls in the whole static-analysis
        # stack, which a plain batch run must not pay for.
        sanitizer = None
        if os.environ.get("REPRO_SHARE_SANITIZE") == "1":
            from ..analysis.effects.share import sanitizer_from_env

            sanitizer = sanitizer_from_env()
        drivers = self._build_drivers()
        #: Kept for post-run introspection (utilization parity tests, the
        #: benchmark harness); one driver per job, same order as ``jobs``.
        self.drivers = drivers
        if sanitizer is not None:
            for store in self.stores.values():
                sanitizer.watch_store(store)
            sanitizer.watch_suite(self.suite)
            sanitizer.seal()
        points = [BatchPoint(job=d.job) for d in drivers]
        quantum = self.quantum
        progress = self.progress
        rounds = 0
        # Same collector discipline as Core.run, hoisted over the whole
        # batch: one disable, one collection at the end.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            live = list(range(len(drivers)))
            while live:
                still_live = []
                for index in live:
                    driver = drivers[index]
                    try:
                        driver.advance(quantum)
                    except Exception as exc:  # noqa: BLE001 - structured per-point failure
                        points[index].error = f"{type(exc).__name__}: {exc}"
                        continue
                    if driver.done:
                        try:
                            points[index].result = driver.finish()
                        except Exception as exc:  # noqa: BLE001
                            points[index].error = f"{type(exc).__name__}: {exc}"
                    else:
                        still_live.append(index)
                live = still_live
                rounds += 1
                if progress is not None:
                    progress(self._progress_event(drivers, points, rounds))
        finally:
            if gc_was_enabled:
                gc.enable()
            gc.collect()
            if sanitizer is not None:
                sanitizer.unseal()
        if sanitizer is not None:
            sanitizer.assert_quiet()
        return points

    @staticmethod
    def _progress_event(drivers, points, rounds) -> BatchProgress:
        return BatchProgress(
            rounds=rounds,
            points_total=len(points),
            points_done=sum(1 for p in points if p.ok or p.error),
            points_failed=sum(1 for p in points if p.error),
            cycles=sum(d.core.state.cycle for d in drivers),
            committed=sum(d.core.stats.committed for d in drivers),
        )


def run_jobs_batched(
    jobs: Sequence,
    suite: Optional[WorkloadSuite] = None,
    batch_size: int = 8,
    quantum: int = DEFAULT_QUANTUM,
    progress: Optional[Callable[[BatchProgress], None]] = None,
) -> List[BatchPoint]:
    """Group ``jobs`` into compatible batches and run each in lockstep.

    Results come back in input order regardless of grouping; incompatible
    jobs simply land in different batches, so this never raises the
    mixed-machine ``ValueError`` that handing a mixed list straight to
    :class:`BatchRunner` would.
    """
    suite = suite or WorkloadSuite()
    out: List[Optional[BatchPoint]] = [None] * len(jobs)
    for indices in group_batches(jobs, batch_size):
        runner = BatchRunner(
            [jobs[i] for i in indices], suite=suite, quantum=quantum,
            progress=progress,
        )
        for index, point in zip(indices, runner.run()):
            out[index] = point
    return [point for point in out if point is not None]
