"""Markdown report generation.

Runs (a configurable subset of) the paper's experiments and renders a
self-contained markdown report with the same tables EXPERIMENTS.md
records — so a user can regenerate the whole paper-vs-measured story
with one call or ``repro-sim report``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..workloads.suite import WorkloadSuite
from . import experiments as exp


@dataclass(frozen=True)
class ReportConfig:
    """Scale knobs for a report run."""

    commit_target: int = 1500
    num_mixes: int = 3
    sections: Sequence[str] = ("fig3", "fig4", "fig5", "fig6", "table1")

    def __post_init__(self):
        unknown = set(self.sections) - set(exp.EXPERIMENTS)
        if unknown:
            raise ValueError(f"unknown sections: {sorted(unknown)}")


def _md_table(headers: List[str], rows: List[List[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def _fig3_section(data: Dict[str, Dict[str, float]]) -> str:
    variants = list(next(iter(data.values())))
    rows = [
        [kernel] + [f"{row[v]:.3f}" for v in variants] for kernel, row in data.items()
    ]
    return "## Figure 3 — per-program IPC (1 program)\n\n" + _md_table(
        ["program"] + variants, rows
    )


def _fig4_section(data: Dict[int, Dict[str, float]]) -> str:
    variants = list(next(iter(data.values())))
    rows = [
        [str(width)] + [f"{row[v]:.3f}" for v in variants]
        for width, row in data.items()
    ]
    body = _md_table(["programs"] + variants, rows)
    gains = []
    for width, row in data.items():
        if row.get("TME") and row.get("REC/RS/RU"):
            gains.append(
                f"* {width} program(s): REC/RS/RU is "
                f"{100 * (row['REC/RS/RU'] / row['TME'] - 1):+.1f}% vs TME, "
                f"{100 * (row['REC/RS/RU'] / row['SMT'] - 1):+.1f}% vs SMT"
            )
    return "## Figure 4 — average IPC vs program count\n\n" + body + "\n\n" + "\n".join(gains)


def _fig5_section(data: Dict[str, Dict[int, float]]) -> str:
    widths = list(next(iter(data.values())))
    rows = [
        [policy] + [f"{row[w]:.3f}" for w in widths] for policy, row in data.items()
    ]
    return "## Figure 5 — recycling fetch limits\n\n" + _md_table(
        ["policy"] + [f"{w}p" for w in widths], rows
    )


def _fig6_section(data) -> str:
    widths = list(next(iter(next(iter(data.values())).values())))
    rows = []
    for machine, variants in data.items():
        for variant, by_width in variants.items():
            rows.append(
                [machine, variant] + [f"{by_width[w]:.3f}" for w in widths]
            )
    return "## Figure 6 — machine configurations\n\n" + _md_table(
        ["machine", "variant"] + [f"{w}p" for w in widths], rows
    )


def _table1_section(rows: Dict[str, Dict[str, float]]) -> str:
    headers = ["Program"] + [label for _, label in exp.TABLE1_COLUMNS]
    body = [
        [name] + [f"{row[key]:.1f}" for key, _ in exp.TABLE1_COLUMNS]
        for name, row in rows.items()
    ]
    return "## Table 1 — recycling statistics (REC/RS/RU)\n\n" + _md_table(headers, body)


_SECTION_BUILDERS = {
    "fig3": (lambda cfg, suite: exp.figure3(commit_target=cfg.commit_target, suite=suite), _fig3_section),
    "fig4": (
        lambda cfg, suite: exp.figure4(
            commit_target=cfg.commit_target, num_mixes=cfg.num_mixes, suite=suite
        ),
        _fig4_section,
    ),
    "fig5": (
        lambda cfg, suite: exp.figure5(
            commit_target=cfg.commit_target, num_mixes=cfg.num_mixes, suite=suite
        ),
        _fig5_section,
    ),
    "fig6": (
        lambda cfg, suite: exp.figure6(
            commit_target=cfg.commit_target, num_mixes=cfg.num_mixes, suite=suite
        ),
        _fig6_section,
    ),
    "table1": (
        lambda cfg, suite: exp.table1(
            commit_target=cfg.commit_target, num_mixes=cfg.num_mixes, suite=suite
        ),
        _table1_section,
    ),
}


def generate_report(
    config: Optional[ReportConfig] = None,
    suite: Optional[WorkloadSuite] = None,
) -> str:
    """Run the selected experiments and render a markdown report."""
    config = config or ReportConfig()
    suite = suite or WorkloadSuite()
    started = time.time()
    sections = []
    for name in config.sections:
        runner, renderer = _SECTION_BUILDERS[name]
        sections.append(renderer(runner(config, suite)))
    elapsed = time.time() - started
    header = (
        "# Instruction Recycling — measured results\n\n"
        f"Windows: {config.commit_target} commits/program, "
        f"{config.num_mixes} mixes per multiprogram point. "
        f"Generated in {elapsed:.0f}s by `repro.sim.report`.\n"
    )
    return "\n\n".join([header] + sections) + "\n"
