"""Generic parameter sweeps over machine configurations and workloads.

The figure/table experiments cover the paper's axes; this module covers
*everything else*: grid sweeps over arbitrary ``MachineConfig`` fields
crossed with workloads, with tidy (long-form) results and CSV export —
the workhorse for custom ablations.

Example::

    from repro.sim.sweep import Sweep
    sweep = Sweep(
        workloads=[("compress",), ("go",)],
        features="REC/RS/RU",
        grid={"active_list_size": [32, 64, 128],
              "confidence_threshold": [4, 8, 12]},
        commit_target=1500,
    )
    rows = sweep.run()
    print(sweep.to_csv(rows))
"""

from __future__ import annotations

import io
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..pipeline.config import Features, MachineConfig
from ..workloads.suite import WorkloadSuite
from .runner import RunSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..exec.jobs import Job
    from ..exec.pool import Executor


@dataclass
class SweepRow:
    """One (configuration point × workload) result."""

    params: Dict[str, object]
    workload: Tuple[str, ...]
    ipc: float
    pct_recycled: float
    pct_reused: float
    branch_miss_cov: float
    cycles: int

    def key(self) -> Tuple:
        return tuple(sorted(self.params.items())) + (self.workload,)


@dataclass
class Sweep:
    workloads: Sequence[Sequence[str]]
    grid: Dict[str, Sequence[object]]
    machine: str = "big.2.16"
    features: str = "REC/RS/RU"
    commit_target: int = 1500
    max_cycles: int = 2_000_000

    def __post_init__(self) -> None:
        valid = set(MachineConfig.__dataclass_fields__)
        unknown = set(self.grid) - valid
        if unknown:
            raise ValueError(f"unknown MachineConfig fields: {sorted(unknown)}")
        if self.machine not in MachineConfig.known_names():
            raise ValueError(
                f"unknown machine {self.machine!r}; "
                f"know {sorted(MachineConfig.known_names())}"
            )
        variants = Features.all_variants()
        if self.features not in variants:
            raise ValueError(
                f"unknown features {self.features!r}; know {sorted(variants)}"
            )

    def points(self) -> List[Dict[str, object]]:
        """The cartesian grid as a list of override dicts."""
        names = list(self.grid)
        out = []
        for values in itertools.product(*(self.grid[n] for n in names)):
            out.append(dict(zip(names, values)))
        return out

    def jobs(self) -> List["Job"]:
        """The sweep's cartesian grid as orchestration-engine jobs, in the
        same (point-major, workload-minor) order ``run`` reports rows."""
        from ..exec.jobs import Job

        out: List[Job] = []
        for params in self.points():
            for workload in self.workloads:
                spec = RunSpec(
                    workload=tuple(workload),
                    machine=self.machine,
                    features=self.features,
                    commit_target=self.commit_target,
                    max_cycles=self.max_cycles,
                )
                out.append(Job(spec=spec, overrides=tuple(sorted(params.items()))))
        return out

    def run(
        self,
        suite: Optional[WorkloadSuite] = None,
        executor: Optional["Executor"] = None,
        batch_size: int = 1,
    ) -> List[SweepRow]:
        """Run every (grid point × workload) pair.

        With no ``executor`` the sweep runs in-process: strictly serially
        by default, or — with ``batch_size > 1`` — as lockstep batches on
        the :class:`~repro.sim.batch.BatchRunner` (identical rows, one
        shared suite and decoded-uop store across each slice).  With an
        executor the batch goes through the orchestration engine (parallel
        workers, result cache, retries; give the *executor* a
        ``batch_size`` to batch its attempts) and a job that exhausts its
        retries raises :class:`repro.exec.ExecutionError`.  Row order and
        numeric content are identical on every path.
        """
        from ..exec.jobs import run_job

        suite = suite or WorkloadSuite()
        jobs = self.jobs()
        if executor is None:
            if batch_size > 1:
                from .batch import run_jobs_batched

                results = []
                for point in run_jobs_batched(jobs, suite, batch_size=batch_size):
                    if point.result is None:
                        raise RuntimeError(
                            f"sweep point {point.job.label()} failed: {point.error}"
                        )
                    results.append(point.result)
            else:
                results = [run_job(job, suite) for job in jobs]
        else:
            results = executor.map(jobs, suite=suite)
        rows: List[SweepRow] = []
        for job, result in zip(jobs, results):
            stats = result.stats
            rows.append(
                SweepRow(
                    params=dict(job.overrides),
                    workload=tuple(job.spec.workload),
                    ipc=stats.ipc,
                    pct_recycled=stats.pct_recycled,
                    pct_reused=stats.pct_reused,
                    branch_miss_cov=stats.branch_miss_coverage,
                    cycles=stats.cycles,
                )
            )
        return rows

    # ------------------------------------------------------------------
    def to_csv(self, rows: Sequence[SweepRow]) -> str:
        """Long-form CSV: one line per (point, workload)."""
        names = list(self.grid)
        out = io.StringIO()
        header = names + [
            "workload", "ipc", "pct_recycled", "pct_reused",
            "branch_miss_cov", "cycles",
        ]
        out.write(",".join(header) + "\n")
        for row in rows:
            cells = [str(row.params[n]) for n in names]
            cells += [
                "+".join(row.workload),
                f"{row.ipc:.4f}",
                f"{row.pct_recycled:.2f}",
                f"{row.pct_reused:.3f}",
                f"{row.branch_miss_cov:.2f}",
                str(row.cycles),
            ]
            out.write(",".join(cells) + "\n")
        return out.getvalue()

    def summarize(self, rows: Sequence[SweepRow]) -> Dict[Tuple, float]:
        """Average IPC per grid point (over workloads).

        Keys are ``(name, value)`` tuples in *grid declaration order*, and
        the mapping preserves first-appearance (insertion) order of the
        points — deterministic for a given sweep, independent of how the
        rows were produced.
        """
        names = list(self.grid)
        sums: Dict[Tuple, List[float]] = {}
        for row in rows:
            key = tuple((name, row.params[name]) for name in names)
            sums.setdefault(key, []).append(row.ipc)
        return {key: sum(v) / len(v) for key, v in sums.items()}
