"""Generic parameter sweeps over machine configurations and workloads.

The figure/table experiments cover the paper's axes; this module covers
*everything else*: grid sweeps over arbitrary ``MachineConfig`` fields
crossed with workloads, with tidy (long-form) results and CSV export —
the workhorse for custom ablations.

Example::

    from repro.sim.sweep import Sweep
    sweep = Sweep(
        workloads=[("compress",), ("go",)],
        features="REC/RS/RU",
        grid={"active_list_size": [32, 64, 128],
              "confidence_threshold": [4, 8, 12]},
        commit_target=1500,
    )
    rows = sweep.run()
    print(sweep.to_csv(rows))
"""

from __future__ import annotations

import io
import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..pipeline.config import Features, MachineConfig
from ..pipeline.core import Core
from ..workloads.suite import WorkloadSuite


@dataclass
class SweepRow:
    """One (configuration point × workload) result."""

    params: Dict[str, object]
    workload: Tuple[str, ...]
    ipc: float
    pct_recycled: float
    pct_reused: float
    branch_miss_cov: float
    cycles: int

    def key(self) -> Tuple:
        return tuple(sorted(self.params.items())) + (self.workload,)


@dataclass
class Sweep:
    workloads: Sequence[Sequence[str]]
    grid: Dict[str, Sequence[object]]
    machine: str = "big.2.16"
    features: str = "REC/RS/RU"
    commit_target: int = 1500
    max_cycles: int = 2_000_000

    def __post_init__(self) -> None:
        valid = set(MachineConfig.__dataclass_fields__)
        unknown = set(self.grid) - valid
        if unknown:
            raise ValueError(f"unknown MachineConfig fields: {sorted(unknown)}")

    def points(self) -> List[Dict[str, object]]:
        """The cartesian grid as a list of override dicts."""
        names = list(self.grid)
        out = []
        for values in itertools.product(*(self.grid[n] for n in names)):
            out.append(dict(zip(names, values)))
        return out

    def run(self, suite: Optional[WorkloadSuite] = None) -> List[SweepRow]:
        suite = suite or WorkloadSuite()
        features = Features.all_variants()[self.features]
        rows: List[SweepRow] = []
        for params in self.points():
            base = MachineConfig.by_name(self.machine, features=features)
            config = replace(base, **params)
            for workload in self.workloads:
                core = Core(config)
                core.load(suite.mix(workload), commit_target=self.commit_target)
                stats = core.run(max_cycles=self.max_cycles)
                rows.append(
                    SweepRow(
                        params=dict(params),
                        workload=tuple(workload),
                        ipc=stats.ipc,
                        pct_recycled=stats.pct_recycled,
                        pct_reused=stats.pct_reused,
                        branch_miss_cov=stats.branch_miss_coverage,
                        cycles=stats.cycles,
                    )
                )
        return rows

    # ------------------------------------------------------------------
    def to_csv(self, rows: Sequence[SweepRow]) -> str:
        """Long-form CSV: one line per (point, workload)."""
        names = list(self.grid)
        out = io.StringIO()
        header = names + [
            "workload", "ipc", "pct_recycled", "pct_reused",
            "branch_miss_cov", "cycles",
        ]
        out.write(",".join(header) + "\n")
        for row in rows:
            cells = [str(row.params[n]) for n in names]
            cells += [
                "+".join(row.workload),
                f"{row.ipc:.4f}",
                f"{row.pct_recycled:.2f}",
                f"{row.pct_reused:.3f}",
                f"{row.branch_miss_cov:.2f}",
                str(row.cycles),
            ]
            out.write(",".join(cells) + "\n")
        return out.getvalue()

    def summarize(self, rows: Sequence[SweepRow]) -> Dict[Tuple, float]:
        """Average IPC per grid point (over workloads)."""
        sums: Dict[Tuple, List[float]] = {}
        for row in rows:
            key = tuple(sorted(row.params.items()))
            sums.setdefault(key, []).append(row.ipc)
        return {key: sum(v) / len(v) for key, v in sums.items()}
