"""Run specifications and results: one simulation = one RunSpec.

This is the layer the experiment registry, the CLI, the examples and
the benchmark harness all share: describe a run declaratively, get back
IPC plus the paper's statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..pipeline.config import Features, MachineConfig, RecyclePolicy
from ..pipeline.core import Core
from ..stats.counters import SimStats
from ..workloads.suite import WorkloadSuite

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..exec.pool import Executor

#: Default measurement window per program (committed instructions).
DEFAULT_COMMIT_TARGET = 3000
DEFAULT_MAX_CYCLES = 2_000_000


@dataclass(frozen=True)
class RunSpec:
    """A declarative simulation request."""

    workload: Sequence[str]  # kernel names; len > 1 = multiprogrammed
    machine: str = "big.2.16"
    features: str = "REC/RS/RU"  # a Features label from Figures 3-4
    policy: Optional[str] = None  # e.g. "stop-8"; None = machine default
    commit_target: int = DEFAULT_COMMIT_TARGET
    max_cycles: int = DEFAULT_MAX_CYCLES
    confidence_threshold: Optional[int] = None

    def label(self) -> str:
        wl = "+".join(self.workload)
        return f"{self.machine}/{self.features}/{wl}"

    def build_config(self) -> MachineConfig:
        variants = Features.all_variants()
        try:
            features = variants[self.features]
        except KeyError as exc:
            raise ValueError(
                f"unknown features {self.features!r}; know {sorted(variants)}"
            ) from exc
        overrides = {"features": features}
        if self.policy is not None:
            overrides["policy"] = RecyclePolicy.parse(self.policy)
        if self.confidence_threshold is not None:
            overrides["confidence_threshold"] = self.confidence_threshold
        return MachineConfig.by_name(self.machine, **overrides)


@dataclass
class RunResult:
    """Outcome of one simulation."""

    spec: RunSpec
    stats: SimStats
    per_program_ipc: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    def summary_line(self) -> str:
        return (
            f"{self.spec.label():<44s} IPC={self.ipc:6.3f} "
            f"rec={self.stats.pct_recycled:5.1f}% reuse={self.stats.pct_reused:5.2f}% "
            f"cov={self.stats.branch_miss_coverage:5.1f}%"
        )


def run_spec(
    spec: RunSpec,
    suite: Optional[WorkloadSuite] = None,
    config: Optional[MachineConfig] = None,
) -> RunResult:
    """Execute one simulation described by ``spec``.

    ``config`` overrides ``spec.build_config()`` — the orchestration layer
    uses it to apply sweep-style ``MachineConfig`` field overrides that a
    ``RunSpec`` cannot express.
    """
    suite = suite or WorkloadSuite()
    core = Core(config if config is not None else spec.build_config())
    programs = suite.mix(spec.workload)
    core.load(programs, commit_target=spec.commit_target)
    stats = core.run(max_cycles=spec.max_cycles)
    result = RunResult(spec=spec, stats=stats)
    for instance in core.instances:
        result.per_program_ipc[instance.name] = stats.instance_ipc(instance.id)
    return result


def run_matrix(
    specs: Sequence[RunSpec],
    suite: Optional[WorkloadSuite] = None,
    executor: Optional["Executor"] = None,
) -> List[RunResult]:
    """Run a batch of specs against one shared (cached) workload suite.

    With no ``executor`` this is the historical strictly-serial path.  With
    an :class:`repro.exec.Executor` the batch goes through the orchestration
    engine (worker pool, result cache, retries); a job that exhausts its
    retries raises :class:`repro.exec.ExecutionError`.
    """
    suite = suite or WorkloadSuite()
    if executor is None:
        return [run_spec(spec, suite) for spec in specs]
    return executor.map(specs, suite=suite)


def average_ipc(results: Sequence[RunResult]) -> float:
    if not results:
        return 0.0
    return sum(r.ipc for r in results) / len(results)
