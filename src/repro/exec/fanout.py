"""Generic parallel fan-out: map a picklable function over items.

The :class:`~repro.exec.pool.Executor` is deliberately sim-shaped — it
speaks :class:`~repro.exec.jobs.Job`, caches :class:`RunResult` payloads
and assembles workload suites in its workers.  Analysis passes that just
need "run this pure function over N inputs on N cores" (the lint engine,
per-file AST passes) get this lighter primitive instead.

Contract
--------
* ``fanout_map(func, items, jobs)`` returns ``[func(x) for x in items]``
  in input order, always.
* ``jobs <= 1`` (or fewer than two items) is the serial in-process path —
  no processes, exceptions propagate unchanged.
* In parallel mode items are split into contiguous chunks, one worker
  process per chunk (same process-per-unit philosophy as the pool: no
  persistent workers, crash isolation for free).  ``func`` must be a
  top-level function and items/results picklable, so the map works under
  both ``fork`` and ``spawn`` start methods.
* A worker exception is re-raised in the parent as :class:`FanoutError`
  carrying the original traceback text; a worker that dies without
  replying raises too.  No partial results are returned.

Determinism note: the *computation* is order-preserving by construction;
``func`` itself must still be pure for results to be reproducible.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["FanoutError", "fanout_map"]


class FanoutError(RuntimeError):
    """A worker chunk failed; ``.cause_text`` holds its traceback."""

    def __init__(self, message: str, cause_text: str = ""):
        super().__init__(message)
        self.cause_text = cause_text


def _chunk_worker(conn, func: Callable[[Any], Any], chunk: Sequence[Any]) -> None:
    """Top-level worker target (must be importable under ``spawn``)."""
    try:
        conn.send(("ok", [func(item) for item in chunk]))
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _chunks(items: Sequence[Any], parts: int) -> List[Sequence[Any]]:
    """Split into ``parts`` contiguous chunks, sizes differing by <= 1."""
    n = len(items)
    base, extra = divmod(n, parts)
    out: List[Sequence[Any]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        out.append(items[start:start + size])
        start += size
    return out


def fanout_map(
    func: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int = 1,
    mp_context: Optional[str] = None,
) -> List[Any]:
    """``[func(x) for x in items]``, optionally across processes."""
    items = list(items)
    jobs = max(1, int(jobs))
    if jobs <= 1 or len(items) < 2:
        return [func(item) for item in items]

    if mp_context is None:
        methods = multiprocessing.get_all_start_methods()
        mp_context = "fork" if "fork" in methods else "spawn"
    ctx = multiprocessing.get_context(mp_context)

    chunks = _chunks(items, min(jobs, len(items)))
    workers = []
    for chunk in chunks:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_chunk_worker, args=(child_conn, func, chunk), daemon=True
        )
        process.start()
        child_conn.close()
        workers.append((process, parent_conn, chunk))

    results: List[Any] = []
    error: Optional[FanoutError] = None
    for process, conn, chunk in workers:
        try:
            reply = conn.recv()
        except (EOFError, OSError):
            reply = ("error", f"worker died without replying ({len(chunk)} items)", "")
        finally:
            conn.close()
        process.join()
        if error is not None:
            continue  # still drain/join the remaining workers
        if reply[0] == "ok":
            results.extend(reply[1])
        else:
            error = FanoutError(reply[1], reply[2] if len(reply) > 2 else "")
    if error is not None:
        raise error
    return results
