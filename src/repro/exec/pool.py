"""The executor: a fault-tolerant multiprocessing pool for simulation jobs.

Design
------
One OS process per job attempt (not a persistent pool): a worker that
hard-crashes or hangs takes down only its own attempt, the parent
``terminate()``s deadline violators, and retries are a fresh process with
clean state.  Job payloads and results cross the pipe as plain dicts, so
workers stay compatible with both ``fork`` and ``spawn`` start methods.
Kernels re-assemble once per worker via the process-global suite cache in
:mod:`repro.exec.jobs` — negligible next to a simulation.

Order of precedence when resolving a job:

1. the resume :class:`~repro.exec.cache.Journal` (if configured),
2. the content-addressed :class:`~repro.exec.cache.ResultCache`,
3. actual execution (serial in-process when ``jobs <= 1``, else the pool).

Every successful execution is written back to both stores.  A job that
exhausts its retries yields a structured :class:`~repro.exec.jobs.JobFailure`
row in its outcome — the batch always completes.

Serial mode (``jobs <= 1``) is the default everywhere and preserves the
historical strictly-sequential semantics: exceptions are still retried and
reported structurally, but per-job timeouts are not enforced (there is no
second process to do the killing) and chaos ``exit`` injection is treated
as an ordinary failure rather than killing the caller.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..sim.batch import BatchRunner, group_batches
from ..sim.runner import RunResult, RunSpec
from ..workloads.suite import WorkloadSuite
from .cache import Journal, ResultCache, cache_key
from .jobs import (
    Chaos,
    Job,
    JobFailure,
    JobOutcome,
    execute_payload,
    execute_payload_batch,
    job_to_payload,
    result_from_payload,
    result_to_payload,
    run_job,
)
from .progress import ProgressReporter

#: Scheduler poll interval while waiting on workers (seconds).
_POLL_INTERVAL = 0.02


class ExecutionError(RuntimeError):
    """Raised by :meth:`Executor.map` when any job exhausted its retries."""

    def __init__(self, failures: Sequence[JobOutcome]):
        self.failures = list(failures)
        lines = ", ".join(
            f"{o.job.label()}: {o.failure.kind} ({o.failure.message})" for o in self.failures
        )
        super().__init__(f"{len(self.failures)} job(s) failed: {lines}")


def _apply_chaos(chaos: Optional[Chaos], attempt: int, allow_exit: bool) -> None:
    """Honour a job's fault-injection hooks for this attempt."""
    if chaos is None:
        return
    if attempt <= chaos.sleep_first_attempts and chaos.sleep_seconds > 0:
        time.sleep(chaos.sleep_seconds)
    if attempt <= chaos.exit_first_attempts:
        if allow_exit:
            os._exit(13)  # simulated hard crash: no exception, no cleanup
        raise RuntimeError("chaos: injected crash (serial mode)")
    if attempt <= chaos.fail_first_attempts:
        raise RuntimeError("chaos: injected failure")


def _worker_entry(conn, payload: Dict, suite_args: Tuple[int, bool], chaos: Optional[Chaos], attempt: int) -> None:
    """Top-level worker target (must be importable under ``spawn``)."""
    try:
        _apply_chaos(chaos, attempt, allow_exit=True)
        result_payload = execute_payload(payload, suite_args)
        conn.send(("ok", result_payload))
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _batch_worker_entry(conn, payloads: List[Dict], suite_args: Tuple[int, bool]) -> None:
    """Top-level batch worker target: one lockstep batch per process.

    Replies ``("batch", [(status, body), ...])`` with one entry per
    payload; per-point failures are structured inside the list, so only
    a whole-batch failure (e.g. mixed-machine validation) uses the
    ``("error", message)`` shape.
    """
    try:
        conn.send(("batch", execute_payload_batch(payloads, suite_args)))
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


@dataclass
class _Running:
    """Book-keeping for one in-flight worker process.

    ``indices`` holds one job index for a classic single-job attempt and
    the whole slice for a lockstep-batch attempt.
    """

    indices: List[int]
    attempt: int
    process: multiprocessing.Process
    conn: "multiprocessing.connection.Connection"
    started: float


class Executor:
    """Runs batches of jobs with caching, retries, timeouts and progress.

    Parameters
    ----------
    jobs:
        Worker-pool width.  ``<= 1`` selects the serial in-process path.
    cache:
        A :class:`ResultCache`, a directory path to create one in, or None.
    retries:
        Extra attempts after the first failure (so ``retries=2`` means at
        most 3 attempts per job).
    timeout:
        Per-attempt wall-clock budget in seconds (parallel mode only); a
        worker past its deadline is terminated and the attempt counts as a
        ``"timeout"`` failure.
    journal:
        A :class:`Journal`, a path to one, or None — completed results are
        appended as they land so an interrupted batch resumes for free.
    progress:
        A :class:`ProgressReporter` shared across batches.
    batch_size:
        Lockstep batch width.  ``1`` (the default) preserves the classic
        one-job-per-attempt behaviour; ``N > 1`` makes each attempt a
        compatible slice of up to N jobs simulated in lockstep in one
        process (see :mod:`repro.sim.batch`).  First attempts batch;
        retries always re-run failed points singly.  In parallel mode
        ``timeout`` bounds a whole batch attempt, and a crashed or timed
        out batch falls back to singleton retries for every member.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[Union[ResultCache, str, "os.PathLike"]] = None,
        retries: int = 2,
        timeout: Optional[float] = None,
        journal: Optional[Union[Journal, str, "os.PathLike"]] = None,
        progress: Optional[ProgressReporter] = None,
        mp_context: Optional[str] = None,
        batch_size: int = 1,
    ):
        self.jobs = max(1, int(jobs))
        self.batch_size = max(1, int(batch_size))
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.retries = max(0, int(retries))
        self.timeout = timeout
        if journal is not None and not isinstance(journal, Journal):
            journal = Journal(journal)
        self.journal = journal
        self.progress = progress
        if progress is not None:
            progress.workers = max(progress.workers, self.jobs)
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(mp_context)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self, jobs: Sequence[Union[Job, RunSpec]], suite: Optional[WorkloadSuite] = None
    ) -> List[JobOutcome]:
        """Execute a batch; one outcome per job, input order preserved."""
        jobs = [job if isinstance(job, Job) else Job(spec=job) for job in jobs]
        suite = suite or WorkloadSuite()
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)

        if self.progress is not None:
            self.progress.add_total(len(jobs))

        keys = self._resolve_keys(jobs, suite)
        journaled = self.journal.load() if self.journal is not None else {}

        pending: List[int] = []
        for index, job in enumerate(jobs):
            payload = None
            key = keys[index]
            if key is not None and key in journaled:
                payload = journaled[key]
            elif key is not None and self.cache is not None:
                payload = self.cache.get(key)
            if payload is not None:
                outcomes[index] = JobOutcome(
                    job=job, result=result_from_payload(payload), cached=True
                )
                self._record(outcomes[index])
            else:
                pending.append(index)

        if pending:
            if self.jobs <= 1:
                if self.batch_size > 1:
                    self._run_serial_batched(jobs, pending, suite, keys, outcomes)
                else:
                    self._run_serial(jobs, pending, suite, keys, outcomes)
            else:
                self._run_parallel(jobs, pending, suite, keys, outcomes)
        return [outcome for outcome in outcomes if outcome is not None]

    def map(self, jobs: Sequence[Union[Job, RunSpec]], suite: Optional[WorkloadSuite] = None) -> List[RunResult]:
        """Like :meth:`run` but unwraps results; raises on any failure."""
        outcomes = self.run(jobs, suite=suite)
        failed = [outcome for outcome in outcomes if not outcome.ok]
        if failed:
            raise ExecutionError(failed)
        return [outcome.result for outcome in outcomes]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_keys(self, jobs: Sequence[Job], suite: WorkloadSuite) -> List[Optional[str]]:
        if self.cache is None and self.journal is None:
            return [None] * len(jobs)
        fingerprint = suite.fingerprint()
        version = self.cache.sim_version if self.cache is not None else None
        return [cache_key(job, fingerprint, version) for job in jobs]

    def _record(self, outcome: JobOutcome) -> None:
        if self.progress is not None:
            self.progress.record(
                cached=outcome.cached,
                failed=not outcome.ok,
                elapsed=outcome.elapsed,
                label=outcome.job.label(),
            )

    def _commit(self, index: int, job: Job, key: Optional[str], payload: Dict,
                attempts: int, elapsed: float, outcomes: List[Optional[JobOutcome]]) -> None:
        """Store a fresh result in the cache + journal and finalise it."""
        if key is not None:
            if self.cache is not None:
                self.cache.put(key, payload, job=job)
            if self.journal is not None:
                self.journal.append(key, payload)
        outcomes[index] = JobOutcome(
            job=job,
            result=result_from_payload(payload),
            attempts=attempts,
            elapsed=elapsed,
        )
        self._record(outcomes[index])

    def _fail(self, index: int, job: Job, kind: str, message: str, attempts: int,
              elapsed: float, outcomes: List[Optional[JobOutcome]]) -> None:
        outcomes[index] = JobOutcome(
            job=job,
            failure=JobFailure(kind=kind, message=message, attempts=attempts),
            attempts=attempts,
            elapsed=elapsed,
        )
        self._record(outcomes[index])

    def _pending_batches(self, jobs, pending) -> List[List[int]]:
        """Group pending job indices into compatible lockstep slices."""
        groups = group_batches([jobs[index] for index in pending], self.batch_size)
        return [[pending[position] for position in group] for group in groups]

    # ------------------------------------------------------------------
    def _run_serial(self, jobs, pending, suite, keys, outcomes,
                    first_attempt: int = 1) -> None:
        """Classic in-process path; ``first_attempt > 1`` resumes the
        attempt budget for points whose batched first attempt failed."""
        max_attempts = self.retries + 1
        for index in pending:
            job = jobs[index]
            started = time.monotonic()
            for attempt in range(first_attempt, max_attempts + 1):
                try:
                    _apply_chaos(job.chaos, attempt, allow_exit=False)
                    payload = result_to_payload(run_job(job, suite))
                except Exception as exc:  # noqa: BLE001 - structured failure row
                    if attempt >= max_attempts:
                        self._fail(
                            index, job, "error", f"{type(exc).__name__}: {exc}",
                            attempt, time.monotonic() - started, outcomes,
                        )
                else:
                    self._commit(
                        index, job, keys[index], payload,
                        attempt, time.monotonic() - started, outcomes,
                    )
                    break

    def _run_serial_batched(self, jobs, pending, suite, keys, outcomes) -> None:
        """Serial mode with lockstep slices: batch the first attempt of
        every multi-job slice, then push failures (and all singleton
        slices — which may carry chaos) through the classic path."""
        max_attempts = self.retries + 1
        singles: List[int] = []
        for indices in self._pending_batches(jobs, pending):
            if len(indices) <= 1:
                singles.extend(indices)
                continue
            started = time.monotonic()
            try:
                points = BatchRunner(
                    [jobs[index] for index in indices], suite=suite
                ).run()
            except Exception as exc:  # noqa: BLE001 - whole-slice failure
                message = f"{type(exc).__name__}: {exc}"
                if max_attempts > 1:
                    self._run_serial(jobs, indices, suite, keys, outcomes,
                                     first_attempt=2)
                else:
                    for index in indices:
                        self._fail(index, jobs[index], "error", message,
                                   1, time.monotonic() - started, outcomes)
                continue
            elapsed = time.monotonic() - started
            retry: List[int] = []
            for index, point in zip(indices, points):
                if point.result is not None:
                    self._commit(index, jobs[index], keys[index],
                                 result_to_payload(point.result), 1, elapsed,
                                 outcomes)
                elif max_attempts > 1:
                    retry.append(index)
                else:
                    self._fail(index, jobs[index], "error",
                               point.error or "batch point failed", 1, elapsed,
                               outcomes)
            if retry:
                self._run_serial(jobs, retry, suite, keys, outcomes,
                                 first_attempt=2)
        if singles:
            self._run_serial(jobs, singles, suite, keys, outcomes)

    # ------------------------------------------------------------------
    def _spawn(self, indices: List[int], attempt: int, jobs, suite) -> _Running:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        suite_args = (suite.iters, suite.extended)
        if len(indices) == 1:
            job = jobs[indices[0]]
            args = (child_conn, job_to_payload(job), suite_args, job.chaos, attempt)
            target = _worker_entry
        else:
            payloads = [job_to_payload(jobs[index]) for index in indices]
            args = (child_conn, payloads, suite_args)
            target = _batch_worker_entry
        process = self._ctx.Process(target=target, args=args, daemon=True)
        process.start()
        child_conn.close()  # parent keeps only the read end
        return _Running(
            indices=list(indices), attempt=attempt, process=process,
            conn=parent_conn, started=time.monotonic(),
        )

    def _reap(self, handle: _Running) -> None:
        handle.conn.close()
        handle.process.join(timeout=1.0)
        if handle.process.is_alive():  # pragma: no cover - stubborn worker
            handle.process.kill()
            handle.process.join(timeout=1.0)

    def _run_parallel(self, jobs, pending, suite, keys, outcomes) -> None:
        """Pool scheduler over work units of one-or-more job indices.

        With ``batch_size == 1`` every unit is a single index and this is
        the classic one-process-per-job-attempt pool.  With batching,
        first attempts are compatible slices (one process simulates the
        whole slice in lockstep) and any failure — a point error inside
        the slice, or the whole worker crashing or timing out — degrades
        the affected indices to singleton retries with the attempt budget
        carried over.
        """
        max_attempts = self.retries + 1
        # Work units awaiting a first attempt.
        queue: List[List[int]] = self._pending_batches(jobs, pending)
        retry_queue: List[Tuple[int, int]] = []  # (index, next attempt)
        running: List[_Running] = []
        started_at: Dict[int, float] = {}

        def launch_capacity() -> None:
            while len(running) < self.jobs and (retry_queue or queue):
                if retry_queue:
                    index, attempt = retry_queue.pop(0)
                    indices = [index]
                else:
                    indices, attempt = queue.pop(0), 1
                now = time.monotonic()
                for index in indices:
                    started_at.setdefault(index, now)
                running.append(self._spawn(indices, attempt, jobs, suite))

        def settle_index(index: int, attempt: int, kind: str, message: str) -> None:
            """One index's attempt ended without a usable result."""
            if attempt >= max_attempts:
                self._fail(
                    index, jobs[index], kind, message,
                    attempt, time.monotonic() - started_at[index], outcomes,
                )
            else:
                retry_queue.append((index, attempt + 1))

        def settle(handle: _Running, kind: str, message: str) -> None:
            """A whole attempt (single or slice) died: settle each member."""
            self._reap(handle)
            for index in handle.indices:
                settle_index(index, handle.attempt, kind, message)

        launch_capacity()
        while running:
            progressed = False
            for handle in list(running):
                if handle.conn.poll():
                    running.remove(handle)
                    progressed = True
                    try:
                        status, body = handle.conn.recv()
                    except (EOFError, OSError):
                        settle(handle, "crash", "worker died mid-reply")
                        continue
                    if status == "ok":
                        self._reap(handle)
                        index = handle.indices[0]
                        self._commit(
                            index, jobs[index], keys[index],
                            body, handle.attempt,
                            time.monotonic() - started_at[index], outcomes,
                        )
                    elif status == "batch":
                        self._reap(handle)
                        for index, (point_status, point_body) in zip(
                            handle.indices, body
                        ):
                            if point_status == "ok":
                                self._commit(
                                    index, jobs[index], keys[index],
                                    point_body, handle.attempt,
                                    time.monotonic() - started_at[index],
                                    outcomes,
                                )
                            else:
                                settle_index(
                                    index, handle.attempt, "error",
                                    str(point_body),
                                )
                    else:
                        settle(handle, "error", str(body))
                elif not handle.process.is_alive():
                    running.remove(handle)
                    progressed = True
                    code = handle.process.exitcode
                    settle(handle, "crash", f"worker exited with code {code}")
                elif (
                    self.timeout is not None
                    and time.monotonic() - handle.started > self.timeout
                ):
                    running.remove(handle)
                    progressed = True
                    handle.process.terminate()
                    settle(handle, "timeout", f"exceeded {self.timeout:.1f}s budget")
            launch_capacity()
            if running and not progressed:
                # Block until any worker has output (bounded, then re-check
                # liveness and deadlines).
                multiprocessing.connection.wait(
                    [handle.conn for handle in running], timeout=_POLL_INTERVAL
                )
