"""Content-addressed result cache and the resume journal.

Cache key
---------
A result is addressed by the SHA-256 of a canonical JSON document built
from everything that determines a simulation's output:

* the ``RunSpec`` fields (workload, commit/cycle windows, thresholds),
* the fully *resolved* :class:`~repro.pipeline.config.MachineConfig`
  (machine + features + policy + any sweep overrides, every field),
* the workload-suite fingerprint (kernel names and generated sources at
  the suite's iteration count),
* the simulator version fingerprint (``repro.__version__``) and the cache
  schema version.

Because the resolved config is hashed field-by-field, any change to a
machine parameter, feature set, or policy produces a different key; no
invalidation logic is needed beyond "bump ``__version__`` when simulator
behaviour changes".

Layout: ``<root>/<key[:2]>/<key>.json`` — one JSON document per result,
written atomically (tmp + rename) so a killed run never leaves a torn
entry.

The :class:`Journal` is an append-only JSONL file recording completed
(key, payload) pairs; an interrupted campaign replays it on startup and
resumes where it left off, independently of (and in addition to) the
content-addressed store.  Repeatedly resumed campaigns re-append every
completion, so the file grows without bound — :meth:`Journal.compact`
rewrites it down to live entries and is called on clean startups (the
campaign CLI and the service's artifact store both do).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from ..workloads.suite import WorkloadSuite
from .jobs import Job, job_to_payload, spec_to_payload

#: Bump when the cached payload layout changes (invalidates all entries).
CACHE_SCHEMA = 1


def _default_sim_version() -> str:
    # Imported lazily: ``repro/__init__`` itself imports this package.
    from .. import __version__

    return __version__


def canonicalize(value):
    """Reduce configs (nested dataclasses, enums, tuples) to plain JSON-able
    structures with deterministic ordering."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonicalize(getattr(value, f.name))
            for f in sorted(dataclasses.fields(value), key=lambda f: f.name)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): canonicalize(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def write_atomic(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` so readers never observe a torn file.

    tmp file in the same directory → flush → fsync → ``os.replace``.  The
    fsync matters: without it a crash shortly after the rename can leave
    a zero-length or truncated file at the *final* path on some
    filesystems, which is exactly the "poisoned entry" failure mode the
    cache must never produce.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def cache_key(job: Job, suite_fingerprint: str, sim_version: Optional[str] = None) -> str:
    """Stable content address for one job's result."""
    document = {
        "schema": CACHE_SCHEMA,
        "sim_version": sim_version or _default_sim_version(),
        "suite": suite_fingerprint,
        "spec": canonicalize(spec_to_payload(job.spec)),
        "config": canonicalize(job.resolved_config()),
    }
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed on-disk store of simulation result payloads."""

    def __init__(self, root: Union[str, Path], sim_version: Optional[str] = None):
        self.root = Path(root)
        self.sim_version = sim_version or _default_sim_version()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def key_for(self, job: Job, suite: WorkloadSuite) -> str:
        return cache_key(job, suite.fingerprint(), self.sim_version)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """The stored result payload for ``key``, or None.

        A corrupt entry (truncated JSON from a disk-full write or a
        pre-atomic-write simulator, wrong schema, missing payload) is
        *deleted* on read, so a poisoned key heals itself: the next
        :meth:`put` stores a fresh entry instead of the corpse sitting
        in the store forever.
        """
        path = self.path_for(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            self.misses += 1
            self._evict_corrupt(path)
            return None
        if entry.get("schema") != CACHE_SCHEMA or "payload" not in entry:
            self.misses += 1
            self._evict_corrupt(path)
            return None
        self.hits += 1
        return entry["payload"]

    @staticmethod
    def _evict_corrupt(path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - already gone / unwritable dir
            pass

    def put(self, key: str, payload: Dict, job: Optional[Job] = None) -> Path:
        """Atomically store ``payload`` under ``key``.

        The entry is written to a temp file in the destination directory,
        flushed *and fsynced*, then :func:`os.replace`d into place — a
        process killed at any point leaves either the old entry or the new
        one at ``path``, never a truncated hybrid, and concurrent writers
        of the same key are safe (last replace wins with identical bytes:
        keys are content addresses, so both writers carry the same data).
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "sim_version": self.sim_version,
            "created": time.time(),  # det-ok: informational metadata; never part of key or payload
            "job": job_to_payload(job) if job is not None else None,
            "payload": payload,
        }
        write_atomic(path, json.dumps(entry))
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


class Journal:
    """Append-only JSONL checkpoint of completed jobs (crash-safe resume).

    Each line is ``{"key": ..., "payload": ...}``.  A torn final line (the
    process died mid-write) is silently dropped on load.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def load(self) -> Dict[str, Dict]:
        done: Dict[str, Dict] = {}
        try:
            with open(self.path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn tail from an interrupted write
                    done[record["key"]] = record["payload"]
        except OSError:
            pass
        return done

    def append(self, key: str, payload: Dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps({"key": key, "payload": payload}) + "\n")
            handle.flush()

    def compact(self, live_keys: Optional[Iterable[str]] = None) -> int:
        """Rewrite the journal down to one line per live key.

        Resumed campaigns re-append nothing, but *repeated* campaigns
        (and the long-running service) append every completion forever;
        duplicates and torn tails accumulate.  Compaction keeps the last
        entry per key — restricted to ``live_keys`` when given — and
        rewrites the file atomically.  Returns the number of surviving
        entries.  Call this on *clean* startup only (never mid-campaign:
        a concurrent appender's new lines would be lost).
        """
        done = self.load()
        if live_keys is not None:
            wanted = set(live_keys)
            done = {key: payload for key, payload in sorted(done.items()) if key in wanted}
        if not done and not self.path.exists():
            return 0
        lines = "".join(
            json.dumps({"key": key, "payload": payload}) + "\n"
            for key, payload in sorted(done.items())
        )
        write_atomic(self.path, lines)
        return len(done)
