"""Content-addressed result cache and the resume journal.

Cache key
---------
A result is addressed by the SHA-256 of a canonical JSON document built
from everything that determines a simulation's output:

* the ``RunSpec`` fields (workload, commit/cycle windows, thresholds),
* the fully *resolved* :class:`~repro.pipeline.config.MachineConfig`
  (machine + features + policy + any sweep overrides, every field),
* the workload-suite fingerprint (kernel names and generated sources at
  the suite's iteration count),
* the simulator version fingerprint (``repro.__version__``) and the cache
  schema version.

Because the resolved config is hashed field-by-field, any change to a
machine parameter, feature set, or policy produces a different key; no
invalidation logic is needed beyond "bump ``__version__`` when simulator
behaviour changes".

Layout: ``<root>/<key[:2]>/<key>.json`` — one JSON document per result,
written atomically (tmp + rename) so a killed run never leaves a torn
entry.

The :class:`Journal` is an append-only JSONL file recording completed
(key, payload) pairs; an interrupted campaign replays it on startup and
resumes where it left off, independently of (and in addition to) the
content-addressed store.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Union

from ..workloads.suite import WorkloadSuite
from .jobs import Job, job_to_payload, spec_to_payload

#: Bump when the cached payload layout changes (invalidates all entries).
CACHE_SCHEMA = 1


def _default_sim_version() -> str:
    # Imported lazily: ``repro/__init__`` itself imports this package.
    from .. import __version__

    return __version__


def canonicalize(value):
    """Reduce configs (nested dataclasses, enums, tuples) to plain JSON-able
    structures with deterministic ordering."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonicalize(getattr(value, f.name))
            for f in sorted(dataclasses.fields(value), key=lambda f: f.name)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): canonicalize(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def cache_key(job: Job, suite_fingerprint: str, sim_version: Optional[str] = None) -> str:
    """Stable content address for one job's result."""
    document = {
        "schema": CACHE_SCHEMA,
        "sim_version": sim_version or _default_sim_version(),
        "suite": suite_fingerprint,
        "spec": canonicalize(spec_to_payload(job.spec)),
        "config": canonicalize(job.resolved_config()),
    }
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed on-disk store of simulation result payloads."""

    def __init__(self, root: Union[str, Path], sim_version: Optional[str] = None):
        self.root = Path(root)
        self.sim_version = sim_version or _default_sim_version()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def key_for(self, job: Job, suite: WorkloadSuite) -> str:
        return cache_key(job, suite.fingerprint(), self.sim_version)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """The stored result payload for ``key``, or None."""
        path = self.path_for(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("schema") != CACHE_SCHEMA:
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def put(self, key: str, payload: Dict, job: Optional[Job] = None) -> Path:
        """Atomically store ``payload`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "sim_version": self.sim_version,
            "created": time.time(),  # det-ok: informational metadata; never part of key or payload
            "job": job_to_payload(job) if job is not None else None,
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


class Journal:
    """Append-only JSONL checkpoint of completed jobs (crash-safe resume).

    Each line is ``{"key": ..., "payload": ...}``.  A torn final line (the
    process died mid-write) is silently dropped on load.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def load(self) -> Dict[str, Dict]:
        done: Dict[str, Dict] = {}
        try:
            with open(self.path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn tail from an interrupted write
                    done[record["key"]] = record["payload"]
        except OSError:
            pass
        return done

    def append(self, key: str, payload: Dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps({"key": key, "payload": payload}) + "\n")
            handle.flush()
