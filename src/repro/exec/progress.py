"""Progress and event reporting for orchestrated campaigns.

The executor drives a :class:`ProgressReporter`; consumers (the CLI's
``\\r``-refreshed status line, tests, notebook callbacks) receive a
:class:`ProgressEvent` snapshot after every job completion.  A single
reporter may span several batches — ``repro-sim campaign`` reuses one
across every figure it runs — so totals accumulate via :meth:`add_total`.

ETA is estimated from the mean wall-time of *executed* (non-cached) jobs;
cache hits are excluded so a warm campaign doesn't wildly overpromise.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class ProgressEvent:
    """Snapshot of a campaign's progress after one job completes."""

    done: int
    total: int
    cache_hits: int
    failures: int
    elapsed: float
    eta: Optional[float]  # seconds remaining; None until one job executed
    label: str = ""  # label of the job that just finished

    def to_payload(self) -> dict:
        """Plain JSON-able dict — the wire format of the service's
        ``GET /campaigns/{id}/events`` NDJSON stream."""
        return dataclasses.asdict(self)


def _fmt_seconds(seconds: float) -> str:
    seconds = max(0, int(seconds))
    minutes, secs = divmod(seconds, 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours:d}:{minutes:02d}:{secs:02d}"
    return f"{minutes:02d}:{secs:02d}"


def format_line(event: ProgressEvent) -> str:
    """One-line human-readable progress summary."""
    parts = [f"jobs {event.done}/{event.total}"]
    extras = []
    if event.cache_hits:
        extras.append(f"{event.cache_hits} cached")
    if event.failures:
        extras.append(f"{event.failures} failed")
    if extras:
        parts.append("(" + ", ".join(extras) + ")")
    parts.append(f"elapsed {_fmt_seconds(event.elapsed)}")
    if event.eta is not None:
        parts.append(f"ETA {_fmt_seconds(event.eta)}")
    return " ".join(parts)


class ProgressReporter:
    """Accumulates job completions and notifies an optional callback."""

    def __init__(
        self,
        callback: Optional[Callable[[ProgressEvent], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._callback = callback
        self._clock = clock
        self._started: Optional[float] = None
        #: Worker-pool width, set by the executor; scales the ETA estimate.
        self.workers = 1
        self.total = 0
        self.done = 0
        self.cache_hits = 0
        self.failures = 0
        self._executed_seconds = 0.0
        self._executed_jobs = 0

    # ------------------------------------------------------------------
    def add_total(self, count: int) -> None:
        """Announce ``count`` more jobs (starts the clock on first call)."""
        if self._started is None:
            self._started = self._clock()
        self.total += count

    def record(self, cached: bool, failed: bool, elapsed: float, label: str = "") -> ProgressEvent:
        """Record one finished job and emit an event."""
        self.done += 1
        if cached:
            self.cache_hits += 1
        elif failed:
            self.failures += 1
        if not cached:
            self._executed_seconds += elapsed
            self._executed_jobs += 1
        event = self.event(label)
        if self._callback is not None:
            self._callback(event)
        return event

    def event(self, label: str = "") -> ProgressEvent:
        elapsed = 0.0 if self._started is None else self._clock() - self._started
        eta: Optional[float] = None
        if self._executed_jobs:
            per_job = self._executed_seconds / self._executed_jobs
            eta = per_job * max(0, self.total - self.done) / max(1, self.workers)
        return ProgressEvent(
            done=self.done,
            total=self.total,
            cache_hits=self.cache_hits,
            failures=self.failures,
            elapsed=elapsed,
            eta=eta,
            label=label,
        )
