"""Parallel experiment orchestration: worker pool, result cache, progress.

The engine takes batches of :class:`~repro.exec.jobs.Job` /
:class:`~repro.sim.runner.RunSpec` work items and executes them on a
fault-tolerant multiprocessing pool with a content-addressed on-disk
result cache and an append-only resume journal.  ``run_matrix``,
``Sweep.run`` and every figure/table function in
:mod:`repro.sim.experiments` accept an :class:`Executor`; the CLI exposes
it via ``--jobs`` / ``--cache-dir`` and the ``campaign`` subcommand.

Quick start::

    from repro.exec import Executor
    from repro.sim.runner import RunSpec

    ex = Executor(jobs=4, cache=".repro-cache")
    results = ex.map([RunSpec(("gcc",)), RunSpec(("go",))])
"""

from .cache import CACHE_SCHEMA, Journal, ResultCache, cache_key, canonicalize, write_atomic
from .jobs import Chaos, Job, JobFailure, JobOutcome, run_job
from .pool import ExecutionError, Executor
from .progress import ProgressEvent, ProgressReporter, format_line

__all__ = [
    "CACHE_SCHEMA",
    "Journal",
    "ResultCache",
    "cache_key",
    "canonicalize",
    "write_atomic",
    "Chaos",
    "Job",
    "JobFailure",
    "JobOutcome",
    "run_job",
    "ExecutionError",
    "Executor",
    "ProgressEvent",
    "ProgressReporter",
    "format_line",
]
