"""Job descriptions and wire payloads for the orchestration engine.

A :class:`Job` is one simulation request: a :class:`~repro.sim.runner.RunSpec`
plus optional ``MachineConfig`` field overrides (the mechanism sweeps use to
reach fields a ``RunSpec`` cannot express).  Jobs cross process boundaries and
land in the on-disk cache, so everything here round-trips through plain,
JSON-serialisable payload dicts — workers return payloads, the cache stores
payloads, and the parent reconstructs :class:`~repro.sim.runner.RunResult`
objects from them.

:class:`Chaos` is a deterministic fault-injection hook (in the spirit of
``tests/test_fault_injection.py``): it lets the engine's own test suite force
a job to fail, hard-crash, or hang on its first N attempts without touching
the simulator.  Chaos never participates in cache keys.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..pipeline.config import MachineConfig
from ..sim.runner import RunResult, RunSpec, run_spec
from ..stats.counters import SimStats
from ..workloads.suite import WorkloadSuite


@dataclass(frozen=True)
class Chaos:
    """Deterministic fault injection for engine tests.

    Each ``*_first_attempts`` field applies while ``attempt <= N`` (attempts
    are 1-based), so a value of 1 means "misbehave once, then succeed".
    """

    fail_first_attempts: int = 0  # raise RuntimeError
    exit_first_attempts: int = 0  # hard-exit the worker (simulated crash)
    sleep_first_attempts: int = 0  # sleep ``sleep_seconds`` (to trip timeouts)
    sleep_seconds: float = 0.0


@dataclass(frozen=True)
class Job:
    """One schedulable simulation."""

    spec: RunSpec
    #: Extra ``MachineConfig`` field overrides applied after
    #: ``spec.build_config()`` — sorted (name, value) pairs so jobs hash and
    #: compare deterministically.
    overrides: Tuple[Tuple[str, object], ...] = ()
    chaos: Optional[Chaos] = None

    def __post_init__(self) -> None:
        valid = set(MachineConfig.__dataclass_fields__)
        unknown = [name for name, _ in self.overrides if name not in valid]
        if unknown:
            raise ValueError(f"unknown MachineConfig fields: {sorted(unknown)}")

    def label(self) -> str:
        base = self.spec.label()
        if self.overrides:
            params = ",".join(f"{k}={v}" for k, v in self.overrides)
            return f"{base}[{params}]"
        return base

    def resolved_config(self) -> MachineConfig:
        """The final machine configuration this job simulates."""
        config = self.spec.build_config()
        if self.overrides:
            config = replace(config, **dict(self.overrides))
        return config


@dataclass(frozen=True)
class JobFailure:
    """Structured record of a job that exhausted its retries."""

    kind: str  # "error" | "crash" | "timeout"
    message: str
    attempts: int


@dataclass
class JobOutcome:
    """What happened to one job: exactly one of result/failure is set."""

    job: Job
    result: Optional[RunResult] = None
    failure: Optional[JobFailure] = None
    cached: bool = False
    attempts: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None


# ======================================================================
# Payload (de)serialisation — plain dicts safe for JSON and pickling
# ======================================================================
def spec_to_payload(spec: RunSpec) -> Dict:
    return {
        "workload": list(spec.workload),
        "machine": spec.machine,
        "features": spec.features,
        "policy": spec.policy,
        "commit_target": spec.commit_target,
        "max_cycles": spec.max_cycles,
        "confidence_threshold": spec.confidence_threshold,
    }


def spec_from_payload(payload: Dict) -> RunSpec:
    return RunSpec(
        workload=tuple(payload["workload"]),
        machine=payload["machine"],
        features=payload["features"],
        policy=payload["policy"],
        commit_target=payload["commit_target"],
        max_cycles=payload["max_cycles"],
        confidence_threshold=payload["confidence_threshold"],
    )


#: SimStats fields whose dict keys are instance ids (ints); JSON turns the
#: keys into strings, so deserialisation converts them back.
_INT_KEYED_FIELDS = ("per_instance_committed", "per_instance_cycles")


def stats_to_payload(stats: SimStats) -> Dict:
    payload = {}
    for f in dataclasses.fields(SimStats):
        value = getattr(stats, f.name)
        if f.name in _INT_KEYED_FIELDS:
            value = {str(k): v for k, v in value.items()}
        payload[f.name] = value
    return payload


def stats_from_payload(payload: Dict) -> SimStats:
    kwargs = dict(payload)
    for name in _INT_KEYED_FIELDS:
        kwargs[name] = {int(k): v for k, v in kwargs.get(name, {}).items()}
    return SimStats(**kwargs)


def result_to_payload(result: RunResult) -> Dict:
    return {
        "spec": spec_to_payload(result.spec),
        "stats": stats_to_payload(result.stats),
        "per_program_ipc": dict(result.per_program_ipc),
    }


def result_from_payload(payload: Dict) -> RunResult:
    return RunResult(
        spec=spec_from_payload(payload["spec"]),
        stats=stats_from_payload(payload["stats"]),
        per_program_ipc=dict(payload["per_program_ipc"]),
    )


def job_to_payload(job: Job) -> Dict:
    """Everything a worker needs to execute ``job`` (chaos travels too but
    is applied by the pool layer, never hashed into cache keys)."""
    return {
        "spec": spec_to_payload(job.spec),
        "overrides": [[name, value] for name, value in job.overrides],
    }


def job_from_payload(payload: Dict) -> Job:
    return Job(
        spec=spec_from_payload(payload["spec"]),
        overrides=tuple((name, value) for name, value in payload["overrides"]),
    )


# ======================================================================
# Execution — shared by the serial path and the worker processes
# ======================================================================
def run_job(job: Job, suite: WorkloadSuite) -> RunResult:
    """Execute one job in-process and return its result."""
    config = job.resolved_config() if job.overrides else None
    return run_spec(job.spec, suite, config=config)


#: Per-process suite cache so a forked/spawned worker assembles each kernel
#: set once, no matter how many jobs it executes.
_SUITE_CACHE: Dict[Tuple[int, bool], WorkloadSuite] = {}


def suite_for_args(iters: int, extended: bool) -> WorkloadSuite:
    key = (iters, extended)
    if key not in _SUITE_CACHE:
        _SUITE_CACHE[key] = WorkloadSuite(iters=iters, extended=extended)
    return _SUITE_CACHE[key]


def execute_payload(payload: Dict, suite_args: Tuple[int, bool]) -> Dict:
    """Worker-side entry: payload in, result payload out."""
    suite = suite_for_args(*suite_args)
    result = run_job(job_from_payload(payload), suite)
    return result_to_payload(result)


def execute_payload_batch(payloads, suite_args: Tuple[int, bool]):
    """Worker-side batch entry: run compatible payloads in lockstep.

    Returns one ``("ok", result_payload)`` or ``("error", message)`` pair
    per payload, in input order — a point that fails never sinks its
    batch siblings; the pool retries failed points as singletons.
    """
    from ..sim.batch import BatchRunner  # late: sim.batch is import-light

    suite = suite_for_args(*suite_args)
    jobs = [job_from_payload(p) for p in payloads]
    out = []
    for point in BatchRunner(jobs, suite=suite).run():
        if point.result is not None:
            out.append(("ok", result_to_payload(point.result)))
        else:
            out.append(("error", point.error or "unknown batch failure"))
    return out
