"""Simulation statistics (IPC, Table 1 counters, bandwidth utilization)."""

from .counters import SimStats
from .export import run_result_to_dict, stats_to_dict
from .utilization import StageUtilization, UtilizationStats

__all__ = ["SimStats", "run_result_to_dict", "stats_to_dict", "StageUtilization", "UtilizationStats"]
