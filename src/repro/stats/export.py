"""Structured export of simulation statistics (JSON-ready dicts)."""

from __future__ import annotations

from typing import Dict

from .counters import SimStats


def stats_to_dict(stats: SimStats) -> Dict:
    """Flatten a :class:`SimStats` into a JSON-serialisable dict.

    Includes both the raw counters and the derived percentages the
    paper reports, so downstream analysis never recomputes them
    differently.
    """
    return {
        "cycles": stats.cycles,
        "committed": stats.committed,
        "ipc": stats.ipc,
        "renamed": stats.renamed,
        "fetched": stats.fetched,
        "squashed": stats.squashed,
        "recycled": {
            "renamed_recycled": stats.renamed_recycled,
            "renamed_reused": stats.renamed_reused,
            "renamed_reused_loads": stats.renamed_reused_loads,
            "pct_recycled": stats.pct_recycled,
            "pct_reused": stats.pct_reused,
            "merges": stats.merges,
            "back_merges": stats.back_merges,
            "pct_back_merges": stats.pct_back_merges,
            "respawns": stats.respawns,
            "respawn_streams": stats.respawn_streams,
            "streams_ended": {
                "branch_mismatch": stats.streams_ended_branch_mismatch,
                "exhausted": stats.streams_ended_exhausted,
                "squashed": stats.streams_ended_squashed,
            },
        },
        "branches": {
            "resolved": stats.cond_branches_resolved,
            "mispredicts": stats.mispredicts,
            "mispredicts_covered": stats.mispredicts_covered,
            "accuracy_pct": stats.branch_prediction_accuracy,
            "miss_coverage_pct": stats.branch_miss_coverage,
        },
        "forks": {
            "total": stats.forks,
            "used_tme": stats.forks_used_tme,
            "pct_used_tme": stats.pct_forks_used_tme,
            "suppressed_duplicate": stats.fork_suppressed_duplicate,
            "alt_paths_deleted": stats.alt_paths_deleted,
            "pct_recycled": stats.pct_forks_recycled,
            "pct_respawned": stats.pct_forks_respawned,
            "merges_per_alt_path": stats.merges_per_alt_path,
        },
        "reclaims": {
            "for_spawn": stats.reclaim_for_spawn,
            "for_pressure": stats.reclaim_for_pressure,
        },
        "per_instance": {
            str(k): {
                "committed": stats.per_instance_committed.get(k, 0),
                "cycles": stats.per_instance_cycles.get(k, stats.cycles),
                "ipc": stats.instance_ipc(k),
            }
            for k in stats.per_instance_committed
        },
    }
