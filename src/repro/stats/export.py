"""Structured export of simulation statistics (JSON-ready dicts)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from .counters import SimStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..sim.runner import RunResult


def stats_to_dict(stats: SimStats) -> Dict:
    """Flatten a :class:`SimStats` into a JSON-serialisable dict.

    Includes both the raw counters and the derived percentages the
    paper reports, so downstream analysis never recomputes them
    differently.
    """
    return {
        "cycles": stats.cycles,
        "committed": stats.committed,
        "ipc": stats.ipc,
        "renamed": stats.renamed,
        "fetched": stats.fetched,
        "squashed": stats.squashed,
        "recycled": {
            "renamed_recycled": stats.renamed_recycled,
            "renamed_reused": stats.renamed_reused,
            "renamed_reused_loads": stats.renamed_reused_loads,
            "pct_recycled": stats.pct_recycled,
            "pct_reused": stats.pct_reused,
            "merges": stats.merges,
            "back_merges": stats.back_merges,
            "pct_back_merges": stats.pct_back_merges,
            "respawns": stats.respawns,
            "respawn_streams": stats.respawn_streams,
            "streams_ended": {
                "branch_mismatch": stats.streams_ended_branch_mismatch,
                "exhausted": stats.streams_ended_exhausted,
                "squashed": stats.streams_ended_squashed,
            },
        },
        "branches": {
            "resolved": stats.cond_branches_resolved,
            "mispredicts": stats.mispredicts,
            "mispredicts_covered": stats.mispredicts_covered,
            "accuracy_pct": stats.branch_prediction_accuracy,
            "miss_coverage_pct": stats.branch_miss_coverage,
        },
        "forks": {
            "total": stats.forks,
            "used_tme": stats.forks_used_tme,
            "pct_used_tme": stats.pct_forks_used_tme,
            "suppressed_duplicate": stats.fork_suppressed_duplicate,
            "alt_paths_deleted": stats.alt_paths_deleted,
            "pct_recycled": stats.pct_forks_recycled,
            "pct_respawned": stats.pct_forks_respawned,
            "merges_per_alt_path": stats.merges_per_alt_path,
        },
        "reclaims": {
            "for_spawn": stats.reclaim_for_spawn,
            "for_pressure": stats.reclaim_for_pressure,
        },
        # The simulator's own frontend recycling: decoded-uop cache
        # effectiveness for this run.
        "uop_cache": {
            "hits": stats.uop_cache_hits,
            "misses": stats.uop_cache_misses,
            "evictions": stats.uop_cache_evictions,
            "hit_rate": stats.uop_cache_hit_rate,
            "decode_counts": dict(stats.decode_counts),
        },
        # Decanting breakdowns (Coppieters et al., arXiv:1711.06672):
        # uop-cache and reuse hits attributed by functional-unit class
        # crossed with backward-branch loop membership
        # ("<fuclass>[.loop]").
        "decant": {
            "uop_cache_hits_by_class": dict(stats.uop_cache_hits_by_class),
            "reused_by_class": dict(stats.reused_by_class),
        },
        "per_instance": {
            str(k): {
                "committed": stats.per_instance_committed.get(k, 0),
                "cycles": stats.per_instance_cycles.get(k, stats.cycles),
                "ipc": stats.instance_ipc(k),
            }
            for k in stats.per_instance_committed
        },
    }


def run_result_to_dict(result: "RunResult") -> Dict:
    """Flatten a :class:`~repro.sim.runner.RunResult` into the canonical
    JSON document shared by ``repro-sim run --json``, ``repro-sim fetch``
    and the campaign service's ``GET /jobs/{id}/result`` endpoint — one
    serialisation, so clients never see two shapes of the same result."""
    spec = result.spec
    return {
        "spec": {
            "workload": list(spec.workload),
            "machine": spec.machine,
            "features": spec.features,
            "policy": spec.policy,
            "commit_target": spec.commit_target,
            "max_cycles": spec.max_cycles,
            "confidence_threshold": spec.confidence_threshold,
        },
        "ipc": result.ipc,
        "stats": stats_to_dict(result.stats),
        "per_program_ipc": dict(result.per_program_ipc),
    }
