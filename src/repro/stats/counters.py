"""Simulation statistics.

Counts everything the paper reports: IPC (Figures 3-6) and the Table 1
recycling statistics — percentage of rename-stage instructions that
were recycled/reused, branch-miss coverage by forking, how forked paths
were consumed (TME swap / recycled / re-spawned), merges per alternate
path, and the share of backward-branch merges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimStats:
    cycles: int = 0
    # Rename-stage accounting ("all instructions, including squashed ones,
    # inserted into the rename stage").
    renamed: int = 0
    renamed_recycled: int = 0
    renamed_reused: int = 0
    #: reused instructions that were loads (the MDB-gated subset)
    renamed_reused_loads: int = 0
    fetched: int = 0
    committed: int = 0
    squashed: int = 0
    # Branch behaviour (resolved on the architectural path).
    cond_branches_resolved: int = 0
    mispredicts: int = 0
    mispredicts_covered: int = 0  # mispredicted but fork-covered (TME swap)
    # Forking.
    forks: int = 0
    forks_used_tme: int = 0
    respawns: int = 0
    fork_suppressed_duplicate: int = 0
    # Recycle streams.
    merges: int = 0  # streams started (excluding re-spawn streams)
    back_merges: int = 0
    respawn_streams: int = 0
    streams_ended_branch_mismatch: int = 0
    streams_ended_exhausted: int = 0
    streams_ended_squashed: int = 0
    # Retired fork-path accounting (finalised when a trace is deleted).
    alt_paths_deleted: int = 0
    alt_paths_recycled: int = 0
    alt_paths_respawned: int = 0
    alt_path_merge_total: int = 0
    # Context reclaim reasons.
    reclaim_for_spawn: int = 0
    reclaim_for_pressure: int = 0
    # Per-program commits.
    per_instance_committed: Dict[int, int] = field(default_factory=dict)
    per_instance_cycles: Dict[int, int] = field(default_factory=dict)
    # Decoded-uop cache (the simulator's own frontend recycling;
    # copied from the cache at finalisation).
    uop_cache_hits: int = 0
    uop_cache_misses: int = 0
    uop_cache_evictions: int = 0
    #: Decodes per program name (cache misses that found text).
    decode_counts: Dict[str, int] = field(default_factory=dict)
    # Decanting breakdowns (Coppieters et al., arXiv:1711.06672):
    # hits keyed by "<fuclass>[.loop]" — instruction class crossed with
    # backward-branch loop membership.
    uop_cache_hits_by_class: Dict[str, int] = field(default_factory=dict)
    reused_by_class: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def pct_recycled(self) -> float:
        return 100.0 * self.renamed_recycled / self.renamed if self.renamed else 0.0

    @property
    def pct_reused(self) -> float:
        return 100.0 * self.renamed_reused / self.renamed if self.renamed else 0.0

    @property
    def uop_cache_hit_rate(self) -> float:
        lookups = self.uop_cache_hits + self.uop_cache_misses
        return self.uop_cache_hits / lookups if lookups else 0.0

    @property
    def branch_miss_coverage(self) -> float:
        if not self.mispredicts:
            return 0.0
        return 100.0 * self.mispredicts_covered / self.mispredicts

    @property
    def branch_prediction_accuracy(self) -> float:
        if not self.cond_branches_resolved:
            return 0.0
        return 100.0 * (1 - self.mispredicts / self.cond_branches_resolved)

    @property
    def pct_forks_used_tme(self) -> float:
        return 100.0 * self.forks_used_tme / self.forks if self.forks else 0.0

    @property
    def pct_forks_recycled(self) -> float:
        if not self.alt_paths_deleted:
            return 0.0
        return 100.0 * self.alt_paths_recycled / self.alt_paths_deleted

    @property
    def pct_forks_respawned(self) -> float:
        if not self.alt_paths_deleted:
            return 0.0
        return 100.0 * self.alt_paths_respawned / self.alt_paths_deleted

    @property
    def merges_per_alt_path(self) -> float:
        """Average non-back merges served per deleted alternate path that
        was recycled at least once (Table 1's 'Merges Per Alt Path')."""
        if not self.alt_paths_recycled:
            return 0.0
        return self.alt_path_merge_total / self.alt_paths_recycled

    @property
    def pct_back_merges(self) -> float:
        total = self.merges + self.back_merges
        return 100.0 * self.back_merges / total if total else 0.0

    def instance_ipc(self, instance_id: int) -> float:
        cycles = self.per_instance_cycles.get(instance_id, self.cycles)
        if not cycles:
            return 0.0
        return self.per_instance_committed.get(instance_id, 0) / cycles

    # ------------------------------------------------------------------
    def table1_row(self) -> Dict[str, float]:
        """The Table 1 statistics for this run."""
        return {
            "pct_recycled": self.pct_recycled,
            "pct_reused": self.pct_reused,
            "branch_miss_cov": self.branch_miss_coverage,
            "pct_forks_tme": self.pct_forks_used_tme,
            "pct_forks_recycled": self.pct_forks_recycled,
            "pct_forks_respawned": self.pct_forks_respawned,
            "merges_per_alt_path": self.merges_per_alt_path,
            "pct_back_merges": self.pct_back_merges,
        }

    def summary(self) -> str:
        lines = [
            f"cycles={self.cycles} committed={self.committed} IPC={self.ipc:.3f}",
            (
                f"renamed={self.renamed} recycled={self.pct_recycled:.1f}% "
                f"reused={self.pct_reused:.1f}%"
            ),
            (
                f"branches={self.cond_branches_resolved} "
                f"accuracy={self.branch_prediction_accuracy:.1f}% "
                f"miss_coverage={self.branch_miss_coverage:.1f}%"
            ),
            (
                f"forks={self.forks} tme_used={self.pct_forks_used_tme:.1f}% "
                f"respawns={self.respawns} merges={self.merges} "
                f"back_merges={self.back_merges}"
            ),
        ]
        return "\n".join(lines)
