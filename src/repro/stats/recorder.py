"""Event-bus subscriber that maintains the control-flow counters.

The per-instruction hot counters (``fetched``, ``renamed``,
``committed``, ...) are incremented inline by the stages — they are on
every-instruction paths where even a guarded publish would be wasted
work.  The *control-flow* counters (forks, swaps, merges, re-spawns,
mispredicts, squashes) fire on rare events, and deriving them from the
bus keeps the stages free of bookkeeping and proves the events carry
enough information to reconstruct the paper's tables.

A :class:`StatsRecorder` is attached to every
:class:`~repro.pipeline.core.Core` at construction; tests that need a
totally silent bus call :meth:`detach`.
"""

from __future__ import annotations

from ..pipeline.events import (
    BranchResolved,
    EventBus,
    Forked,
    PrimarySwapped,
    Respawned,
    Squashed,
    StreamOpened,
)
from ..recycle.stream import StreamKind
from .counters import SimStats


class StatsRecorder:
    """Subscribes the control-flow counters of ``stats`` to ``bus``."""

    def __init__(self, stats: SimStats, bus: EventBus):
        self.stats = stats
        self._unsubscribers = bus.subscribe_many(
            {
                Forked: self._on_forked,
                PrimarySwapped: self._on_swapped,
                Squashed: self._on_squashed,
                StreamOpened: self._on_stream_opened,
                Respawned: self._on_respawned,
                BranchResolved: self._on_branch_resolved,
            }
        )

    def detach(self) -> None:
        """Unsubscribe everything (the counters simply stop updating)."""
        for unsub in self._unsubscribers:
            unsub()
        self._unsubscribers = []

    # -- handlers ------------------------------------------------------
    def _on_forked(self, ev: Forked) -> None:
        self.stats.forks += 1

    def _on_swapped(self, ev: PrimarySwapped) -> None:
        self.stats.forks_used_tme += 1

    def _on_squashed(self, ev: Squashed) -> None:
        self.stats.squashed += 1

    def _on_stream_opened(self, ev: StreamOpened) -> None:
        if ev.kind is StreamKind.BACK:
            self.stats.back_merges += 1
        else:
            self.stats.merges += 1

    def _on_respawned(self, ev: Respawned) -> None:
        self.stats.respawns += 1
        self.stats.respawn_streams += 1

    def _on_branch_resolved(self, ev: BranchResolved) -> None:
        if ev.is_cond and ev.on_arch_path:
            self.stats.cond_branches_resolved += 1
            if ev.mispredicted:
                self.stats.mispredicts += 1
        if ev.covered:
            self.stats.mispredicts_covered += 1
