"""Event-bus subscriber that maintains the rare control-flow counters.

The hot counters (``fetched``, ``renamed``, ``committed``, ...,
and also ``squashed`` and the mispredict family) are incremented
inline by the stages — they sit on paths that run hundreds to
thousands of times per run, where even a guarded publish plus a
handler dispatch is measurable.  The genuinely *rare* control-flow
counters (forks, swaps, merges, re-spawns) derive from the bus: it
keeps the stages free of that bookkeeping and proves those events
carry enough information to reconstruct the paper's tables.

A :class:`StatsRecorder` is attached to every
:class:`~repro.pipeline.core.Core` at construction; tests that need a
totally silent bus call :meth:`detach`.
"""

from __future__ import annotations

from ..pipeline.events import (
    EventBus,
    Forked,
    PrimarySwapped,
    Respawned,
    StreamOpened,
)
from ..recycle.stream import StreamKind
from .counters import SimStats


class StatsRecorder:
    """Subscribes the control-flow counters of ``stats`` to ``bus``."""

    def __init__(self, stats: SimStats, bus: EventBus):
        self.stats = stats
        self._unsubscribers = bus.subscribe_many(
            {
                Forked: self._on_forked,
                PrimarySwapped: self._on_swapped,
                StreamOpened: self._on_stream_opened,
                Respawned: self._on_respawned,
            }
        )

    def detach(self) -> None:
        """Unsubscribe everything (the counters simply stop updating)."""
        for unsub in self._unsubscribers:
            unsub()
        self._unsubscribers = []

    # -- handlers ------------------------------------------------------
    def _on_forked(self, ev: Forked) -> None:
        self.stats.forks += 1

    def _on_swapped(self, ev: PrimarySwapped) -> None:
        self.stats.forks_used_tme += 1

    def _on_stream_opened(self, ev: StreamOpened) -> None:
        if ev.kind is StreamKind.BACK:
            self.stats.back_merges += 1
        else:
            self.stats.merges += 1

    def _on_respawned(self, ev: Respawned) -> None:
        self.stats.respawns += 1
        self.stats.respawn_streams += 1
