"""Per-stage bandwidth utilization tracking.

The paper's central argument is a *bandwidth* argument: recycling
"increases the raw bandwidth into the processor by merging recycled
instructions with fetched instructions".  These counters make that
measurable: for each cycle we record how many fetch, rename (split into
fetched vs recycled), issue and commit slots were actually used, and
report utilization against the machine's widths plus full histograms.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class StageUtilization:
    """Slot usage for one pipeline stage."""

    width: int
    cycles: int = 0
    slots_used: int = 0
    histogram: Counter = field(default_factory=Counter)

    def record(self, used: int) -> None:
        self.cycles += 1
        self.slots_used += used
        self.histogram[used] += 1

    @property
    def average(self) -> float:
        return self.slots_used / self.cycles if self.cycles else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of available slots used (0..1)."""
        if not self.cycles or not self.width:
            return 0.0
        return self.slots_used / (self.cycles * self.width)

    @property
    def idle_fraction(self) -> float:
        """Fraction of cycles with zero slots used."""
        if not self.cycles:
            return 0.0
        return self.histogram.get(0, 0) / self.cycles

    def summary(self, name: str) -> str:
        return (
            f"{name:<8s} avg {self.average:5.2f}/{self.width:<2d} "
            f"({100 * self.utilization:5.1f}%), idle {100 * self.idle_fraction:5.1f}%"
        )


@dataclass
class UtilizationStats:
    """Bandwidth accounting across the machine's stages."""

    fetch: StageUtilization
    rename: StageUtilization
    issue: StageUtilization
    commit: StageUtilization
    #: Rename slots filled by the recycle datapath, per cycle.
    recycled_rename: StageUtilization

    @staticmethod
    def for_machine(fetch_total: int, rename_width: int, issue_width: int,
                    commit_width: int) -> "UtilizationStats":
        return UtilizationStats(
            fetch=StageUtilization(fetch_total),
            rename=StageUtilization(rename_width),
            issue=StageUtilization(issue_width),
            commit=StageUtilization(commit_width),
            recycled_rename=StageUtilization(rename_width),
        )

    def record_cycle(self, fetched: int, renamed: int, recycled: int,
                     issued: int, committed: int) -> None:
        # Inline of StageUtilization.record ×5 — this runs once per
        # simulated cycle and the call (and tuple) fan-out was measurable.
        stage = self.fetch
        stage.cycles += 1
        stage.slots_used += fetched
        stage.histogram[fetched] += 1
        stage = self.rename
        stage.cycles += 1
        stage.slots_used += renamed
        stage.histogram[renamed] += 1
        stage = self.recycled_rename
        stage.cycles += 1
        stage.slots_used += recycled
        stage.histogram[recycled] += 1
        stage = self.issue
        stage.cycles += 1
        stage.slots_used += issued
        stage.histogram[issued] += 1
        stage = self.commit
        stage.cycles += 1
        stage.slots_used += committed
        stage.histogram[committed] += 1

    def record_idle(self, cycles: int) -> None:
        """Bulk-record ``cycles`` fully idle cycles across all stages.

        Exactly equivalent to ``record_cycle(0, 0, 0, 0, 0)`` repeated
        ``cycles`` times — the lockstep batch driver's fast-forward uses
        this so skipped cycles leave averages, utilization fractions and
        histograms bit-identical to a serial run that stepped them.
        """
        if cycles <= 0:
            return
        for stage in (
            self.fetch, self.rename, self.recycled_rename, self.issue, self.commit,
        ):
            stage.cycles += cycles
            stage.histogram[0] += cycles

    @property
    def rename_fill_from_recycling(self) -> float:
        """Share of used rename slots supplied by recycling (0..1)."""
        if not self.rename.slots_used:
            return 0.0
        return self.recycled_rename.slots_used / self.rename.slots_used

    def summary(self) -> str:
        lines = [
            self.fetch.summary("fetch"),
            self.rename.summary("rename"),
            self.issue.summary("issue"),
            self.commit.summary("commit"),
            (
                f"recycle supplied {100 * self.rename_fill_from_recycling:5.1f}% "
                f"of used rename slots"
            ),
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        def stage(s: StageUtilization) -> Dict:
            return {
                "width": s.width,
                "average": s.average,
                "utilization": s.utilization,
                "idle_fraction": s.idle_fraction,
            }

        return {
            "fetch": stage(self.fetch),
            "rename": stage(self.rename),
            "issue": stage(self.issue),
            "commit": stage(self.commit),
            "rename_fill_from_recycling": self.rename_fill_from_recycling,
        }
