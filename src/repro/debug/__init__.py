"""Observability: event tracing and a text pipeline viewer."""

from .pipeview import pipeview, render_uop_row
from .tracer import ALL_KINDS, CoreTracer, TraceEvent

__all__ = ["pipeview", "render_uop_row", "ALL_KINDS", "CoreTracer", "TraceEvent"]
