"""Text pipeline viewer (gem5-o3-pipeview style).

Renders the lifetime of committed uops as one row per instruction with
stage letters placed in cycle columns::

    seq ctx pc        F.D.R...I..C        instruction
    ------------------------------------------------------------------
    412  0  0x100c    R--I--=----C        slli r3, r1, 13   [rec]

Letters: ``R`` rename, ``I`` issue, ``=`` executing, ``C`` commit,
``U`` a reused instruction's rename (it never issues).  Recycled
instructions have no fetch column — that is the whole point.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..pipeline.events import Retired
from ..pipeline.uop import Uop


class UopCollector:
    """Minimal event-bus subscriber: committed uops in commit order.

    The smallest useful bus consumer — feed ``collector.uops`` straight
    to :func:`pipeview` without paying for a full
    :class:`~repro.debug.tracer.CoreTracer`::

        core = Core(config)
        collector = UopCollector(core, max_uops=500)
        core.load(programs); core.run()
        print(pipeview(collector.uops))
    """

    def __init__(self, core, max_uops: int = 200_000):
        self.max_uops = max_uops
        self.uops: List[Uop] = []
        self._unsubscribe = core.bus.subscribe(Retired, self._on_retired)

    def _on_retired(self, event: Retired) -> None:
        if len(self.uops) < self.max_uops:
            self.uops.append(event.uop)

    def detach(self) -> None:
        self._unsubscribe()


def render_uop_row(uop: Uop, origin: int, width: int) -> str:
    """One timeline row for a committed uop, cycles [origin, origin+width)."""
    lane = ["."] * width

    def put(cycle: int, char: str) -> None:
        if cycle is not None and cycle >= 0 and origin <= cycle < origin + width:
            lane[cycle - origin] = char

    if uop.reused:
        put(uop.rename_cycle, "U")
    else:
        put(uop.rename_cycle, "R")
        if uop.issue_cycle >= 0:
            put(uop.issue_cycle, "I")
            end = uop.complete_cycle if uop.complete_cycle >= 0 else uop.issue_cycle
            for cycle in range(uop.issue_cycle + 1, end):
                put(cycle, "=")
        if uop.complete_cycle >= 0:
            put(uop.complete_cycle, "x")
    flags = []
    if uop.recycled:
        flags.append("rec")
    if uop.reused:
        flags.append("reuse")
    if uop.back_merge:
        flags.append("back")
    suffix = f"  [{','.join(flags)}]" if flags else ""
    return (
        f"{uop.seq:>7d} {uop.ctx} {uop.pc:#08x}  {''.join(lane)}  "
        f"{str(uop.instr):<28s}{suffix}"
    )


def pipeview(
    uops: Sequence[Uop],
    max_rows: int = 40,
    width: Optional[int] = None,
) -> str:
    """Render a window of committed uops as a pipeline diagram."""
    rows = [u for u in uops if u.rename_cycle >= 0][:max_rows]
    if not rows:
        return "(no committed uops captured)"
    origin = min(u.rename_cycle for u in rows)
    if width is None:
        last = max(
            max(u.rename_cycle, u.issue_cycle, u.complete_cycle) for u in rows
        )
        width = min(120, last - origin + 1)
    header = (
        f"{'seq':>7s} c {'pc':<9s} cycles {origin}..{origin + width - 1} "
        f"(R=rename U=reused I=issue ==exec x=complete)"
    )
    lines = [header, "-" * (len(header) + 10)]
    lines += [render_uop_row(u, origin, width) for u in rows]
    return "\n".join(lines)
