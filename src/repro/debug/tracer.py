"""Non-intrusive pipeline tracing.

``CoreTracer`` observes a :class:`~repro.pipeline.core.Core` by
subscribing to its typed event bus (:mod:`repro.pipeline.events`),
recording a structured event stream — fetch blocks, renames, issues,
completions, commits, squashes, forks, primaryship swaps, and
recycle-stream lifecycles.  Only the requested kinds are subscribed,
so the core pays nothing for kinds the tracer is not watching (and
nothing at all once :meth:`CoreTracer.detach` runs).

Typical use::

    core = Core(config)
    core.load(programs)
    tracer = CoreTracer(core, kinds={"commit", "swap", "stream_end"})
    core.run(max_cycles=...)
    for event in tracer.events:
        print(event)

Events are lightweight records (cycle, kind, payload dict).  The tracer
also exposes filtered views and simple summaries used by the pipeline
viewer and by debugging sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, Type

from ..pipeline import events as ev
from ..pipeline.core import Core
from ..pipeline.uop import Uop

ALL_KINDS = {
    "fetch",
    "rename",
    "issue",
    "complete",
    "commit",
    "squash",
    "fork",
    "respawn",
    "swap",
    "stream_open",
    "stream_end",
}


@dataclass
class TraceEvent:
    cycle: int
    kind: str
    info: Dict

    def __str__(self) -> str:
        payload = " ".join(f"{k}={v}" for k, v in self.info.items())
        return f"[{self.cycle:>7d}] {self.kind:<11s} {payload}"


def _uop_info(uop: Uop) -> Dict:
    return {
        "seq": uop.seq,
        "ctx": uop.ctx,
        "pc": hex(uop.pc),
        "instr": str(uop.instr),
        "recycled": uop.recycled,
        "reused": uop.reused,
    }


class CoreTracer:
    """Subscribes to a core's event bus and records an event stream."""

    def __init__(
        self,
        core: Core,
        kinds: Optional[Iterable[str]] = None,
        max_events: int = 200_000,
        keep_uops: bool = True,
    ):
        self.core = core
        self.kinds: Set[str] = set(kinds) if kinds is not None else set(ALL_KINDS)
        unknown = self.kinds - ALL_KINDS
        if unknown:
            raise ValueError(f"unknown trace kinds: {sorted(unknown)}")
        self.max_events = max_events
        self.keep_uops = keep_uops
        self.events: List[TraceEvent] = []
        #: Committed uops in commit order (for the pipeline viewer).
        self.committed_uops: List[Uop] = []
        self._unsubscribers: List[Callable[[], None]] = []
        self._install()

    # ------------------------------------------------------------------
    def _emit(self, cycle: int, kind: str, info: Dict) -> None:
        if len(self.events) < self.max_events:
            self.events.append(TraceEvent(cycle, kind, info))

    def _install(self) -> None:
        handlers: Dict[str, Tuple[Type[ev.Event], Callable]] = {
            "fetch": (ev.FetchBlock, self._on_fetch),
            "rename": (ev.Renamed, self._on_rename),
            "issue": (ev.Issued, self._on_issue),
            "complete": (ev.Completed, self._on_complete),
            "commit": (ev.Retired, self._on_retire),
            "squash": (ev.Squashed, self._on_squash),
            "fork": (ev.Forked, self._on_fork),
            "respawn": (ev.Respawned, self._on_respawn),
            "swap": (ev.PrimarySwapped, self._on_swap),
            "stream_open": (ev.StreamOpened, self._on_stream_open),
            "stream_end": (ev.StreamEnded, self._on_stream_end),
        }
        bus = self.core.bus
        for kind in sorted(self.kinds):
            etype, handler = handlers[kind]
            self._unsubscribers.append(bus.subscribe(etype, handler))
        if self.keep_uops and "commit" not in self.kinds:
            # The viewer needs committed uops even when commit events
            # are filtered out of the textual stream.
            self._unsubscribers.append(bus.subscribe(ev.Retired, self._collect_uop))

    def detach(self) -> None:
        """Unsubscribe from the bus; recorded events stay available."""
        for unsub in self._unsubscribers:
            unsub()
        self._unsubscribers = []

    # ------------------------------------------------------------------
    def _on_fetch(self, e: ev.FetchBlock) -> None:
        self._emit(
            e.cycle,
            "fetch",
            {"ctx": e.ctx.id, "count": e.count, "next_pc": hex(e.next_pc)},
        )

    def _on_rename(self, e: ev.Renamed) -> None:
        self._emit(e.cycle, "rename", _uop_info(e.uop))

    def _on_issue(self, e: ev.Issued) -> None:
        uop = e.uop
        self._emit(
            e.cycle, "issue", {"seq": uop.seq, "ctx": uop.ctx, "pc": hex(uop.pc)}
        )

    def _on_complete(self, e: ev.Completed) -> None:
        uop = e.uop
        self._emit(
            e.cycle, "complete", {"seq": uop.seq, "ctx": uop.ctx, "pc": hex(uop.pc)}
        )

    def _on_retire(self, e: ev.Retired) -> None:
        self._emit(e.cycle, "commit", _uop_info(e.uop))
        self._collect_uop(e)

    def _collect_uop(self, e: ev.Retired) -> None:
        if self.keep_uops and len(self.committed_uops) < self.max_events:
            self.committed_uops.append(e.uop)

    def _on_squash(self, e: ev.Squashed) -> None:
        uop = e.uop
        self._emit(
            e.cycle, "squash", {"seq": uop.seq, "ctx": uop.ctx, "pc": hex(uop.pc)}
        )

    def _on_fork(self, e: ev.Forked) -> None:
        self._emit(
            e.cycle,
            "fork",
            {"parent": e.parent.id, "spare": e.spare.id,
             "branch": hex(e.branch.pc), "alt_pc": hex(e.alt_pc)},
        )

    def _on_respawn(self, e: ev.Respawned) -> None:
        self._emit(
            e.cycle,
            "respawn",
            {"parent": e.parent.id, "ctx": e.ctx.id, "alt_pc": hex(e.alt_pc)},
        )

    def _on_swap(self, e: ev.PrimarySwapped) -> None:
        self._emit(
            e.cycle, "swap",
            {"old": e.old.id, "new": e.new.id, "branch": hex(e.branch.pc)},
        )

    def _on_stream_open(self, e: ev.StreamOpened) -> None:
        self._emit(
            e.cycle,
            "stream_open",
            {"dst": e.dst.id, "src": e.src.id, "kind": e.kind.value,
             "pc": hex(e.merge_pc), "len": e.length},
        )

    def _on_stream_end(self, e: ev.StreamEnded) -> None:
        self._emit(
            e.cycle,
            "stream_end",
            {"dst": e.dst.id, "reason": e.reason, "delivered": e.delivered},
        )

    # ------------------------------------------------------------------
    def filter(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def format(self, limit: int = 100) -> str:
        return "\n".join(str(e) for e in self.events[:limit])
