"""Non-intrusive pipeline tracing.

``CoreTracer`` instruments a :class:`~repro.pipeline.core.Core` by
wrapping its stage methods, recording a structured event stream —
fetch blocks, renames, issues, completions, commits, squashes, forks,
primaryship swaps, and recycle-stream lifecycles — without the core
paying any cost when tracing is off.

Typical use::

    core = Core(config)
    core.load(programs)
    tracer = CoreTracer(core, kinds={"commit", "swap", "stream"})
    core.run(max_cycles=...)
    for event in tracer.events:
        print(event)

Events are lightweight tuples (cycle, kind, payload dict).  The tracer
also exposes filtered views and simple summaries used by the pipeline
viewer and by debugging sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set

from ..pipeline.core import Core
from ..pipeline.uop import Uop

ALL_KINDS = {
    "fetch",
    "rename",
    "issue",
    "complete",
    "commit",
    "squash",
    "fork",
    "respawn",
    "swap",
    "stream_open",
    "stream_end",
}


@dataclass
class TraceEvent:
    cycle: int
    kind: str
    info: Dict

    def __str__(self) -> str:
        payload = " ".join(f"{k}={v}" for k, v in self.info.items())
        return f"[{self.cycle:>7d}] {self.kind:<11s} {payload}"


def _uop_info(uop: Uop) -> Dict:
    return {
        "seq": uop.seq,
        "ctx": uop.ctx,
        "pc": hex(uop.pc),
        "instr": str(uop.instr),
        "recycled": uop.recycled,
        "reused": uop.reused,
    }


class CoreTracer:
    """Wraps a core's stage methods and records an event stream."""

    def __init__(
        self,
        core: Core,
        kinds: Optional[Iterable[str]] = None,
        max_events: int = 200_000,
        keep_uops: bool = True,
    ):
        self.core = core
        self.kinds: Set[str] = set(kinds) if kinds is not None else set(ALL_KINDS)
        unknown = self.kinds - ALL_KINDS
        if unknown:
            raise ValueError(f"unknown trace kinds: {sorted(unknown)}")
        self.max_events = max_events
        self.keep_uops = keep_uops
        self.events: List[TraceEvent] = []
        #: Committed uops in commit order (for the pipeline viewer).
        self.committed_uops: List[Uop] = []
        self._install()

    # ------------------------------------------------------------------
    def _emit(self, kind: str, info: Dict) -> None:
        if kind in self.kinds and len(self.events) < self.max_events:
            self.events.append(TraceEvent(self.core.cycle, kind, info))

    def _wrap(self, name: str, after: Callable) -> None:
        original = getattr(self.core, name)

        def wrapper(*args, **kwargs):
            result = original(*args, **kwargs)
            after(result, *args, **kwargs)
            return result

        setattr(self.core, name, wrapper)

    def _install(self) -> None:
        self._wrap("_fetch_block", self._after_fetch_block)
        self._wrap("_rename_one", self._after_rename)
        self._wrap("_rename_reused", self._after_rename_reused)
        self._wrap("_execute", self._after_execute)
        self._wrap("_retire", self._after_retire)
        self._wrap("_squash_uop", self._after_squash)
        self._wrap("_spawn", self._after_spawn)
        self._wrap("_respawn", self._after_respawn)
        self._wrap("_swap_primaryship", self._after_swap)
        self._wrap("_open_stream", self._after_open_stream)
        self._wrap("_end_stream", self._after_end_stream)

    # ------------------------------------------------------------------
    def _after_fetch_block(self, count, ctx, budget) -> None:
        if count:
            self._emit("fetch", {"ctx": ctx.id, "count": count, "next_pc": hex(ctx.pc)})

    def _after_rename(self, uop, *args, **kwargs) -> None:
        self._emit("rename", _uop_info(uop))

    def _after_rename_reused(self, uop, *args, **kwargs) -> None:
        self._emit("rename", _uop_info(uop))

    def _after_execute(self, _result, uop) -> None:
        self._emit("issue", {"seq": uop.seq, "ctx": uop.ctx, "pc": hex(uop.pc)})

    def _after_retire(self, _result, instance, ctx, uop) -> None:
        self._emit("commit", _uop_info(uop))
        if self.keep_uops and len(self.committed_uops) < self.max_events:
            self.committed_uops.append(uop)

    def _after_squash(self, _result, uop) -> None:
        self._emit("squash", {"seq": uop.seq, "ctx": uop.ctx, "pc": hex(uop.pc)})

    def _after_spawn(self, _result, parent, branch, spare, alt_pc) -> None:
        self._emit(
            "fork",
            {"parent": parent.id, "spare": spare.id, "branch": hex(branch.pc),
             "alt_pc": hex(alt_pc)},
        )

    def _after_respawn(self, _result, parent, branch, existing, alt_pc) -> None:
        self._emit(
            "respawn",
            {"parent": parent.id, "ctx": existing.id, "alt_pc": hex(alt_pc)},
        )

    def _after_swap(self, _result, old, branch, alt) -> None:
        self._emit(
            "swap", {"old": old.id, "new": alt.id, "branch": hex(branch.pc)}
        )

    def _after_open_stream(self, stream, dst, src, mp, kind) -> None:
        if stream is not None:
            self._emit(
                "stream_open",
                {"dst": dst.id, "src": src.id, "kind": kind.value,
                 "pc": hex(mp.pc), "len": len(stream.entries)},
            )

    def _after_end_stream(self, _result, stream, dst, reason) -> None:
        self._emit(
            "stream_end",
            {"dst": dst.id, "reason": reason, "delivered": stream.index},
        )

    # ------------------------------------------------------------------
    def filter(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def format(self, limit: int = 100) -> str:
        return "\n".join(str(e) for e in self.events[:limit])
