"""repro — instruction recycling on a multiple-path processor.

A from-scratch Python reproduction of Wallace, Tullsen & Calder,
"Instruction Recycling on a Multiple-Path Processor" (HPCA-5, 1999):
an execution-driven, cycle-stepped simulator of a simultaneous
multithreading (SMT) processor with Threaded Multipath Execution (TME)
and the paper's instruction recycling / reuse / re-spawning mechanisms,
plus the synthetic workload suite and the experiment harness that
regenerates the paper's figures and table.

Quick start::

    from repro import Core, MachineConfig, Features, WorkloadSuite

    suite = WorkloadSuite()
    core = Core(MachineConfig(features=Features.rec_rs_ru()))
    core.load(suite.single("compress"), commit_target=3000)
    stats = core.run()
    print(stats.ipc, stats.pct_recycled)

or declaratively::

    from repro import RunSpec, run_spec
    print(run_spec(RunSpec(("gcc", "go"), features="REC/RS/RU")).summary_line())
"""

from .emulator import Emulator, SparseMemory
from .isa import Instruction, Op, Program, assemble
from .memory import MemoryHierarchy
from .pipeline import Core, Features, MachineConfig, RecyclePolicy, SimulationError
from .sim import RunResult, RunSpec, run_spec
from .stats import SimStats
from .workloads import GeneratorConfig, WorkloadSuite, generate_program

__version__ = "1.0.0"

# Imported after ``__version__`` is bound: the cache layer reads it for the
# simulator-version fingerprint in its content-addressed keys.
from .exec import Chaos, ExecutionError, Executor, Job, JobOutcome, ResultCache

__all__ = [
    "Chaos",
    "ExecutionError",
    "Executor",
    "Job",
    "JobOutcome",
    "ResultCache",
    "Emulator",
    "SparseMemory",
    "Instruction",
    "Op",
    "Program",
    "assemble",
    "MemoryHierarchy",
    "Core",
    "Features",
    "MachineConfig",
    "RecyclePolicy",
    "SimulationError",
    "RunResult",
    "RunSpec",
    "run_spec",
    "SimStats",
    "GeneratorConfig",
    "WorkloadSuite",
    "generate_program",
    "__version__",
]
