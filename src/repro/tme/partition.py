"""Context partitions for Threaded Multipath Execution.

The Mapping Synchronization Bus partitions the machine's hardware
contexts into groups, each with one primary thread and zero or more
spare contexts for alternate paths (Section 2).  A partition also owns
the written-bit array its reuse tests consult.
"""

from __future__ import annotations

from typing import List, Optional

from ..pipeline.context import CtxState, HardwareContext
from ..recycle.written_bits import WrittenBitArray


class Partition:
    def __init__(self, contexts: List[HardwareContext], primary: HardwareContext):
        if primary not in contexts:
            raise ValueError("primary must belong to the partition")
        self.contexts = contexts
        self.primary = primary
        self.written = WrittenBitArray(num_contexts=8)
        #: Bitmask and list of the non-primary contexts; membership is
        #: fixed, so these only change when primaryship moves
        #: (set_primary).  Callers treat ``spares()`` as read-only.
        self.spare_mask = 0
        self._spares: List[HardwareContext] = []
        self._recompute_spares()

    def _recompute_spares(self) -> None:
        mask = 0
        spares = []
        for ctx in self.contexts:
            if ctx is not self.primary:
                mask |= 1 << ctx.id
                spares.append(ctx)
        self.spare_mask = mask
        self._spares = spares

    def spares(self) -> List[HardwareContext]:
        return self._spares

    def idle_context(self) -> Optional[HardwareContext]:
        for ctx in self.spares():
            if ctx.state is CtxState.IDLE:
                return ctx
        return None

    def inactive_contexts(self) -> List[HardwareContext]:
        return [c for c in self.spares() if c.state is CtxState.INACTIVE]

    def lru_inactive(self, allow_pinned: bool = False) -> Optional[HardwareContext]:
        """Least-recently-deactivated context, skipping reuse-pinned ones."""
        candidates = [
            c
            for c in self.inactive_contexts()
            if allow_pinned or c.pending_reuse == 0
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda c: c.inactive_since)

    def active_alternates(self) -> List[HardwareContext]:
        return [c for c in self.spares() if c.is_alternate]

    def find_path_with_start(self, pc: int) -> Optional[HardwareContext]:
        """An alternate/inactive context whose path starts at ``pc``.

        Used both for the no-duplicate-spawn rule and for re-spawning.
        """
        for ctx in self.spares():
            if ctx.state in (CtxState.ACTIVE, CtxState.INACTIVE) and not ctx.is_primary:
                if ctx.merge_point_valid(ctx.first_merge) and ctx.first_merge.pc == pc:
                    return ctx
        return None

    def set_primary(self, ctx: HardwareContext) -> None:
        if ctx not in self.contexts:
            raise ValueError("new primary must belong to the partition")
        self.primary = ctx
        self._recompute_spares()
