"""Threaded Multipath Execution support structures."""

from .partition import Partition

__all__ = ["Partition"]
