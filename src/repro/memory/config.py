"""Memory-hierarchy configuration.

Defaults reproduce the paper's Section 4.1 memory system: 64KB
direct-mapped L1 instruction and data caches, a 256KB 4-way on-chip L2,
a 4MB off-chip L3, 64-byte lines everywhere, 8-way banking on the
on-chip caches, and conflict-free miss penalties of 6 cycles to L2,
another 12 to L3 and another 62 to memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size: int  # bytes
    assoc: int  # ways; 1 = direct mapped
    line_size: int = 64
    banks: int = 8
    hit_latency: int = 0  # extra cycles beyond the pipeline's own stage

    def __post_init__(self) -> None:
        if self.size % (self.line_size * self.assoc):
            raise ValueError(f"{self.name}: size not divisible by line*assoc")
        if self.banks & (self.banks - 1):
            raise ValueError(f"{self.name}: banks must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size // (self.line_size * self.assoc)


@dataclass(frozen=True)
class HierarchyConfig:
    """Full hierarchy: two L1s, shared L2/L3, and main memory timing."""

    icache: CacheConfig
    dcache: CacheConfig
    l2: CacheConfig
    l3: CacheConfig
    l2_penalty: int = 6  # L1 miss, L2 hit: additional cycles
    l3_penalty: int = 12  # L2 miss, L3 hit: additional cycles on top
    memory_penalty: int = 62  # L3 miss: additional cycles on top
    memory_bus_occupancy: int = 4  # cycles the memory channel is busy per miss

    @staticmethod
    def big() -> "HierarchyConfig":
        """The paper's baseline memory system."""
        return HierarchyConfig(
            icache=CacheConfig("L1I", 64 * 1024, 1, hit_latency=0),
            dcache=CacheConfig("L1D", 64 * 1024, 1, hit_latency=2),
            l2=CacheConfig("L2", 256 * 1024, 4, hit_latency=0),
            l3=CacheConfig("L3", 4 * 1024 * 1024, 1, banks=1, hit_latency=0),
        )

    @staticmethod
    def small() -> "HierarchyConfig":
        """Half-size caches for the paper's 'small' machines (Section 5.3)."""
        return HierarchyConfig(
            icache=CacheConfig("L1I", 32 * 1024, 1, hit_latency=0),
            dcache=CacheConfig("L1D", 32 * 1024, 1, hit_latency=2),
            l2=CacheConfig("L2", 128 * 1024, 4, hit_latency=0),
            l3=CacheConfig("L3", 4 * 1024 * 1024, 1, banks=1, hit_latency=0),
        )
