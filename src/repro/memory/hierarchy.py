"""The full memory hierarchy: L1I / L1D / shared L2 / L3 / main memory.

All methods return *latency in cycles* for an access issued at a given
cycle; the caller schedules completion.  MSHR-style merging is applied
at the L1s: a second miss to a line already in flight completes when
the first fill arrives instead of paying the full penalty again.
"""

from __future__ import annotations

from typing import Dict, Optional

from .cache import Cache
from .config import HierarchyConfig


class MemoryHierarchy:
    """Timing model of the paper's three-level cache hierarchy."""

    def __init__(self, config: Optional[HierarchyConfig] = None):
        self.config = config or HierarchyConfig.big()
        self.icache = Cache(self.config.icache)
        self.dcache = Cache(self.config.dcache)
        self.l2 = Cache(self.config.l2)
        self.l3 = Cache(self.config.l3)
        self._memory_busy = 0
        # (cache name, line address, space) -> fill-complete cycle
        self._inflight: Dict[tuple, int] = {}

    # ------------------------------------------------------------------
    def _beyond_l1(self, addr: int, space: int, cycle: int) -> int:
        """Latency beyond an L1 miss (L2 → L3 → memory)."""
        latency = self.config.l2_penalty
        if self.l2.lookup(addr, space):
            return latency
        latency += self.config.l3_penalty
        if self.l3.lookup(addr, space):
            self.l2.fill(addr, space)
            return latency
        latency += self.config.memory_penalty
        # Memory channel throughput: serialised bus occupancy.
        start = max(cycle + latency, self._memory_busy)
        self._memory_busy = start + self.config.memory_bus_occupancy
        latency = start - cycle
        self.l3.fill(addr, space)
        self.l2.fill(addr, space)
        return latency

    def _l1_access(
        self, l1: Cache, name: str, addr: int, space: int, cycle: int, queue: bool = True
    ) -> int:
        latency = l1.bank_delay(addr, cycle, queue=queue) + l1.config.hit_latency
        now = cycle + latency
        key = (name, addr >> 6, space)
        ready = self._inflight.get(key)
        if ready is not None and ready > now:
            # The line is still being filled: complete with that fill
            # instead of paying a fresh miss (MSHR merge).
            return ready - cycle
        if l1.lookup(addr, space):
            return latency
        latency += self._beyond_l1(addr, space, now)
        self._inflight[key] = cycle + latency
        l1.fill(addr, space)
        if len(self._inflight) > 512:
            self._prune_inflight(cycle)
        return latency

    def _prune_inflight(self, cycle: int) -> None:
        self._inflight = {k: v for k, v in self._inflight.items() if v > cycle}

    # ------------------------------------------------------------------
    def fetch_latency(self, addr: int, cycle: int, space: int = 0) -> int:
        """Instruction-fetch access; 0 means the block is usable this cycle.

        A simple next-line prefetcher (stream-buffer style, standard for
        the paper's era) starts filling the sequentially next line so
        straight-line fetch is not one-full-miss-per-line."""
        latency = self._l1_access(self.icache, "i", addr, space, cycle, queue=False)
        nxt = (addr | (self.icache.config.line_size - 1)) + 1
        key = ("i", nxt >> 6, space)
        if not self.icache.probe(nxt, space) and self._inflight.get(key, -1) <= cycle:
            delay = self._beyond_l1(nxt, space, cycle)
            self._inflight[key] = cycle + delay
            self.icache.fill(nxt, space)
        return latency

    def data_latency(self, addr: int, cycle: int, space: int = 0, store: bool = False) -> int:
        """Data access latency (same path for loads and stores)."""
        return self._l1_access(self.dcache, "d", addr, space, cycle)

    def stats(self) -> Dict[str, float]:
        return {
            "icache_miss_rate": self.icache.miss_rate,
            "dcache_miss_rate": self.dcache.miss_rate,
            "l2_miss_rate": self.l2.miss_rate,
            "l3_miss_rate": self.l3.miss_rate,
            "icache_accesses": self.icache.accesses,
            "dcache_accesses": self.dcache.accesses,
        }

    def reset_stats(self) -> None:
        for cache in (self.icache, self.dcache, self.l2, self.l3):
            cache.reset_stats()
