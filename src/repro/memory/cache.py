"""Timing-only set-associative cache with banking and LRU replacement.

The cache tracks *tags only* — data contents live in
:class:`repro.emulator.memory.SparseMemory`.  ``lookup``/``fill`` are
split so the hierarchy can model miss latencies; ``bank_delay`` models
per-bank structural hazards (each bank services one access per cycle,
the paper's "throughput as well as latency constraints are carefully
modeled").

Address spaces of different programs are disambiguated by mixing a
per-program ``space`` id into the tag, the standard trick for
multiprogrammed timing simulation without page tables.
"""

from __future__ import annotations

from typing import Dict, List

from .config import CacheConfig


class Cache:
    """One level of timing cache."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._line_shift = config.line_size.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self._bank_mask = config.banks - 1
        # set index -> list of tags, most-recently-used last
        self._sets: Dict[int, List[int]] = {}
        self._bank_busy: List[int] = [0] * config.banks
        self.hits = 0
        self.misses = 0

    def _line_addr(self, addr: int, space: int) -> int:
        return (addr >> self._line_shift) | (space << 48)

    def probe(self, addr: int, space: int = 0) -> bool:
        """Non-destructive hit test (no LRU update, no stats)."""
        line = self._line_addr(addr, space)
        ways = self._sets.get(line & self._set_mask)
        return bool(ways) and line in ways

    def lookup(self, addr: int, space: int = 0) -> bool:
        """Access the cache: returns hit/miss and updates LRU + stats."""
        line = self._line_addr(addr, space)
        idx = line & self._set_mask
        ways = self._sets.get(idx)
        if ways and line in ways:
            ways.remove(line)
            ways.append(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, addr: int, space: int = 0) -> None:
        """Install the line containing ``addr`` (evicting LRU if needed)."""
        line = self._line_addr(addr, space)
        idx = line & self._set_mask
        ways = self._sets.setdefault(idx, [])
        if line in ways:
            ways.remove(line)
        ways.append(line)
        if len(ways) > self.config.assoc:
            ways.pop(0)

    def bank_delay(self, addr: int, cycle: int, queue: bool = True) -> int:
        """Structural delay (cycles) before a bank can service ``addr``.

        With ``queue=True`` (data accesses) the bank is reserved even
        when busy — the access waits its turn.  With ``queue=False``
        (fetch) a busy bank is reported without reserving it, because
        the fetch unit simply retries next cycle.
        """
        bank = (addr >> self._line_shift) & self._bank_mask
        start = max(cycle, self._bank_busy[bank])
        if not queue and start > cycle:
            return start - cycle
        self._bank_busy[bank] = start + 1
        return start - cycle

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
