"""Timing model of the memory hierarchy (tags only; data lives in
:class:`repro.emulator.memory.SparseMemory`)."""

from .cache import Cache
from .config import CacheConfig, HierarchyConfig
from .hierarchy import MemoryHierarchy

__all__ = ["Cache", "CacheConfig", "HierarchyConfig", "MemoryHierarchy"]
