"""Python-version compatibility helpers.

``dataclass(slots=True)`` landed in Python 3.10; CI still tests 3.9.
:func:`slots_dataclass` applies the slotted form where available and
falls back to a plain dataclass otherwise — results are identical, the
slotted form is just smaller and faster to construct, which matters
for the simulator's per-instruction records (uop events, trace
entries, fetch-buffer entries).  Manual ``__slots__`` is not an option
for these classes: fields with defaults would collide with the slot
descriptors.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

if sys.version_info >= (3, 10):
    def slots_dataclass(cls):
        return dataclass(slots=True)(cls)
else:  # pragma: no cover - py3.9 lacks dataclass(slots=True)
    def slots_dataclass(cls):
        return dataclass(cls)
