"""Shared physical register file with reference counting.

An SMT/TME processor has a single physical register file shared by all
contexts (Section 2); duplicating register state at a fork is just a
map copy.  That sharing is exactly what makes freeing hard — a register
may be referenced by several contexts' maps, by checkpoints of inactive
threads, and (with reuse) by mappings the primary path re-installed.

We make the ownership rules explicit with a reference count per
physical register:

* allocation (rename) creates one reference, held by the map entry;
* replacing a map entry moves that reference into the displacing uop's
  ``prev_map`` slot (released when the uop commits, moved back on
  squash);
* forking a context's map increments every mapped register;
* discarding a map (context reclaim / resync) decrements every entry;
* instruction reuse installs an old mapping into a new map entry —
  one more reference.

A register returns to the free list only at refcount zero, which is
what guarantees the paper's constraint that "we do not free a register
which another context is still accessing due to re-use of the register
mapping".
"""

from __future__ import annotations

from typing import List, Optional


class OutOfRegistersError(RuntimeError):
    """Free list exhausted (callers should stall or reclaim instead)."""


class PhysicalRegisterFile:
    """Two pools (int / fp) of value+ready+refcount registers.

    Register ids are global: ``0 .. nint-1`` integer,
    ``nint .. nint+nfp-1`` floating point.
    """

    #: Sentinel ready-cycle for a register whose producer has not issued.
    NEVER = 1 << 60

    def __init__(self, int_regs: int, fp_regs: int):
        self.nint = int_regs
        self.nfp = fp_regs
        total = int_regs + fp_regs
        self.values: List = [0] * total
        #: Cycle at which the value becomes visible to consumers (models
        #: the bypass network: producers mark this at issue time).
        self.ready_cycle: List[int] = [self.NEVER] * total
        self.refcount: List[int] = [0] * total
        #: Per-register wakeup lists: ``(queue, uop)`` pairs registered
        #: by the instruction queues for sources whose producer has not
        #: issued yet.  :meth:`write` drains them — that single call is
        #: what drives the event-driven scheduler.  Entries may be
        #: stale (the consumer issued or was squashed meanwhile); the
        #: queue validates on wakeup.
        self.waiters: List[Optional[list]] = [None] * total
        self._free_int: List[int] = list(range(int_regs - 1, -1, -1))
        self._free_fp: List[int] = list(range(total - 1, int_regs - 1, -1))
        self.allocations = 0

    # ------------------------------------------------------------------
    def free_count(self, fp: bool) -> int:
        return len(self._free_fp) if fp else len(self._free_int)

    def can_alloc(self, fp: bool) -> bool:
        return bool(self._free_fp if fp else self._free_int)

    def alloc(self, fp: bool) -> int:
        """Pop a free register; it starts not-ready with refcount 1."""
        pool = self._free_fp if fp else self._free_int
        if not pool:
            raise OutOfRegistersError("fp" if fp else "int")
        reg = pool.pop()
        assert self.refcount[reg] == 0, f"allocating live register p{reg}"
        self.refcount[reg] = 1
        self.ready_cycle[reg] = self.NEVER
        self.values[reg] = 0.0 if fp else 0
        self.allocations += 1
        return reg

    def alloc_ready(self, fp: bool, value) -> int:
        """Allocate a register that already holds an architectural value."""
        reg = self.alloc(fp)
        self.values[reg] = value
        self.ready_cycle[reg] = 0
        return reg

    def incref(self, reg: int) -> None:
        assert self.refcount[reg] > 0, f"incref on dead register p{reg}"
        self.refcount[reg] += 1

    def decref(self, reg: int) -> None:
        count = self.refcount[reg]
        assert count > 0, f"decref on dead register p{reg}"
        count -= 1
        self.refcount[reg] = count
        if count == 0:
            (self._free_fp if reg >= self.nint else self._free_int).append(reg)

    def incref_all(self, regs) -> None:
        """Bulk :meth:`incref` (map fork): one loop, no per-call frames."""
        refcount = self.refcount
        for reg in regs:
            assert refcount[reg] > 0, f"incref on dead register p{reg}"
            refcount[reg] += 1

    def decref_all(self, regs) -> None:
        """Bulk :meth:`decref` (map discard)."""
        refcount = self.refcount
        nint = self.nint
        free_int = self._free_int
        free_fp = self._free_fp
        for reg in regs:
            count = refcount[reg]
            assert count > 0, f"decref on dead register p{reg}"
            count -= 1
            refcount[reg] = count
            if count == 0:
                (free_fp if reg >= nint else free_int).append(reg)

    # ------------------------------------------------------------------
    def add_waiter(self, reg: int, queue, uop) -> None:
        """Wake ``uop`` (via ``queue._wake``) when ``reg`` gets written."""
        lst = self.waiters[reg]
        if lst is None:
            self.waiters[reg] = [(queue, uop)]
        else:
            lst.append((queue, uop))

    def write(self, reg: int, value, ready_at: int = 0) -> None:
        """Install a value, visible to consumers from cycle ``ready_at``.

        This is the scheduler's wakeup edge: every queue entry waiting
        on ``reg`` learns its ready cycle here, exactly once.
        """
        self.values[reg] = value
        self.ready_cycle[reg] = ready_at
        waiting = self.waiters[reg]
        if waiting is not None:
            self.waiters[reg] = None
            for queue, uop in waiting:
                queue._wake(uop)

    def is_ready(self, reg: int, cycle: int) -> bool:
        return self.ready_cycle[reg] <= cycle

    def read(self, reg: int):
        assert self.ready_cycle[reg] < self.NEVER, f"reading not-ready register p{reg}"
        return self.values[reg]

    def is_fp(self, reg: int) -> bool:
        return reg >= self.nint

    def live_count(self) -> int:
        """Registers currently referenced (sanity checks in tests)."""
        return sum(1 for c in self.refcount if c > 0)

    def check_consistency(self) -> None:
        """Invariant: every register is either free exactly once or live."""
        free = set(self._free_int) | set(self._free_fp)
        assert len(free) == len(self._free_int) + len(self._free_fp), "dup free entry"
        for reg, count in enumerate(self.refcount):
            if count == 0:
                assert reg in free, f"p{reg} dead but not free"
            else:
                assert reg not in free, f"p{reg} live but on free list"
