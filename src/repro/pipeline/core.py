"""The SMT/TME/Recycle processor core.

A cycle-stepped, execution-driven model of the paper's machine: each
cycle runs commit → completion → issue → rename → fetch (reverse stage
order so a cycle's results propagate next cycle).  Values are computed
for real on the shared physical register file — wrong paths execute,
stores drain at commit, and every architectural commit is cross-checked
against a golden functional emulator.

The TME and recycling behaviour (Sections 2-3) lives here:

* confidence-gated forking of primary-thread branches into spare
  contexts, with map duplication and path-history forking;
* resolution: correctly-predicted forks deactivate their alternate into
  a recyclable *inactive* context; mispredicted forks swap primaryship
  and thread the architectural commit stream across contexts;
* merge-point detection at fetch (first-PC of spare traces, own
  backward-branch targets) opening recycle streams into rename;
* instruction reuse via the written-bit array + MDB, implemented as
  re-installing the old physical mapping;
* re-spawning of inactive traces through the recycle datapath.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..branch.predictor import BranchPredictor
from ..emulator.emulator import EmulationError
from ..isa import semantics
from ..isa.instruction import INSTRUCTION_BYTES, Instruction
from ..isa.opcodes import FuClass, Op
from ..isa.program import Program, STACK_TOP
from ..isa.registers import FP_BASE, NUM_LOGICAL_REGS, STACK_POINTER_REG
from ..memory.hierarchy import MemoryHierarchy
from ..recycle.stream import RecycleStream, StreamKind, TraceEntry
from ..stats.counters import SimStats
from ..stats.utilization import UtilizationStats
from ..tme.partition import Partition
from .config import MachineConfig, PolicyKind
from .context import CtxState, FetchedInstr, HardwareContext, MergePoint
from .instance import ProgramInstance
from .queues import FunctionalUnits, InstructionQueue
from .regfile import PhysicalRegisterFile
from .uop import Uop, UopState


class SimulationError(RuntimeError):
    """An internal inconsistency (golden-model mismatch, deadlock, ...)."""


def _values_equal(a, b) -> bool:
    """Architectural value equality; NaN compares equal to NaN."""
    if a == b:
        return True
    return (
        isinstance(a, float)
        and isinstance(b, float)
        and a != a
        and b != b
    )


class Core:
    def __init__(self, config: Optional[MachineConfig] = None):
        self.config = config or MachineConfig()
        cfg = self.config
        nregs = cfg.phys_regs_per_file()
        self.regfile = PhysicalRegisterFile(nregs, nregs)
        self.contexts = [
            HardwareContext(i, self.regfile, cfg.active_list_size)
            for i in range(cfg.num_contexts)
        ]
        self.int_queue = InstructionQueue("int", cfg.int_queue_size)
        self.fp_queue = InstructionQueue("fp", cfg.fp_queue_size)
        self.fus = FunctionalUnits(cfg.int_units, cfg.fp_units, cfg.ldst_ports)
        self.hierarchy = MemoryHierarchy(cfg.hierarchy)
        self.predictor = BranchPredictor(
            num_contexts=cfg.num_contexts,
            pht_entries=cfg.pht_entries,
            btb_entries=cfg.btb_entries,
            btb_assoc=cfg.btb_assoc,
            ras_entries=cfg.ras_entries,
            confidence_entries=cfg.confidence_entries,
            confidence_threshold=cfg.confidence_threshold,
            confidence_kind=cfg.confidence_kind,
        )
        self.instances: List[ProgramInstance] = []
        self.partitions: List[Partition] = []
        self.stats = SimStats()
        self.util = UtilizationStats.for_machine(
            cfg.fetch_total, cfg.rename_width, cfg.int_units + cfg.fp_units,
            cfg.commit_width,
        )
        self._issued_this_cycle = 0
        self.cycle = 0
        self._completions: Dict[int, List[Uop]] = {}
        #: One active recycle stream per destination context.
        self.streams: Dict[int, RecycleStream] = {}
        self._last_commit_cycle = 0

    # ==================================================================
    # Workload loading
    # ==================================================================
    def load(self, programs: List[Program], commit_target: Optional[int] = None) -> None:
        """Start ``programs`` on evenly partitioned hardware contexts."""
        if not programs:
            raise ValueError("need at least one program")
        if len(programs) > self.config.num_contexts:
            raise ValueError("more programs than hardware contexts")
        per = self.config.num_contexts // len(programs)
        for i, program in enumerate(programs):
            instance = ProgramInstance(i, program)
            instance.commit_target = commit_target
            ctxs = self.contexts[i * per : (i + 1) * per]
            partition = Partition(ctxs, ctxs[0])
            instance.partition = partition
            for ctx in ctxs:
                ctx.instance = instance
            primary = ctxs[0]
            primary.state = CtxState.ACTIVE
            primary.is_primary = True
            primary.pc = program.entry
            primary.map.init_fresh(self._initial_reg_value)
            instance.primary_ctx = primary.id
            instance.commit_ctx = primary.id
            self.instances.append(instance)
            self.partitions.append(partition)

    @staticmethod
    def _initial_reg_value(logical: int):
        if logical == STACK_POINTER_REG:
            return STACK_TOP
        return 0.0 if logical >= FP_BASE else 0

    # ==================================================================
    # Main loop
    # ==================================================================
    def run(self, max_cycles: int = 1_000_000, deadlock_limit: int = 20_000) -> SimStats:
        """Simulate until every instance reaches its commit target/halts."""
        while self.cycle < max_cycles:
            if all(inst.halted or inst.reached_target() for inst in self.instances):
                break
            self.step()
            if self.cycle - self._last_commit_cycle > deadlock_limit:
                raise SimulationError(
                    f"no commits for {deadlock_limit} cycles at cycle {self.cycle}; "
                    f"contexts: {self.contexts}"
                )
        self._finalize_stats()
        return self.stats

    def step(self) -> None:
        """Advance one cycle (reverse stage order)."""
        stats = self.stats
        fetched0 = stats.fetched
        renamed0 = stats.renamed
        recycled0 = stats.renamed_recycled
        committed0 = stats.committed
        self._issued_this_cycle = 0
        self._commit_stage()
        self._complete_stage()
        self._issue_stage()
        self._rename_stage()
        self._fetch_stage()
        self.util.record_cycle(
            stats.fetched - fetched0,
            stats.renamed - renamed0,
            stats.renamed_recycled - recycled0,
            self._issued_this_cycle,
            stats.committed - committed0,
        )
        self.cycle += 1
        self.stats.cycles = self.cycle

    def _finalize_stats(self) -> None:
        for ctx in self.contexts:
            if ctx.state is CtxState.INACTIVE and ctx.fork_uop is not None:
                self._account_deleted_path(ctx)
        for inst in self.instances:
            self.stats.per_instance_committed[inst.id] = inst.committed
            self.stats.per_instance_cycles.setdefault(inst.id, self.cycle)

    # ==================================================================
    # Fetch stage (with merge detection)
    # ==================================================================
    def _fetch_stage(self) -> None:
        cfg = self.config
        candidates = [
            ctx
            for ctx in self.contexts
            if ctx.can_fetch(self.cycle, cfg.decode_buffer_size)
            and ctx.id not in self.streams
            and not (ctx.instance and ctx.instance.halted)
        ]
        if cfg.features.recycle:
            candidates = [c for c in candidates if not self._try_merge(c)]
        if cfg.fetch_policy == "icount":
            # ICOUNT with [18]'s TME modification: primaries outrank
            # alternates; among peers, fewest pre-issue instructions win.
            candidates.sort(key=lambda c: (not c.is_primary, c.icount, c.id))
        else:  # round_robin
            candidates.sort(
                key=lambda c: (not c.is_primary, (c.id - self.cycle) % cfg.num_contexts)
            )
        total_budget = cfg.fetch_total
        threads = 0
        for ctx in candidates:
            if threads >= cfg.fetch_threads or total_budget <= 0:
                break
            threads += 1
            fetched = self._fetch_block(ctx, min(cfg.fetch_block, total_budget))
            total_budget -= fetched

    def _fetch_block(self, ctx: HardwareContext, budget: int) -> int:
        """Fetch up to ``budget`` sequential instructions for ``ctx``."""
        cfg = self.config
        program = ctx.instance.program
        space = ctx.instance.id
        pc = ctx.pc
        if ctx.fill_pc == pc and self.cycle >= ctx.fill_ready:
            # The outstanding fill delivers this block directly to the
            # fetch unit — no re-access (avoids thrash livelock).
            ctx.fill_pc = -1
        else:
            latency = self.hierarchy.fetch_latency(pc, self.cycle, space)
            if latency > 0:
                ctx.fetch_stall_until = self.cycle + latency
                ctx.fill_pc = pc
                ctx.fill_ready = self.cycle + latency
                return 0
            ctx.fill_pc = -1
        line_end = (pc | (cfg.hierarchy.icache.line_size - 1)) + 1
        count = 0
        ready = self.cycle + 1 + cfg.decode_latency
        while count < budget and pc < line_end and not ctx.fetch_stopped:
            if count > 0 and cfg.features.recycle and self._check_merge_at(ctx, pc):
                return count  # mid-block merge: recycling continues from here
            instr = program.instr_at(pc)
            if instr is None:
                ctx.fetch_stopped = True  # ran off the text segment (wrong path)
                break
            self.stats.fetched += 1
            count += 1
            if not self._alt_fetch_allowed(ctx):
                ctx.fetch_stopped = True
            oi = instr.info
            if oi.is_halt:
                ctx.decode_buffer.append(FetchedInstr(instr, pc, pc, None, ready))
                ctx.fetch_stopped = True
                break
            if oi.is_branch:
                pred = self.predictor.predict(ctx.id, pc, instr)
                if pred.taken and pred.target is None:
                    # Unresolvable indirect: stall fetch until resolution.
                    ctx.decode_buffer.append(
                        FetchedInstr(instr, pc, pc + INSTRUCTION_BYTES, pred, ready)
                    )
                    ctx.fetch_stopped = True
                    break
                next_pc = pred.target if pred.taken else pc + INSTRUCTION_BYTES
                ctx.decode_buffer.append(FetchedInstr(instr, pc, next_pc, pred, ready))
                pc = next_pc
                ctx.pc = pc
                if pred.taken:
                    if pred.needs_decode_redirect:
                        ctx.fetch_stall_until = (
                            self.cycle + cfg.btb_miss_redirect_penalty
                        )
                    break  # fetch blocks end at a predicted-taken branch
            else:
                ctx.decode_buffer.append(
                    FetchedInstr(instr, pc, pc + INSTRUCTION_BYTES, None, ready)
                )
                pc += INSTRUCTION_BYTES
                ctx.pc = pc
        return count

    def _alt_fetch_allowed(self, ctx: HardwareContext) -> bool:
        """Apply the Figure-5 alternate-path instruction limit."""
        if ctx.is_primary:
            return True
        if not self.config.features.tme:
            return True
        ctx.alt_fetched += 1
        return ctx.alt_fetched < self.config.policy.limit

    # ------------------------------------------------------------------
    # Merge detection (Section 3.2)
    # ------------------------------------------------------------------
    def _merge_sources(self, ctx: HardwareContext, pc: int):
        """Yield (source ctx, merge point, kind) candidates for ``pc``."""
        if ctx.is_primary:
            partition = ctx.instance.partition
            for src in partition.spares():
                if src.state not in (CtxState.ACTIVE, CtxState.INACTIVE):
                    continue
                if src.is_primary:
                    continue
                mp = src.first_merge
                if src.merge_point_valid(mp) and mp.pc == pc:
                    yield src, mp, StreamKind.ALTERNATE
            mp = ctx.first_merge
            if ctx.merge_point_valid(mp) and mp.pc == pc:
                yield ctx, mp, StreamKind.SELF_FIRST
        mp = ctx.back_merge
        if ctx.merge_point_valid(mp) and mp.pc == pc:
            yield ctx, mp, StreamKind.BACK

    def _try_merge(self, ctx: HardwareContext) -> bool:
        """Open a recycle stream if ``ctx``'s fetch PC hits a merge point."""
        return self._check_merge_at(ctx, ctx.pc)

    def _check_merge_at(self, ctx: HardwareContext, pc: int) -> bool:
        if ctx.id in self.streams:
            return False
        for src, mp, kind in self._merge_sources(ctx, pc):
            stream = self._open_stream(ctx, src, mp, kind)
            if stream is not None:
                return True
        return False

    def _open_stream(
        self,
        dst: HardwareContext,
        src: HardwareContext,
        mp: MergePoint,
        kind: StreamKind,
    ) -> Optional[RecycleStream]:
        entries = self._snapshot_trace(src, mp.pos)
        if not entries:
            return None
        reuse_ok = (
            self.config.features.reuse
            and kind is StreamKind.ALTERNATE
            and dst.is_primary
        )
        stream = RecycleStream(
            kind=kind,
            dst_ctx=dst.id,
            src_ctx=src.id,
            entries=entries,
            reuse_allowed=reuse_ok,
        )
        self.streams[dst.id] = stream
        if kind is StreamKind.BACK:
            self.stats.back_merges += 1
            src.was_recycled = True
        else:
            self.stats.merges += 1
            src.was_recycled = True
            if src is not dst:
                src.merge_count += 1
        # "Fetching immediately continues from where recycling will
        # complete" — but we conservatively do not fetch for this thread
        # while its stream drains; the PC is parked at the resume point.
        dst.pc = stream.resume_pc() if stream.index else entries[-1].next_pc
        return stream

    def _snapshot_trace(self, src: HardwareContext, from_pos: int) -> List[TraceEntry]:
        """Copy the recyclable trace starting at ``from_pos``.

        A trace is only meaningful while each entry's recorded
        successor is the next entry's PC — rings can contain stale path
        boundaries (e.g. a swapped-out fork branch whose ``next_pc``
        was corrected while its wrong-path suffix stayed adjacent), and
        the snapshot must stop there.
        """
        entries: List[TraceEntry] = []
        ring = src.active_list
        prev_next: Optional[int] = None
        for pos in range(from_pos, ring.tail_pos):
            uop = ring.try_entry(pos)
            if uop is None or uop.squashed:
                break
            if prev_next is not None and uop.pc != prev_next:
                break
            entries.append(TraceEntry(uop.instr, uop.pc, uop.next_pc, src_pos=pos))
            prev_next = uop.next_pc
        return entries

    # ==================================================================
    # Rename stage (fetched paths first, recycle streams fill in)
    # ==================================================================
    def _rename_stage(self) -> None:
        budget = self.config.rename_width
        # Fetched instructions, lowest-ICOUNT thread first.
        ctxs = sorted(
            (c for c in self.contexts if c.decode_buffer),
            key=lambda c: (c.icount, c.id),
        )
        for ctx in ctxs:
            if budget <= 0:
                break
            # Program order: a thread with an open stream renames its
            # pre-merge fetched instructions first; the stream follows.
            while budget > 0 and ctx.decode_buffer:
                fi = ctx.decode_buffer[0]
                if fi.ready_cycle > self.cycle:
                    break
                if not self._rename_resources_ok(ctx, fi.instr, needs_queue=True):
                    break
                ctx.decode_buffer.popleft()
                self._rename_one(ctx, fi.instr, fi.pc, fi.next_pc, fi.pred)
                budget -= 1
        # Recycle streams, prioritised by the separate (pre-issue) counter.
        streams = sorted(
            self.streams.values(), key=lambda s: self.contexts[s.dst_ctx].icount
        )
        for stream in streams:
            if budget <= 0:
                break
            budget = self._drain_stream(stream, budget)
        for dst_ctx in sorted(self.streams):
            if self.streams[dst_ctx].ended:
                del self.streams[dst_ctx]

    def _rename_resources_ok(
        self, ctx: HardwareContext, instr: Instruction, needs_queue: bool
    ) -> bool:
        if not ctx.active_list.has_room():
            return False
        if instr.dst is not None:
            fp = instr.dst >= FP_BASE
            if not self.regfile.can_alloc(fp):
                self._reclaim_for_pressure(ctx)
                if not self.regfile.can_alloc(fp):
                    return False
        if needs_queue:
            queue = self.fp_queue if instr.info.fu is FuClass.FP else self.int_queue
            if not queue.has_room():
                return False
            if not ctx.is_primary and queue.occupancy() >= int(
                queue.size * self.config.alt_queue_pressure
            ):
                # Alternate/inactive paths yield queue space to primaries.
                return False
        return True

    def _rename_one(
        self,
        ctx: HardwareContext,
        instr: Instruction,
        pc: int,
        next_pc: int,
        pred,
        recycled: bool = False,
        back_merge: bool = False,
    ) -> Uop:
        """Common rename path for fetched and recycled instructions."""
        uop = Uop(instr, pc, ctx.id, ctx.instance)
        uop.next_pc = next_pc
        uop.pred = pred
        uop.recycled = recycled
        uop.back_merge = back_merge
        uop.rename_cycle = self.cycle
        uop.phys_srcs = [ctx.map.lookup(s) for s in instr.srcs]
        if instr.dst is not None:
            new_reg, displaced = ctx.map.define(instr.dst, fp=instr.dst >= FP_BASE)
            uop.phys_dst = new_reg
            uop.prev_map = displaced
            self._note_register_write(ctx, instr.dst)
        uop.no_execute = self._is_no_execute(ctx)
        if not uop.no_execute:
            queue = self.fp_queue if instr.info.fu is FuClass.FP else self.int_queue
            queue.insert(uop)
            uop.in_queue = True
            ctx.n_queued += 1
        pos = ctx.active_list.append(uop)
        uop.al_pos = pos
        ctx.note_first_entry(uop, pos)
        if instr.is_store:
            ctx.store_buffer.append(uop)
        if instr.is_branch and next_pc is not None:
            taken_recorded = next_pc != pc + INSTRUCTION_BYTES
            if taken_recorded and instr.target is not None and instr.target <= pc:
                ctx.set_back_merge(instr.target)
        self.stats.renamed += 1
        if recycled:
            self.stats.renamed_recycled += 1
        # TME fork decision happens at rename, where the map is current.
        if (
            self.config.features.tme
            and instr.is_cond_branch
            and pred is not None
            and pred.low_confidence
            and ctx.is_primary
        ):
            self._consider_fork(ctx, uop)
        return uop

    def _note_register_write(self, ctx: HardwareContext, logical: int) -> None:
        ctx.self_written.add(logical)
        partition = ctx.instance.partition
        if ctx.is_primary:
            partition.written.primary_defined(logical, partition.spare_mask)

    def _is_no_execute(self, ctx: HardwareContext) -> bool:
        """FETCH-policy contexts keep fetching but stop executing."""
        return (
            ctx.state is CtxState.INACTIVE
            and self.config.policy.kind is PolicyKind.FETCH
        )

    # ------------------------------------------------------------------
    # Recycle stream draining (Section 3.4) and reuse (Section 3.5)
    # ------------------------------------------------------------------
    def _drain_stream(self, stream: RecycleStream, budget: int) -> int:
        dst = self.contexts[stream.dst_ctx]
        if dst.decode_buffer:
            return budget  # older fetched instructions must clear rename first
        src = self.contexts[stream.src_ctx] if stream.src_ctx is not None else None
        while budget > 0 and not stream.ended:
            if stream.exhausted():
                self._end_stream(stream, dst, "exhausted")
                break
            entry = stream.peek()
            # Guard against the source trace having been overwritten.
            if src is not None and entry.src_pos is not None:
                live = src.active_list.try_entry(entry.src_pos)
                if live is None or live.pc != entry.pc:
                    self._end_stream(stream, dst, "squashed")
                    break
            instr = entry.instr
            pred = None
            next_pc = entry.next_pc
            mismatch_target = None
            if instr.is_cond_branch and not self.config.recycle_repredict:
                # "Former method": keep the trace's recorded direction as
                # the prediction and update the history with it.
                recorded_taken = entry.next_pc != entry.pc + INSTRUCTION_BYTES
                pred = self.predictor.record_direction(
                    dst.id, entry.pc, recorded_taken,
                    entry.next_pc if recorded_taken else instr.target,
                )
            elif instr.is_branch:
                pred = self.predictor.predict(dst.id, entry.pc, instr)
                pred_next = (
                    (pred.target if pred.target is not None else entry.next_pc)
                    if pred.taken
                    else entry.pc + INSTRUCTION_BYTES
                )
                if pred_next != entry.next_pc:
                    # The prediction changed since the trace was built:
                    # recycle the branch itself, then stop and fetch the
                    # newly predicted path (the paper's chosen method).
                    next_pc = pred_next
                    mismatch_target = pred_next
            if not self._rename_resources_ok(dst, instr, needs_queue=True):
                break
            stream.advance()
            # Alternate-path length cap applies to recycled paths too.
            limit_hit = not self._alt_fetch_allowed(dst)
            uop = self._recycle_rename(dst, src, entry, instr, next_pc, pred, stream)
            budget -= 1
            if mismatch_target is not None:
                # The renamed branch follows its *new* prediction, so the
                # stream must stop and fetch continue on that path — even
                # if the length cap was reached on the same entry.
                stream.stop("branch_mismatch")
                self.stats.streams_ended_branch_mismatch += 1
                dst.pc = mismatch_target
                dst.fetch_stall_until = max(dst.fetch_stall_until, self.cycle + 1)
            elif limit_hit or instr.info.is_halt:
                self._end_stream(stream, dst, "exhausted")
            if limit_hit or instr.info.is_halt:
                dst.fetch_stopped = True
        return budget

    def _kill_stream(self, ctx: HardwareContext) -> None:
        """Abort ``ctx``'s incoming stream, rewinding its fetch PC.

        The PC was parked at the end of the trace when the stream
        opened; if the stream dies early the not-yet-injected tail must
        be fetched the normal way, so fetch resumes at the successor of
        the last instruction the stream actually delivered.  (Callers
        that redirect the PC themselves simply override this.)
        """
        stream = self.streams.pop(ctx.id, None)
        if stream is not None and not stream.ended:
            stream.stop("squashed")
            self.stats.streams_ended_squashed += 1
            ctx.pc = stream.resume_pc()

    def _end_stream(self, stream: RecycleStream, dst: HardwareContext, reason: str) -> None:
        stream.stop(reason)
        if reason == "exhausted":
            self.stats.streams_ended_exhausted += 1
            dst.pc = stream.resume_pc()
        else:
            self.stats.streams_ended_squashed += 1
            dst.pc = stream.resume_pc()

    def _recycle_rename(
        self,
        dst: HardwareContext,
        src: Optional[HardwareContext],
        entry: TraceEntry,
        instr: Instruction,
        next_pc: int,
        pred,
        stream: RecycleStream,
    ) -> Uop:
        # Attempt reuse before the normal rename allocates a register.
        if stream.reuse_allowed and src is not None:
            reuse_uop = self._reuse_candidate(dst, src, entry, stream)
            if reuse_uop is not None:
                return self._rename_reused(dst, src, reuse_uop, entry, stream)
        uop = self._rename_one(
            dst,
            instr,
            entry.pc,
            next_pc,
            pred,
            recycled=True,
            back_merge=stream.kind is StreamKind.BACK,
        )
        # Track stream-local value consistency: a re-executed entry whose
        # sources all matched the trace produces the trace's value again.
        if instr.dst is not None:
            partition = dst.instance.partition
            consistent = src is not None and all(
                s in stream.consistent_writes
                or partition.written.unchanged_for(s, src.id)
                for s in instr.srcs
            )
            if consistent and not instr.is_load:
                stream.consistent_writes.add(instr.dst)
            else:
                stream.consistent_writes.discard(instr.dst)
        return uop

    def _reuse_candidate(
        self,
        dst: HardwareContext,
        src: HardwareContext,
        entry: TraceEntry,
        stream: RecycleStream,
    ) -> Optional[Uop]:
        """The live source uop, if its old result may be reused."""
        if entry.src_pos is None:
            return None
        if src.state is not CtxState.INACTIVE:
            # Reuse applies to finished (inactive) threads only (Section 3.5).
            return None
        uop = src.active_list.try_entry(entry.src_pos)
        if uop is None or uop.squashed or uop.pc != entry.pc:
            return None
        instr = uop.instr
        if instr.dst is None or instr.is_store or instr.is_branch:
            return None
        if not uop.executed_on_path or uop.phys_dst is None:
            return None
        partition = dst.instance.partition
        if not all(
            s in stream.consistent_writes
            or partition.written.unchanged_for(s, src.id)
            for s in instr.srcs
        ):
            return None
        if instr.is_load:
            if uop.eff_addr is None:
                return None
            if not dst.instance.mdb.can_reuse(uop.pc, uop.eff_addr, token=uop.seq):
                return None
            # The MDB orders loads and stores by *wall-clock* execution,
            # but reuse validity is a *program-order* question: a store
            # architecturally older than this reuse point may have
            # executed before the original load ever ran (so it never
            # invalidated the entry), or may not have an address yet.
            # Sound rule: only reuse a load when every store visible to
            # the destination context has fully committed (its MDB
            # invalidation, done again at retirement, has then landed).
            for store in dst.store_buffer:
                if not store.squashed and store.state is not UopState.COMMITTED:
                    return None
            for store in dst.inherited_stores:
                if not store.squashed and store.state is not UopState.COMMITTED:
                    return None
        return uop

    def _rename_reused(
        self,
        dst: HardwareContext,
        src: HardwareContext,
        src_uop: Uop,
        entry: TraceEntry,
        stream: RecycleStream,
    ) -> Uop:
        """Reuse: install the old mapping; skip queue and execution."""
        instr = src_uop.instr
        uop = Uop(instr, entry.pc, dst.id, dst.instance)
        uop.next_pc = entry.next_pc
        uop.recycled = True
        uop.reused = True
        uop.reuse_src_ctx = src.id
        uop.rename_cycle = self.cycle
        uop.phys_srcs = [dst.map.lookup(s) for s in instr.srcs]
        uop.phys_dst = src_uop.phys_dst
        uop.prev_map = dst.map.install(instr.dst, src_uop.phys_dst)
        uop.value = src_uop.value
        uop.eff_addr = src_uop.eff_addr
        uop.state = UopState.COMPLETED
        uop.complete_cycle = self.cycle
        pos = dst.active_list.append(uop)
        uop.al_pos = pos
        dst.note_first_entry(uop, pos)
        src.reuse_pins.add(uop.seq)
        # The mapping is old, but the *value* of the destination logical
        # register did change relative to every other retained path's
        # fork point — mark the written bits like any primary write.
        # The stream-local consistency set keeps this trace's own
        # dependent reuses alive.
        self._note_register_write(dst, instr.dst)
        stream.consistent_writes.add(instr.dst)
        self.stats.renamed += 1
        self.stats.renamed_recycled += 1
        self.stats.renamed_reused += 1
        return uop

    # ------------------------------------------------------------------
    # TME forking (and re-spawning)
    # ------------------------------------------------------------------
    def _consider_fork(self, ctx: HardwareContext, branch: Uop) -> None:
        partition = ctx.instance.partition
        pred = branch.pred
        alt_pc = (
            branch.pc + INSTRUCTION_BYTES if pred.taken else branch.instr.target
        )
        if alt_pc is None:
            return
        if self.config.features.recycle:
            existing = partition.find_path_with_start(alt_pc)
            if existing is not None:
                if self.config.features.respawn:
                    # RS: re-activate a matching inactive trace through
                    # the recycle datapath; if that trace is pinned (or
                    # the match is a still-active alternate covering an
                    # older dynamic instance), fork normally so this
                    # instance stays covered — the paper's Table 1 keeps
                    # ~70% miss coverage *with* recycling.
                    if existing.state is CtxState.INACTIVE and self._reclaimable(existing):
                        self._respawn(ctx, branch, existing, alt_pc)
                        return
                else:
                    # Plain REC keeps the strict no-duplicate-start rule,
                    # whose cost the paper calls out explicitly.
                    self.stats.fork_suppressed_duplicate += 1
                    return
        spare = partition.idle_context()
        if spare is None and self.config.features.recycle:
            victim = self._lru_reclaimable(partition)
            if victim is not None:
                self.stats.reclaim_for_spawn += 1
                self._reclaim_context(victim)
                spare = victim
        if spare is None:
            return
        self._spawn(ctx, branch, spare, alt_pc)

    def _spawn(
        self,
        parent: HardwareContext,
        branch: Uop,
        spare: HardwareContext,
        alt_pc: int,
    ) -> None:
        """Fork the not-predicted path of ``branch`` onto ``spare``."""
        partition = parent.instance.partition
        spare.state = CtxState.ACTIVE
        spare.is_primary = False
        spare.instance = parent.instance
        spare.map.fork_from(parent.map)
        spare.pc = alt_pc
        spare.fetch_stopped = False
        spare.fetch_stall_until = self.cycle + self.config.spawn_latency
        spare.fork_uop = branch
        spare.parent_ctx = parent.id
        spare.alt_fetched = 0
        spare.path_start_pos = spare.active_list.tail_pos
        spare.first_merge = None
        spare.back_merge = None
        spare.self_written = set()
        spare.inherited_stores = [
            s
            for s in parent.inherited_stores + parent.store_buffer
            if not s.squashed
        ]
        self.predictor.fork_context(
            parent.id, spare.id, cond_branch=True, alt_taken=not branch.pred.taken
        )
        partition.written.start_path(spare.id)
        branch.forked_ctx = spare.id
        self.stats.forks += 1

    def _respawn(
        self,
        parent: HardwareContext,
        branch: Uop,
        existing: HardwareContext,
        alt_pc: int,
    ) -> None:
        """Re-activate an inactive trace through the recycle path (RS)."""
        trace = self._snapshot_trace(existing, existing.path_start_pos)
        if not trace or trace[0].pc != alt_pc:
            self.stats.fork_suppressed_duplicate += 1
            return
        existing.was_respawned = True
        self._reclaim_context(existing)
        self._spawn(parent, branch, existing, alt_pc)
        detached = [TraceEntry(e.instr, e.pc, e.next_pc, src_pos=None) for e in trace]
        stream = RecycleStream(
            kind=StreamKind.RESPAWN,
            dst_ctx=existing.id,
            src_ctx=None,
            entries=detached,
            reuse_allowed=False,
        )
        self.streams[existing.id] = stream
        existing.pc = detached[-1].next_pc
        self.stats.respawns += 1
        self.stats.respawn_streams += 1

    # ==================================================================
    # Issue stage
    # ==================================================================
    def _issue_stage(self) -> None:
        self.fus.new_cycle()
        prio = self.config.primary_issue_priority
        for queue in (self.int_queue, self.fp_queue):
            ready = queue.ready_uops(self.regfile, self._memory_order_ok, self.cycle)
            if prio:
                # Primary-path work first; alternates fill leftover units.
                ready.sort(key=lambda u: (not self.contexts[u.ctx].is_primary, u.seq))
            for uop in ready:
                if not self.fus.try_issue(uop.instr.info.fu):
                    continue
                queue.remove(uop)
                uop.in_queue = False
                ctx = self.contexts[uop.ctx]
                ctx.n_queued -= 1
                self._execute(uop)

    def _memory_order_ok(self, uop: Uop) -> bool:
        """Conservative load ordering: all older stores have executed."""
        if not uop.instr.is_load:
            return True
        ctx = self.contexts[uop.ctx]
        for store in ctx.store_buffer:
            if store.seq < uop.seq and not store.squashed and not store.completed:
                return False
        for store in ctx.inherited_stores:
            if store.seq < uop.seq and not store.squashed and not store.completed:
                return False
        return True

    def _execute(self, uop: Uop) -> None:
        """Begin execution: compute the result, schedule completion."""
        uop.state = UopState.ISSUED
        uop.issue_cycle = self.cycle
        self._issued_this_cycle += 1
        ctx = self.contexts[uop.ctx]
        instr = uop.instr
        oi = instr.info
        srcs = tuple(self.regfile.values[p] for p in uop.phys_srcs)
        latency = oi.latency
        if oi.is_load:
            addr = semantics.effective_address(instr, srcs[0])
            uop.eff_addr = addr
            forwarded = self._forward_store(ctx, uop, addr)
            if forwarded is not None:
                uop.value = semantics.load_value(forwarded, oi.dst_fp)
                latency = 1
            else:
                bits = ctx.instance.memory.read64(addr)
                uop.value = semantics.load_value(bits, oi.dst_fp)
                latency = 1 + self.hierarchy.data_latency(
                    addr, self.cycle, ctx.instance.id
                )
            ctx.instance.mdb.record_load(uop.pc, addr, token=uop.seq)
        elif oi.is_store:
            addr = semantics.effective_address(instr, srcs[0])
            uop.eff_addr = addr
            uop.store_bits = semantics.store_bits(srcs[1], oi.src_fp)
            self.hierarchy.data_latency(addr, self.cycle, ctx.instance.id)
            ctx.instance.mdb.record_store(addr)
        elif oi.is_branch:
            taken, target = semantics.branch_outcome(instr, srcs, uop.pc)
            uop.taken = taken
            uop.target = target
            if oi.is_call:
                uop.value = semantics.compute_value(instr, srcs, uop.pc)
        elif not oi.is_halt and instr.op is not Op.NOP:
            uop.value = semantics.compute_value(instr, srcs, uop.pc)
        if uop.phys_dst is not None:
            # Bypass network: the result is forwardable ``latency``
            # cycles after issue; dependents may issue then.
            self.regfile.write(uop.phys_dst, uop.value, ready_at=self.cycle + latency)
        done = self.cycle + self.config.regread_stages + latency
        self._completions.setdefault(done, []).append(uop)

    def _forward_store(self, ctx: HardwareContext, load: Uop, addr: int) -> Optional[int]:
        """Youngest older store to ``addr`` visible to this context."""
        best: Optional[Uop] = None
        for store in ctx.store_buffer:
            if (
                store.seq < load.seq
                and not store.squashed
                and store.completed
                and store.eff_addr == addr
            ):
                if best is None or store.seq > best.seq:
                    best = store
        for store in ctx.inherited_stores:
            if store.squashed or store.seq >= load.seq:
                continue
            if store.state is UopState.COMMITTED:
                continue  # already drained to memory
            if store.completed and store.eff_addr == addr:
                if best is None or store.seq > best.seq:
                    best = store
        return best.store_bits if best is not None else None

    # ==================================================================
    # Completion stage (includes branch resolution)
    # ==================================================================
    def _complete_stage(self) -> None:
        due = self._completions.pop(self.cycle, [])
        for uop in due:
            if uop.squashed:
                continue
            uop.state = UopState.COMPLETED
            uop.complete_cycle = self.cycle
            if uop.instr.is_branch:
                self._resolve_branch(uop)

    def _resolve_branch(self, uop: Uop) -> None:
        ctx = self.contexts[uop.ctx]
        actual_next = uop.target if uop.taken else uop.pc + INSTRUCTION_BYTES
        mispredicted = self.predictor.resolve(
            uop.pc, uop.instr, uop.pred, uop.taken, uop.target
        ) if uop.pred is not None else (actual_next != uop.next_pc)
        on_arch_path = self._on_architectural_path(ctx, uop)
        if uop.instr.is_cond_branch and on_arch_path:
            self.stats.cond_branches_resolved += 1
            if mispredicted:
                self.stats.mispredicts += 1
        alt = self._covering_alternate(uop)
        if not mispredicted:
            uop.next_pc = actual_next
            if alt is not None:
                self._deactivate_alternate(alt)
            return
        # --- mispredicted ---------------------------------------------
        if not on_arch_path:
            # A branch inside a retained (inactive) trace or a doomed
            # path: record nothing further; the trace stays as recorded.
            if ctx.state is CtxState.ACTIVE:
                self._local_mispredict(ctx, uop, actual_next, alt)
            return
        if alt is not None:
            self.stats.mispredicts_covered += 1
            self._swap_primaryship(ctx, uop, alt)
        else:
            self._local_mispredict(ctx, uop, actual_next, None)

    def _on_architectural_path(self, ctx: HardwareContext, uop: Uop) -> bool:
        """Is ``uop`` part of its program's believed-correct stream?"""
        if ctx.instance is None:
            return False
        if ctx.is_primary and ctx.state is CtxState.ACTIVE:
            return True
        # Prefix of a context in the commit chain.
        if ctx.commit_limit_pos is not None and uop.al_pos < ctx.commit_limit_pos:
            return True
        return False

    def _commit_pinned(self, ctx: HardwareContext) -> bool:
        """Does ``ctx`` still hold (or forward) uncommitted architectural work?

        Such a context is part of its program's commit chain and must
        not be reclaimed, re-spawned, or squashed for reuse until the
        chain has moved past it.
        """
        inst = ctx.instance
        if inst is None:
            return False
        return inst.commit_ctx == ctx.id or ctx.commit_successor is not None

    def _reclaimable(self, ctx: HardwareContext) -> bool:
        """May ``ctx`` be reclaimed (squashed back to IDLE) right now?"""
        if ctx.state is not CtxState.INACTIVE:
            return False
        if ctx.pending_reuse > 0 or self._commit_pinned(ctx):
            return False
        if ctx.id in self.streams:
            return False
        return all(s.src_ctx != ctx.id for s in self.streams.values())  # det-ok: order-independent predicate

    def _covering_alternate(self, uop: Uop) -> Optional[HardwareContext]:
        if uop.forked_ctx is None:
            return None
        alt = self.contexts[uop.forked_ctx]
        if alt.fork_uop is uop:
            return alt
        return None

    def _local_mispredict(
        self,
        ctx: HardwareContext,
        uop: Uop,
        actual_next: int,
        alt: Optional[HardwareContext],
    ) -> None:
        """Squash-and-redirect recovery within one context.

        Used for unforked mispredicts on the primary, for alternates'
        own internal mispredicts, and (with chain dismantling) for
        architectural mispredicts whose covering alternate is gone.
        """
        if self._on_architectural_path(ctx, uop):
            self._dismantle_chain_after(ctx)
        if alt is not None:
            # The alternate covered the branch but we are not swapping
            # (non-architectural fork): discard it.
            self._squash_context(alt)
        uop.next_pc = actual_next
        self._squash_suffix(ctx, uop.al_pos)
        if uop.pred is not None:
            self.predictor.recover(ctx.id, uop.pred, uop.instr, uop.taken, uop.pc)
        if ctx.state is CtxState.INACTIVE:
            # The context was in the commit chain; it resumes as primary.
            self._reactivate_as_primary(ctx)
        ctx.pc = actual_next
        ctx.fetch_stopped = False
        ctx.fetch_stall_until = max(ctx.fetch_stall_until, self.cycle + 1)
        ctx.commit_limit_pos = None
        ctx.commit_successor = None

    def _reactivate_as_primary(self, ctx: HardwareContext) -> None:
        instance = ctx.instance
        partition = instance.partition
        old_primary = self.contexts[instance.primary_ctx]
        if old_primary is not ctx and old_primary.state is CtxState.ACTIVE:
            # Should have been dismantled already; be safe.
            self._squash_context(old_primary)
        ctx.state = CtxState.ACTIVE
        ctx.is_primary = True
        ctx.inactive_since = -1
        partition.set_primary(ctx)
        instance.primary_ctx = ctx.id
        for logical in ctx.self_written:
            partition.written.primary_defined(logical, partition.spare_mask)

    def _dismantle_chain_after(self, ctx: HardwareContext) -> None:
        """Squash every context downstream of ``ctx`` in the commit chain."""
        nxt = ctx.commit_successor
        ctx.commit_successor = None
        ctx.commit_limit_pos = None
        while nxt is not None:
            c = self.contexts[nxt]
            nxt = c.commit_successor
            self._squash_context(c)

    # ------------------------------------------------------------------
    # TME resolution outcomes
    # ------------------------------------------------------------------
    def _deactivate_alternate(self, alt: HardwareContext) -> None:
        """Fork branch was predicted correctly: the alternate path stops.

        Plain TME squashes it; with recycling it becomes an *inactive*
        context retained for merging (Section 3.1).
        """
        if not self.config.features.recycle:
            self._squash_context(alt)
            return
        alt.state = CtxState.INACTIVE
        alt.inactive_since = self.cycle
        policy = self.config.policy
        self._kill_stream(alt)  # e.g. a re-spawn stream still feeding it
        if policy.kind is PolicyKind.STOP:
            alt.fetch_stopped = True
            alt.decode_buffer.clear()
        if policy.kind is not PolicyKind.NOSTOP:
            # STOP and FETCH both cease execution at resolution.
            self._dequeue_unissued(alt)
        # FETCH: keeps fetching (rename marks new uops no-execute).
        # NOSTOP: keeps fetching and executing until the limit.

    def _dequeue_unissued(self, ctx: HardwareContext) -> None:
        """Pull a deactivated context's unissued uops out of the queues.

        The entries stay in the active list (still recyclable — "that
        may even be true for instructions that have not been ... executed
        yet"), they just never execute.
        """
        for pos in ctx.active_list.retained_positions():
            uop = ctx.active_list.try_entry(pos)
            if uop is not None and uop.in_queue:
                (self.fp_queue if uop.instr.info.fu is FuClass.FP else self.int_queue).remove(uop)
                uop.in_queue = False
                uop.no_execute = True
                ctx.n_queued -= 1

    def _swap_primaryship(self, old: HardwareContext, branch: Uop, alt: HardwareContext) -> None:
        """Fork branch mispredicted: the alternate becomes the primary."""
        instance = old.instance
        partition = instance.partition
        self._dismantle_chain_after(old)
        # Squash forks hanging off the (wrong-path) suffix, then either
        # retain the suffix as an inactive trace (REC) or squash it (TME).
        suffix_start = branch.al_pos + 1
        if self.config.features.recycle:
            self._detach_suffix_children(old, suffix_start)
            self._dequeue_suffix(old, suffix_start)
            old.first_merge = self._suffix_merge_point(old, suffix_start)
            old.path_start_pos = suffix_start
            old.back_merge = None
            old.state = CtxState.INACTIVE
            old.inactive_since = self.cycle
            old.self_written = set()
            partition.written.start_path(old.id)
            old.alt_fetched = max(0, old.active_list.tail_pos - suffix_start)
            if self.config.policy.kind is PolicyKind.STOP:
                old.fetch_stopped = True
                old.decode_buffer.clear()
            else:
                old.fetch_stopped = old.alt_fetched >= self.config.policy.limit
                if old.fetch_stopped:
                    old.decode_buffer.clear()
        else:
            self._squash_suffix(old, branch.al_pos)
            old.state = CtxState.INACTIVE  # reclaimed once its prefix commits
            old.inactive_since = self.cycle
            old.fetch_stopped = True
            old.decode_buffer.clear()
        old.is_primary = False
        old.commit_limit_pos = branch.al_pos + 1
        old.commit_successor = alt.id
        self._kill_stream(old)
        # Promote the alternate.
        alt.is_primary = True
        alt.fork_uop = None
        alt.parent_ctx = None
        alt.alt_fetched = 0
        alt.fetch_stopped = False
        alt.fetch_stall_until = max(alt.fetch_stall_until, self.cycle + 1)
        partition.set_primary(alt)
        instance.primary_ctx = alt.id
        # Written-bit accounting: the new primary's own post-fork writes
        # must be visible as "changed" to every other retained path.
        for logical in alt.self_written:
            partition.written.primary_defined(logical, partition.spare_mask)
        branch.next_pc = branch.target if branch.taken else branch.pc + INSTRUCTION_BYTES
        old.was_used_tme = True
        self.stats.forks_used_tme += 1

    def _detach_suffix_children(self, ctx: HardwareContext, from_pos: int) -> None:
        for pos in range(from_pos, ctx.active_list.tail_pos):
            uop = ctx.active_list.try_entry(pos)
            if uop is None:
                continue
            child = self._covering_alternate(uop)
            if child is not None:
                self._squash_context(child)
                uop.forked_ctx = None

    def _dequeue_suffix(self, ctx: HardwareContext, from_pos: int) -> None:
        if self.config.policy.kind is PolicyKind.NOSTOP:
            return
        for pos in range(from_pos, ctx.active_list.tail_pos):
            uop = ctx.active_list.try_entry(pos)
            if uop is not None and uop.in_queue:
                (self.fp_queue if uop.instr.info.fu is FuClass.FP else self.int_queue).remove(uop)
                uop.in_queue = False
                uop.no_execute = True
                ctx.n_queued -= 1

    def _suffix_merge_point(self, ctx: HardwareContext, pos: int) -> Optional[MergePoint]:
        uop = ctx.active_list.try_entry(pos)
        if uop is None:
            return None
        return MergePoint(uop.pc, pos)

    # ==================================================================
    # Squash machinery
    # ==================================================================
    def _squash_uop(self, uop: Uop) -> None:
        ctx = self.contexts[uop.ctx]
        if uop.in_queue:
            (self.fp_queue if uop.instr.info.fu is FuClass.FP else self.int_queue).remove(uop)
            uop.in_queue = False
            ctx.n_queued -= 1
        if uop.phys_dst is not None:
            ctx.map.restore(uop.instr.dst, uop.prev_map)
        if uop.reused and uop.reuse_src_ctx is not None:
            self.contexts[uop.reuse_src_ctx].reuse_pins.discard(uop.seq)
        if uop.instr.is_store:
            try:
                ctx.store_buffer.remove(uop)
            except ValueError:
                pass
        child = self._covering_alternate(uop)
        if child is not None:
            self._squash_context(child)
        uop.state = UopState.SQUASHED
        self.stats.squashed += 1

    def _squash_suffix(self, ctx: HardwareContext, branch_pos: int) -> int:
        """Squash everything in ``ctx`` younger than position ``branch_pos``.

        Returns the number of squashed uops; with a nonzero
        ``squash_penalty_per_uop`` the context's fetch is additionally
        stalled to model walk-back map recovery.
        """
        dropped = ctx.active_list.truncate(branch_pos + 1)
        count = 0
        for uop in dropped:  # youngest first
            if not uop.squashed:
                self._squash_uop(uop)
                count += 1
        ctx.decode_buffer.clear()
        self._kill_stream(ctx)  # callers redirect the PC afterwards
        penalty = self.config.squash_penalty_per_uop
        if penalty and count:
            ctx.fetch_stall_until = max(
                ctx.fetch_stall_until, self.cycle + 1 + int(count * penalty)
            )
        # Merge points referencing squashed positions die via validity checks.
        return count

    def _squash_context(self, ctx: HardwareContext) -> None:
        """Fully discard a context's path and return it to IDLE."""
        if ctx.state is CtxState.IDLE:
            return
        if ctx.fork_uop is not None:
            self._account_deleted_path(ctx)
        stream = self.streams.pop(ctx.id, None)
        if stream is not None:
            stream.stop("squashed")
        ring = ctx.active_list
        for pos in range(ring.tail_pos - 1, ring.commit_pos - 1, -1):
            uop = ring.try_entry(pos)
            if uop is not None and not uop.squashed and uop.state is not UopState.COMMITTED:
                self._squash_uop(uop)
        if ctx.map.valid:
            ctx.map.discard()
        ctx.reset_for_reclaim()

    def _reclaim_context(self, ctx: HardwareContext) -> None:
        """Reclaim an inactive context: squash its trace, free its registers."""
        assert ctx.state is CtxState.INACTIVE, f"reclaim of {ctx}"
        assert ctx.pending_reuse == 0, "reclaiming a reuse-pinned context"
        assert not self._commit_pinned(ctx), "reclaiming a commit-chain context"
        self._squash_context(ctx)

    def _lru_reclaimable(self, partition: Partition) -> Optional[HardwareContext]:
        candidates = [c for c in partition.inactive_contexts() if self._reclaimable(c)]
        if not candidates:
            return None
        return min(candidates, key=lambda c: c.inactive_since)

    def _reclaim_for_pressure(self, requesting: HardwareContext) -> None:
        """Free registers by reclaiming an LRU inactive context."""
        if not self.config.features.recycle:
            return
        partitions = [requesting.instance.partition] + [
            p for p in self.partitions if p is not requesting.instance.partition
        ]
        for partition in partitions:
            victim = self._lru_reclaimable(partition)
            if victim is not None and victim is not requesting:
                self.stats.reclaim_for_pressure += 1
                self._reclaim_context(victim)
                return

    def _account_deleted_path(self, ctx: HardwareContext) -> None:
        self.stats.alt_paths_deleted += 1
        if ctx.was_recycled:
            self.stats.alt_paths_recycled += 1
            self.stats.alt_path_merge_total += ctx.merge_count
        if ctx.was_respawned:
            self.stats.alt_paths_respawned += 1

    # ==================================================================
    # Commit stage (with golden-model co-simulation)
    # ==================================================================
    def _commit_stage(self) -> None:
        budget = self.config.commit_width
        if not self.instances:
            return
        order = list(range(len(self.instances)))
        rotate = self.cycle % len(order)
        order = order[rotate:] + order[:rotate]
        for idx in order:
            if budget <= 0:
                break
            budget = self._commit_instance(self.instances[idx], budget)

    def _commit_instance(self, instance: ProgramInstance, budget: int) -> int:
        while budget > 0 and not instance.halted:
            ctx = self.contexts[instance.commit_ctx]
            if (
                ctx.commit_limit_pos is not None
                and ctx.active_list.commit_pos >= ctx.commit_limit_pos
            ):
                succ = ctx.commit_successor
                if succ is None:
                    break
                instance.commit_ctx = succ
                ctx.commit_successor = None  # chain moved past: unpin
                if not self.config.features.recycle:
                    # Plain TME: the handed-over context is dead weight.
                    self._squash_context(ctx)
                continue
            uop = ctx.active_list.oldest_uncommitted()
            if uop is None or not uop.completed or uop.squashed:
                break
            self._retire(instance, ctx, uop)
            budget -= 1
            if instance.reached_target() and instance.id not in self.stats.per_instance_cycles:
                self.stats.per_instance_cycles[instance.id] = self.cycle + 1
        return budget

    def _retire(self, instance: ProgramInstance, ctx: HardwareContext, uop: Uop) -> None:
        if self.config.golden_check:
            self._golden_check(instance, uop)
        ctx.active_list.advance_commit()
        instr = uop.instr
        if instr.is_store:
            instance.memory.write64(uop.eff_addr, uop.store_bits)
            # Re-invalidate at retirement: MDB entries must not survive a
            # store that is architecturally older than any later reuse.
            instance.mdb.record_store(uop.eff_addr)
            try:
                ctx.store_buffer.remove(uop)
            except ValueError:
                pass
        if uop.phys_dst is not None and uop.prev_map is not None:
            self.regfile.decref(uop.prev_map)
            uop.prev_map = None
        if uop.reused and uop.reuse_src_ctx is not None:
            self.contexts[uop.reuse_src_ctx].reuse_pins.discard(uop.seq)
        uop.state = UopState.COMMITTED
        instance.committed += 1
        self.stats.committed += 1
        self._last_commit_cycle = self.cycle
        if instr.info.is_halt:
            self._halt_instance(instance, ctx)

    def _halt_instance(self, instance: ProgramInstance, halting_ctx: HardwareContext) -> None:
        """HALT committed: stop and clean up every context of the program.

        Squashing the in-flight remainder releases physical registers
        and drains reuse pins, leaving the machine quiescent.
        """
        instance.halted = True
        if self.config.golden_check and instance.memory != instance.golden.state.memory:
            raise SimulationError(
                f"[{instance.name}] final memory image differs from the golden model"
            )
        for ctx in instance.partition.contexts:
            if ctx.state is CtxState.IDLE:
                continue
            if ctx is halting_ctx:
                self._squash_suffix(ctx, ctx.active_list.commit_pos - 1)
                ctx.fetch_stopped = True
            else:
                self._squash_context(ctx)
        if self.config.golden_check:
            self._check_final_registers(instance, halting_ctx)

    def _check_final_registers(self, instance: ProgramInstance, ctx: HardwareContext) -> None:
        """After HALT cleanup the primary's map must hold exactly the
        architectural register state the golden model computed."""
        golden_regs = instance.golden.state.regs
        for logical in range(NUM_LOGICAL_REGS):
            phys = ctx.map.lookup(logical)
            value = self.regfile.values[phys]
            if not _values_equal(value, golden_regs[logical]):
                raise SimulationError(
                    f"[{instance.name}] final register r/f{logical} = {value!r} "
                    f"!= golden {golden_regs[logical]!r}"
                )

    def _golden_check(self, instance: ProgramInstance, uop: Uop) -> None:
        try:
            rec = instance.golden.step()
        except EmulationError as exc:
            raise SimulationError(f"golden model diverged: {exc}") from exc
        if rec.pc != uop.pc:
            raise SimulationError(
                f"[{instance.name}] commit PC {uop.pc:#x} != golden {rec.pc:#x} "
                f"(uop {uop!r})"
            )
        if uop.instr.is_store:
            if rec.eff_addr != uop.eff_addr or rec.store_bits != uop.store_bits:
                raise SimulationError(
                    f"[{instance.name}] store mismatch at {uop.pc:#x}: "
                    f"core ({uop.eff_addr:#x}, {uop.store_bits}) != "
                    f"golden ({rec.eff_addr:#x}, {rec.store_bits})"
                )
        elif uop.dst is not None:
            if not _values_equal(rec.value, uop.value):
                raise SimulationError(
                    f"[{instance.name}] value mismatch at {uop.pc:#x} ({uop.instr}): "
                    f"core {uop.value!r} != golden {rec.value!r}"
                    f"{' [reused]' if uop.reused else ''}"
                )

    # ==================================================================
    # Introspection helpers (tests, debugging)
    # ==================================================================
    def context(self, ctx_id: int) -> HardwareContext:
        return self.contexts[ctx_id]

    def instance_of(self, name: str) -> ProgramInstance:
        for inst in self.instances:
            if inst.name == name:
                return inst
        raise KeyError(name)
