"""The SMT/TME/Recycle processor core — facade over the stage modules.

A cycle-stepped, execution-driven model of the paper's machine: each
cycle runs commit → completion → issue → rename → fetch (reverse stage
order so a cycle's results propagate next cycle).  Values are computed
for real on the shared physical register file — wrong paths execute,
stores drain at commit, and every architectural commit is cross-checked
against a golden functional emulator.

The stage logic lives in :mod:`repro.pipeline.stages` (one module per
stage, sharing an explicit :class:`~repro.pipeline.stages.CoreState`),
and observers subscribe to the typed event bus in
:mod:`repro.pipeline.events` instead of monkey-patching methods.
:class:`Core` remains the public API: it owns the state, steps the
stages, and keeps the historical ``_method`` names as thin delegators.
Those delegators are deliberate — they are the single
patch/observation point for tests (fault injection replaces
``core._execute`` et al.), and routing every cross-stage call through
them keeps instance-level patching effective after the split.

The TME and recycling behaviour (Sections 2-3):

* confidence-gated forking of primary-thread branches into spare
  contexts, with map duplication and path-history forking
  (:mod:`~repro.pipeline.stages.fork`);
* resolution: correctly-predicted forks deactivate their alternate into
  a recyclable *inactive* context; mispredicted forks swap primaryship
  and thread the architectural commit stream across contexts
  (:mod:`~repro.pipeline.stages.resolve`);
* merge-point detection at fetch (first-PC of spare traces, own
  backward-branch targets) opening recycle streams into rename
  (:mod:`~repro.pipeline.stages.fetch`);
* instruction reuse via the written-bit array + MDB, implemented as
  re-installing the old physical mapping, and re-spawning of inactive
  traces through the recycle datapath
  (:mod:`~repro.pipeline.stages.rename`).
"""

from __future__ import annotations

import gc
from typing import List, Optional

from ..isa.program import Program, STACK_TOP
from ..isa.registers import FP_BASE, STACK_POINTER_REG
from ..stats.counters import SimStats
from ..tme.partition import Partition
from .config import MachineConfig
from .context import CtxState, HardwareContext
from .instance import ProgramInstance
from .stages import (
    CommitStage,
    CoreState,
    FetchStage,
    ForkUnit,
    IssueStage,
    RenameStage,
    ResolveStage,
    SimulationError,
)
from .stages.commit import _values_equal  # noqa: F401  (re-export for tests)
from .uop import ST_COMPLETED

__all__ = ["Core", "SimulationError"]


class Core:
    def __init__(self, config: Optional[MachineConfig] = None, uop_cache=None):
        self.state = CoreState(config, uop_cache=uop_cache)
        self.fetch = FetchStage(self)
        self.rename = RenameStage(self)
        self.forker = ForkUnit(self)
        self.issue = IssueStage(self)
        self.resolve = ResolveStage(self)
        self.commit = CommitStage(self)
        self._bind_delegators()
        self._profiler = None
        # Imported lazily: stats.recorder subscribes to pipeline.events,
        # and importing it at module scope would cycle back into here.
        from ..stats.recorder import StatsRecorder

        self.stats_recorder = StatsRecorder(self.state.stats, self.state.bus)

    # ------------------------------------------------------------------
    # Shared state, exposed under the historical attribute names
    # ------------------------------------------------------------------
    @property
    def config(self):
        return self.state.config

    @property
    def regfile(self):
        return self.state.regfile

    @property
    def contexts(self):
        return self.state.contexts

    @property
    def int_queue(self):
        return self.state.int_queue

    @property
    def fp_queue(self):
        return self.state.fp_queue

    @property
    def fus(self):
        return self.state.fus

    @property
    def hierarchy(self):
        return self.state.hierarchy

    @property
    def predictor(self):
        return self.state.predictor

    @property
    def instances(self):
        return self.state.instances

    @property
    def partitions(self):
        return self.state.partitions

    @property
    def stats(self):
        return self.state.stats

    @property
    def util(self):
        return self.state.util

    @property
    def streams(self):
        return self.state.streams

    @property
    def bus(self):
        return self.state.bus

    @property
    def cycle(self):
        return self.state.cycle

    # ==================================================================
    # Workload loading
    # ==================================================================
    def load(self, programs: List[Program], commit_target: Optional[int] = None) -> None:
        """Start ``programs`` on evenly partitioned hardware contexts."""
        if not programs:
            raise ValueError("need at least one program")
        if len(programs) > self.config.num_contexts:
            raise ValueError("more programs than hardware contexts")
        per = self.config.num_contexts // len(programs)
        for i, program in enumerate(programs):
            instance = ProgramInstance(i, program)
            instance.commit_target = commit_target
            ctxs = self.contexts[i * per : (i + 1) * per]
            partition = Partition(ctxs, ctxs[0])
            instance.partition = partition
            for ctx in ctxs:
                ctx.instance = instance
            primary = ctxs[0]
            primary.state = CtxState.ACTIVE
            primary.is_primary = True
            primary.pc = program.entry
            primary.map.init_fresh(self._initial_reg_value)
            instance.primary_ctx = primary.id
            instance.commit_ctx = primary.id
            self.instances.append(instance)
            self.partitions.append(partition)

    @staticmethod
    def _initial_reg_value(logical: int):
        if logical == STACK_POINTER_REG:
            return STACK_TOP
        return 0.0 if logical >= FP_BASE else 0

    # ==================================================================
    # Main loop
    # ==================================================================
    def run(self, max_cycles: int = 1_000_000, deadlock_limit: int = 20_000) -> SimStats:
        """Simulate until every instance reaches its commit target/halts."""
        state = self.state
        instances = self.instances
        step = self.step
        # The sim loop allocates heavily (uops, fetch records, heap
        # entries) but creates no garbage *cycles* worth collecting
        # mid-run; keeping the generational collector from scanning the
        # growing columns is a measurable win.  One collection at the
        # end reclaims whatever cyclic garbage the run produced.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while state.cycle < max_cycles:
                for inst in instances:
                    if not (inst.halted or inst.reached_target()):
                        break
                else:  # every instance done
                    break
                step()
                if state.cycle - state.last_commit_cycle > deadlock_limit:
                    raise SimulationError(
                        f"no commits for {deadlock_limit} cycles at cycle "
                        f"{state.cycle}; contexts: {self.contexts}"
                    )
        finally:
            if gc_was_enabled:
                gc.enable()
            # Collect even when gc was already disabled on entry: batch
            # drivers manage the collector themselves, and skipping the
            # collection here would carry this run's cyclic garbage into
            # every later point of the batch.
            gc.collect()
        self._finalize_stats()
        return self.stats

    def step(self) -> None:
        """Advance one cycle (reverse stage order)."""
        state = self.state
        stats = state.stats
        fetched0 = stats.fetched
        renamed0 = stats.renamed
        recycled0 = stats.renamed_recycled
        committed0 = stats.committed
        state.issued_this_cycle = 0
        profiler = self._profiler
        if profiler is None:
            self._commit_stage()
            self._complete_stage()
            self._issue_stage()
            self._rename_stage()
            self._fetch_stage()
        else:
            profiler.timed("commit", self._commit_stage)
            profiler.timed("complete", self._complete_stage)
            profiler.timed("issue", self._issue_stage)
            profiler.timed("rename", self._rename_stage)
            profiler.timed("fetch", self._fetch_stage)
        state.util.record_cycle(
            stats.fetched - fetched0,
            stats.renamed - renamed0,
            stats.renamed_recycled - recycled0,
            state.issued_this_cycle,
            stats.committed - committed0,
        )
        state.cycle += 1
        stats.cycles = state.cycle

    def next_activity_cycle(self) -> Optional[int]:
        """Earliest cycle at which stepping this core could change state.

        Returns the current cycle when any stage provably has work *now*,
        a future cycle when every stage is idle until a known wakeup
        (queue due-heaps, in-flight completions, icache fills, decode
        latency), or ``None`` when the core is fully quiescent (done or
        deadlocked — no event will ever arrive).

        The predicate is deliberately conservative: anything not
        *provably* idle counts as activity, so a lockstep batch driver
        may fast-forward ``state.cycle`` to the returned bound and record
        the gap as idle cycles without changing a single simulated
        outcome.  The per-stage no-op conditions mirror the stage
        entry points:

        * rename drains open recycle streams every cycle, so any open
          stream means activity now;
        * commit retires when an instance's commit-chain head is
          COMPLETED, or advances the chain when a handover is pinned;
        * resolve pops ``state.completions`` at exactly its key cycle;
        * issue pops the queues' ready/due heaps (stale entries count as
          activity — popping them is cheap and keeps this conservative);
        * rename consumes decode-buffer heads once ``ready_cycle``
          arrives (per-context ready cycles are monotonic, so the head
          is the earliest);
        * fetch is eligibility-gated; for a context blocked only by its
          fetch stall the bound is ``fetch_stall_until``, and every other
          blocker (buffer full, stream open, halted) can only be lifted
          by activity that is itself accounted above.  Merge detection
          (``try_merge``) is side-effectful, so a context that is
          fetch-eligible *now* counts as activity even if it would only
          open a stream.
        """
        state = self.state
        now = state.cycle
        if state.streams:
            return now
        contexts = state.contexts
        for inst in state.instances:
            if inst.halted:
                continue
            ctx = contexts[inst.commit_ctx]
            al = ctx.active_list
            pos = al.commit_pos
            if ctx.commit_limit_pos is not None and pos >= ctx.commit_limit_pos:
                if ctx.commit_successor is not None:
                    return now  # chain handover pending
                continue  # waits on a primaryship swap (a completion event)
            if pos < al.tail_pos:
                uop = al._ring[pos % al.capacity]
                if uop is not None and uop.cols.state[uop.uid] == ST_COMPLETED:
                    return now
        bound: Optional[int] = None
        completions = state.completions
        if completions:
            due = min(completions)
            if due <= now:
                return now
            bound = due
        for queue in (state.int_queue, state.fp_queue):
            if queue._ready:
                return now
            heap = queue._due
            if heap:
                due = heap[0][0]
                if due <= now:
                    return now
                if bound is None or due < bound:
                    bound = due
        decode_cap = state.config.decode_buffer_size
        streams = state.streams
        for ctx in contexts:
            buf = ctx.decode_buffer
            if buf:
                ready = buf[0].ready_cycle
                if ready <= now:
                    return now
                if bound is None or ready < bound:
                    bound = ready
            cstate = ctx.state
            if (
                (cstate is CtxState.ACTIVE or cstate is CtxState.INACTIVE)
                and not ctx.fetch_stopped
                and len(buf) < decode_cap
                and ctx.id not in streams
                and not (ctx.instance and ctx.instance.halted)
            ):
                stall = ctx.fetch_stall_until
                if stall <= now:
                    return now
                if bound is None or stall < bound:
                    bound = stall
        return bound

    def set_profiler(self, profiler) -> None:
        """Attach (or clear) a per-stage profiler with a ``timed(name, fn)``
        method; ``None`` restores the unprofiled fast path."""
        self._profiler = profiler

    def _finalize_stats(self) -> None:
        self.commit.finalize_stats()

    # ==================================================================
    # Stage delegators (the historical private API)
    # ==================================================================
    def _bind_delegators(self) -> None:
        """Bind the stage entry points under the historical ``_method`` names.

        Stages route cross-stage and observable calls through these so
        that instance-attribute patching (tests, fault injection) still
        intercepts exactly one well-known name per behaviour.  They are
        instance attributes rather than ``def`` wrappers: several run
        tens of thousands of times per simulated run, and the extra
        delegator frame was measurable in the hot loop.  Patching
        semantics are unchanged — ``core._execute = fake`` replaces the
        attribute, and restoring the saved original rebinds the stage
        method.
        """
        # -- fetch -----------------------------------------------------
        self._fetch_stage = self.fetch.run
        self._fetch_block = self.fetch.fetch_block
        self._alt_fetch_allowed = self.fetch.alt_fetch_allowed
        self._open_stream = self.fetch.open_stream
        self._snapshot_trace = self.fetch.snapshot_trace
        # -- rename / recycle -----------------------------------------
        self._rename_stage = self.rename.run
        self._rename_one = self.rename.rename_one
        self._rename_reused = self.rename.rename_reused
        self._reuse_candidate = self.rename.reuse_candidate
        self._end_stream = self.rename.end_stream
        self._kill_stream = self.rename.kill_stream
        # -- TME fork / re-spawn --------------------------------------
        self._consider_fork = self.forker.consider_fork
        self._spawn = self.forker.spawn
        self._respawn = self.forker.respawn
        # -- issue / execute ------------------------------------------
        self._issue_stage = self.issue.run
        self._execute = self.issue.execute
        # -- completion / recovery / squash ---------------------------
        self._complete_stage = self.resolve.run
        self._swap_primaryship = self.resolve.swap_primaryship
        self._squash_uop = self.resolve.squash_uop
        self._squash_suffix = self.resolve.squash_suffix
        self._squash_context = self.resolve.squash_context
        self._reclaimable = self.resolve.reclaimable
        self._lru_reclaimable = self.resolve.lru_reclaimable
        self._reclaim_context = self.resolve.reclaim_context
        self._reclaim_for_pressure = self.resolve.reclaim_for_pressure
        self._account_deleted_path = self.resolve.account_deleted_path
        # -- commit ----------------------------------------------------
        self._commit_stage = self.commit.run
        self._retire = self.commit.retire

    # ==================================================================
    # Introspection helpers (tests, debugging)
    # ==================================================================
    def context(self, ctx_id: int) -> HardwareContext:
        return self.contexts[ctx_id]

    def instance_of(self, name: str) -> ProgramInstance:
        for inst in self.instances:
            if inst.name == name:
                return inst
        raise KeyError(name)
