"""Running program instances and their architectural state.

A :class:`ProgramInstance` is one program of a (possibly
multiprogrammed) workload: its committed memory image, its golden
co-simulation emulator, its Memory Disambiguation Buffer, and the
*commit chain* — the linked list of contexts that together hold the
program's architectural instruction stream.  TME migrates primaryship
between contexts at mispredicted forked branches; commits follow the
chain so retirement stays program-ordered across migrations.
"""

from __future__ import annotations

from typing import Optional

from ..emulator.emulator import Emulator
from ..emulator.memory import SparseMemory
from ..isa.program import Program
from ..recycle.mdb import MemoryDisambiguationBuffer


class ProgramInstance:
    def __init__(self, instance_id: int, program: Program, mdb_entries: int = 64):
        self.id = instance_id  # also the cache "space" id
        self.program = program
        #: Committed memory state (what stores drain into at retirement).
        self.memory = SparseMemory()
        if program.data:
            self.memory.load_image(program.data_base, program.data)
        #: Golden model with its own private memory image.
        self.golden = Emulator(program)
        self.mdb = MemoryDisambiguationBuffer(mdb_entries)
        self.partition = None  # assigned by the core
        self.primary_ctx: Optional[int] = None
        self.commit_ctx: Optional[int] = None
        self.committed = 0
        self.halted = False
        # Measurement window bookkeeping.
        self.commit_target: Optional[int] = None

    @property
    def name(self) -> str:
        return self.program.name

    def reached_target(self) -> bool:
        return self.commit_target is not None and self.committed >= self.commit_target

    def __repr__(self) -> str:
        return (
            f"<instance {self.id}:{self.name} committed={self.committed}"
            f"{' HALTED' if self.halted else ''}>"
        )
