"""Hardware contexts and their lifecycle.

A TME/Recycle context is *idle* (empty, synchronised, ready to spawn),
*active* (running the primary or an alternate path), or *inactive*
(finished executing but retained — its active list and registers are
kept for recycling until the context is reclaimed).  Section 3.1.
"""

from __future__ import annotations

import enum
from collections import deque
from heapq import heappop, heappush
from typing import Deque, Dict, List, Optional, Tuple

from ..branch.predictor import Prediction
from ..compat import slots_dataclass
from ..isa.instruction import Instruction
from .active_list import ActiveList
from .rename import RenameMap
from .uop import ST_COMMITTED, ST_COMPLETED, ST_SQUASHED, Uop


class CtxState(enum.Enum):
    IDLE = "idle"
    ACTIVE = "active"
    INACTIVE = "inactive"


@slots_dataclass
class FetchedInstr:
    """One instruction sitting in a context's fetch/decode buffer.

    Slotted: one is allocated per fetched instruction, on the fetch
    hot path.
    """

    instr: Instruction
    pc: int
    next_pc: int  # predicted successor (the recorded path geometry)
    pred: Optional[Prediction]
    ready_cycle: int  # earliest cycle rename may consume it
    #: Predigested static record from the decoded-uop cache; rename
    #: reads it instead of re-classifying the instruction.
    dec: Optional[object] = None


@slots_dataclass
class MergePoint:
    """A recyclable trace entry point: (pc to match, active-list position)."""

    pc: int
    pos: int


class HardwareContext:
    """All per-context state outside the shared structures."""

    def __init__(self, ctx_id: int, regfile, active_list_size: int):
        self.id = ctx_id
        self.map = RenameMap(regfile)
        self.active_list = ActiveList(active_list_size)
        self.state = CtxState.IDLE
        self.is_primary = False
        self.instance = None  # ProgramInstance
        # Fetch state -----------------------------------------------------
        self.pc: int = 0
        self.fetch_stall_until: int = 0
        self.fetch_stopped = False  # halted, off-text, or policy-stopped
        # Outstanding I-fetch fill: the block at ``fill_pc`` is delivered
        # to the fetch unit at ``fill_ready`` even if the line is evicted
        # meanwhile (prevents thrash livelock between contexts).
        self.fill_pc: int = -1
        self.fill_ready: int = 0
        self.decode_buffer: Deque[FetchedInstr] = deque()
        # Execution bookkeeping -------------------------------------------
        self.store_buffer: List[Uop] = []  # own in-flight stores
        self.inherited_stores: List[Uop] = []  # pre-fork stores of the parent
        self.n_queued = 0  # renamed-but-not-issued uops (ICOUNT)
        # Store-path indexes (all lazily pruned; see STORE-INDEX
        # invariants in docs/PERFORMANCE.md) --------------------------------
        #: Min-heaps of (seq, store) for not-yet-executed stores, split
        #: own/inherited.  ``older_store_pending`` peeks the oldest
        #: entry instead of scanning both buffers per load attempt.
        self._own_pending: List[Tuple[int, Uop]] = []
        self._inh_pending: List[Tuple[int, Uop]] = []
        #: Completed stores visible to this context, per effective
        #: address, each list seq-ascending — the forwarding index.
        self._fwd_index: Dict[int, List[Uop]] = {}
        #: Stack (seq-ascending) of every store visible to this context;
        #: lazily popped once committed/squashed.  Non-empty == at least
        #: one store is still architecturally in flight (reuse gate).
        self._live_stores: List[Uop] = []
        # Scheduler bookkeeping --------------------------------------------
        self.fetch_mark = -1  # cycle-stamped fetch-candidate marker
        # TME state --------------------------------------------------------
        self.fork_uop: Optional[Uop] = None  # branch this alternate covers
        self.parent_ctx: Optional[int] = None
        self.alt_fetched = 0  # instructions fetched along this alternate path
        self.path_start_pos = 0  # active-list position where this path began
        # Commit chain (architectural stream handover) ----------------------
        self.commit_limit_pos: Optional[int] = None
        self.commit_successor: Optional[int] = None
        # Recycling state ----------------------------------------------------
        self.first_merge: Optional[MergePoint] = None
        self.back_merge: Optional[MergePoint] = None
        self.inactive_since = -1
        #: Sequence numbers of in-flight primary-path uops that reuse
        #: this context's register mappings — the context is pinned
        #: (unreclaimable) until they retire or squash.  A set keyed by
        #: uop seq makes pin release idempotent across squash orderings.
        self.reuse_pins: set = set()
        self.was_used_tme = False
        self.was_recycled = False
        self.was_respawned = False
        self.merge_count = 0  # non-back merges served from this path
        #: Logical registers written since this context's path started —
        #: folded into the written-bit array at primaryship swaps.
        self.self_written: set = set()

    # ------------------------------------------------------------------
    @property
    def is_alternate(self) -> bool:
        return self.state is CtxState.ACTIVE and not self.is_primary

    @property
    def pending_reuse(self) -> int:
        """Outstanding reuses of this context's mappings by the primary."""
        return len(self.reuse_pins)

    @property
    def icount(self) -> int:
        """Pre-issue instruction count (ICOUNT fetch priority)."""
        return len(self.decode_buffer) + self.n_queued

    def can_fetch(self, cycle: int, decode_cap: int) -> bool:
        # INACTIVE contexts may keep fetching under the FETCH/NOSTOP
        # policies (Section 5.2); ``fetch_stopped`` gates them.
        return (
            self.state in (CtxState.ACTIVE, CtxState.INACTIVE)
            and not self.fetch_stopped
            and cycle >= self.fetch_stall_until
            and len(self.decode_buffer) < decode_cap
        )

    # ------------------------------------------------------------------
    def merge_point_valid(self, mp: Optional[MergePoint]) -> bool:
        if mp is None:
            return False
        uop = self.active_list.try_entry(mp.pos)
        return (
            uop is not None
            and uop.pc == mp.pc
            and uop.cols.state[uop.uid] != ST_SQUASHED
        )

    def set_back_merge(self, target_pc: int) -> None:
        """Record the target of the last backward branch (Section 3.2)."""
        pos = self.active_list.find_pc(target_pc)
        if pos is not None:
            self.back_merge = MergePoint(target_pc, pos)
        else:
            self.back_merge = None

    def note_first_entry(self, uop: Uop, pos: int) -> None:
        if self.first_merge is None:
            self.first_merge = MergePoint(uop.pc, pos)
            self.path_start_pos = pos

    # ------------------------------------------------------------------
    # Store-path indexes (memory ordering, forwarding, reuse gating)
    # ------------------------------------------------------------------
    def note_store_renamed(self, uop: Uop) -> None:
        """An own store entered the window: track it in every index."""
        self.store_buffer.append(uop)
        heappush(self._own_pending, (uop.seq, uop))
        self._live_stores.append(uop)

    def note_store_completed(self, uop: Uop) -> None:
        """An own store executed: it becomes forwardable at its address."""
        self._index_completed_store(uop)

    def adopt_inherited_stores(self, stores: List[Uop]) -> None:
        """Install the fork-time snapshot of the parent's visible stores.

        ``stores`` is seq-ascending (parent program order), so it is
        already a valid min-heap and a valid live-stores stack.
        """
        self.inherited_stores = stores
        self._inh_pending = [(s.seq, s) for s in stores]
        self._fwd_index = {}
        self._own_pending = []
        self._live_stores = list(stores)

    def older_store_pending(self, seq: int) -> bool:
        """Is any visible store older than ``seq`` still un-executed?

        Equivalent to the old linear scan for a store with
        ``store.seq < seq and not squashed and not completed`` over
        ``store_buffer + inherited_stores``; here the pending heaps are
        pruned to their oldest still-pending entry and peeked.
        """
        heap = self._own_pending
        while heap:
            top = heap[0]
            store = top[1]
            if store.cols.state[store.uid] < ST_COMPLETED:  # renamed/issued
                if top[0] < seq:
                    return True
                break
            heappop(heap)  # completed/committed/squashed: done pending
        heap = self._inh_pending
        while heap:
            top = heap[0]
            store = top[1]
            code = store.cols.state[store.uid]
            if code < ST_COMPLETED:  # renamed/issued
                if top[0] < seq:
                    return True
                break
            heappop(heap)
            if code == ST_COMPLETED:
                # Drained past an executed inherited store: it becomes
                # forwardable here (own stores arrive via the resolve
                # hook; inherited ones as the load window passes them).
                self._index_completed_store(store)
        return False

    def _index_completed_store(self, store: Uop) -> None:
        lst = self._fwd_index.get(store.eff_addr)
        if lst is None:
            self._fwd_index[store.eff_addr] = [store]
            return
        seq = store.seq
        lo, hi = 0, len(lst)
        while lo < hi:
            mid = (lo + hi) // 2
            if lst[mid].seq < seq:
                lo = mid + 1
            else:
                hi = mid
        lst.insert(lo, store)

    def forward_lookup(self, addr: int, seq: int) -> Optional[Uop]:
        """Youngest completed store to ``addr`` older than ``seq``.

        Stale index entries (committed or squashed since insertion) are
        skipped by state; they are garbage-collected at retire/squash.
        """
        lst = self._fwd_index.get(addr)
        if lst is None:
            return None
        lo, hi = 0, len(lst)
        while lo < hi:
            mid = (lo + hi) // 2
            if lst[mid].seq < seq:
                lo = mid + 1
            else:
                hi = mid
        for i in range(lo - 1, -1, -1):
            store = lst[i]
            if store.cols.state[store.uid] == ST_COMPLETED:
                return store
        return None

    def fwd_index_discard(self, store: Uop) -> None:
        """Drop an own store's index entry (no-op if never indexed)."""
        lst = self._fwd_index.get(store.eff_addr)
        if lst is None:
            return
        seq = store.seq
        lo, hi = 0, len(lst)
        while lo < hi:
            mid = (lo + hi) // 2
            if lst[mid].seq < seq:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(lst) and lst[lo] is store:
            del lst[lo]
            if not lst:
                del self._fwd_index[store.eff_addr]

    def has_live_stores(self) -> bool:
        """Any visible store not yet committed (and not squashed)?

        The stack is pruned from the youngest end: commit retires
        stores oldest-first, so a committed top implies everything
        below it is committed or squashed too.
        """
        stack = self._live_stores
        while stack:
            top = stack[-1]
            if top.cols.state[top.uid] >= ST_COMMITTED:  # committed/squashed
                stack.pop()
            else:
                return True
        return False

    # ------------------------------------------------------------------
    def reset_for_reclaim(self) -> None:
        """Return to IDLE after the core has released all resources."""
        self.active_list.clear()
        self.state = CtxState.IDLE
        self.is_primary = False
        self.instance = None
        self.decode_buffer.clear()
        self.store_buffer.clear()
        self.inherited_stores.clear()
        self._own_pending.clear()
        self._inh_pending.clear()
        self._fwd_index.clear()
        self._live_stores.clear()
        self.n_queued = 0
        self.fork_uop = None
        self.parent_ctx = None
        self.alt_fetched = 0
        self.path_start_pos = 0
        self.commit_limit_pos = None
        self.commit_successor = None
        self.first_merge = None
        self.back_merge = None
        self.inactive_since = -1
        self.reuse_pins = set()
        self.was_used_tme = False
        self.was_recycled = False
        self.was_respawned = False
        self.merge_count = 0
        self.self_written = set()
        self.fetch_stopped = False
        self.fetch_stall_until = 0
        self.fill_pc = -1
        self.fill_ready = 0

    def __repr__(self) -> str:
        role = "P" if self.is_primary else ("A" if self.is_alternate else "-")
        return f"<ctx{self.id} {self.state.value}/{role} pc={self.pc:#x}>"


def _icount_key(ctx: HardwareContext):
    # The (icount, id) fetch/rename priority; ids break ties, so this
    # is a strict total order and the sorted list is unique.
    return (len(ctx.decode_buffer) + ctx.n_queued, ctx.id)


class IcountOrder:
    """Contexts kept sorted by ``(icount, id)``, resorted lazily.

    ICOUNT changes at a handful of well-known points (fetch delivers,
    rename consumes/queues, issue/squash dequeue); each such point
    calls :meth:`note`, which merely marks the order dirty.  The next
    :meth:`ordered` read sorts the (tiny) context list once.  The key
    is a strict total order (ids break ties), so the result equals
    what the old per-cycle stable sorts produced -- no matter how many
    mutations landed between reads.
    """

    __slots__ = ("_order", "_dirty")

    def __init__(self, contexts: List[HardwareContext]):
        self._order = list(contexts)  # all icounts 0 -> id order is sorted
        self._dirty = False

    def ordered(self) -> List[HardwareContext]:
        """The live, sorted list.  Callers must not mutate it, and must
        snapshot (e.g. filter into a new list) before fetching/renaming,
        since those actions re-enter :meth:`note`."""
        if self._dirty:
            self._order.sort(key=_icount_key)
            self._dirty = False
        return self._order

    def note(self, ctx: HardwareContext) -> None:
        """Mark the order stale after ``ctx``'s icount may have changed."""
        self._dirty = True
