"""Hardware contexts and their lifecycle.

A TME/Recycle context is *idle* (empty, synchronised, ready to spawn),
*active* (running the primary or an alternate path), or *inactive*
(finished executing but retained — its active list and registers are
kept for recycling until the context is reclaimed).  Section 3.1.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from ..branch.predictor import Prediction
from ..isa.instruction import Instruction
from .active_list import ActiveList
from .rename import RenameMap
from .uop import Uop


class CtxState(enum.Enum):
    IDLE = "idle"
    ACTIVE = "active"
    INACTIVE = "inactive"


@dataclass
class FetchedInstr:
    """One instruction sitting in a context's fetch/decode buffer."""

    instr: Instruction
    pc: int
    next_pc: int  # predicted successor (the recorded path geometry)
    pred: Optional[Prediction]
    ready_cycle: int  # earliest cycle rename may consume it


@dataclass
class MergePoint:
    """A recyclable trace entry point: (pc to match, active-list position)."""

    pc: int
    pos: int


class HardwareContext:
    """All per-context state outside the shared structures."""

    def __init__(self, ctx_id: int, regfile, active_list_size: int):
        self.id = ctx_id
        self.map = RenameMap(regfile)
        self.active_list = ActiveList(active_list_size)
        self.state = CtxState.IDLE
        self.is_primary = False
        self.instance = None  # ProgramInstance
        # Fetch state -----------------------------------------------------
        self.pc: int = 0
        self.fetch_stall_until: int = 0
        self.fetch_stopped = False  # halted, off-text, or policy-stopped
        # Outstanding I-fetch fill: the block at ``fill_pc`` is delivered
        # to the fetch unit at ``fill_ready`` even if the line is evicted
        # meanwhile (prevents thrash livelock between contexts).
        self.fill_pc: int = -1
        self.fill_ready: int = 0
        self.decode_buffer: Deque[FetchedInstr] = deque()
        # Execution bookkeeping -------------------------------------------
        self.store_buffer: List[Uop] = []  # own in-flight stores
        self.inherited_stores: List[Uop] = []  # pre-fork stores of the parent
        self.n_queued = 0  # renamed-but-not-issued uops (ICOUNT)
        # TME state --------------------------------------------------------
        self.fork_uop: Optional[Uop] = None  # branch this alternate covers
        self.parent_ctx: Optional[int] = None
        self.alt_fetched = 0  # instructions fetched along this alternate path
        self.path_start_pos = 0  # active-list position where this path began
        # Commit chain (architectural stream handover) ----------------------
        self.commit_limit_pos: Optional[int] = None
        self.commit_successor: Optional[int] = None
        # Recycling state ----------------------------------------------------
        self.first_merge: Optional[MergePoint] = None
        self.back_merge: Optional[MergePoint] = None
        self.inactive_since = -1
        #: Sequence numbers of in-flight primary-path uops that reuse
        #: this context's register mappings — the context is pinned
        #: (unreclaimable) until they retire or squash.  A set keyed by
        #: uop seq makes pin release idempotent across squash orderings.
        self.reuse_pins: set = set()
        self.was_used_tme = False
        self.was_recycled = False
        self.was_respawned = False
        self.merge_count = 0  # non-back merges served from this path
        #: Logical registers written since this context's path started —
        #: folded into the written-bit array at primaryship swaps.
        self.self_written: set = set()

    # ------------------------------------------------------------------
    @property
    def is_alternate(self) -> bool:
        return self.state is CtxState.ACTIVE and not self.is_primary

    @property
    def pending_reuse(self) -> int:
        """Outstanding reuses of this context's mappings by the primary."""
        return len(self.reuse_pins)

    @property
    def icount(self) -> int:
        """Pre-issue instruction count (ICOUNT fetch priority)."""
        return len(self.decode_buffer) + self.n_queued

    def can_fetch(self, cycle: int, decode_cap: int) -> bool:
        # INACTIVE contexts may keep fetching under the FETCH/NOSTOP
        # policies (Section 5.2); ``fetch_stopped`` gates them.
        return (
            self.state in (CtxState.ACTIVE, CtxState.INACTIVE)
            and not self.fetch_stopped
            and cycle >= self.fetch_stall_until
            and len(self.decode_buffer) < decode_cap
        )

    # ------------------------------------------------------------------
    def merge_point_valid(self, mp: Optional[MergePoint]) -> bool:
        if mp is None:
            return False
        uop = self.active_list.try_entry(mp.pos)
        return uop is not None and uop.pc == mp.pc and not uop.squashed

    def set_back_merge(self, target_pc: int) -> None:
        """Record the target of the last backward branch (Section 3.2)."""
        pos = self.active_list.find_pc(target_pc)
        if pos is not None:
            self.back_merge = MergePoint(target_pc, pos)
        else:
            self.back_merge = None

    def note_first_entry(self, uop: Uop, pos: int) -> None:
        if self.first_merge is None:
            self.first_merge = MergePoint(uop.pc, pos)
            self.path_start_pos = pos

    # ------------------------------------------------------------------
    def reset_for_reclaim(self) -> None:
        """Return to IDLE after the core has released all resources."""
        self.active_list.clear()
        self.state = CtxState.IDLE
        self.is_primary = False
        self.instance = None
        self.decode_buffer.clear()
        self.store_buffer.clear()
        self.inherited_stores.clear()
        self.n_queued = 0
        self.fork_uop = None
        self.parent_ctx = None
        self.alt_fetched = 0
        self.path_start_pos = 0
        self.commit_limit_pos = None
        self.commit_successor = None
        self.first_merge = None
        self.back_merge = None
        self.inactive_since = -1
        self.reuse_pins = set()
        self.was_used_tme = False
        self.was_recycled = False
        self.was_respawned = False
        self.merge_count = 0
        self.self_written = set()
        self.fetch_stopped = False
        self.fetch_stall_until = 0
        self.fill_pc = -1
        self.fill_ready = 0

    def __repr__(self) -> str:
        role = "P" if self.is_primary else ("A" if self.is_alternate else "-")
        return f"<ctx{self.id} {self.state.value}/{role} pc={self.pc:#x}>"
